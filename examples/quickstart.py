#!/usr/bin/env python3
"""Quickstart: the paper's workflow end to end on one design.

Runs the three contributions in sequence on the SPARC-core proxy:

1. characterize the four EDA applications across VM sizes (Figure 2),
2. derive per-application instance-family recommendations,
3. pick cost-minimal VM configurations under a deadline with the
   multi-choice knapsack DP (Table I / Figure 6).

Runs in about a minute.  Usage::

    python examples/quickstart.py [deadline_seconds]
"""

import sys

from repro.core import (
    build_stage_options,
    characterize,
    cost_saving_percent,
    over_provisioning,
    solve_mckp_dp,
    under_provisioning,
)
from repro.core.report import render_figure2


def main() -> None:
    deadline = float(sys.argv[1]) if len(sys.argv) > 1 else 9000.0

    print("=== Step 1: characterize the EDA applications (Problem 1) ===")
    report = characterize("sparc_core", scale=1.0, sample_rate=4)
    print(render_figure2(report))

    print("\n=== Step 2: price the measured runtimes (AWS-like catalog) ===")
    stages = build_stage_options(
        report.stage_runtimes(), families=report.recommended_families()
    )
    for stage_opts in stages:
        menu = ", ".join(
            f"{o.vm.vcpus}v: {o.runtime_seconds:,}s/${o.price:.2f}"
            for o in stage_opts.options
        )
        print(f"  {stage_opts.stage.display_name:10s} {menu}")

    print(f"\n=== Step 3: optimize deployment for a {deadline:,.0f}s deadline ===")
    selection = solve_mckp_dp(stages, deadline)
    if selection is None:
        fastest = sum(s.fastest.runtime_seconds for s in stages)
        print(f"NA — not achievable; the fastest possible flow takes {fastest:,}s")
        return
    plan = selection.to_plan(report.design)
    print(plan.summary())

    over = over_provisioning(stages)
    under = under_provisioning(stages)
    print(
        f"\nover-provisioning (8 vCPU everywhere): ${over.total_cost:.4f}; "
        f"saving {cost_saving_percent(selection.total_cost, over.total_cost):.1f}%"
    )
    print(
        f"under-provisioning (1 vCPU everywhere): ${under.total_cost:.4f} "
        f"at {under.total_runtime:,}s; "
        f"saving {cost_saving_percent(selection.total_cost, under.total_cost):.1f}%"
    )


if __name__ == "__main__":
    main()
