#!/usr/bin/env python3
"""Design-space exploration: synthesis recipes x deployment cost.

The scenario the paper's introduction motivates: an EDA team explores
logic-synthesis recipes in the cloud and wants each exploration job placed
on the right VM.  This example:

1. synthesizes one design under several recipes (quality differs),
2. runs the back-end (place/route/STA) for each,
3. prices each recipe's full flow at every VM size,
4. reports the QoR-vs-cloud-cost frontier.

Usage::

    python examples/design_space_exploration.py [design] [scale]
"""

import sys

from repro.cloud import aws_like_catalog
from repro.core.optimize import build_stage_options, solve_mckp_dp
from repro.core.report import format_table
from repro.eda import EDAStage, FlowRunner
from repro.netlist import benchmarks

RECIPES = {
    "raw (no optimization)": (),
    "balance only": ("balance",),
    "resyn-lite": ("balance", "rewrite", "balance"),
    "resyn-full": ("balance", "rewrite", "balance", "refactor", "balance"),
}


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "fpu"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8
    deadline_factor = 0.6  # deadline = 60% of the 1-vCPU flow time

    runner = FlowRunner()
    aig = benchmarks.build(design, scale)
    print(f"design {aig.name}: {aig.num_ands} AND nodes, depth {aig.depth()}")

    rows = []
    for recipe_name, recipe in RECIPES.items():
        flow = runner.run(aig, recipe=recipe)
        synth = flow[EDAStage.SYNTHESIS]
        sta = flow[EDAStage.STA].artifact
        runtimes = {s: r.runtimes() for s, r in flow.stages.items()}
        stages = build_stage_options(runtimes, catalog=aws_like_catalog())
        deadline = deadline_factor * flow.total_runtime(1)
        selection = solve_mckp_dp(stages, deadline)
        cost = f"${selection.total_cost:.3f}" if selection else "NA"
        runtime = f"{selection.total_runtime:,}" if selection else "NA"
        rows.append(
            [
                recipe_name,
                f"{synth.metrics['instances']:.0f}",
                f"{synth.metrics['area']:.1f}",
                f"{sta.max_arrival:.0f}",
                f"{flow.total_runtime(1):,.0f}",
                runtime,
                cost,
            ]
        )

    print()
    print(
        format_table(
            [
                "recipe",
                "cells",
                "area um2",
                "delay ps",
                "flow @1v (s)",
                "optimized (s)",
                "cloud cost",
            ],
            rows,
        )
    )
    print(
        "\nEach row prices the whole flow under a deadline of "
        f"{100 * deadline_factor:.0f}% of its single-vCPU runtime, using the "
        "paper's multi-choice knapsack optimization."
    )


if __name__ == "__main__":
    main()
