#!/usr/bin/env python3
"""Multi-tenancy stress test: how noisy neighbours skew deployment plans.

The paper characterizes jobs in a controlled cgroups environment; real
clouds share hosts.  This example runs the characterization, then replays
the optimized deployment across a sampled co-tenant population to show
which stages are robust (synthesis, STA) and which degrade (placement,
routing — the cache-hungry stages), and how much deadline margin a team
should budget.

Usage::

    python examples/noisy_neighbors.py [num_hosts]
"""

import statistics
import sys

from repro.cloud import TenancyModel
from repro.core import build_stage_options, characterize, solve_mckp_dp
from repro.core.report import format_table
from repro.eda.job import EDAStage


def main() -> None:
    num_hosts = int(sys.argv[1]) if len(sys.argv) > 1 else 200

    print("=== Characterizing (controlled environment) ===")
    report = characterize("sparc_core", scale=1.0, sample_rate=4)
    runtimes = report.stage_runtimes()
    stages = build_stage_options(runtimes, families=report.recommended_families())

    deadline = 0.7 * sum(s.options[0].runtime_seconds for s in stages)
    selection = solve_mckp_dp(stages, deadline)
    assert selection is not None
    print(selection.to_plan(report.design).summary())

    print(f"\n=== Replaying on {num_hosts} sampled multi-tenant hosts ===")
    model = TenancyModel()
    neighbors = model.sample_neighbors(num_hosts, seed=7)

    rows = []
    total_p95 = 0.0
    for stage, option in selection.choices.items():
        miss_rate = report[stage].counters[option.vm.vcpus].cache_miss_rate
        slowdowns = [model.slowdown(n, miss_rate) for n in neighbors]
        effective = [option.runtime_seconds * s for s in slowdowns]
        p95 = sorted(effective)[int(0.95 * len(effective)) - 1]
        total_p95 += p95
        rows.append(
            [
                stage.display_name,
                f"{100 * miss_rate:.1f}%",
                f"{option.runtime_seconds:,}",
                f"{statistics.mean(effective):,.0f}",
                f"{p95:,.0f}",
                f"{100 * (statistics.mean(slowdowns) - 1):.1f}%",
            ]
        )

    print(
        format_table(
            [
                "stage",
                "cache miss",
                "planned (s)",
                "mean actual (s)",
                "p95 actual (s)",
                "mean slowdown",
            ],
            rows,
        )
    )
    planned = selection.total_runtime
    print(
        f"\nplanned flow: {planned:,}s; p95 under interference: {total_p95:,.0f}s"
        f" -> budget ~{100 * (total_p95 / planned - 1):.0f}% deadline margin on"
        " shared tenancy, driven almost entirely by the memory-bound stages."
    )


if __name__ == "__main__":
    main()
