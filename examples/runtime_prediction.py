#!/usr/bin/env python3
"""Train the GCN runtime predictors and deploy an unseen design.

The paper's Problem 2 + Problem 3 pipeline as a user would run it:

1. build a dataset of netlist variants with measured runtimes,
2. train one GCN per application (synthesis model on AIGs, back-end
   models on star-model netlist graphs),
3. predict the four stage runtimes of a *new* design it never saw,
4. optimize that design's cloud deployment under a deadline.

This is the heaviest example (~5-10 minutes).  Usage::

    python examples/runtime_prediction.py [variants_per_design] [epochs]
"""

import sys

from repro.core.predict import DatasetSpec, build_datasets, train_predictors
from repro.core.workflow import CloudDeploymentWorkflow
from repro.eda.job import EDAStage
from repro.netlist import benchmarks


def main() -> None:
    variants = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    print(f"=== Building dataset: 18 designs x {variants} variants ===")
    spec = DatasetSpec(variants_per_design=variants, scale=0.45)
    datasets = build_datasets(spec, verbose=True)

    print(f"\n=== Training one GCN per application ({epochs} epochs) ===")
    suite = train_predictors(datasets, epochs=epochs, lr=1e-3, verbose=True)
    for stage, predictor in suite.predictors.items():
        print(
            f"  {stage.value:10s} test accuracy {predictor.accuracy:5.1f}%  "
            f"(paper: 95% AIG / 87% netlist)"
        )

    print("\n=== Predicting runtimes for an unseen design (dynamic_node) ===")
    workflow = CloudDeploymentWorkflow()
    workflow.predictors = suite
    aig = benchmarks.build("dynamic_node", 1.2)
    predicted = workflow.predict_runtimes(aig)
    for stage in EDAStage.ordered():
        series = ", ".join(f"{v}v: {t:,.0f}s" for v, t in predicted[stage].items())
        print(f"  {stage.display_name:10s} {series}")

    total_1v = sum(predicted[s][1] for s in EDAStage.ordered())
    deadline = 0.5 * total_1v
    print(f"\n=== Optimizing deployment (deadline {deadline:,.0f}s) ===")
    outcome = workflow.optimize_deployment(predicted, deadline, design=aig.name)
    if outcome.feasible:
        print(outcome.plan().summary())
    else:
        print("NA — deadline not achievable with the available VM menu")


if __name__ == "__main__":
    main()
