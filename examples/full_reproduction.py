#!/usr/bin/env python3
"""Regenerate the paper's experiments into a JSON results file.

Runs Figure 2, Figure 3, Table I and Figure 6 through the structured
experiment runner and writes machine-readable results — the artifact a
regression dashboard would track.  (Figure 5's GCN training is minutes;
run ``examples/runtime_prediction.py`` or the Fig. 5 benchmark for it.)

Usage::

    python examples/full_reproduction.py [results.json] [--quick]
"""

import json
import sys

from repro.core.experiments import run_all


def main() -> None:
    args = [a for a in sys.argv[1:]]
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    out_path = args[0] if args else "results.json"

    results = run_all(quick=quick)
    with open(out_path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True, default=str)

    fig2 = results["figure2"]
    print(f"characterized {fig2['design']}")
    print("  families:", fig2["recommended_families"])
    spd = {k: round(v[8], 2) for k, v in fig2["speedups"].items()}
    print("  speedup@8:", spd)
    fig3 = results["figure3"]
    print("  routing speedup@8 by design:",
          {k: round(v[8], 2) for k, v in fig3["speedups"].items()})
    t1 = results["table1_figure6"]
    print(f"  average saving: {t1['average_saving_pct']:.1f}% (paper: 35.29%)")
    print(f"results written to {out_path} "
          f"({results['meta']['wall_seconds']}s)")


if __name__ == "__main__":
    main()
