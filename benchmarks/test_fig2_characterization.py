"""Figure 2: performance characterization of the four EDA applications.

Regenerates all four panels for the SPARC-core proxy and checks the
paper's qualitative claims:

(a) routing has the highest branch-miss rate;
(b) placement/routing have much higher cache-miss rates than
    synthesis/STA, placement's falls as VMs grow, routing's stays flat;
(c) placement leads AVX utilization with STA second;
(d) routing scales best with vCPUs, synthesis worst.
"""

from repro.core.report import render_figure2
from repro.eda.job import EDAStage


def _series(report, getter):
    return {stage: getter(char) for stage, char in report.stages.items()}


def test_fig2a_branch_misses(benchmark, char_report):
    rates = benchmark.pedantic(
        lambda: _series(char_report, lambda c: c.branch_miss_rates()),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure2(char_report).split("\n\n")[0])
    mean = {s: sum(r.values()) / len(r) for s, r in rates.items()}
    # Paper: routing clearly highest, attributed to maze search + RRR.
    assert mean[EDAStage.ROUTING] == max(mean.values())
    assert mean[EDAStage.ROUTING] > 2 * mean[EDAStage.PLACEMENT]
    # Placement's vectorized loops mispredict the least.
    assert mean[EDAStage.PLACEMENT] == min(mean.values())


def test_fig2b_cache_misses(benchmark, char_report):
    rates = benchmark.pedantic(
        lambda: _series(char_report, lambda c: c.cache_miss_rates()),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure2(char_report).split("\n\n")[1])
    place = rates[EDAStage.PLACEMENT]
    route = rates[EDAStage.ROUTING]
    synth = rates[EDAStage.SYNTHESIS]
    sta = rates[EDAStage.STA]
    # Placement and routing well above synthesis and STA (paper 2-b).
    assert min(place[1], route[1]) > max(synth[1], sta[1])
    # Placement: ~45% at 1 vCPU falling to ~34% at 8 (shape check).
    assert place[1] > place[8]
    assert 0.30 <= place[8] <= 0.45
    assert place[1] >= 0.40
    # Routing: comparatively flat / insensitive to VM size (27->30% in
    # the paper); allow a band rather than a direction.
    assert abs(route[1] - route[8]) < 0.12
    assert 0.15 <= route[8] <= 0.40


def test_fig2c_fp_avx(benchmark, char_report):
    shares = benchmark.pedantic(
        lambda: _series(char_report, lambda c: c.avx_shares()),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure2(char_report).split("\n\n")[2])
    mean = {s: sum(r.values()) / len(r) for s, r in shares.items()}
    ordered = sorted(mean, key=mean.get, reverse=True)
    # Paper: placement leads (analytical gradients), STA second (slack
    # arithmetic over the library), synthesis/routing negligible.
    assert ordered[0] == EDAStage.PLACEMENT
    assert ordered[1] == EDAStage.STA
    assert mean[EDAStage.SYNTHESIS] < 0.01
    assert mean[EDAStage.ROUTING] < 0.01


def test_fig2d_speedup(benchmark, char_report):
    speedups = benchmark.pedantic(
        lambda: {s: c.speedups for s, c in char_report.stages.items()},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure2(char_report).split("\n\n")[3])
    at8 = {s: sp[8] for s, sp in speedups.items()}
    # Paper values at 8 vCPUs: synthesis 1.82, placement 2.32,
    # routing 6.18, STA 2.23.  Check ordering and rough factors.
    assert at8[EDAStage.ROUTING] == max(at8.values())
    assert at8[EDAStage.SYNTHESIS] == min(at8.values())
    assert 1.4 <= at8[EDAStage.SYNTHESIS] <= 2.4
    assert 1.8 <= at8[EDAStage.PLACEMENT] <= 2.9
    assert 4.0 <= at8[EDAStage.ROUTING] <= 7.5
    assert 1.8 <= at8[EDAStage.STA] <= 2.8
    # Speedups grow monotonically with vCPUs for every stage.
    for stage, sp in speedups.items():
        assert sp[1] <= sp[2] <= sp[4] <= sp[8] * 1.05


def test_fig2_recommendations(benchmark, char_report):
    """The 'Main Takeaways' derived from measurements match the paper."""
    from repro.cloud import InstanceFamily

    families = benchmark.pedantic(
        char_report.recommended_families, rounds=1, iterations=1
    )
    print("\nMain takeaways:")
    for line in char_report.recommendations_text():
        print(" -", line)
    assert families[EDAStage.SYNTHESIS] == InstanceFamily.GENERAL_PURPOSE
    assert families[EDAStage.STA] == InstanceFamily.GENERAL_PURPOSE
    assert families[EDAStage.PLACEMENT] == InstanceFamily.MEMORY_OPTIMIZED
    assert families[EDAStage.ROUTING] == InstanceFamily.MEMORY_OPTIMIZED
    avx = char_report.wants_avx()
    assert avx[EDAStage.PLACEMENT] and avx[EDAStage.STA]
    scales = char_report.scales_well()
    assert scales[EDAStage.ROUTING] and not scales[EDAStage.SYNTHESIS]
