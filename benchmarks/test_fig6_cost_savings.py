"""Figure 6: cost savings of the knapsack optimization vs naive baselines.

Sweeps deadline constraints over the feasible range and compares the
optimized plan's cost with over-provisioning (8 vCPUs everywhere) and
under-provisioning (1 vCPU everywhere).  The paper reports an average
saving of 35.29% "with minimal overhead to the best runtime".
"""

import numpy as np
import pytest

from repro.core.optimize import (
    cost_saving_percent,
    over_provisioning,
    solve_mckp_dp,
    under_provisioning,
)
from repro.core.report import render_figure6


@pytest.fixture(scope="module")
def sweep(paper_stage_options):
    fastest = sum(s.fastest.runtime_seconds for s in paper_stage_options)
    slowest = sum(s.options[0].runtime_seconds for s in paper_stage_options)
    # Deadlines from just-feasible to fully relaxed.
    deadlines = np.linspace(fastest, slowest, 8).astype(int).tolist()
    return deadlines


def test_fig6_cost_savings(benchmark, paper_stage_options, sweep):
    over = over_provisioning(paper_stage_options)
    under = under_provisioning(paper_stage_options)

    def run_sweep():
        rows = []
        for deadline in sweep:
            sel = solve_mckp_dp(paper_stage_options, deadline)
            assert sel is not None
            rows.append(
                dict(
                    constraint=deadline,
                    optimized=sel.total_cost,
                    over=over.total_cost,
                    under=under.total_cost,
                    saving_over=cost_saving_percent(sel.total_cost, over.total_cost),
                    saving_under=cost_saving_percent(sel.total_cost, under.total_cost),
                )
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\n" + render_figure6(rows))

    # The optimizer never loses to over-provisioning.
    assert all(r["saving_over"] >= -1e-9 for r in rows)

    # Once the deadline has any slack, savings vs over-provisioning are
    # substantial (the paper's 35.29% average); require >20% average
    # over the relaxed half of the sweep.
    relaxed = rows[len(rows) // 2 :]
    savings = [r["saving_over"] for r in relaxed] + [
        r["saving_under"] for r in relaxed if r["saving_under"] > 0
    ]
    assert np.mean([r["saving_over"] for r in relaxed]) > 20.0

    # Under tight deadlines under-provisioning is infeasible anyway:
    under_runtime = sum(
        min(o.runtime_seconds for o in s.options if o.vm.vcpus == 1)
        for s in paper_stage_options
    )
    assert all(r["constraint"] < under_runtime for r in rows[:2])

    # "Minimal overhead to the best runtime": at the tightest deadline the
    # plan's runtime equals the best achievable.
    tightest = solve_mckp_dp(paper_stage_options, sweep[0])
    fastest = sum(s.fastest.runtime_seconds for s in paper_stage_options)
    assert tightest.total_runtime == fastest


def test_fig6_average_saving_magnitude(benchmark, paper_stage_options, sweep):
    """Average saving across the sweep and both baselines lands in the
    paper's neighbourhood (they report 35.29%; we require 15-60%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    over = over_provisioning(paper_stage_options)
    under = under_provisioning(paper_stage_options)
    under_runtime = under.total_runtime
    savings = []
    for deadline in sweep:
        sel = solve_mckp_dp(paper_stage_options, deadline)
        savings.append(cost_saving_percent(sel.total_cost, over.total_cost))
        if deadline >= under_runtime:
            savings.append(cost_saving_percent(sel.total_cost, under.total_cost))
    avg = float(np.mean(savings))
    print(f"\naverage saving across sweep: {avg:.2f}% (paper: 35.29%)")
    assert 15.0 <= avg <= 60.0
