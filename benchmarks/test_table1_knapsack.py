"""Table I: minimizing total deployment cost subject to a time constraint.

Regenerates the whole table from the characterization runtimes: the
runtime/cost menu per stage at 1/2/4/8 vCPUs, the recommended
configuration under each total-runtime constraint, and the NA row for an
unachievable deadline.
"""

import pytest

from repro.core.optimize import (
    solve_brute_force,
    solve_mckp_dp,
)
from repro.core.report import render_table1
from repro.eda.job import EDAStage


@pytest.fixture(scope="module")
def constraints(paper_stage_options):
    """Deadlines spanning the feasible range, plus one infeasible."""
    fastest = sum(s.fastest.runtime_seconds for s in paper_stage_options)
    slowest = sum(s.options[0].runtime_seconds for s in paper_stage_options)
    mid = (fastest + slowest) // 2
    return [slowest, mid, int(fastest * 1.05), fastest, int(fastest * 0.85)]


def test_table1_selections(benchmark, paper_stage_options, constraints):
    selections = benchmark.pedantic(
        lambda: {c: solve_mckp_dp(paper_stage_options, c) for c in constraints},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table1(paper_stage_options, constraints, selections))

    fastest = sum(s.fastest.runtime_seconds for s in paper_stage_options)

    # Feasible constraints are met; the too-tight one is NA.
    for c in constraints:
        sel = selections[c]
        if c >= fastest:
            assert sel is not None
            assert sel.total_runtime <= c
        else:
            assert sel is None  # the paper's "NA" row

    # Tightening the constraint never lowers the cost.
    feasible = sorted(c for c in constraints if selections[c] is not None)
    costs = [selections[c].total_cost for c in feasible]
    assert costs == sorted(costs, reverse=True) or costs == sorted(costs)
    # (costs increase as deadlines tighten: largest deadline = cheapest)
    assert selections[feasible[-1]].total_cost <= selections[feasible[0]].total_cost

    # At the exact fastest-possible deadline every stage uses its fastest VM.
    boundary = selections[fastest]
    for stage_opts in paper_stage_options:
        assert boundary.choices[stage_opts.stage] == stage_opts.fastest


def test_table1_escalation_is_selective(benchmark, paper_stage_options, constraints):
    """Tightening the deadline escalates *some* stages, not all at once —
    the behaviour the paper highlights in Table I."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    feasible = sorted(c for c in constraints if solve_mckp_dp(paper_stage_options, c))
    loose = solve_mckp_dp(paper_stage_options, feasible[-1])
    mid = solve_mckp_dp(paper_stage_options, feasible[len(feasible) // 2])
    vcpus_loose = {s: o.vm.vcpus for s, o in loose.choices.items()}
    vcpus_mid = {s: o.vm.vcpus for s, o in mid.choices.items()}
    assert any(vcpus_mid[s] > vcpus_loose[s] for s in vcpus_mid) or vcpus_mid == vcpus_loose


def test_table1_dp_is_optimal(benchmark, paper_stage_options, constraints):
    """The pseudo-polynomial DP matches exhaustive search on the real data."""
    deadline = sorted(c for c in constraints if solve_mckp_dp(paper_stage_options, c))[0]

    def both():
        return (
            solve_mckp_dp(paper_stage_options, deadline),
            solve_brute_force(paper_stage_options, deadline),
        )

    dp, bf = benchmark.pedantic(both, rounds=1, iterations=1)
    assert dp.objective_inverse_price == pytest.approx(bf.objective_inverse_price)


def test_table1_runtime_menu_matches_paper_magnitudes(benchmark, paper_stage_options):
    """Per-stage 1-vCPU runtimes land in the paper's regime (same order)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rt1 = {
        s.stage: s.options[0].runtime_seconds for s in paper_stage_options
    }
    paper = {
        EDAStage.SYNTHESIS: 6100,
        EDAStage.PLACEMENT: 1206,
        EDAStage.ROUTING: 10461,
        EDAStage.STA: 183,
    }
    for stage, expected in paper.items():
        assert 0.4 * expected <= rt1[stage] <= 2.5 * expected, (stage, rt1[stage])
    # Relative ordering: routing > synthesis > placement > STA.
    assert rt1[EDAStage.ROUTING] > rt1[EDAStage.SYNTHESIS]
    assert rt1[EDAStage.SYNTHESIS] > rt1[EDAStage.PLACEMENT]
    assert rt1[EDAStage.PLACEMENT] > rt1[EDAStage.STA]
