"""Figure 5: runtime-prediction error of the GCN models.

Trains one model per application on the generated dataset (18 designs x
variants, split 80/20 by design) and regenerates the error histogram plus
the average errors.  The paper reports 13% average error for the netlist
models (placement/routing/STA) and 5% for the AIG model (synthesis),
i.e. 87% headline accuracy.

Our scaled-down substrate cannot match those numbers exactly — see
EXPERIMENTS.md — so the assertions check the *shape*: the AIG model is the
most accurate, all models beat a trivial mean predictor, and most test
errors land in the low bins of the histogram.
"""

import os

import numpy as np
import pytest

from repro.core.predict import train_predictors
from repro.core.report import render_figure5
from repro.eda.job import EDAStage
from repro.gnn import split_by_design

EPOCHS = int(os.environ.get("REPRO_FIG5_EPOCHS", 80))
LR = float(os.environ.get("REPRO_FIG5_LR", 1e-3))

HIST_BINS = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 1.0, 10.0]


def _baseline_error(samples, seed=0):
    """Mean-log-runtime predictor error on held-out designs."""
    train_set, test_set = split_by_design(list(samples), 0.2, seed)
    mean_log = np.mean([s.log_runtimes for s in train_set], axis=0)
    errs = []
    for s in test_set:
        pred = np.exp(mean_log)
        errs.append(np.mean(np.abs(pred - s.runtimes) / s.runtimes))
    return float(np.mean(errs))


def test_fig5_prediction_errors(benchmark, fig5_datasets):
    suite = benchmark.pedantic(
        lambda: train_predictors(fig5_datasets, epochs=EPOCHS, lr=LR),
        rounds=1,
        iterations=1,
    )

    histograms = {}
    mean_errors = {}
    for stage, predictor in suite.predictors.items():
        key = f"{stage.value} ({'AIG' if stage == EDAStage.SYNTHESIS else 'netlist'})"
        histograms[key] = predictor.test_eval.error_histogram(HIST_BINS)
        mean_errors[key] = predictor.test_eval.mean_error
    print("\n" + render_figure5(histograms, mean_errors))
    for stage, predictor in suite.predictors.items():
        print(
            f"{stage.value}: accuracy {predictor.accuracy:.1f}% "
            f"(train err {100 * predictor.train_eval.mean_error:.1f}%)"
        )

    synth = suite.predictors[EDAStage.SYNTHESIS]
    # Paper shape: the AIG (synthesis) model is the most accurate...
    netlist_errors = [
        suite.predictors[s].test_eval.mean_error
        for s in (EDAStage.PLACEMENT, EDAStage.ROUTING, EDAStage.STA)
    ]
    assert synth.test_eval.mean_error < min(netlist_errors) + 0.02
    # ...and hits high absolute accuracy on unseen designs (the paper
    # reports 5%; our scaled-down dataset reaches ~10-20%).
    assert synth.test_eval.mean_error < 0.27

    # Every model must clearly beat the trivial mean-runtime predictor.
    for stage, predictor in suite.predictors.items():
        baseline = _baseline_error(fig5_datasets[stage])
        assert predictor.test_eval.mean_error < baseline, (
            stage,
            predictor.test_eval.mean_error,
            baseline,
        )

    # Training converged (loss decreased substantially).
    for stage, predictor in suite.predictors.items():
        losses = predictor.train_result.losses
        assert losses[-1] < 0.5 * losses[0]


def test_fig5_dataset_statistics(benchmark, fig5_datasets):
    """The dataset mirrors the paper's construction."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    samples = fig5_datasets[EDAStage.PLACEMENT]
    designs = {s.design for s in samples}
    assert len(designs) == 18  # the paper's 18 benchmark designs
    # 4 runtimes per netlist per application = the paper's "data points".
    data_points = sum(len(v) for v in fig5_datasets.values()) * 4
    assert data_points == len(samples) * 4 * 4
    # Netlists range over an order of magnitude in size.
    sizes = [s.graph.num_nodes for s in samples]
    assert max(sizes) > 5 * min(sizes)
