"""Figure 3: routing speedup across designs of different sizes.

The paper routes the OpenPiton designs (dynamic_node smallest ...
sparc_core largest) and shows that big designs scale with vCPUs while
small ones plateau — "almost equal speedups for 4 and 8 vCPUs" on
dynamic_node and aes.
"""

import pytest

from repro.core.report import render_figure3
from repro.eda import FlowRunner, EDAStage
from repro.netlist import benchmarks

#: Designs smallest-to-largest, as in the paper's Figure 3 x-axis.
FIG3_DESIGNS = [
    ("dynamic_node", 1.0),
    ("aes", 0.8),
    ("fpu", 1.0),
    ("sparc_core", 1.5),
]

VCPUS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def routing_speedups():
    runner = FlowRunner()
    out = {}
    sizes = {}
    for name, scale in FIG3_DESIGNS:
        flow = runner.run(benchmarks.build(name, scale))
        routing = flow[EDAStage.ROUTING]
        out[name] = {v: routing.profile.speedup(v) for v in VCPUS}
        sizes[name] = flow[EDAStage.SYNTHESIS].artifact.num_instances
    return out, sizes


def test_fig3_routing_speedup_by_design(benchmark, routing_speedups):
    speedups, sizes = benchmark.pedantic(
        lambda: routing_speedups, rounds=1, iterations=1
    )
    print("\n" + render_figure3(speedups))
    print("instance counts:", sizes)

    smallest = FIG3_DESIGNS[0][0]
    largest = FIG3_DESIGNS[-1][0]
    assert sizes[largest] > 5 * sizes[smallest]

    # Large designs scale well with vCPUs; small ones don't.
    assert speedups[largest][8] > 4.0
    assert speedups[smallest][8] < 3.0
    assert speedups[largest][8] > speedups[smallest][8] + 1.5

    # The plateau: small designs have almost equal speedups at 4 and 8.
    assert abs(speedups[smallest][8] - speedups[smallest][4]) < 0.5

    # Speedup at 8 vCPUs grows with design size (monotone in the lineup).
    at8 = [speedups[name][8] for name, _ in FIG3_DESIGNS]
    assert at8[-1] == max(at8)
    assert at8[0] == min(at8)


def test_fig3_adding_vcpus_never_helps_everywhere(benchmark, routing_speedups):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # 'Adding more vCPUs does not eminently scale the routing job in all
    # designs' — at least one design gains < 25% going from 4 to 8.
    speedups, _sizes = routing_speedups
    gains = [speedups[name][8] / speedups[name][4] for name, _ in FIG3_DESIGNS]
    assert min(gains) < 1.25
    # ...but the largest design still gains substantially.
    largest = FIG3_DESIGNS[-1][0]
    assert speedups[largest][8] / speedups[largest][4] > 1.2
