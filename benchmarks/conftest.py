"""Shared fixtures for the paper-reproduction benchmarks.

Heavy artifacts (the characterization runs, the GCN dataset) are built
once per session and shared across the per-figure benchmarks.  Scale knobs
come from the environment so a "paper-sized" run is one variable away:

* ``REPRO_BENCH_SCALE``      — characterization design scale (default 1.5)
* ``REPRO_BENCH_SAMPLE_RATE``— PMU sampling stride (default 4)
* ``REPRO_FIG5_VARIANTS``    — netlist variants per design (default 6;
  the paper's dataset corresponds to ~18)
* ``REPRO_FIG5_EPOCHS``      — GCN training epochs (default 60; paper 200)
"""

import pytest

from repro.core.characterize import characterize
from repro.core.env import env_float, env_int
from repro.core.optimize import build_stage_options
from repro.core.predict import DatasetSpec, build_datasets

BENCH_SCALE = env_float("REPRO_BENCH_SCALE", 1.5)
SAMPLE_RATE = env_int("REPRO_BENCH_SAMPLE_RATE", 2)
FIG5_VARIANTS = env_int("REPRO_FIG5_VARIANTS", 6)
FIG5_EPOCHS = env_int("REPRO_FIG5_EPOCHS", 60)
FIG5_SCALE = env_float("REPRO_FIG5_SCALE", 0.45)


@pytest.fixture(scope="session")
def char_report():
    """Characterization of the SPARC-core proxy (Figures 2, Table I input)."""
    return characterize(
        "sparc_core",
        scale=BENCH_SCALE,
        vcpu_levels=(1, 2, 4, 8),
        sample_rate=SAMPLE_RATE,
    )


@pytest.fixture(scope="session")
def paper_stage_options(char_report):
    """Per-stage VM options priced from the measured runtimes."""
    return build_stage_options(
        char_report.stage_runtimes(),
        families=char_report.recommended_families(),
    )


@pytest.fixture(scope="session")
def fig5_datasets():
    """The GCN dataset (18 designs x variants), built once."""
    spec = DatasetSpec(variants_per_design=FIG5_VARIANTS, scale=FIG5_SCALE, seed=0)
    return build_datasets(spec)
