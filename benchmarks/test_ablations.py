"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they quantify the consequences of
the choices the paper made (and the ones we had to make) —

* the MCKP objective (max sum 1/p) vs direct cost minimization,
* the optimal DP vs a greedy heuristic,
* per-second billing (runtime rounding granularity),
* the star vs clique net model,
* synthesis recipe depth (quality vs runtime),
* branch-predictor choice in the perf substrate.
"""

import random

import numpy as np
import pytest

from repro.cloud import InstanceFamily, VMConfig
from repro.core.optimize import (
    ConfigOption,
    StageOptions,
    solve_brute_force,
    solve_greedy,
    solve_mckp_dp,
    solve_min_cost_dp,
)
from repro.core.report import format_table
from repro.eda.job import EDAStage
from repro.eda.synthesis import SynthesisEngine
from repro.netlist import benchmarks, netlist_to_clique_graph, netlist_to_star_graph
from repro.perf.branch import GSharePredictor, TwoBitPredictor


def _random_instances(count, seed=0):
    rng = random.Random(seed)
    stage_names = list(EDAStage.ordered())
    instances = []
    for _ in range(count):
        stages = []
        for i in range(rng.randint(2, 4)):
            options = []
            base_t = rng.randint(50, 2000)
            base_p = rng.uniform(0.05, 0.5)
            for j, v in enumerate((1, 2, 4, 8)):
                t = max(1, int(base_t / (1 + 0.8 * j)))
                p = base_p * (1 + 0.45 * j) * t / base_t
                options.append(
                    ConfigOption(
                        vm=VMConfig(
                            f"vm{i}_{j}_{rng.random():.6f}",
                            InstanceFamily.GENERAL_PURPOSE,
                            v,
                            4.0 * v,
                            max(p, 0.001) * 3600 / t,
                        ),
                        runtime_seconds=t,
                        price=max(p, 0.001),
                    )
                )
            stages.append(StageOptions(stage=stage_names[i], options=options))
        fastest = sum(s.fastest.runtime_seconds for s in stages)
        slowest = sum(s.options[0].runtime_seconds for s in stages)
        deadline = rng.uniform(fastest, slowest + 1)
        instances.append((stages, deadline))
    return instances


def test_ablation_objective_inverse_price_vs_min_cost(benchmark):
    """The paper maximizes sum(1/p); direct cost minimization can differ.

    Measures how often and by how much the two objectives diverge over
    random pricing instances.
    """
    instances = _random_instances(120, seed=3)

    def run():
        diffs = []
        for stages, deadline in instances:
            inv = solve_mckp_dp(stages, deadline)
            cost = solve_min_cost_dp(stages, deadline)
            if inv is None or cost is None:
                continue
            diffs.append((inv.total_cost, cost.total_cost))
        return diffs

    diffs = benchmark.pedantic(run, rounds=1, iterations=1)
    worse = [(a - b) / b for a, b in diffs if a > b + 1e-12]
    print(
        f"\nobjective ablation: {len(diffs)} feasible instances, "
        f"{len(worse)} where max-sum(1/p) pays more than min-cost "
        f"(mean overpay {100 * np.mean(worse) if worse else 0:.2f}%, "
        f"max {100 * max(worse) if worse else 0:.2f}%)"
    )
    # min-cost is by definition never more expensive.
    assert all(a >= b - 1e-9 for a, b in diffs)
    # The divergence exists but is bounded on realistic menus.
    if worse:
        assert max(worse) < 0.8


def test_ablation_greedy_vs_optimal(benchmark):
    """The greedy heuristic is near-optimal but not optimal."""
    instances = _random_instances(120, seed=11)

    def run():
        gaps = []
        greedy_failures = 0
        for stages, deadline in instances:
            opt = solve_min_cost_dp(stages, deadline)
            greedy = solve_greedy(stages, deadline)
            if opt is None:
                continue
            if greedy is None:
                greedy_failures += 1
                continue
            gaps.append((greedy.total_cost - opt.total_cost) / opt.total_cost)
        return gaps, greedy_failures

    gaps, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ngreedy ablation: mean gap {100 * np.mean(gaps):.2f}%, "
        f"max gap {100 * max(gaps):.2f}%, infeasible-miss {failures}"
    )
    assert np.mean(gaps) < 0.25

    # Deterministic adversarial case where the ratio-greedy provably loses:
    # upgrading the "best ratio" stage first strands budget.
    def _opt(stage, entries):
        return StageOptions(
            stage=stage,
            options=[
                ConfigOption(
                    vm=VMConfig(
                        f"adv_{stage.value}_{i}",
                        InstanceFamily.GENERAL_PURPOSE,
                        2 ** i,
                        4.0 * 2 ** i,
                        1.0,
                    ),
                    runtime_seconds=t,
                    price=p,
                )
                for i, (t, p) in enumerate(entries)
            ],
        )

    adversarial = [
        _opt(EDAStage.SYNTHESIS, [(10, 1.0), (2, 1.5)]),
        _opt(EDAStage.PLACEMENT, [(10, 1.0), (5, 1.2)]),
    ]
    greedy_sel = solve_greedy(adversarial, 12)
    optimal_sel = solve_min_cost_dp(adversarial, 12)
    assert greedy_sel is not None and optimal_sel is not None
    print(
        f"adversarial case: greedy ${greedy_sel.total_cost:.2f} vs "
        f"optimal ${optimal_sel.total_cost:.2f}"
    )
    assert greedy_sel.total_cost > optimal_sel.total_cost  # greedy is not optimal


def test_ablation_billing_granularity(benchmark, paper_stage_options):
    """Per-second billing justifies rounding; coarser billing costs money."""

    def run():
        rows = []
        base = solve_mckp_dp(paper_stage_options, 10_000)
        for granularity in (1, 60, 3600):
            total = 0.0
            for stage_opts in paper_stage_options:
                opt = base.choices[stage_opts.stage]
                units = -(-opt.runtime_seconds // granularity)  # ceil
                total += units * granularity * opt.vm.price_per_second
            rows.append((granularity, total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nbilling granularity ablation:")
    for granularity, total in rows:
        print(f"  {granularity:>5}s units -> ${total:.4f}")
    per_second = rows[0][1]
    per_hour = rows[-1][1]
    assert per_hour > per_second  # hourly billing always costs more
    assert rows[1][1] >= per_second


def test_ablation_star_vs_clique_net_model(benchmark):
    """The paper's star model vs the clique alternative.

    Cliques blow up quadratically on high-fanout nets — the reason the
    paper (and every placer) prefers the star model for large designs.
    """
    netlist = SynthesisEngine().run(benchmarks.build("sparc_core", 0.8)).artifact

    def run():
        star = netlist_to_star_graph(netlist)
        clique = netlist_to_clique_graph(netlist)
        return star, clique

    star, clique = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = clique.num_edges / star.num_edges
    max_fanout = max(net.fanout for net in netlist.nets.values())
    print(
        f"\nstar: {star.num_edges} edges; clique: {clique.num_edges} edges "
        f"({ratio:.1f}x); max fanout {max_fanout}"
    )
    assert clique.num_edges > 2 * star.num_edges
    assert star.num_edges == sum(n.fanout for n in netlist.nets.values())


def test_ablation_synthesis_recipe_depth(benchmark):
    """Longer recipes buy area at the cost of synthesis runtime."""
    aig = benchmarks.build("sparc_core", 0.8)
    engine = SynthesisEngine()
    recipes = {
        "none": (),
        "balance": ("balance",),
        "resyn": ("balance", "rewrite", "balance"),
        "resyn2": ("balance", "rewrite", "balance", "refactor", "balance"),
    }

    def run():
        return {
            name: engine.run(aig, recipe=recipe) for name, recipe in recipes.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{r.metrics['optimized_ands']:.0f}",
            f"{r.metrics['area']:.1f}",
            f"{r.metrics['depth']:.0f}",
            f"{r.runtime(1):,.0f}",
        ]
        for name, r in results.items()
    ]
    print("\n" + format_table(["recipe", "ANDs", "area", "depth", "runtime@1v"], rows))
    areas = {name: r.metrics["area"] for name, r in results.items()}
    runtimes = {name: r.runtime(1) for name, r in results.items()}
    assert areas["resyn2"] <= areas["none"]
    assert runtimes["resyn2"] > runtimes["balance"]


def test_ablation_branch_predictor_choice(benchmark):
    """Perf-substrate sensitivity: gshare vs 2-bit on the router's stream.

    The characterization's *ordering* must not hinge on the predictor
    model: routing stays the worst-predicted workload under both.
    """
    rng = random.Random(0)
    # Representative streams: routing (data-dependent), synthesis (biased),
    # placement (loop-dominated).
    streams = {
        "routing": [rng.random() < 0.5 for _ in range(4000)],
        "synthesis": [rng.random() < 0.82 for _ in range(4000)],
        "placement": ([True] * 63 + [False]) * 62,
    }

    def run():
        out = {}
        for name, outcomes in streams.items():
            two_bit = TwoBitPredictor()
            gshare = GSharePredictor()
            out[name] = (
                two_bit.process([7] * len(outcomes), outcomes) / len(outcomes),
                gshare.process([7] * len(outcomes), outcomes) / len(outcomes),
            )
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\npredictor ablation (miss rates):")
    for name, (tb, gs) in rates.items():
        print(f"  {name:10s} 2-bit {100 * tb:5.1f}%  gshare {100 * gs:5.1f}%")
    for model_idx in (0, 1):
        assert rates["routing"][model_idx] > rates["synthesis"][model_idx]
        assert rates["synthesis"][model_idx] > rates["placement"][model_idx]


def test_ablation_spot_market(benchmark, paper_stage_options):
    """Extension ablation: mixing spot instances into the MCKP menu.

    With relaxed deadlines, interruptible capacity cuts costs well below
    the paper's on-demand optimum; tight deadlines force on-demand back in
    because the spot options' *expected* runtimes no longer fit.
    """
    from repro.cloud import SpotMarket

    market = SpotMarket(discount=0.3, interrupt_rate_per_hour=0.05)
    augmented = market.augment_stage_options(paper_stage_options)

    def run():
        rows = []
        fastest = sum(s.fastest.runtime_seconds for s in paper_stage_options)
        slowest = sum(s.options[0].runtime_seconds for s in paper_stage_options)
        for deadline in (fastest, (fastest + slowest) // 2, 2 * slowest):
            on_demand = solve_min_cost_dp(paper_stage_options, deadline)
            mixed = solve_min_cost_dp(augmented, deadline)
            rows.append((deadline, on_demand, mixed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nspot-market ablation:")
    for deadline, on_demand, mixed in rows:
        od = f"${on_demand.total_cost:.3f}" if on_demand else "NA"
        mx = f"${mixed.total_cost:.3f}" if mixed else "NA"
        spot_used = (
            sum(1 for o in mixed.choices.values() if "spot" in o.vm.name)
            if mixed
            else 0
        )
        print(f"  deadline {deadline:>8,}: on-demand {od}, mixed {mx} "
              f"({spot_used} stages on spot)")
    # Spot never hurts (it only adds options)...
    for _deadline, on_demand, mixed in rows:
        if on_demand and mixed:
            assert mixed.total_cost <= on_demand.total_cost + 1e-9
    # ...and wins decisively when the deadline is relaxed.
    _d, od_relaxed, mixed_relaxed = rows[-1]
    assert mixed_relaxed.total_cost < 0.6 * od_relaxed.total_cost
    assert any("spot" in o.vm.name for o in mixed_relaxed.choices.values())
