"""Property tests for the truth-table algebra and ISOP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eda.truthtables import (
    Cube,
    cofactor0,
    cofactor1,
    cube_cover,
    depends_on,
    expand_table,
    flip_var,
    full_mask,
    isop,
    support,
    var_table,
)


class TestBasics:
    def test_full_mask(self):
        assert full_mask(0) == 1
        assert full_mask(1) == 0b11
        assert full_mask(2) == 0b1111
        with pytest.raises(ValueError):
            full_mask(7)

    def test_var_table(self):
        assert var_table(0, 2) == 0b1010
        assert var_table(1, 2) == 0b1100
        with pytest.raises(ValueError):
            var_table(2, 2)

    def test_cofactors_of_projection(self):
        x0 = var_table(0, 2)
        assert cofactor1(x0, 0, 2) == full_mask(2)
        assert cofactor0(x0, 0, 2) == 0

    def test_depends_on(self):
        x0 = var_table(0, 3)
        assert depends_on(x0, 0, 3)
        assert not depends_on(x0, 1, 3)
        assert support(x0, 3) == [0]

    def test_flip_var_on_projection(self):
        x0 = var_table(0, 2)
        assert flip_var(x0, 0, 2) == (~x0 & full_mask(2))


@given(st.integers(0, 2**16 - 1), st.integers(0, 3))
@settings(max_examples=150, deadline=None)
def test_shannon_expansion(table, var):
    """f = (~x & f0) | (x & f1) for every variable."""
    n = 4
    f0 = cofactor0(table, var, n)
    f1 = cofactor1(table, var, n)
    x = var_table(var, n)
    rebuilt = ((~x & f0) | (x & f1)) & full_mask(n)
    assert rebuilt == table & full_mask(n)


@given(st.integers(0, 2**16 - 1), st.integers(0, 3))
@settings(max_examples=100, deadline=None)
def test_flip_var_involution(table, var):
    n = 4
    assert flip_var(flip_var(table, var, n), var, n) == table & full_mask(n)


@given(st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_expand_table_preserves_semantics(table):
    """Lifting a 3-var table to positions in a 5-var space keeps values."""
    n_old, n_new = 3, 5
    positions = [4, 0, 2]  # var j -> new position positions[j]
    lifted = expand_table(table, positions, n_new)
    for minterm in range(1 << n_new):
        old_minterm = 0
        for j, pos in enumerate(positions):
            if (minterm >> pos) & 1:
                old_minterm |= 1 << j
        assert ((lifted >> minterm) & 1) == ((table >> old_minterm) & 1)


class TestISOP:
    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=200, deadline=None)
    def test_isop_exact_cover(self, table):
        """With lower == upper, the cubes cover exactly the function."""
        n = 4
        cubes = isop(table, table, n)
        assert cube_cover(cubes, n) == table & full_mask(n)

    @given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
    @settings(max_examples=150, deadline=None)
    def test_isop_respects_bounds(self, a, b):
        """lower <= cover <= upper whenever lower is contained in upper."""
        n = 3
        lower = a & b & full_mask(n)
        upper = (a | b) & full_mask(n)
        cubes = isop(lower, upper, n)
        cover = cube_cover(cubes, n)
        assert (lower & ~cover) & full_mask(n) == 0
        assert (cover & ~upper) & full_mask(n) == 0

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=100, deadline=None)
    def test_isop_irredundant(self, table):
        """Dropping any cube leaves some minterm uncovered."""
        n = 4
        cubes = isop(table, table, n)
        if len(cubes) <= 1:
            return
        for i in range(len(cubes)):
            reduced = cubes[:i] + cubes[i + 1 :]
            assert cube_cover(reduced, n) != table & full_mask(n)

    def test_isop_constants(self):
        assert isop(0, 0, 3) == []
        cubes = isop(full_mask(3), full_mask(3), 3)
        assert cube_cover(cubes, 3) == full_mask(3)
        assert cubes == [(0, 0)]  # single tautology cube

    def test_isop_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            isop(0b10, 0b01, 1)

    def test_cube_cover_of_literal(self):
        # cube: x1 (care bit 1, value bit 1) over 2 vars
        assert cube_cover([(0b10, 0b10)], 2) == var_table(1, 2)
