"""Tests for the job abstractions and calibration constants."""

import dataclasses

import pytest

from repro.eda.calibration import Calibration, DEFAULT_CALIBRATION
from repro.eda.job import EDAStage, JobResult
from repro.parallel import WorkProfile
from repro.perf import PerfCounters


class TestEDAStage:
    def test_flow_order(self):
        assert EDAStage.ordered() == [
            EDAStage.SYNTHESIS,
            EDAStage.PLACEMENT,
            EDAStage.ROUTING,
            EDAStage.STA,
        ]

    def test_display_names(self):
        assert EDAStage.SYNTHESIS.display_name == "Synthesis"
        assert EDAStage.STA.display_name == "STA"

    def test_string_roundtrip(self):
        assert EDAStage("routing") == EDAStage.ROUTING


class TestJobResult:
    def _result(self):
        profile = WorkProfile()
        profile.add(80.0, parallelism=1)
        profile.add(120.0, parallelism=100)
        return JobResult(
            stage=EDAStage.PLACEMENT,
            design="d",
            profile=profile,
            counters=PerfCounters(branches=100, branch_misses=10),
        )

    def test_runtime_and_speedup(self):
        r = self._result()
        assert r.runtime(1) == pytest.approx(200.0)
        assert r.speedup(4) > 1.0
        rts = r.runtimes()
        assert set(rts) == {1, 2, 4, 8}
        assert rts[1] > rts[8]

    def test_summary_mentions_counters(self):
        text = self._result().summary()
        assert "Placement" in text
        assert "10.0%" in text  # branch miss rate


class TestCalibration:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CALIBRATION.synth_sec_per_cut_merge = 1.0

    def test_all_constants_positive(self):
        for field in dataclasses.fields(Calibration):
            value = getattr(DEFAULT_CALIBRATION, field.name)
            assert value > 0, field.name

    def test_custom_calibration_scales_runtime(self):
        from repro.eda.synthesis import SynthesisEngine
        from repro.netlist import benchmarks

        aig = benchmarks.build("dec", 0.5)
        base = SynthesisEngine().run(aig)
        doubled = dataclasses.replace(
            DEFAULT_CALIBRATION,
            synth_sec_per_cut_merge=2 * DEFAULT_CALIBRATION.synth_sec_per_cut_merge,
            synth_sec_per_rewrite=2 * DEFAULT_CALIBRATION.synth_sec_per_rewrite,
            synth_sec_per_cover=2 * DEFAULT_CALIBRATION.synth_sec_per_cover,
        )
        slow = SynthesisEngine(calibration=doubled).run(aig)
        assert slow.runtime(1) == pytest.approx(2 * base.runtime(1), rel=1e-6)

    def test_sta_parallel_fraction_in_unit_interval(self):
        assert 0 < DEFAULT_CALIBRATION.sta_parallel_fraction < 1
