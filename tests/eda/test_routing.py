"""Tests for the global router."""

import numpy as np
import pytest

from repro.eda.job import EDAStage
from repro.eda.placement import PlacementEngine
from repro.eda.routing import GlobalRouter, _interleave
from repro.eda.synthesis import SynthesisEngine
from repro.netlist import benchmarks
from repro.perf import make_instrument


@pytest.fixture(scope="module")
def placement():
    net = SynthesisEngine().run(benchmarks.build("router", 0.8)).artifact
    return PlacementEngine(seed=1).run(net).artifact


@pytest.fixture(scope="module")
def routed(placement):
    return GlobalRouter(seed=1).run(placement)


class TestPaths:
    def test_paths_connect_endpoints(self, routed):
        for seg in routed.artifact.segments:
            if not seg.path:
                continue
            assert seg.path[0] == seg.source
            assert seg.path[-1] == seg.target

    def test_paths_are_contiguous_manhattan(self, routed):
        for seg in routed.artifact.segments:
            for a, b in zip(seg.path, seg.path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1, seg.net

    def test_paths_within_grid(self, routed):
        r = routed.artifact
        for seg in r.segments:
            for x, y in seg.path:
                assert 0 <= x < r.grid_width
                assert 0 <= y < r.grid_height

    def test_most_segments_routed(self, routed):
        r = routed.artifact
        routed_count = sum(1 for s in r.segments if s.path)
        assert routed_count >= 0.95 * len(r.segments)

    def test_wirelength_at_least_manhattan(self, routed):
        for seg in routed.artifact.segments:
            if seg.path:
                manhattan = abs(seg.source[0] - seg.target[0]) + abs(
                    seg.source[1] - seg.target[1]
                )
                assert seg.wirelength >= manhattan


class TestEngineBehavior:
    def test_stage_and_metrics(self, routed):
        assert routed.stage == EDAStage.ROUTING
        m = routed.metrics
        assert m["segments"] > 0
        assert m["expansions"] > 0
        assert m["wirelength"] > 0
        assert m["iterations"] >= 1

    def test_runtime_decreases_with_vcpus(self, routed):
        rts = [routed.runtime(k) for k in (1, 2, 4, 8)]
        assert rts[0] > rts[1] > rts[2] >= rts[3] * 0.95

    def test_determinism(self, placement):
        r1 = GlobalRouter(seed=3).run(placement)
        r2 = GlobalRouter(seed=3).run(placement)
        assert r1.metrics == r2.metrics

    def test_capacity_override(self, placement):
        tight = GlobalRouter(capacity=1, max_iterations=2).run(placement)
        loose = GlobalRouter(capacity=64, max_iterations=2).run(placement)
        assert loose.metrics["overflow"] <= tight.metrics["overflow"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            GlobalRouter(capacity=0)

    def test_counters_routing_signature(self, placement):
        """Routing: high branch misses, no FP (paper Figure 2)."""
        inst = make_instrument(1, sample_rate=2)
        result = GlobalRouter(seed=1).run(placement, instrument=inst)
        c = result.counters
        assert c.branch_miss_rate > 0.04
        assert c.fp_avx_ops == 0
        assert c.mem_accesses > 0


class TestScalingShape:
    def test_larger_designs_scale_better(self):
        """The Figure 3 property: speedup grows with design size."""
        syn = SynthesisEngine()
        pl = PlacementEngine(seed=0)
        rt = GlobalRouter(seed=0)
        small = rt.run(pl.run(syn.run(benchmarks.build("dynamic_node", 1.0)).artifact).artifact)
        large = rt.run(pl.run(syn.run(benchmarks.build("sparc_core", 1.0)).artifact).artifact)
        assert large.profile.speedup(8) > small.profile.speedup(8) + 0.5

    def test_small_design_plateaus(self):
        """Small designs: speedup at 8 vCPUs is about the same as at 4."""
        syn = SynthesisEngine()
        pl = PlacementEngine(seed=0)
        rt = GlobalRouter(seed=0)
        res = rt.run(pl.run(syn.run(benchmarks.build("dynamic_node", 1.0)).artifact).artifact)
        s4 = res.profile.speedup(4)
        s8 = res.profile.speedup(8)
        assert abs(s8 - s4) < 0.5


class TestInterleave:
    def test_single_way_concatenates(self):
        streams = [[1, 2], [3, 4]]
        assert _interleave(streams, 1) == [1, 2, 3, 4]

    def test_multi_way_mixes(self):
        streams = [list(range(0, 64)), list(range(100, 164))]
        mixed = _interleave(streams, 2)
        assert sorted(mixed) == sorted(streams[0] + streams[1])
        # the first chunk of stream 2 appears before the tail of stream 1
        assert mixed.index(100) < mixed.index(63)

    def test_empty_streams(self):
        assert _interleave([], 4) == []
