"""Tests for the synthesis engine: passes, mapping, equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eda.job import EDAStage
from repro.eda.synthesis import (
    DEFAULT_RECIPE,
    SynthesisEngine,
    TechnologyMapper,
    apply_recipe,
    balance,
    recipe_variants,
    restructure,
)
from repro.netlist import benchmarks
from repro.netlist.aig import AIG, lit_not
from repro.perf import make_instrument

DESIGNS = ["adder", "router", "ctrl", "voter", "int2float"]


@pytest.fixture(scope="module")
def engine():
    return SynthesisEngine()


class TestBalance:
    @pytest.mark.parametrize("name", DESIGNS)
    def test_balance_preserves_function(self, name):
        aig = benchmarks.build(name, 0.5)
        balanced = balance(aig)
        assert (
            balanced.random_simulation_signature(64, 3)
            == aig.random_simulation_signature(64, 3)
        )

    def test_balance_reduces_chain_depth(self):
        """A linear AND chain becomes a logarithmic tree."""
        aig = AIG()
        ins = [aig.add_input() for _ in range(16)]
        acc = ins[0]
        for x in ins[1:]:
            acc = aig.add_and(acc, x)
        aig.add_output(acc)
        assert aig.depth() == 15
        balanced = balance(aig)
        assert balanced.depth() == 4  # ceil(log2(16))

    def test_balance_keeps_interface(self):
        aig = benchmarks.build("dec", 0.5)
        balanced = balance(aig)
        assert balanced.input_names == aig.input_names
        assert balanced.output_names == aig.output_names


class TestRestructure:
    @pytest.mark.parametrize("name", DESIGNS)
    def test_restructure_preserves_function(self, name):
        aig = benchmarks.build(name, 0.5)
        for seed in (0, 1):
            new = restructure(aig, seed=seed)
            assert (
                new.random_simulation_signature(64, 3)
                == aig.random_simulation_signature(64, 3)
            )

    def test_keep_only_improved_never_grows(self):
        aig = benchmarks.build("ctrl", 0.6)
        new = restructure(aig, seed=3, keep_only_improved=True)
        assert new.num_ands <= aig.num_ands

    def test_variant_mode_changes_structure(self):
        aig = benchmarks.build("mem_ctrl", 0.3)
        v1 = restructure(aig, seed=1, keep_only_improved=False)
        v2 = restructure(aig, seed=2, keep_only_improved=False)
        # same function, (almost surely) different structure
        assert v1.random_simulation_signature(64, 5) == v2.random_simulation_signature(64, 5)
        assert v1.num_ands != v2.num_ands or v1.depth() != v2.depth()

    def test_recipe_tokens(self):
        aig = benchmarks.build("router", 0.4)
        out = apply_recipe(aig, ("b", "rw", "rf", "shuffle"), seed=1)
        assert (
            out.random_simulation_signature(64, 2)
            == aig.random_simulation_signature(64, 2)
        )
        with pytest.raises(ValueError):
            apply_recipe(aig, ("unknown_pass",))

    def test_recipe_variants_unique(self):
        variants = recipe_variants(25, seed=0)
        assert len(variants) == 25
        assert len(set(variants)) == 25


class TestMapping:
    @pytest.mark.parametrize("name", DESIGNS)
    def test_mapped_netlist_is_equivalent(self, name):
        aig = benchmarks.build(name, 0.5)
        netlist, _stats = TechnologyMapper().map(aig)
        netlist.validate()
        assert (
            netlist.random_simulation_signature(64, 3)
            == aig.random_simulation_signature(64, 3)
        )

    def test_constant_output_mapped(self):
        aig = AIG("const")
        a = aig.add_input("a")
        aig.add_output(aig.add_and(a, lit_not(a)), "zero")
        aig.add_output(lit_not(aig.add_and(a, lit_not(a))), "one")
        aig.add_output(a, "pass")
        netlist, _ = TechnologyMapper().map(aig)
        out = netlist.simulate({"a": 0b01}, width=2)
        assert out["zero"] == 0
        assert out["one"] == 0b11
        assert out["pass"] == 0b01

    def test_mapping_stats_populated(self):
        aig = benchmarks.build("voter", 0.5)
        _netlist, stats = TechnologyMapper().map(aig)
        assert stats.cut_merges > 0
        assert stats.match_lookups > 0
        assert stats.covered_nodes > 0

    def test_mapped_area_reasonable(self):
        """Mapping should not blow the design up into 1 cell per AND."""
        aig = benchmarks.build("adder", 0.5)
        netlist, _ = TechnologyMapper().map(aig)
        assert netlist.num_instances < aig.num_ands


class TestEngine:
    def test_job_result_fields(self, engine):
        aig = benchmarks.build("ctrl", 0.5)
        result = engine.run(aig)
        assert result.stage == EDAStage.SYNTHESIS
        assert result.design == aig.name
        assert result.runtime(1) > result.runtime(8) > 0
        assert result.metrics["instances"] > 0
        assert result.artifact.num_instances == result.metrics["instances"]

    def test_speedup_in_paper_regime(self, engine):
        """Synthesis scales poorly (paper: ~1.8x at 8 vCPUs)."""
        aig = benchmarks.build("sparc_core", 0.8)
        result = engine.run(aig)
        assert 1.3 <= result.speedup(8) <= 2.6

    def test_counters_populated_when_instrumented(self, engine):
        aig = benchmarks.build("router", 0.5)
        inst = make_instrument(1)
        result = engine.run(aig, instrument=inst)
        c = result.counters
        assert c.instructions > 0
        assert c.branches > 0
        assert c.mem_accesses > 0
        assert c.fp_avx_ops == 0  # synthesis is not FP-heavy

    def test_determinism(self, engine):
        aig = benchmarks.build("voter", 0.5)
        r1 = engine.run(aig, seed=5)
        r2 = engine.run(aig, seed=5)
        assert r1.runtime(1) == r2.runtime(1)
        assert r1.metrics == r2.metrics

    def test_longer_recipe_costs_more_runtime(self, engine):
        aig = benchmarks.build("mem_ctrl", 0.3)
        r1 = engine.run(aig, recipe=("balance",))
        r2 = engine.run(aig, recipe=DEFAULT_RECIPE)
        assert r2.runtime(1) > r1.runtime(1)
        # area-recovery passes never grow the graph
        assert r2.metrics["optimized_ands"] <= r1.metrics["optimized_ands"]
