"""Integration tests for the four-stage flow runner."""

import pytest

from repro.eda import EDAStage, FlowRunner
from repro.netlist import benchmarks
from repro.perf import make_instrument


@pytest.fixture(scope="module")
def flow_result():
    return FlowRunner().run(benchmarks.build("router", 0.8))


class TestFlow:
    def test_all_stages_present(self, flow_result):
        assert set(flow_result.stages) == set(EDAStage.ordered())

    def test_artifacts_chain(self, flow_result):
        netlist = flow_result[EDAStage.SYNTHESIS].artifact
        placement = flow_result[EDAStage.PLACEMENT].artifact
        assert placement.netlist is netlist
        routing = flow_result[EDAStage.ROUTING].artifact
        assert routing.num_segments > 0
        timing = flow_result[EDAStage.STA].artifact
        assert timing.max_arrival > 0

    def test_runtimes_positive_and_monotone(self, flow_result):
        for vcpus in (1, 2, 4, 8):
            rts = flow_result.runtimes(vcpus)
            assert all(t > 0 for t in rts.values())
        assert flow_result.total_runtime(1) > flow_result.total_runtime(8)

    def test_per_stage_speedup_ordering(self):
        """Figure 2-d ordering: routing scales best, synthesis worst."""
        fr = FlowRunner().run(benchmarks.build("sparc_core", 1.0))
        spd = {s: r.profile.speedup(8) for s, r in fr.stages.items()}
        assert spd[EDAStage.ROUTING] > spd[EDAStage.PLACEMENT]
        assert spd[EDAStage.ROUTING] > spd[EDAStage.STA]
        assert spd[EDAStage.PLACEMENT] > spd[EDAStage.SYNTHESIS]

    def test_instrumented_flow_counters(self):
        instruments = {s: make_instrument(1, sample_rate=4) for s in EDAStage}
        fr = FlowRunner().run(benchmarks.build("router", 0.6), instruments=instruments)
        for stage, result in fr.stages.items():
            assert result.counters.instructions > 0, stage

    def test_summary_contains_stages(self, flow_result):
        text = flow_result.summary()
        for stage in EDAStage.ordered():
            assert stage.display_name in text

    def test_flow_determinism(self):
        aig = benchmarks.build("voter", 0.6)
        r1 = FlowRunner(seed=2).run(aig)
        r2 = FlowRunner(seed=2).run(aig)
        assert r1.total_runtime(1) == r2.total_runtime(1)
