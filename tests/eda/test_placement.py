"""Tests for the analytical placement engine."""

import numpy as np
import pytest

from repro.eda.job import EDAStage
from repro.eda.placement import PlacementEngine
from repro.eda.synthesis import SynthesisEngine
from repro.netlist import benchmarks
from repro.perf import make_instrument


@pytest.fixture(scope="module")
def netlist():
    return SynthesisEngine().run(benchmarks.build("router", 0.8)).artifact


@pytest.fixture(scope="module")
def placed(netlist):
    return PlacementEngine(seed=1).run(netlist)


class TestLegality:
    def test_all_cells_placed(self, netlist, placed):
        placement = placed.artifact
        assert set(placement.positions) == set(netlist.instances)

    def test_cells_inside_die(self, placed):
        placement = placed.artifact
        for name, (x, y) in placement.positions.items():
            inst = placement.netlist.instances[name]
            half = inst.cell.area / 2.0
            assert -1e-6 <= x - half and x + half <= placement.die_width * 1.05, name
            assert 0 <= y <= placement.die_height

    def test_cells_on_rows(self, placed):
        placement = placed.artifact
        ys = {round(pos[1], 6) for pos in placement.positions.values()}
        # every distinct y must be a row centre (uniform pitch)
        rows = sorted(ys)
        if len(rows) > 1:
            pitches = np.diff(rows)
            assert np.allclose(pitches % np.min(pitches), 0, atol=1e-6) or np.all(
                pitches >= np.min(pitches) - 1e-9
            )

    def test_no_overlap_within_row(self, placed):
        placement = placed.artifact
        by_row = {}
        for name, (x, y) in placement.positions.items():
            by_row.setdefault(round(y, 6), []).append((x, name))
        for row, cells in by_row.items():
            cells.sort()
            for (x1, n1), (x2, n2) in zip(cells, cells[1:]):
                w1 = placement.netlist.instances[n1].cell.area
                w2 = placement.netlist.instances[n2].cell.area
                assert x2 - x1 >= (w1 + w2) / 2.0 - 1e-6, (row, n1, n2)


class TestQuality:
    def test_hpwl_beats_random_placement(self, netlist, placed):
        """The analytical placer should beat uniform-random placement."""
        placement = placed.artifact
        rng = np.random.default_rng(0)
        names = list(placement.positions)
        random_hpwl = []
        for _ in range(3):
            shuffled = dict(
                zip(
                    names,
                    [
                        (
                            float(rng.uniform(0, placement.die_width)),
                            float(rng.uniform(0, placement.die_height)),
                        )
                        for _ in names
                    ],
                )
            )
            original = placement.positions
            placement.positions = shuffled
            random_hpwl.append(placement.total_hpwl())
            placement.positions = original
        assert placement.total_hpwl() < np.mean(random_hpwl)

    def test_hpwl_metric_matches_artifact(self, placed):
        assert placed.metrics["hpwl"] == pytest.approx(placed.artifact.total_hpwl())

    def test_net_hpwl_nonnegative(self, placed):
        placement = placed.artifact
        for net in placement.netlist.nets:
            assert placement.net_hpwl(net) >= 0


class TestEngineBehavior:
    def test_stage_and_runtimes(self, placed):
        assert placed.stage == EDAStage.PLACEMENT
        runtimes = placed.runtimes()
        assert runtimes[1] > runtimes[2] > runtimes[4] > runtimes[8] > 0

    def test_speedup_in_paper_regime(self):
        net = SynthesisEngine().run(benchmarks.build("sparc_core", 1.0)).artifact
        result = PlacementEngine().run(net)
        assert 1.7 <= result.profile.speedup(8) <= 3.0  # paper: 2.32

    def test_determinism(self, netlist):
        r1 = PlacementEngine(seed=7).run(netlist)
        r2 = PlacementEngine(seed=7).run(netlist)
        assert r1.metrics["hpwl"] == r2.metrics["hpwl"]
        assert r1.artifact.positions == r2.artifact.positions

    def test_seed_changes_placement(self, netlist):
        r1 = PlacementEngine(seed=1).run(netlist)
        r2 = PlacementEngine(seed=2).run(netlist)
        assert r1.artifact.positions != r2.artifact.positions

    def test_counters_show_avx_and_cache_traffic(self, netlist):
        inst = make_instrument(1, sample_rate=2)
        result = PlacementEngine(seed=1).run(netlist, instrument=inst)
        c = result.counters
        assert c.fp_avx_ops > 0
        assert c.avx_share > 0.05  # placement is the AVX-heavy stage
        assert c.mem_accesses > 0
        assert c.branch_miss_rate < 0.10  # few data-dependent branches

    def test_empty_netlist_rejected(self):
        from repro.netlist import Netlist, nangate_lite

        empty = Netlist("empty", nangate_lite())
        with pytest.raises(ValueError):
            PlacementEngine().run(empty)

    def test_bad_density_rejected(self):
        with pytest.raises(ValueError):
            PlacementEngine(target_density=0.01)

    def test_port_positions_on_boundary(self, placed):
        placement = placed.artifact
        for name in placement.netlist.input_ports:
            x, _y = placement.port_positions[name]
            assert x == 0.0
        for name in placement.netlist.output_ports:
            x, _y = placement.port_positions[name]
            assert x == pytest.approx(placement.die_width)
