"""Tests for priority-cut enumeration."""

import pytest

from repro.eda.cuts import enumerate_cuts
from repro.netlist import benchmarks
from repro.netlist.aig import AIG, lit_node
from repro.perf import make_instrument


def _cut_function_by_simulation(aig, node, cut):
    """Recompute a cut's truth table by simulating the cone."""
    table = 0
    for assignment in range(1 << cut.size):
        # Assign leaf values; everything else follows by simulation of the
        # whole AIG with leaves forced (works because leaves dominate node).
        values = {0: False}
        for j, leaf in enumerate(cut.leaves):
            values[leaf] = bool((assignment >> j) & 1)

        def node_value(n):
            if n in values:
                return values[n]
            if aig.is_input(n):
                # Inputs outside the cut cannot influence the node if the
                # cut is valid, so any value works; use False.
                values[n] = False
                return False
            a, b = aig.fanins(n)
            va = node_value(lit_node(a)) ^ bool(a & 1)
            vb = node_value(lit_node(b)) ^ bool(b & 1)
            values[n] = va and vb
            return values[n]

        if node_value(node):
            table |= 1 << assignment
    return table


@pytest.fixture(scope="module")
def small_aig():
    return benchmarks.build("ctrl", 0.3)


class TestEnumeration:
    def test_every_node_has_trivial_cut(self, small_aig):
        cuts, _stats = enumerate_cuts(small_aig, k=4, cap=4)
        for node in range(small_aig.size):
            assert any(c.leaves == (node,) for c in cuts[node])

    def test_cut_size_bounded(self, small_aig):
        for k in (2, 3, 4):
            cuts, _ = enumerate_cuts(small_aig, k=k, cap=4)
            for node, node_cuts in cuts.items():
                for c in node_cuts:
                    assert c.size <= max(k, 1)

    def test_cap_respected(self, small_aig):
        cuts, _ = enumerate_cuts(small_aig, k=4, cap=3)
        for node_cuts in cuts.values():
            assert len(node_cuts) <= 3 + 1  # plus the trivial cut

    def test_k_out_of_range(self, small_aig):
        with pytest.raises(ValueError):
            enumerate_cuts(small_aig, k=1)
        with pytest.raises(ValueError):
            enumerate_cuts(small_aig, k=7)

    def test_stats_accounting(self, small_aig):
        _cuts, stats = enumerate_cuts(small_aig, k=4, cap=4)
        assert stats.merges > 0
        assert stats.kept + stats.pruned <= stats.merges + stats.kept  # sanity
        assert stats.kept > 0

    def test_instrumented_run_records_events(self, small_aig):
        inst = make_instrument(1)
        enumerate_cuts(small_aig, k=4, cap=4, instrument=inst)
        assert inst.counters.mem_accesses > 0
        assert inst.counters.branches > 0


class TestCutFunctions:
    def test_cut_tables_match_cone_simulation(self):
        """Each cut's truth table equals the function of its cone."""
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        c = aig.add_input()
        x = aig.add_and(a, b)
        y = aig.add_or(x, c)
        z = aig.add_xor(x, y)
        aig.add_output(z)
        cuts, _ = enumerate_cuts(aig, k=4, cap=6)
        checked = 0
        for node in aig.and_nodes():
            for cut in cuts[node]:
                if cut.size <= 1:
                    continue
                expected = _cut_function_by_simulation(aig, node, cut)
                assert cut.table == expected, (node, cut)
                checked += 1
        assert checked > 0

    def test_cut_tables_on_benchmark(self, small_aig):
        cuts, _ = enumerate_cuts(small_aig, k=3, cap=3)
        # spot-check a sample of nodes
        nodes = [n for n in small_aig.and_nodes()][::17]
        for node in nodes:
            for cut in cuts[node]:
                if cut.size <= 1 or cut.size > 3:
                    continue
                expected = _cut_function_by_simulation(small_aig, node, cut)
                assert cut.table == expected
