"""Tests for the static timing analysis engine."""

import math

import pytest

from repro.eda.job import EDAStage
from repro.eda.placement import Placement, PlacementEngine
from repro.eda.sta import STAEngine, WIRE_DELAY_PER_UM
from repro.eda.synthesis import SynthesisEngine
from repro.netlist import Netlist, benchmarks, nangate_lite
from repro.perf import make_instrument


def chain_placement(n_inverters=3, spacing=2.0):
    """A hand-placed inverter chain with known geometry."""
    lib = nangate_lite()
    net = Netlist("chain", lib)
    net.add_input_port("a")
    prev = "a"
    for i in range(n_inverters):
        net.add_instance(f"g{i}", "INV_X1", {"A": prev, "Y": f"n{i}"})
        prev = f"n{i}"
    net.add_output_port("z", prev)
    positions = {f"g{i}": ((i + 1) * spacing, 0.5) for i in range(n_inverters)}
    placement = Placement(
        netlist=net,
        positions=positions,
        port_positions={"a": (0.0, 0.5), "z": ((n_inverters + 1) * spacing, 0.5)},
        die_width=(n_inverters + 1) * spacing,
        die_height=1.0,
    )
    return placement


class TestManualTiming:
    def test_inverter_chain_arrival(self):
        """Arrival along a hand-placed chain matches the closed form."""
        placement = chain_placement(n_inverters=3, spacing=2.0)
        lib = placement.netlist.library
        inv = lib.cell("INV_X1")
        result = STAEngine(clock_margin=0.1).run(placement)
        report = result.artifact

        # Each net spans exactly `spacing` microns horizontally.
        wire_delay = WIRE_DELAY_PER_UM * 2.0
        load_internal = inv.input_cap + lib.wire_cap_per_um * 2.0
        expected = 0.0
        for i in range(3):
            load = load_internal if i < 2 else lib.wire_cap_per_um * 2.0
            expected += wire_delay + inv.delay(load)
        assert report.arrival["g2"] == pytest.approx(expected)
        assert report.max_arrival == pytest.approx(expected + wire_delay)

    def test_positive_margin_meets_timing(self):
        placement = chain_placement()
        report = STAEngine(clock_margin=0.1).run(placement).artifact
        assert report.met
        assert report.wns >= 0
        assert report.tns == 0

    def test_negative_margin_creates_violations(self):
        placement = chain_placement()
        report = STAEngine(clock_margin=-0.2).run(placement).artifact
        assert not report.met
        assert report.wns < 0
        assert report.tns < 0

    def test_critical_path_walks_the_chain(self):
        placement = chain_placement(n_inverters=3)
        report = STAEngine().run(placement).artifact
        assert report.critical_path[-1] == "z"
        assert "g2" in report.critical_path
        assert "g0" in report.critical_path

    def test_slack_consistency(self):
        """slack = required - arrival, and WNS is the minimum slack."""
        placement = chain_placement()
        report = STAEngine(clock_margin=0.05).run(placement).artifact
        finite = [s for s in report.slack.values() if math.isfinite(s)]
        assert report.wns == pytest.approx(min(finite))


class TestOnRealDesign:
    @pytest.fixture(scope="class")
    def result(self):
        net = SynthesisEngine().run(benchmarks.build("ctrl", 0.8)).artifact
        placement = PlacementEngine(seed=0).run(net).artifact
        return STAEngine().run(placement)

    def test_stage_and_arcs(self, result):
        assert result.stage == EDAStage.STA
        # forward + backward pass: every instance input visited twice
        net = result.artifact
        assert result.metrics["arcs"] > 0

    def test_all_instances_have_arrival(self, result):
        report = result.artifact
        placement_netlist = None  # arrival covers ports + instances
        assert len(report.arrival) > 0
        assert all(math.isfinite(v) for v in report.arrival.values())

    def test_clock_period_derivation(self, result):
        report = result.artifact
        assert report.clock_period == pytest.approx(1.1 * report.max_arrival)

    def test_runtime_scaling_regime(self, result):
        """STA scales modestly (paper: ~2.2x at 8 vCPUs)."""
        assert 1.8 <= result.profile.speedup(8) <= 2.7

    def test_counters_sta_signature(self):
        """STA: AVX present (second to placement), low cache misses.

        Uses a characterization-sized design — on tiny designs the stream
        is all compulsory misses and the rate is meaningless.
        """
        net = SynthesisEngine().run(benchmarks.build("sparc_core", 1.0)).artifact
        placement = PlacementEngine(seed=0).run(net).artifact
        inst = make_instrument(1, sample_rate=1)
        result = STAEngine().run(placement, instrument=inst)
        c = result.counters
        assert c.fp_avx_ops > 0
        assert 0.02 < c.avx_share < 0.25
        assert c.cache_miss_rate < 0.40


class TestHoldAnalysis:
    def test_min_arrival_leq_max(self):
        placement = chain_placement(n_inverters=4)
        report = STAEngine().run(placement).artifact
        for key, t_min in report.min_arrival.items():
            assert t_min <= report.arrival[key] + 1e-9

    def test_chain_min_equals_max(self):
        """A single path has identical min and max arrivals."""
        placement = chain_placement(n_inverters=3)
        report = STAEngine().run(placement).artifact
        assert report.min_arrival["g2"] == pytest.approx(report.arrival["g2"])

    def test_hold_violation_with_large_requirement(self):
        placement = chain_placement(n_inverters=2)
        ok = STAEngine(hold_time=0.0).run(placement).artifact
        assert ok.hold_met
        bad = STAEngine(hold_time=1e9).run(placement).artifact
        assert not bad.hold_met
        assert bad.hold_wns < 0

    def test_reconvergent_paths_min_lt_max(self):
        """A short bypass path gives an earlier min arrival than max."""
        lib = nangate_lite()
        net = Netlist("reconv", lib)
        net.add_input_port("a")
        net.add_input_port("b")
        net.add_instance("slow1", "INV_X1", {"A": "a", "Y": "n1"})
        net.add_instance("slow2", "INV_X1", {"A": "n1", "Y": "n2"})
        net.add_instance("join", "AND2_X1", {"A": "n2", "B": "b", "Y": "o"})
        net.add_output_port("z", "o")
        positions = {"slow1": (1.0, 0.5), "slow2": (2.0, 0.5), "join": (3.0, 0.5)}
        placement = Placement(
            netlist=net,
            positions=positions,
            port_positions={"a": (0.0, 0.5), "b": (0.0, 0.5), "z": (4.0, 0.5)},
            die_width=4.0,
            die_height=1.0,
        )
        report = STAEngine().run(placement).artifact
        assert report.min_arrival["join"] < report.arrival["join"]
