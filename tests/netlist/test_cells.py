"""Tests for the liberty-lite cell library and boolean matching."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.cells import (
    Library,
    nangate_lite,
    negate_truth_table,
    permute_truth_table,
    truth_table_ones,
)


@pytest.fixture(scope="module")
def lib():
    return nangate_lite()


class TestTruthTableHelpers:
    def test_ones_count(self):
        assert truth_table_ones(0b1000, 2) == 1
        assert truth_table_ones(0b1111, 2) == 4

    def test_negate_is_involution(self):
        for n in (1, 2, 3):
            for t in range(1 << (1 << n)):
                assert negate_truth_table(negate_truth_table(t, n), n) == t

    def test_permute_identity(self):
        assert permute_truth_table(0b0110, 2, (0, 1)) == 0b0110

    def test_permute_swap_two_vars(self):
        # f(a, b) = a & ~b has tt 0b0010; swapped -> b & ~a = 0b0100
        assert permute_truth_table(0b0010, 2, (1, 0)) == 0b0100

    @given(st.integers(min_value=0, max_value=255), st.permutations([0, 1, 2]))
    @settings(max_examples=100, deadline=None)
    def test_permute_preserves_semantics(self, table, perm):
        """g(y) = f(x) with x_j = y_{perm[j]} for every assignment."""
        n = 3
        g = permute_truth_table(table, n, perm)
        for x in range(1 << n):
            y = 0
            for j in range(n):
                if (x >> j) & 1:
                    y |= 1 << perm[j]
            assert ((table >> x) & 1) == ((g >> y) & 1)


class TestCellFunctions:
    REFERENCES = {
        "INV_X1": lambda a: not a,
        "BUF_X1": lambda a: a,
        "NAND2_X1": lambda a, b: not (a and b),
        "NOR2_X1": lambda a, b: not (a or b),
        "AND2_X1": lambda a, b: a and b,
        "OR2_X1": lambda a, b: a or b,
        "XOR2_X1": lambda a, b: a != b,
        "XNOR2_X1": lambda a, b: a == b,
        "NAND3_X1": lambda a, b, c: not (a and b and c),
        "NOR3_X1": lambda a, b, c: not (a or b or c),
        "AND3_X1": lambda a, b, c: a and b and c,
        "OR3_X1": lambda a, b, c: a or b or c,
        "MAJ3_X1": lambda a, b, c: (a + b + c) >= 2,
        "XOR3_X1": lambda a, b, c: (a + b + c) % 2 == 1,
        "MUX2_X1": lambda a, b, s: b if s else a,
        "AOI21_X1": lambda a, b, c: not ((a and b) or c),
        "OAI21_X1": lambda a, b, c: not ((a or b) and c),
        "AOI22_X1": lambda a, b, c, d: not ((a and b) or (c and d)),
        "OAI22_X1": lambda a, b, c, d: not ((a or b) and (c or d)),
    }

    def test_every_cell_has_reference(self, lib):
        assert set(lib.cell_names) == set(self.REFERENCES)

    @pytest.mark.parametrize("name", sorted(REFERENCES))
    def test_cell_truth_table(self, lib, name):
        cell = lib.cell(name)
        ref = self.REFERENCES[name]
        for pattern in range(1 << cell.num_inputs):
            values = [bool((pattern >> j) & 1) for j in range(cell.num_inputs)]
            assert cell.evaluate(values) == bool(ref(*values)), (name, values)

    def test_evaluate_arity_check(self, lib):
        with pytest.raises(ValueError):
            lib.cell("AND2_X1").evaluate([True])

    def test_delay_monotone_in_load(self, lib):
        cell = lib.cell("NAND2_X1")
        assert cell.delay(10.0) > cell.delay(1.0) > 0

    def test_delay_clamps_negative_load(self, lib):
        cell = lib.cell("INV_X1")
        assert cell.delay(-5.0) == cell.intrinsic_delay


class TestMatching:
    def test_match_and2(self, lib):
        match = lib.best_match(0b1000, 2)
        assert match is not None
        cell, perm, inverted = match
        # NAND2 (smaller) with output inversion, or AND2 directly.
        assert (cell.name, inverted) in {("NAND2_X1", True), ("AND2_X1", False)}

    def test_match_respects_permutation_semantics(self, lib):
        """For every match of every random table, wiring pin j to var
        perm[j] must implement the table (or its complement)."""
        import random

        rng = random.Random(0)
        for _ in range(200):
            n = rng.choice([2, 3])
            table = rng.getrandbits(1 << n)
            for cell, perm, inverted in lib.matches(table, n):
                for x in range(1 << n):
                    pin_values = [
                        bool((x >> perm[j]) & 1) for j in range(cell.num_inputs)
                    ]
                    got = cell.evaluate(pin_values)
                    want = bool((table >> x) & 1)
                    if inverted:
                        want = not want
                    assert got == want, (cell.name, perm, inverted, x)

    def test_best_match_prefers_uninverted(self, lib):
        # XOR2 exists directly; XNOR2 too: neither should need inversion.
        cell, _perm, inverted = lib.best_match(0b0110, 2)
        assert cell.name == "XOR2_X1"
        assert not inverted

    def test_no_match_returns_none(self, lib):
        # A 4-input function not in the library (parity of 4).
        parity4 = 0
        for x in range(16):
            if bin(x).count("1") % 2:
                parity4 |= 1 << x
        assert lib.best_match(parity4, 4) is None

    def test_duplicate_cell_names_rejected(self, lib):
        cell = lib.cell("INV_X1")
        with pytest.raises(ValueError):
            Library("dup", [cell, cell])
