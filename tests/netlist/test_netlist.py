"""Tests for the gate-level netlist container."""

import pytest

from repro.netlist.cells import nangate_lite
from repro.netlist.netlist import Netlist, NetlistError


@pytest.fixture()
def lib():
    return nangate_lite()


def build_half_adder(lib):
    """s = a ^ b, c = a & b."""
    net = Netlist("half_adder", lib)
    net.add_input_port("a")
    net.add_input_port("b")
    net.add_instance("gx", "XOR2_X1", {"A": "a", "B": "b", "Y": "s"})
    net.add_instance("ga", "AND2_X1", {"A": "a", "B": "b", "Y": "c"})
    net.add_output_port("sum", "s")
    net.add_output_port("carry", "c")
    return net


class TestConstruction:
    def test_half_adder_builds(self, lib):
        net = build_half_adder(lib)
        net.validate()
        assert net.num_instances == 2
        assert net.input_ports == ["a", "b"]
        assert net.output_ports == ["sum", "carry"]

    def test_duplicate_instance_rejected(self, lib):
        net = build_half_adder(lib)
        with pytest.raises(NetlistError):
            net.add_instance("gx", "INV_X1", {"A": "a", "Y": "zz"})

    def test_wrong_pins_rejected(self, lib):
        net = Netlist("bad", lib)
        net.add_input_port("a")
        with pytest.raises(NetlistError):
            net.add_instance("g", "AND2_X1", {"A": "a", "Y": "y"})

    def test_double_driver_rejected(self, lib):
        net = Netlist("bad", lib)
        net.add_input_port("a")
        net.add_instance("g1", "INV_X1", {"A": "a", "Y": "y"})
        with pytest.raises(NetlistError):
            net.add_instance("g2", "INV_X1", {"A": "a", "Y": "y"})

    def test_undriven_net_fails_validation(self, lib):
        net = Netlist("bad", lib)
        net.add_input_port("a")
        net.add_instance("g", "AND2_X1", {"A": "a", "B": "floating", "Y": "y"})
        with pytest.raises(NetlistError):
            net.validate()

    def test_duplicate_input_port_rejected(self, lib):
        net = Netlist("bad", lib)
        net.add_input_port("a")
        with pytest.raises(NetlistError):
            net.add_input_port("a")


class TestTopology:
    def test_topological_order_respects_dependencies(self, lib):
        net = Netlist("chain", lib)
        net.add_input_port("a")
        net.add_instance("g1", "INV_X1", {"A": "a", "Y": "n1"})
        net.add_instance("g3", "INV_X1", {"A": "n2", "Y": "n3"})
        net.add_instance("g2", "INV_X1", {"A": "n1", "Y": "n2"})
        net.add_output_port("z", "n3")
        order = net.topological_order()
        assert order.index("g1") < order.index("g2") < order.index("g3")

    def test_cycle_detected(self, lib):
        net = Netlist("cyc", lib)
        net.add_input_port("a")
        net.add_instance("g1", "AND2_X1", {"A": "a", "B": "n2", "Y": "n1"})
        net.add_instance("g2", "INV_X1", {"A": "n1", "Y": "n2"})
        with pytest.raises(NetlistError):
            net.topological_order()

    def test_levels_and_depth(self, lib):
        net = Netlist("chain", lib)
        net.add_input_port("a")
        prev = "a"
        for i in range(4):
            net.add_instance(f"g{i}", "INV_X1", {"A": prev, "Y": f"n{i}"})
            prev = f"n{i}"
        net.add_output_port("z", prev)
        assert net.depth() == 4
        levels = net.levels()
        assert levels["g0"] == 1 and levels["g3"] == 4

    def test_stats(self, lib):
        net = build_half_adder(lib)
        stats = net.stats()
        assert stats.num_instances == 2
        assert stats.num_inputs == 2
        assert stats.num_outputs == 2
        assert stats.total_area == pytest.approx(
            lib.cell("XOR2_X1").area + lib.cell("AND2_X1").area
        )
        assert stats.depth == 1
        assert stats.max_fanout == 2  # a and b each drive two pins


class TestSimulation:
    def test_half_adder_function(self, lib):
        net = build_half_adder(lib)
        for a in (0, 1):
            for b in (0, 1):
                out = net.simulate({"a": a, "b": b}, width=1)
                assert out["sum"] == (a ^ b)
                assert out["carry"] == (a & b)

    def test_bit_parallel_simulation(self, lib):
        net = build_half_adder(lib)
        out = net.simulate({"a": 0b1100, "b": 0b1010}, width=4)
        assert out["sum"] == 0b0110
        assert out["carry"] == 0b1000

    def test_missing_stimulus(self, lib):
        net = build_half_adder(lib)
        with pytest.raises(NetlistError):
            net.simulate({"a": 1})

    def test_signature_matches_simulation(self, lib):
        net = build_half_adder(lib)
        sig = net.random_simulation_signature(16, seed=2)
        assert len(sig) == 2
        sig2 = net.random_simulation_signature(16, seed=2)
        assert sig == sig2

    def test_fanout_histogram(self, lib):
        net = build_half_adder(lib)
        hist = net.fanout_histogram()
        # a, b have fanout 2; s, c have fanout 1 (output ports)
        assert hist[2] == 2
        assert hist[1] == 2
