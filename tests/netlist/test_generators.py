"""Functional correctness of the parametric circuit generators.

Every arithmetic/control generator is checked against a Python reference
implementation on random stimulus — these circuits seed everything else,
so they must be *correct*, not just well-formed.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import benchmarks
from repro.netlist import generators as g


def simulate_word(aig, assignments, out_prefix, out_width):
    """Helper: simulate named input words and collect an output word."""
    words = []
    values = dict(assignments)
    for name in aig.input_names:
        words.append(values[name])
    outs = aig.simulate(words, width=1)
    result = 0
    for i in range(out_width):
        idx = aig.output_names.index(f"{out_prefix}[{i}]")
        result |= outs[idx] << i
    return result


def bits_of(value, width, prefix):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_ripple_adder(a, b, cin):
    aig = g.ripple_adder(8)
    assign = {**bits_of(a, 8, "a"), **bits_of(b, 8, "b"), "cin": cin}
    total = simulate_word(aig, assign, "sum", 8)
    carry_idx = aig.output_names.index("cout")
    carry = aig.simulate([assign[n] for n in aig.input_names], width=1)[carry_idx]
    assert total | (carry << 8) == a + b + cin


@given(st.integers(0, 65535), st.integers(0, 65535))
@settings(max_examples=30, deadline=None)
def test_carry_select_equals_ripple(a, b):
    rip = g.ripple_adder(16)
    csel = g.carry_select_adder(16)
    assert rip.input_names == csel.input_names
    assert rip.random_simulation_signature(64, 9) == csel.random_simulation_signature(64, 9)
    assign = {**bits_of(a, 16, "a"), **bits_of(b, 16, "b"), "cin": 0}
    assert simulate_word(rip, assign, "sum", 16) == simulate_word(csel, assign, "sum", 16)


@given(st.integers(0, 63), st.integers(0, 63))
@settings(max_examples=30, deadline=None)
def test_multiplier(a, b):
    aig = g.multiplier(6)
    assign = {**bits_of(a, 6, "a"), **bits_of(b, 6, "b")}
    assert simulate_word(aig, assign, "p", 12) == a * b


@given(st.integers(0, 63))
@settings(max_examples=20, deadline=None)
def test_square(a):
    aig = g.square(6)
    assign = bits_of(a, 6, "a")
    assert simulate_word(aig, assign, "p", 12) == a * a


@given(st.integers(0, 255), st.integers(0, 7))
@settings(max_examples=30, deadline=None)
def test_barrel_shifter(value, shift):
    aig = g.barrel_shifter(8)
    assign = {**bits_of(value, 8, "d"), **bits_of(shift, 3, "s")}
    assert simulate_word(aig, assign, "q", 8) == (value << shift) & 0xFF


@given(st.integers(0, 255), st.integers(1, 255))
@settings(max_examples=30, deadline=None)
def test_divider(n, d):
    aig = g.divider(8)
    assign = {**bits_of(n, 8, "n"), **bits_of(d, 8, "d")}
    assert simulate_word(aig, assign, "q", 8) == n // d
    assert simulate_word(aig, assign, "r", 8) == n % d


@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_comparator(a, b):
    aig = g.comparator(8)
    assign = {**bits_of(a, 8, "a"), **bits_of(b, 8, "b")}
    outs = aig.simulate([assign[n] for n in aig.input_names], width=1)
    named = dict(zip(aig.output_names, outs))
    assert named["eq"] == (a == b)
    assert named["lt"] == (a < b)
    assert named["gt"] == (a > b)


@given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
@settings(max_examples=30, deadline=None)
def test_max_unit(values):
    aig = g.max_unit(8, operands=4)
    assign = {}
    for i, v in enumerate(values):
        assign.update(bits_of(v, 8, f"x{i}"))
    assert simulate_word(aig, assign, "max", 8) == max(values)


@given(st.integers(0, 65535))
@settings(max_examples=30, deadline=None)
def test_priority_encoder(req):
    aig = g.priority_encoder(16)
    assign = bits_of(req, 16, "r")
    grant = simulate_word(aig, assign, "g", 16)
    if req == 0:
        assert grant == 0
    else:
        lowest = req & -req
        assert grant == lowest
    valid_idx = aig.output_names.index("valid")
    valid = aig.simulate([assign[n] for n in aig.input_names], width=1)[valid_idx]
    assert valid == (1 if req else 0)


@given(st.integers(0, 15), st.integers(0, 1))
@settings(max_examples=20, deadline=None)
def test_decoder(sel, en):
    aig = g.decoder(4)
    assign = {**bits_of(sel, 4, "s"), "en": en}
    outs = aig.simulate([assign[n] for n in aig.input_names], width=1)
    named = dict(zip(aig.output_names, outs))
    for v in range(16):
        expected = 1 if (en and v == sel) else 0
        assert named[f"o[{v}]"] == expected


@given(st.integers(0, 2**15 - 1))
@settings(max_examples=30, deadline=None)
def test_voter(x):
    n = 15
    aig = g.voter(n)
    assign = bits_of(x, n, "x")
    outs = aig.simulate([assign[nm] for nm in aig.input_names], width=1)
    maj = outs[aig.output_names.index("maj")]
    assert maj == (1 if bin(x).count("1") >= n // 2 + 1 else 0)


@given(st.integers(0, 2**16 - 1))
@settings(max_examples=30, deadline=None)
def test_parity(x):
    aig = g.parity(16)
    assign = bits_of(x, 16, "x")
    out = aig.simulate([assign[nm] for nm in aig.input_names], width=1)[0]
    assert out == bin(x).count("1") % 2


def test_alu_add_and_xor():
    aig = g.alu(8)
    rng = random.Random(1)
    for _ in range(20):
        a, b = rng.randrange(256), rng.randrange(256)
        for op, expected in ((0, (a + b) & 0xFF), (4, a ^ b)):
            assign = {**bits_of(a, 8, "a"), **bits_of(b, 8, "b"), **bits_of(op, 3, "op")}
            assert simulate_word(aig, assign, "y", 8) == expected


def test_crossbar_router_routes_selected_input():
    aig = g.crossbar_router(ports=4, width=4)
    rng = random.Random(3)
    for _ in range(10):
        data = [rng.randrange(16) for _ in range(4)]
        sels = [rng.randrange(4) for _ in range(4)]
        assign = {}
        for i, d in enumerate(data):
            assign.update(bits_of(d, 4, f"d{i}"))
        for o, s in enumerate(sels):
            assign.update(bits_of(s, 2, f"s{o}"))
        for o in range(4):
            assert simulate_word(aig, assign, f"q{o}", 4) == data[sels[o]]


def test_random_control_deterministic():
    a1 = g.random_control("ctrl", 16, 100, seed=5)
    a2 = g.random_control("ctrl", 16, 100, seed=5)
    assert a1.random_simulation_signature(64, 1) == a2.random_simulation_signature(64, 1)
    a3 = g.random_control("ctrl", 16, 100, seed=6)
    assert a1.random_simulation_signature(64, 1) != a3.random_simulation_signature(64, 1)


class TestBenchmarkRegistry:
    def test_all_names_cover_kinds(self):
        names = benchmarks.all_names()
        assert len(names) >= 20
        assert set(benchmarks.dataset_names()) <= set(names)
        assert set(benchmarks.characterization_names()) <= set(names)
        assert len(benchmarks.dataset_names()) == 18  # the paper's count

    def test_characterization_designs(self):
        assert benchmarks.characterization_names() == [
            "aes",
            "dynamic_node",
            "fpu",
            "sparc_core",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmarks.build("not_a_design")

    def test_scale_grows_design(self):
        small = benchmarks.build("multiplier", 0.5)
        big = benchmarks.build("multiplier", 1.5)
        assert big.num_ands > small.num_ands

    def test_builds_are_deterministic(self):
        a = benchmarks.build("mem_ctrl", 0.4)
        b = benchmarks.build("mem_ctrl", 0.4)
        assert a.random_simulation_signature(32, 0) == b.random_simulation_signature(32, 0)

    def test_info_metadata(self):
        info = benchmarks.info("sparc_core")
        assert info.kind == "openpiton"
        assert "SPARC" in info.note

    @pytest.mark.parametrize("name", benchmarks.all_names())
    def test_every_benchmark_builds_small(self, name):
        aig = benchmarks.build(name, 0.4)
        assert aig.num_inputs > 0
        assert aig.num_outputs > 0
        assert aig.num_ands > 0
        assert aig.depth() > 0
