"""Tests for the design-to-graph conversion (star model)."""

import numpy as np
import pytest

from repro.netlist import (
    AIG_FEATURE_DIM,
    NETLIST_FEATURE_DIM,
    aig_to_graph,
    benchmarks,
    netlist_to_clique_graph,
    netlist_to_star_graph,
)
from repro.netlist.cells import nangate_lite
from repro.netlist.netlist import Netlist
from repro.netlist.stargraph import GraphSample
from repro.eda.synthesis import SynthesisEngine


@pytest.fixture(scope="module")
def small_netlist():
    return SynthesisEngine().run(benchmarks.build("router", 0.5)).artifact


class TestGraphSample:
    def test_validation_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            GraphSample(
                name="bad",
                num_nodes=2,
                edges=np.array([[0, 5]]),
                features=np.zeros((2, 3)),
            )

    def test_validation_rejects_feature_mismatch(self):
        with pytest.raises(ValueError):
            GraphSample(
                name="bad",
                num_nodes=3,
                edges=np.zeros((0, 2), dtype=int),
                features=np.zeros((2, 3)),
            )

    def test_empty_edges_ok(self):
        g = GraphSample(
            name="ok", num_nodes=1, edges=np.zeros((0, 2), dtype=int),
            features=np.zeros((1, 2)),
        )
        assert g.num_edges == 0
        assert g.feature_dim == 2


class TestAIGConversion:
    def test_shapes(self):
        aig = benchmarks.build("ctrl", 0.4)
        g = aig_to_graph(aig)
        assert g.num_nodes == aig.size
        assert g.num_edges == 2 * aig.num_ands
        assert g.feature_dim == AIG_FEATURE_DIM

    def test_edges_follow_fanins(self):
        aig = benchmarks.build("adder", 0.2)
        g = aig_to_graph(aig)
        edge_set = {tuple(e) for e in g.edges.tolist()}
        for node in aig.and_nodes():
            a, b = aig.fanins(node)
            assert (a >> 1, node) in edge_set
            assert (b >> 1, node) in edge_set

    def test_feature_flags(self):
        aig = benchmarks.build("priority", 0.3)
        g = aig_to_graph(aig)
        # constant node flag
        assert g.features[0, 0] == 1.0
        # PIs flagged as inputs, not ANDs
        for node in aig.inputs:
            assert g.features[node, 1] == 1.0
            assert g.features[node, 2] == 0.0
        # level feature normalized to [0, 1]
        assert g.features[:, 4].max() <= 1.0 + 1e-9

    def test_meta(self):
        aig = benchmarks.build("voter", 0.4)
        g = aig_to_graph(aig)
        assert g.meta["num_ands"] == aig.num_ands
        assert g.meta["depth"] == max(1, aig.depth())


class TestNetlistConversion:
    def test_star_edge_count_matches_fanout(self, small_netlist):
        g = netlist_to_star_graph(small_netlist)
        expected = sum(net.fanout for net in small_netlist.nets.values())
        assert g.num_edges == expected
        assert g.feature_dim == NETLIST_FEATURE_DIM

    def test_node_count(self, small_netlist):
        g = netlist_to_star_graph(small_netlist)
        expected = (
            small_netlist.num_instances
            + len(small_netlist.input_ports)
            + len(small_netlist.output_ports)
        )
        assert g.num_nodes == expected

    def test_clique_has_more_edges_than_star(self, small_netlist):
        star = netlist_to_star_graph(small_netlist)
        clique = netlist_to_clique_graph(small_netlist)
        assert clique.num_edges > star.num_edges
        assert clique.num_nodes == star.num_nodes

    def test_meta_fields(self, small_netlist):
        g = netlist_to_star_graph(small_netlist)
        assert g.meta["num_instances"] == small_netlist.num_instances
        assert g.meta["total_area"] == pytest.approx(small_netlist.total_area())

    def test_star_model_driver_to_sinks(self):
        """The paper's star model: one edge from driver to each sink."""
        lib = nangate_lite()
        net = Netlist("t", lib)
        net.add_input_port("a")
        net.add_instance("g1", "INV_X1", {"A": "a", "Y": "n"})
        net.add_instance("g2", "INV_X1", {"A": "n", "Y": "o1"})
        net.add_instance("g3", "INV_X1", {"A": "n", "Y": "o2"})
        net.add_output_port("z1", "o1")
        net.add_output_port("z2", "o2")
        g = netlist_to_star_graph(net)
        # node ids: a=0, g1=1, g2=2, g3=3, z1=4, z2=5
        edges = {tuple(e) for e in g.edges.tolist()}
        assert (1, 2) in edges and (1, 3) in edges  # n: g1 -> g2, g1 -> g3
        assert (0, 1) in edges  # a -> g1
        assert (2, 4) in edges and (3, 5) in edges  # outputs
