"""Library-completeness properties that technology mapping relies on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eda.synthesis import TechnologyMapper, MappingStats
from repro.eda.truthtables import flip_var
from repro.netlist.cells import nangate_lite


@pytest.fixture(scope="module")
def mapper():
    return TechnologyMapper(nangate_lite())


#: The ten 2-input functions with full support (both variables matter).
FULL_SUPPORT_2IN = [
    t
    for t in range(1, 15)
    if t not in (0b1010, 0b0101, 0b1100, 0b0011)
]


@pytest.mark.parametrize("table", FULL_SUPPORT_2IN)
def test_every_full_support_two_input_function_is_mappable(mapper, table):
    """With input negations + output inversion, the library covers every
    full-support 2-input boolean function — the guarantee that makes the
    mapper total (an AND node's direct 2-cut always has full support)."""
    stats = MappingStats()
    assert mapper._match(table, 2, stats) is not None


def test_degenerate_functions_have_no_two_input_match(mapper):
    """Projections like f(a,b)=a have no 2-input cell; the mapper covers
    them through smaller cuts (plain wires), never through _match."""
    stats = MappingStats()
    assert mapper._match(0b1010, 2, stats) is None


@given(st.integers(0, 255))
@settings(max_examples=120, deadline=None)
def test_match_cost_includes_inverters(mapper, table):
    """Whenever a match needs negations, its cost exceeds the bare cell."""
    stats = MappingStats()
    match = mapper._match(table, 3, stats)
    if match is None:
        return
    cost, cell, perm, inverted, neg = match
    extras = bin(neg).count("1") + (1 if inverted else 0)
    assert cost == pytest.approx(
        cell.area + extras * nangate_lite().cell("INV_X1").area
        if extras
        else cell.area
    ) or cost >= cell.area
