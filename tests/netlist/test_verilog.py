"""Round-trip tests for the structural Verilog reader/writer."""

import pytest

from repro.netlist import benchmarks, nangate_lite
from repro.netlist.verilog import netlist_from_verilog, netlist_to_verilog, read_verilog, write_verilog
from repro.eda.synthesis import SynthesisEngine


@pytest.fixture(scope="module")
def lib():
    return nangate_lite()


@pytest.fixture(scope="module")
def netlist():
    return SynthesisEngine().run(benchmarks.build("ctrl", 0.5)).artifact


def test_roundtrip_preserves_structure(netlist, lib):
    text = netlist_to_verilog(netlist)
    back = netlist_from_verilog(text, lib)
    assert back.name == netlist.name
    assert back.num_instances == netlist.num_instances
    assert back.input_ports == netlist.input_ports
    assert back.output_ports == netlist.output_ports
    assert set(back.nets) == set(netlist.nets)


def test_roundtrip_preserves_function(netlist, lib):
    text = netlist_to_verilog(netlist)
    back = netlist_from_verilog(text, lib)
    assert (
        back.random_simulation_signature(64, 11)
        == netlist.random_simulation_signature(64, 11)
    )


def test_file_io(tmp_path, netlist, lib):
    path = tmp_path / "out.v"
    write_verilog(netlist, str(path))
    back = read_verilog(str(path), lib)
    assert back.num_instances == netlist.num_instances


def test_escaped_identifiers(lib):
    from repro.netlist.netlist import Netlist

    net = Netlist("esc", lib)
    net.add_input_port("x[0]")  # needs escaping in Verilog
    net.add_instance("g.1", "INV_X1", {"A": "x[0]", "Y": "n$1"})
    net.add_output_port("y[0]", "n$1")
    text = netlist_to_verilog(net)
    assert "\\x[0]" in text
    back = netlist_from_verilog(text, lib)
    assert back.input_ports == ["x[0]"]
    assert back.output_ports == ["y[0]"]
    assert back.num_instances == 1


def test_header_mentions_library(netlist):
    assert "nangate_lite" in netlist_to_verilog(netlist).splitlines()[0]
