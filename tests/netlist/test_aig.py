"""Unit and property tests for the AIG data structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.aig import (
    AIG,
    CONST_FALSE,
    CONST_TRUE,
    lit,
    lit_is_complemented,
    lit_node,
    lit_not,
    lit_regular,
)


class TestLiteralHelpers:
    def test_lit_roundtrip(self):
        assert lit(5) == 10
        assert lit(5, True) == 11
        assert lit_node(11) == 5
        assert lit_is_complemented(11)
        assert not lit_is_complemented(10)

    def test_lit_not_is_involution(self):
        for literal in range(20):
            assert lit_not(lit_not(literal)) == literal
            assert lit_not(literal) != literal

    def test_lit_regular_strips_complement(self):
        assert lit_regular(11) == 10
        assert lit_regular(10) == 10

    def test_constants(self):
        assert CONST_TRUE == lit_not(CONST_FALSE)


class TestConstruction:
    def test_empty_aig(self):
        aig = AIG("empty")
        assert aig.size == 1  # constant node
        assert aig.num_inputs == 0
        assert aig.num_ands == 0
        assert aig.depth() == 0

    def test_add_input_names(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input()
        assert aig.input_names == ["a", "pi1"]
        assert lit_node(a) != lit_node(b)

    def test_and_constant_propagation(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.add_and(a, CONST_FALSE) == CONST_FALSE
        assert aig.add_and(a, CONST_TRUE) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == CONST_FALSE
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        x = aig.add_and(a, b)
        y = aig.add_and(b, a)  # commuted
        assert x == y
        assert aig.num_ands == 1

    def test_output_bookkeeping(self):
        aig = AIG()
        a = aig.add_input("a")
        idx = aig.add_output(lit_not(a), "na")
        assert idx == 0
        assert aig.outputs == [lit_not(a)]
        assert aig.output_names == ["na"]

    def test_bad_literal_rejected(self):
        aig = AIG()
        with pytest.raises(ValueError):
            aig.add_and(2, 99)
        with pytest.raises(ValueError):
            aig.add_output(99)


class TestDerivedOperators:
    def test_xor_truth_table(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.add_xor(a, b))
        for va in (0, 1):
            for vb in (0, 1):
                out = aig.simulate([va, vb], width=1)[0]
                assert out == (va ^ vb)

    def test_mux_truth_table(self):
        aig = AIG()
        s = aig.add_input()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.add_mux(s, a, b))
        for vs in (0, 1):
            for va in (0, 1):
                for vb in (0, 1):
                    out = aig.simulate([vs, va, vb], width=1)[0]
                    assert out == (va if vs else vb)

    def test_maj_truth_table(self):
        aig = AIG()
        ins = [aig.add_input() for _ in range(3)]
        aig.add_output(aig.add_maj(*ins))
        for pattern in range(8):
            bits = [(pattern >> i) & 1 for i in range(3)]
            out = aig.simulate(bits, width=1)[0]
            assert out == (1 if sum(bits) >= 2 else 0)


class TestStructure:
    def _xor_chain(self, n):
        aig = AIG()
        ins = [aig.add_input() for _ in range(n)]
        acc = ins[0]
        for x in ins[1:]:
            acc = aig.add_xor(acc, x)
        aig.add_output(acc)
        return aig

    def test_levels_monotone(self):
        aig = self._xor_chain(5)
        levels = aig.levels()
        for node in aig.and_nodes():
            a, b = aig.fanins(node)
            assert levels[node] == 1 + max(levels[lit_node(a)], levels[lit_node(b)])

    def test_depth_of_chain(self):
        aig = self._xor_chain(5)
        assert aig.depth() == (5 - 1) * 2  # each xor adds 2 levels

    def test_fanout_counts_match_edges(self):
        aig = self._xor_chain(6)
        fanout = aig.fanout_counts()
        edge_targets = sum(fanout)
        # every AND contributes two fanin references; outputs one each
        assert edge_targets == 2 * aig.num_ands + aig.num_outputs

    def test_transitive_fanin_cone_topological(self):
        aig = self._xor_chain(4)
        cone = aig.transitive_fanin_cone(aig.outputs[0])
        seen = set()
        for node in cone:
            if aig.is_and(node):
                a, b = aig.fanins(node)
                assert lit_node(a) in seen and lit_node(b) in seen
            seen.add(node)

    def test_cleanup_removes_dangling(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        keep = aig.add_and(a, b)
        aig.add_and(a, lit_not(b))  # dangling
        aig.add_output(keep)
        cleaned = aig.cleanup()
        assert cleaned.num_ands == 1
        assert cleaned.num_inputs == 2  # interface preserved
        assert cleaned.random_simulation_signature(32, 7) == aig.random_simulation_signature(32, 7)

    def test_copy_is_independent(self):
        aig = self._xor_chain(3)
        clone = aig.copy()
        clone.add_output(CONST_TRUE)
        assert clone.num_outputs == aig.num_outputs + 1


class TestSimulation:
    def test_simulation_width_mask(self):
        aig = AIG()
        a = aig.add_input()
        aig.add_output(lit_not(a))
        out = aig.simulate([0], width=4)[0]
        assert out == 0b1111

    def test_wrong_stimulus_count(self):
        aig = AIG()
        aig.add_input()
        with pytest.raises(ValueError):
            aig.simulate([1, 0])

    def test_simulate_pattern(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.add_and(a, b))
        assert aig.simulate_pattern([True, True]) == [True]
        assert aig.simulate_pattern([True, False]) == [False]

    def test_signature_deterministic(self):
        aig = self_build = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.add_or(a, b))
        assert aig.random_simulation_signature(64, 5) == aig.random_simulation_signature(64, 5)


# ---------------------------------------------------------------------------
# Property-based tests: random AIGs behave like their boolean semantics.
# ---------------------------------------------------------------------------
@st.composite
def random_aig_ops(draw):
    """A random program of AIG operations plus its expected semantics."""
    num_inputs = draw(st.integers(min_value=1, max_value=5))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["and", "or", "xor"]),
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
                st.booleans(),
                st.booleans(),
            ),
            min_size=1,
            max_size=24,
        )
    )
    return num_inputs, ops


@given(random_aig_ops())
@settings(max_examples=60, deadline=None)
def test_aig_matches_python_semantics(program):
    num_inputs, ops = program
    aig = AIG()
    lits = [aig.add_input() for _ in range(num_inputs)]

    def eval_program(bits):
        values = list(bits)
        for op, i, j, ni, nj in ops:
            x = values[i % len(values)]
            y = values[j % len(values)]
            if ni:
                x = not x
            if nj:
                y = not y
            if op == "and":
                values.append(x and y)
            elif op == "or":
                values.append(x or y)
            else:
                values.append(x != y)
        return values[-1]

    for op, i, j, ni, nj in ops:
        x = lits[i % len(lits)]
        y = lits[j % len(lits)]
        if ni:
            x = lit_not(x)
        if nj:
            y = lit_not(y)
        if op == "and":
            lits.append(aig.add_and(x, y))
        elif op == "or":
            lits.append(aig.add_or(x, y))
        else:
            lits.append(aig.add_xor(x, y))
    aig.add_output(lits[-1])

    for pattern in range(1 << num_inputs):
        bits = [bool((pattern >> k) & 1) for k in range(num_inputs)]
        expected = eval_program(bits)
        assert aig.simulate_pattern(bits) == [expected]


@given(random_aig_ops())
@settings(max_examples=40, deadline=None)
def test_strashing_no_duplicate_and_nodes(program):
    num_inputs, ops = program
    aig = AIG()
    lits = [aig.add_input() for _ in range(num_inputs)]
    for op, i, j, ni, nj in ops:
        x = lits[i % len(lits)] ^ (1 if ni else 0)
        y = lits[j % len(lits)] ^ (1 if nj else 0)
        if op == "and":
            lits.append(aig.add_and(x, y))
        elif op == "or":
            lits.append(aig.add_or(x, y))
        else:
            lits.append(aig.add_xor(x, y))
    seen = set()
    for node in aig.and_nodes():
        key = aig.fanins(node)
        assert key not in seen, "structural hashing violated"
        seen.add(key)
        # no trivial ANDs survive construction
        a, b = key
        assert a != b and a != lit_not(b)
        assert lit_node(a) != 0


@given(random_aig_ops())
@settings(max_examples=30, deadline=None)
def test_cleanup_preserves_function(program):
    num_inputs, ops = program
    aig = AIG()
    lits = [aig.add_input() for _ in range(num_inputs)]
    for op, i, j, ni, nj in ops:
        x = lits[i % len(lits)] ^ (1 if ni else 0)
        y = lits[j % len(lits)] ^ (1 if nj else 0)
        lits.append(aig.add_and(x, y) if op == "and" else aig.add_or(x, y))
    aig.add_output(lits[len(lits) // 2])
    cleaned = aig.cleanup()
    assert cleaned.num_ands <= aig.num_ands
    assert cleaned.random_simulation_signature(64, 3) == aig.random_simulation_signature(64, 3)
