"""Structural scaling properties of every benchmark generator."""

import pytest

from repro.netlist import aig_to_graph, benchmarks


@pytest.mark.parametrize("name", benchmarks.all_names())
def test_scale_monotone_in_size(name):
    """Bigger scale never shrinks the design (monotone knob)."""
    sizes = [benchmarks.build(name, s).num_ands for s in (0.5, 1.0, 1.6)]
    assert sizes[0] <= sizes[1] <= sizes[2]
    assert sizes[2] > sizes[0]


@pytest.mark.parametrize("name", benchmarks.dataset_names())
def test_dataset_designs_are_graph_convertible(name):
    aig = benchmarks.build(name, 0.5)
    g = aig_to_graph(aig)
    assert g.num_nodes == aig.size
    # every AND node is reachable from some input through the edge list
    assert g.num_edges == 2 * aig.num_ands


@pytest.mark.parametrize("name", benchmarks.all_names())
def test_no_dangling_inputs_dominate(name):
    """Most primary inputs actually drive logic."""
    aig = benchmarks.build(name, 0.8)
    fanout = aig.fanout_counts()
    used = sum(1 for node in aig.inputs if fanout[node] > 0)
    assert used >= 0.5 * aig.num_inputs


@pytest.mark.parametrize("name", benchmarks.all_names())
def test_outputs_depend_on_inputs(name):
    """Random stimulus toggles at least one output (no constant designs)."""
    aig = benchmarks.build(name, 0.6)
    sig_a = aig.random_simulation_signature(64, seed=1)
    mask = (1 << 64) - 1
    assert any(0 < s < mask for s in sig_a)
