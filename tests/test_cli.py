"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.design == "sparc_core"
        assert args.vcpus == [1, 2, 4, 8]

    def test_optimize_deadlines(self):
        args = build_parser().parse_args(
            ["optimize", "--deadlines", "1000", "2000"]
        )
        assert args.deadlines == [1000.0, 2000.0]

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_benchmarks_lists_designs(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "sparc_core" in out
        assert "openpiton" in out
        assert "multiplier" in out

    def test_flow_small_design(self, capsys, tmp_path):
        verilog = tmp_path / "out.v"
        code = main(
            [
                "flow",
                "--design",
                "ctrl",
                "--scale",
                "0.4",
                "--verilog-out",
                str(verilog),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Synthesis" in out
        assert "critical path" in out
        assert verilog.exists()
        assert "module" in verilog.read_text()

    def test_flow_custom_recipe(self, capsys):
        assert main(["flow", "--design", "dec", "--scale", "0.5", "--recipe", "balance"]) == 0
        assert "Routing" in capsys.readouterr().out

    def test_characterize_small(self, capsys):
        code = main(
            [
                "characterize",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
                "--vcpus",
                "1",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Branch misses" in out
        assert "Speedup" in out

    def test_optimize_small(self, capsys):
        code = main(
            [
                "optimize",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recommended configuration" in out
        assert "saves" in out


class TestVerifyCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.trials == 200
        assert args.seed == 0
        assert args.oracle is None
        assert args.replay_seed is None

    def test_list_oracles(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("mckp", "schedule", "aig", "cuts", "spot", "executor",
                     "chaos", "obs"):
            assert name in out

    def test_small_run_passes(self, capsys):
        assert main(["verify", "--trials", "10", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "PASS: 8 oracles, 80 trials, 0 violations" in out

    def test_run_is_deterministic(self, capsys):
        main(["verify", "--trials", "8"])
        first = capsys.readouterr().out
        main(["verify", "--trials", "8"])
        assert capsys.readouterr().out == first

    def test_oracle_subset(self, capsys):
        assert main(["verify", "--trials", "5", "--oracle", "spot"]) == 0
        out = capsys.readouterr().out
        assert "1 oracles, 5 trials" in out

    def test_unknown_oracle_is_usage_error(self, capsys):
        assert main(["verify", "--trials", "1", "--oracle", "nope"]) == 2

    def test_replay_requires_single_oracle(self, capsys):
        assert main(["verify", "--replay-seed", "1"]) == 2

    def test_replay_passing_seed(self, capsys):
        code = main(
            ["verify", "--oracle", "schedule", "--replay-seed", "12345"]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out


class TestExecuteCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["execute"])
        assert args.design == "sparc_core"
        assert args.profile == "calm"
        assert args.seed == 0
        assert args.deadline is None
        assert args.max_preemptions == 3
        assert not args.spot and not args.trace

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["execute", "--profile", "volcanic"])

    def test_fault_free_execution_completes(self, capsys):
        code = main(
            [
                "execute",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
                "--profile",
                "none",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "COMPLETE" in out
        assert "deadline" in out

    def test_spot_execution_with_trace(self, capsys):
        code = main(
            [
                "execute",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
                "--profile",
                "heavy",
                "--spot",
                "--trace",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution trace" in out
        assert "flow_complete" in out


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.trials == 50
        assert args.seed == 0
        assert args.convergence_trials == 500

    def test_small_run_passes(self, capsys):
        code = main(
            ["chaos", "--trials", "3", "--convergence-trials", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "convergence" in out

    def test_run_is_deterministic(self, capsys):
        main(["chaos", "--trials", "3", "--convergence-trials", "150"])
        first = capsys.readouterr().out
        main(["chaos", "--trials", "3", "--convergence-trials", "150"])
        assert capsys.readouterr().out == first
