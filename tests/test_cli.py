"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.design == "sparc_core"
        assert args.vcpus == [1, 2, 4, 8]

    def test_optimize_deadlines(self):
        args = build_parser().parse_args(
            ["optimize", "--deadlines", "1000", "2000"]
        )
        assert args.deadlines == [1000.0, 2000.0]

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_benchmarks_lists_designs(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "sparc_core" in out
        assert "openpiton" in out
        assert "multiplier" in out

    def test_flow_small_design(self, capsys, tmp_path):
        verilog = tmp_path / "out.v"
        code = main(
            [
                "flow",
                "--design",
                "ctrl",
                "--scale",
                "0.4",
                "--verilog-out",
                str(verilog),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Synthesis" in out
        assert "critical path" in out
        assert verilog.exists()
        assert "module" in verilog.read_text()

    def test_flow_custom_recipe(self, capsys):
        assert main(["flow", "--design", "dec", "--scale", "0.5", "--recipe", "balance"]) == 0
        assert "Routing" in capsys.readouterr().out

    def test_characterize_small(self, capsys):
        code = main(
            [
                "characterize",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
                "--vcpus",
                "1",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Branch misses" in out
        assert "Speedup" in out

    def test_optimize_small(self, capsys):
        code = main(
            [
                "optimize",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recommended configuration" in out
        assert "saves" in out


class TestVerifyCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.trials == 200
        assert args.seed == 0
        assert args.oracle is None
        assert args.replay_seed is None

    def test_list_oracles(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("mckp", "schedule", "aig", "cuts", "spot", "executor",
                     "chaos", "obs", "service"):
            assert name in out

    def test_small_run_passes(self, capsys):
        assert main(["verify", "--trials", "10", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "PASS: 13 oracles, 130 trials, 0 violations" in out

    def test_run_is_deterministic(self, capsys):
        main(["verify", "--trials", "8"])
        first = capsys.readouterr().out
        main(["verify", "--trials", "8"])
        assert capsys.readouterr().out == first

    def test_oracle_subset(self, capsys):
        assert main(["verify", "--trials", "5", "--oracle", "spot"]) == 0
        out = capsys.readouterr().out
        assert "1 oracles, 5 trials" in out

    def test_unknown_oracle_is_usage_error(self, capsys):
        assert main(["verify", "--trials", "1", "--oracle", "nope"]) == 2

    def test_replay_requires_single_oracle(self, capsys):
        assert main(["verify", "--replay-seed", "1"]) == 2

    def test_replay_passing_seed(self, capsys):
        code = main(
            ["verify", "--oracle", "schedule", "--replay-seed", "12345"]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out


class TestExecuteCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["execute"])
        assert args.design == "sparc_core"
        assert args.profile == "calm"
        assert args.seed == 0
        assert args.deadline is None
        assert args.max_preemptions == 3
        assert not args.spot and not args.trace

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["execute", "--profile", "volcanic"])

    def test_fault_free_execution_completes(self, capsys):
        code = main(
            [
                "execute",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
                "--profile",
                "none",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "COMPLETE" in out
        assert "deadline" in out

    def test_spot_execution_with_trace(self, capsys):
        code = main(
            [
                "execute",
                "--design",
                "router",
                "--scale",
                "0.5",
                "--sample-rate",
                "8",
                "--profile",
                "heavy",
                "--spot",
                "--trace",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution trace" in out
        assert "flow_complete" in out


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.trials == 50
        assert args.seed == 0
        assert args.convergence_trials == 500

    def test_small_run_passes(self, capsys):
        code = main(
            ["chaos", "--trials", "3", "--convergence-trials", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "convergence" in out

    def test_run_is_deterministic(self, capsys):
        main(["chaos", "--trials", "3", "--convergence-trials", "150"])
        first = capsys.readouterr().out
        main(["chaos", "--trials", "3", "--convergence-trials", "150"])
        assert capsys.readouterr().out == first


class TestErrorPaths:
    def test_unknown_subcommand_exits_with_usage_error(self):
        with pytest.raises(SystemExit) as err:
            main(["frobnicate"])
        assert err.value.code == 2

    def test_report_corrupt_store_is_named_error(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        store.write_text('{"schema": "repro-runs/99", "kind": "bench"}\n')
        assert main(["report", "--store", str(store)]) == 2
        err = capsys.readouterr().err
        assert "schema mismatch" in err
        assert "repro-runs/99" in err
        assert "KeyError" not in err

    def test_report_undecodable_store_reports_line(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        store.write_text("{broken\n")
        assert main(["report", "--store", str(store)]) == 2
        assert "line 1" in capsys.readouterr().err

    def test_report_empty_store_exits_zero(self, tmp_path, capsys):
        store = tmp_path / "absent.jsonl"
        assert main(["report", "--store", str(store)]) == 0
        assert "no runs" in capsys.readouterr().out

    def test_report_bad_window_is_usage_error(self, tmp_path, capsys):
        assert main(
            ["report", "--store", str(tmp_path / "x.jsonl"), "--window", "0"]
        ) == 2


class TestBenchStoreAndReport:
    def _bench(self, tmp_path, rev, timestamp):
        return [
            "bench", "--seed", "0", "--scale", "0.2", "--epochs", "2",
            "--rev", rev, "--out", str(tmp_path / "out"),
            "--store", str(tmp_path / "runs.jsonl"),
            "--timestamp", timestamp,
        ]

    def test_bench_appends_to_store(self, tmp_path, capsys):
        assert main(self._bench(tmp_path, "r1", "2026-08-06T00:00:00Z")) == 0
        out = capsys.readouterr().out
        assert "run appended to" in out
        store = tmp_path / "runs.jsonl"
        assert store.exists()
        assert len(store.read_text().splitlines()) == 1

    def test_bench_no_store_skips_append(self, tmp_path, capsys):
        args = self._bench(tmp_path, "r1", "2026-08-06T00:00:00Z")
        assert main(args + ["--no-store"]) == 0
        assert "run appended" not in capsys.readouterr().out
        assert not (tmp_path / "runs.jsonl").exists()

    def test_report_over_three_runs_flags_injected_drift(
        self, tmp_path, capsys
    ):
        # Acceptance: a 3-run store with injected billed-cost drift makes
        # `repro report` exit 1 with a deterministic-drift flag.
        import json

        for i, rev in enumerate(("r1", "r2", "r3")):
            assert main(
                self._bench(tmp_path, rev, f"2026-08-06T0{i}:00:00Z")
            ) == 0
        capsys.readouterr()
        store = tmp_path / "runs.jsonl"
        assert main(["report", "--store", str(store)]) == 0
        clean = capsys.readouterr().out
        assert "3 runs" in clean
        assert "bit-stable" in clean
        # Inject drift into the last run's billed cost.
        lines = store.read_text().splitlines()
        doc = json.loads(lines[-1])
        doc["metrics"]["counters"]["executor.billed_cost"] *= 1.5
        lines[-1] = json.dumps(doc, sort_keys=True)
        store.write_text("\n".join(lines) + "\n")
        assert main(["report", "--store", str(store)]) == 1
        drifted = capsys.readouterr().out
        assert "DETERMINISTIC DRIFT" in drifted
        assert "executor.billed_cost" in drifted

    def test_report_html_output(self, tmp_path, capsys):
        assert main(self._bench(tmp_path, "r1", "2026-08-06T00:00:00Z")) == 0
        html_path = tmp_path / "report.html"
        assert main(
            [
                "report", "--store", str(tmp_path / "runs.jsonl"),
                "--html", str(html_path),
            ]
        ) == 0
        assert "HTML dashboard written" in capsys.readouterr().out
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html

    def test_report_metric_filter(self, tmp_path, capsys):
        assert main(self._bench(tmp_path, "r1", "2026-08-06T00:00:00Z")) == 0
        capsys.readouterr()
        assert main(
            [
                "report", "--store", str(tmp_path / "runs.jsonl"),
                "--metric", "gnn.",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gnn.train.loss" in out
        assert "flow.runtime_seconds" not in out


class TestVerifyReplayDump:
    def test_failing_replay_prints_dump_path(self, tmp_path, capsys, monkeypatch):
        from repro.verify.fuzz import ORACLES

        monkeypatch.setitem(ORACLES, "boom", lambda rng: ["it broke"])
        code = main(
            [
                "verify", "--oracle", "boom", "--replay-seed", "77",
                "--dump-dir", str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "replay boom@77: FAIL" in out
        assert "dump:" in out
        assert "it broke" in out
        dump = tmp_path / "crash_verify.boom_77.json"
        assert dump.exists()


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.jobs == 20
        assert args.workers == 2
        assert args.queue_depth == 64
        assert args.priorities == [0, 1]
        assert args.kinds == ["execute", "flow", "plan"]
        assert args.rate_capacity is None

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.kind == "execute"
        assert args.client == "cli"
        assert args.timeout is None


class TestServeCommand:
    def test_serve_runs_a_seeded_batch(self, tmp_path, capsys):
        code = main(
            [
                "serve", "--seed", "3", "--jobs", "6",
                "--kinds", "sleep", "--no-store",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6 admitted, 0 rejected" in out
        assert "all 6 jobs terminal" in out
        assert out.count("job-") == 6

    def test_serve_log_is_byte_stable_across_runs(self, tmp_path, capsys):
        logs = []
        for name in ("a.log", "b.log"):
            path = tmp_path / name
            assert main(
                [
                    "serve", "--seed", "5", "--jobs", "8",
                    "--kinds", "sleep", "--no-store",
                    "--log", str(path),
                ]
            ) == 0
            logs.append(path.read_bytes())
        assert logs[0] == logs[1]

    def test_serve_reports_typed_rejections(self, capsys):
        code = main(
            [
                "serve", "--seed", "1", "--jobs", "10",
                "--kinds", "sleep", "--queue-depth", "4", "--no-store",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 admitted, 6 rejected" in out
        assert "rejected [queue_full]: 6 request(s)" in out

    def test_serve_persists_job_records(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        code = main(
            [
                "serve", "--seed", "2", "--jobs", "4", "--kinds", "sleep",
                "--store", str(store),
                "--timestamp", "2026-08-08T00:00:00Z",
                "--rev", "test",
            ]
        )
        assert code == 0
        from repro.obs.store import RunStore, filter_runs

        runs = RunStore(store).load()
        assert len(runs) == 5  # 4 jobs + 1 session record
        assert len(filter_runs(runs, kinds=["service.job"])) == 4
        session = filter_runs(runs, kinds=["service"])
        assert [r.kind for r in session] == ["service.job"] * 4 + ["service"]


class TestSubmitCommand:
    def test_submit_sleep_prints_job_document(self, capsys):
        code = main(["submit", "--kind", "sleep"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["job_id"] == "job-0000"
        assert doc["state"] == "done"
        assert doc["result"]["kind"] == "sleep"

    def test_submit_unknown_kind_is_a_typed_400(self, capsys):
        code = main(["submit", "--kind", "bogus"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["error"]["code"] == "invalid_request"
        assert doc["error"]["status"] == 400

    def test_submit_invalid_scale_is_rejected(self, capsys):
        code = main(["submit", "--kind", "flow", "--scale", "0"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["error"]["code"] == "invalid_request"


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.flows == 10000
        assert args.menus == 16
        assert args.deadline_buckets == 8
        assert args.mode == "exact"
        assert args.ticks == 0
        assert args.min_throughput is None

    def test_batch_plan_prints_summary(self, capsys):
        code = main(["fleet", "--flows", "500", "--menus", "4", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro-fleet/1 mode=exact flows=500" in out
        assert "500 flows in" in out
        assert "planned" in out and "flows/sec" in out

    def test_dump_is_deterministic(self, tmp_path, capsys):
        dumps = []
        for name in ("a.txt", "b.txt"):
            path = tmp_path / name
            assert main(
                [
                    "fleet", "--flows", "400", "--menus", "3",
                    "--seed", "7", "--mode", "approx",
                    "--dump", str(path),
                ]
            ) == 0
            dumps.append(path.read_bytes())
        capsys.readouterr()
        assert dumps[0] == dumps[1]

    def test_session_mode_prints_tick_lines(self, capsys):
        code = main(
            [
                "fleet", "--flows", "60", "--menus", "3", "--seed", "2",
                "--ticks", "3", "--execute-per-tick", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro-fleet-session/1 seed=2" in out
        assert out.count("tick=") == 3

    def test_min_throughput_gate_fails(self, capsys):
        # No planner hits 10^12 flows/sec; the gate must trip.
        code = main(
            [
                "fleet", "--flows", "200", "--menus", "2",
                "--min-throughput", "1000000000000",
            ]
        )
        assert code == 1
        assert "below --min-throughput" in capsys.readouterr().err

    def test_bad_args_are_usage_errors(self, capsys):
        assert main(["fleet", "--flows", "0"]) == 2
        assert main(["fleet", "--ticks", "-1"]) == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--mode", "magic"])


class TestVerifyCorpusCLI:
    def test_replay_clean_corpus_passes(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("mckp:42\nfleet:1\n")
        code = main(["verify", "--corpus", str(corpus)])
        assert code == 0
        out = capsys.readouterr().out
        assert "corpus mckp@42: ok" in out
        assert "corpus fleet@1: ok" in out
        assert "PASS: 2 corpus entries, 0 regressed" in out

    def test_malformed_corpus_is_usage_error(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("not a corpus line\n")
        code = main(["verify", "--corpus", str(corpus)])
        assert code == 2
        assert "line 1" in capsys.readouterr().err

    def test_record_corpus_on_clean_run_writes_nothing(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.txt"
        code = main(
            [
                "verify", "--oracle", "mckp", "--trials", "5",
                "--seed", "0", "--record-corpus", str(corpus),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert not corpus.exists()

    def test_record_corpus_captures_failures(self, tmp_path, capsys, monkeypatch):
        from repro.verify import fuzz

        def broken_oracle(rng):
            return ["synthetic violation"]

        monkeypatch.setitem(fuzz.ORACLES, "mckp", broken_oracle)
        corpus = tmp_path / "corpus.txt"
        code = main(
            [
                "verify", "--oracle", "mckp", "--trials", "3",
                "--seed", "0", "--record-corpus", str(corpus),
            ]
        )
        assert code == 1
        capsys.readouterr()
        from repro.verify import load_corpus

        entries = load_corpus(str(corpus))
        assert len(entries) == 3
        assert all(e.oracle == "mckp" for e in entries)


class TestSloCommand:
    SPEC = "benchmarks/slo/service.json"

    def _store(self, tmp_path, seed=7):
        store = tmp_path / "runs.jsonl"
        assert main(
            [
                "serve", "--seed", str(seed), "--jobs", "10",
                "--store", str(store),
                "--timestamp", "2026-08-08T00:00:00Z",
            ]
        ) == 0
        return store

    def test_passing_spec_exits_zero(self, tmp_path, capsys):
        store = self._store(tmp_path)
        code = main(
            ["slo", "--spec", self.SPEC, "--store", str(store)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO 'service-batch'" in out
        assert "deadline-hit-rate" in out

    def test_violated_spec_exits_one(self, tmp_path, capsys):
        store = self._store(tmp_path)
        spec = tmp_path / "strict.json"
        doc = json.loads(open(self.SPEC).read())
        doc["objectives"][2]["budget"] = 1e-9
        spec.write_text(json.dumps(doc))
        code = main(["slo", "--spec", str(spec), "--store", str(store)])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_missing_spec_exits_two(self, tmp_path, capsys):
        store = self._store(tmp_path)
        code = main(
            [
                "slo", "--spec", str(tmp_path / "absent.json"),
                "--store", str(store),
            ]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_spec_exits_two(self, tmp_path, capsys):
        store = self._store(tmp_path)
        spec = tmp_path / "bad.json"
        spec.write_text('{"schema": "repro-slo/1", "name": "x"}')
        code = main(["slo", "--spec", str(spec), "--store", str(store)])
        assert code == 2

    def test_dump_is_byte_identical_across_invocations(self, tmp_path, capsys):
        store = self._store(tmp_path)
        dumps = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(
                [
                    "slo", "--spec", self.SPEC, "--store", str(store),
                    "--window", "4", "--dump", str(path),
                ]
            ) == 0
            dumps.append(path.read_bytes())
        capsys.readouterr()
        assert dumps[0] == dumps[1]
        doc = json.loads(dumps[0])
        assert doc["schema"] == "repro-slo-report/1"
        assert doc["records"] == 11  # 10 jobs + 1 session record

    def test_openmetrics_output_parses(self, tmp_path, capsys):
        from repro.obs.export import parse_openmetrics

        store = self._store(tmp_path)
        out = tmp_path / "metrics.om"
        code = main(
            [
                "slo", "--spec", self.SPEC, "--store", str(store),
                "--openmetrics", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        families = parse_openmetrics(out.read_text())
        assert "service_latency_ticks" in families

    def test_window_must_be_non_negative(self, tmp_path, capsys):
        store = self._store(tmp_path)
        code = main(
            [
                "slo", "--spec", self.SPEC, "--store", str(store),
                "--window", "-1",
            ]
        )
        assert code == 2


class TestReportSloFlag:
    def test_report_gates_on_violated_slo(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert main(
            [
                "serve", "--seed", "7", "--jobs", "10",
                "--store", str(store),
                "--timestamp", "2026-08-08T00:00:00Z",
            ]
        ) == 0
        spec = tmp_path / "strict.json"
        doc = json.loads(open("benchmarks/slo/service.json").read())
        doc["objectives"][2]["budget"] = 1e-9
        spec.write_text(json.dumps(doc))
        code = main(
            [
                "report", "--store", str(store),
                "--slo-spec", str(spec),
            ]
        )
        capsys.readouterr()
        assert code == 1

    def test_report_with_passing_slo_exits_zero(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert main(
            [
                "serve", "--seed", "7", "--jobs", "10",
                "--store", str(store),
                "--timestamp", "2026-08-08T00:00:00Z",
            ]
        ) == 0
        code = main(
            [
                "report", "--store", str(store),
                "--slo-spec", "benchmarks/slo/service.json",
                "--slo-window", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SLO 'service-batch'" in out
