"""Tests for predictor-suite persistence."""

import numpy as np
import pytest

from repro.core.persistence import load_suite, save_suite
from repro.core.predict import DatasetSpec, build_datasets, train_predictors
from repro.eda.job import EDAStage
from repro.gnn.graph import PreparedGraph
from repro.netlist import aig_to_graph, benchmarks, netlist_to_star_graph
from repro.eda.synthesis import SynthesisEngine


@pytest.fixture(scope="module")
def trained_suite():
    spec = DatasetSpec(
        designs=("ctrl", "adder", "router", "voter"),
        variants_per_design=2,
        scale=0.3,
    )
    datasets = build_datasets(spec)
    return train_predictors(
        datasets, epochs=5, lr=1e-3, hidden1=16, hidden2=8, fc_units=8
    )


def test_roundtrip_predictions_identical(tmp_path, trained_suite):
    path = str(tmp_path / "suite.npz")
    save_suite(trained_suite, path)
    restored = load_suite(path)

    aig = benchmarks.build("mem_ctrl", 0.25)
    netlist = SynthesisEngine().run(aig).artifact
    aig_graph = aig_to_graph(aig)
    net_graph = netlist_to_star_graph(netlist)

    original = trained_suite.predict_stage_runtimes(aig_graph, net_graph)
    loaded = restored.predict_stage_runtimes(aig_graph, net_graph)
    for stage in EDAStage.ordered():
        for v in (1, 2, 4, 8):
            assert loaded[stage][v] == pytest.approx(original[stage][v])


def test_all_stages_restored(tmp_path, trained_suite):
    path = str(tmp_path / "suite.npz")
    save_suite(trained_suite, path)
    restored = load_suite(path)
    assert set(restored.predictors) == set(trained_suite.predictors)
    for stage, predictor in restored.predictors.items():
        src = trained_suite.predictors[stage]
        assert np.allclose(predictor.target_offset, src.target_offset)
        assert np.allclose(predictor.target_std, src.target_std)
        assert predictor.model.num_parameters() == src.model.num_parameters()


def test_bad_version_rejected(tmp_path, trained_suite):
    path = str(tmp_path / "suite.npz")
    save_suite(trained_suite, path)
    data = dict(np.load(path, allow_pickle=False))
    data["__version__"] = np.array([99])
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError):
        load_suite(path)


def _resave_without(path, predicate):
    """Round-trip the archive, dropping every key matching ``predicate``."""
    data = dict(np.load(path, allow_pickle=False))
    np.savez_compressed(
        path, **{k: v for k, v in data.items() if not predicate(k)}
    )


class TestCorruptArchives:
    """Corrupt/truncated archives must raise a ValueError naming the
    archive path and the missing key — never a bare KeyError or zlib
    error from deep inside numpy."""

    def test_truncated_archive(self, tmp_path, trained_suite):
        path = str(tmp_path / "suite.npz")
        save_suite(trained_suite, path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="corrupted predictor archive"):
            load_suite(path)

    def test_not_an_archive_at_all(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        open(path, "wb").write(b"this is not a zip file")
        with pytest.raises(ValueError, match="corrupted predictor archive"):
            load_suite(path)

    def test_missing_stage_index(self, tmp_path, trained_suite):
        path = str(tmp_path / "suite.npz")
        save_suite(trained_suite, path)
        _resave_without(path, lambda k: k == "__stages__")
        with pytest.raises(ValueError, match="missing key '__stages__'"):
            load_suite(path)

    def test_empty_stage_index(self, tmp_path, trained_suite):
        path = str(tmp_path / "suite.npz")
        save_suite(trained_suite, path)
        data = dict(np.load(path, allow_pickle=False))
        data["__stages__"] = np.array([], dtype="U16")
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="'__stages__' is empty"):
            load_suite(path)

    def test_missing_metadata_key(self, tmp_path, trained_suite):
        path = str(tmp_path / "suite.npz")
        save_suite(trained_suite, path)
        _resave_without(path, lambda k: k.endswith("/offset"))
        with pytest.raises(ValueError, match="missing key") as info:
            load_suite(path)
        assert "/offset" in str(info.value)
        assert path in str(info.value)

    def test_missing_weights(self, tmp_path, trained_suite):
        path = str(tmp_path / "suite.npz")
        save_suite(trained_suite, path)
        stage = next(iter(trained_suite.predictors)).value
        _resave_without(
            path, lambda k: k.startswith(f"{stage}/param")
        )
        with pytest.raises(ValueError, match="missing key") as info:
            load_suite(path)
        assert f"{stage}/param0" in str(info.value)
