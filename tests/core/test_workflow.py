"""Tests for the end-to-end Figure 1 workflow and report renderers."""

import pytest

from repro.cloud import InstanceFamily
from repro.core import report as report_mod
from repro.core.optimize import build_stage_options, solve_mckp_dp
from repro.core.workflow import CloudDeploymentWorkflow
from repro.eda.job import EDAStage


STAGE_RUNTIMES = {
    EDAStage.SYNTHESIS: {1: 6100.0, 2: 4342.0, 4: 3449.0, 8: 3352.0},
    EDAStage.PLACEMENT: {1: 1206.0, 2: 905.0, 4: 644.0, 8: 519.0},
    EDAStage.ROUTING: {1: 10461.0, 2: 5514.0, 4: 2894.0, 8: 1692.0},
    EDAStage.STA: {1: 183.0, 2: 119.0, 4: 90.0, 8: 82.0},
}


class TestOptimizeDeployment:
    def test_feasible_outcome(self):
        wf = CloudDeploymentWorkflow()
        outcome = wf.optimize_deployment(STAGE_RUNTIMES, 10000, design="sparc")
        assert outcome.feasible
        plan = outcome.plan()
        assert plan.total_runtime <= 10000
        assert plan.total_cost > 0
        assert len(plan.assignments) == 4

    def test_infeasible_outcome(self):
        wf = CloudDeploymentWorkflow()
        outcome = wf.optimize_deployment(STAGE_RUNTIMES, 1000, design="sparc")
        assert not outcome.feasible
        with pytest.raises(ValueError):
            outcome.plan()

    def test_families_follow_recommendations(self):
        wf = CloudDeploymentWorkflow()
        outcome = wf.optimize_deployment(STAGE_RUNTIMES, 12000)
        plan = outcome.plan()
        by_stage = {a.stage: a.vm.family for a in plan.assignments}
        assert by_stage[EDAStage.ROUTING] == InstanceFamily.MEMORY_OPTIMIZED
        assert by_stage[EDAStage.SYNTHESIS] == InstanceFamily.GENERAL_PURPOSE

    def test_predict_requires_training(self):
        wf = CloudDeploymentWorkflow()
        from repro.netlist import benchmarks

        with pytest.raises(ValueError):
            wf.predict_runtimes(benchmarks.build("ctrl", 0.3))


class TestReportRenderers:
    def test_render_table1(self):
        stages = build_stage_options(STAGE_RUNTIMES)
        constraints = [10000, 6000, 1000]
        selections = {c: solve_mckp_dp(stages, c) for c in constraints}
        text = report_mod.render_table1(stages, constraints, selections)
        assert "Synthesis" in text
        assert "NA" in text  # the infeasible row
        assert "Runtime (sec) per configuration" in text

    def test_render_figure6(self):
        rows = [
            dict(
                constraint=10000,
                optimized=0.41,
                over=0.75,
                under=0.54,
                saving_over=45.3,
                saving_under=24.1,
            )
        ]
        text = report_mod.render_figure6(rows)
        assert "Average cost saving" in text
        assert "45.3%" in text

    def test_render_figure5(self):
        text = report_mod.render_figure5(
            {"netlist models": {"0-10%": 5, "10-20%": 2}},
            {"netlist models": 0.13},
        )
        assert "13.0%" in text
        assert "#" in text

    def test_render_figure3(self):
        text = report_mod.render_figure3(
            {"dynamic_node": {1: 1.0, 8: 2.0}, "sparc_core": {1: 1.0, 8: 6.0}}
        )
        assert "dynamic_node" in text
        assert "6.00x" in text

    def test_format_table_alignment(self):
        text = report_mod.format_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # fixed width
