"""Tests for dataset building and the predictor suite (Problem 2)."""

import numpy as np
import pytest

from repro.core.predict import (
    DatasetSpec,
    PredictorSuite,
    build_datasets,
    train_predictors,
)
from repro.eda.job import EDAStage
from repro.netlist import aig_to_graph, benchmarks, netlist_to_star_graph
from repro.eda.synthesis import SynthesisEngine


@pytest.fixture(scope="module")
def tiny_datasets():
    spec = DatasetSpec(
        designs=("ctrl", "adder", "router", "voter", "dec", "priority"),
        variants_per_design=2,
        scale=0.35,
        seed=1,
    )
    return build_datasets(spec)


class TestDatasetBuilding:
    def test_counts(self, tiny_datasets):
        for stage in EDAStage.ordered():
            assert len(tiny_datasets[stage]) == 6 * 2

    def test_runtimes_positive_and_mostly_decreasing(self, tiny_datasets):
        """More vCPUs help up to 4; tiny designs may plateau (or slightly
        regress) at 8 — the paper's own Figure 3 observation."""
        for stage, samples in tiny_datasets.items():
            for s in samples:
                assert np.all(s.runtimes > 0)
                # 1 vCPU is never faster than any wider VM...
                assert s.runtimes[0] == pytest.approx(s.runtimes.max())
                assert s.runtimes[0] > s.runtimes[1]
                # ...and past the plateau nothing regresses much.
                assert s.runtimes.min() >= 0.8 * s.runtimes[1:].max() or (
                    s.runtimes[1] >= s.runtimes[2] * 0.95
                )

    def test_synthesis_uses_aig_graph(self, tiny_datasets):
        from repro.netlist.stargraph import AIG_FEATURE_DIM, NETLIST_FEATURE_DIM

        assert (
            tiny_datasets[EDAStage.SYNTHESIS][0].graph.feature_dim == AIG_FEATURE_DIM
        )
        assert (
            tiny_datasets[EDAStage.ROUTING][0].graph.feature_dim
            == NETLIST_FEATURE_DIM
        )

    def test_variants_differ_structurally(self, tiny_datasets):
        """Most designs produce structurally distinct variants (tiny
        designs like a 3-bit decoder can collapse to the same graph)."""
        samples = tiny_datasets[EDAStage.PLACEMENT]
        by_design = {}
        for s in samples:
            by_design.setdefault(s.design, []).append(s)
        distinct = sum(
            1
            for group in by_design.values()
            if len({g.graph.num_nodes for g in group}) > 1
        )
        assert distinct >= len(by_design) // 2

    def test_dataset_deterministic(self):
        spec = DatasetSpec(designs=("ctrl", "adder"), variants_per_design=1, scale=0.3)
        a = build_datasets(spec)
        b = build_datasets(spec)
        ra = a[EDAStage.SYNTHESIS][0].runtimes
        rb = b[EDAStage.SYNTHESIS][0].runtimes
        assert np.allclose(ra, rb)


class TestTraining:
    @pytest.fixture(scope="class")
    def suite(self, tiny_datasets):
        return train_predictors(
            tiny_datasets, epochs=15, lr=1e-3, hidden1=32, hidden2=16, fc_units=16
        )

    def test_one_predictor_per_stage(self, suite):
        assert set(suite.predictors) == set(EDAStage.ordered())

    def test_predict_returns_four_runtimes(self, suite):
        aig = benchmarks.build("mem_ctrl", 0.3)
        netlist = SynthesisEngine().run(aig).artifact
        runtimes = suite.predict_stage_runtimes(
            aig_to_graph(aig), netlist_to_star_graph(netlist)
        )
        for stage in EDAStage.ordered():
            assert set(runtimes[stage]) == {1, 2, 4, 8}
            assert all(v > 0 for v in runtimes[stage].values())

    def test_accuracy_metric(self, suite):
        for stage, predictor in suite.predictors.items():
            assert predictor.accuracy == pytest.approx(
                100.0 * (1 - predictor.test_eval.mean_error)
            )

    def test_mean_error_aggregation(self, suite):
        all_err = suite.mean_error()
        assert 0 <= all_err
        sub = suite.mean_error([EDAStage.SYNTHESIS])
        assert sub == suite.predictors[EDAStage.SYNTHESIS].test_eval.mean_error
