"""Tests for the structured experiment runner."""

import json

import pytest

from repro.core.experiments import run_figure2, run_figure3, run_table1_figure6


@pytest.fixture(scope="module")
def fig2():
    return run_figure2(design="router", scale=0.6, sample_rate=8)


class TestFigure2Runner:
    def test_all_panels_present(self, fig2):
        for key in (
            "branch_miss_rates",
            "cache_miss_rates",
            "avx_shares",
            "speedups",
            "recommended_families",
            "runtimes",
        ):
            assert key in fig2

    def test_stage_keys_are_strings(self, fig2):
        assert set(fig2["speedups"]) == {"synthesis", "placement", "routing", "sta"}

    def test_json_serializable(self, fig2):
        json.dumps(fig2)  # must not raise

    def test_speedups_start_at_one(self, fig2):
        for series in fig2["speedups"].values():
            assert series[1] == pytest.approx(1.0)


class TestFigure3Runner:
    def test_structure(self):
        out = run_figure3(designs=(("dynamic_node", 0.6), ("fpu", 0.6)), vcpus=(1, 8))
        assert set(out["speedups"]) == {"dynamic_node", "fpu"}
        assert out["instances"]["fpu"] > out["instances"]["dynamic_node"]
        json.dumps(out)


class TestTable1Runner:
    def test_menu_and_selections(self, fig2):
        # reuse the router characterization through an explicit report
        from repro.core.characterize import characterize

        report = characterize("router", scale=0.6, sample_rate=8)
        out = run_table1_figure6(report=report, num_deadlines=4)
        assert set(out["menu"]) == {"synthesis", "placement", "routing", "sta"}
        feasible = [r for r in out["selections"] if r["feasible"]]
        infeasible = [r for r in out["selections"] if not r["feasible"]]
        assert feasible and infeasible
        assert out["over_provisioning_cost"] > 0
        assert -100 <= out["average_saving_pct"] <= 100  # tiny designs near tight deadlines can dip negative vs under-provisioning
        json.dumps(out)
