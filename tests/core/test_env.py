"""Tests for the environment-variable parsing helpers."""

import pytest

from repro.core.env import env_float, env_int


class TestEnvFloat:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SCALE", raising=False)
        assert env_float("REPRO_TEST_SCALE", 0.5) == 0.5

    def test_empty_string_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "")
        assert env_float("REPRO_TEST_SCALE", 0.5) == 0.5
        monkeypatch.setenv("REPRO_TEST_SCALE", "   ")
        assert env_float("REPRO_TEST_SCALE", 0.5) == 0.5

    def test_parses_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "0.25")
        assert env_float("REPRO_TEST_SCALE", 1.0) == 0.25
        monkeypatch.setenv("REPRO_TEST_SCALE", "1e-3")
        assert env_float("REPRO_TEST_SCALE", 1.0) == 1e-3
        monkeypatch.setenv("REPRO_TEST_SCALE", "-2")
        assert env_float("REPRO_TEST_SCALE", 1.0) == -2.0

    def test_malformed_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "fast")
        with pytest.raises(ValueError) as excinfo:
            env_float("REPRO_TEST_SCALE", 0.5)
        message = str(excinfo.value)
        assert "REPRO_TEST_SCALE" in message
        assert "'fast'" in message
        assert "float" in message

    def test_error_suggests_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "oops")
        with pytest.raises(ValueError, match="0.5"):
            env_float("REPRO_TEST_SCALE", 0.5)


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_EPOCHS", raising=False)
        assert env_int("REPRO_TEST_EPOCHS", 3) == 3

    def test_empty_string_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_EPOCHS", "")
        assert env_int("REPRO_TEST_EPOCHS", 3) == 3

    def test_parses_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_EPOCHS", "12")
        assert env_int("REPRO_TEST_EPOCHS", 3) == 12
        monkeypatch.setenv("REPRO_TEST_EPOCHS", "-1")
        assert env_int("REPRO_TEST_EPOCHS", 3) == -1

    def test_float_string_is_rejected(self, monkeypatch):
        # int("2.5") fails in Python; the error must still name the var.
        monkeypatch.setenv("REPRO_TEST_EPOCHS", "2.5")
        with pytest.raises(ValueError, match="REPRO_TEST_EPOCHS"):
            env_int("REPRO_TEST_EPOCHS", 3)

    def test_malformed_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_EPOCHS", "many")
        with pytest.raises(ValueError) as excinfo:
            env_int("REPRO_TEST_EPOCHS", 3)
        message = str(excinfo.value)
        assert "REPRO_TEST_EPOCHS" in message
        assert "'many'" in message
        assert "integer" in message


class TestBenchmarksConftestUsesHelpers:
    def test_conftest_has_no_bare_casts(self):
        """benchmarks/conftest.py must route env parsing through env.py."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        text = (root / "benchmarks" / "conftest.py").read_text()
        assert "env_float" in text and "env_int" in text
        assert "float(os.environ" not in text
        assert "int(os.environ" not in text
