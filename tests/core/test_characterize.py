"""Tests for the characterization pipeline (Problem 1 / Figure 2)."""

import pytest

from repro.cloud import InstanceFamily
from repro.core.characterize import (
    CharacterizationReport,
    StageCharacterization,
    characterize,
    recommend_family,
)
from repro.eda.job import EDAStage
from repro.perf import PerfCounters


def synthetic_stage(stage, cache_miss, avx, speedup8):
    """Build a StageCharacterization with prescribed counter shapes."""
    char = StageCharacterization(stage=stage)
    for v in (1, 8):
        c = PerfCounters(
            instructions=1000,
            branches=100,
            branch_misses=5,
            l1_hits=800,
            l1_misses=200,
            llc_hits=int(200 * (1 - cache_miss)),
            llc_misses=int(200 * cache_miss),
            fp_avx_ops=int(4000 * avx),
        )
        char.counters[v] = c
        char.runtimes[v] = 1000.0 if v == 1 else 1000.0 / speedup8
    return char


class TestRecommendationRules:
    def test_memory_hungry_gets_memory_optimized(self):
        char = synthetic_stage(EDAStage.PLACEMENT, cache_miss=0.45, avx=0.3, speedup8=2.3)
        assert recommend_family(char) == InstanceFamily.MEMORY_OPTIMIZED

    def test_balanced_gets_general_purpose(self):
        char = synthetic_stage(EDAStage.SYNTHESIS, cache_miss=0.10, avx=0.0, speedup8=1.8)
        assert recommend_family(char) == InstanceFamily.GENERAL_PURPOSE

    def test_report_recommendations(self):
        report = CharacterizationReport(design="x")
        report.stages[EDAStage.SYNTHESIS] = synthetic_stage(
            EDAStage.SYNTHESIS, 0.12, 0.0, 1.8
        )
        report.stages[EDAStage.PLACEMENT] = synthetic_stage(
            EDAStage.PLACEMENT, 0.45, 0.3, 2.3
        )
        report.stages[EDAStage.ROUTING] = synthetic_stage(
            EDAStage.ROUTING, 0.28, 0.0, 6.2
        )
        report.stages[EDAStage.STA] = synthetic_stage(EDAStage.STA, 0.12, 0.1, 2.2)
        fams = report.recommended_families()
        assert fams[EDAStage.SYNTHESIS] == InstanceFamily.GENERAL_PURPOSE
        assert fams[EDAStage.PLACEMENT] == InstanceFamily.MEMORY_OPTIMIZED
        assert fams[EDAStage.ROUTING] == InstanceFamily.MEMORY_OPTIMIZED
        assert fams[EDAStage.STA] == InstanceFamily.GENERAL_PURPOSE

        avx = report.wants_avx()
        assert avx[EDAStage.PLACEMENT] and avx[EDAStage.STA]
        assert not avx[EDAStage.SYNTHESIS] and not avx[EDAStage.ROUTING]

        scaling = report.scales_well()
        assert scaling[EDAStage.ROUTING]
        assert not scaling[EDAStage.SYNTHESIS]

        text = "\n".join(report.recommendations_text())
        assert "general-purpose" in text
        assert "memory-to-core" in text
        assert "AVX" in text

    def test_speedup_computation(self):
        char = synthetic_stage(EDAStage.ROUTING, 0.3, 0.0, 6.0)
        assert char.speedup(8) == pytest.approx(6.0)
        assert char.speedups[1] == pytest.approx(1.0)

    def test_empty_counters_rejected(self):
        with pytest.raises(ValueError):
            recommend_family(StageCharacterization(stage=EDAStage.STA))


class TestLiveCharacterization:
    """One real (small, coarse-sampled) characterization run."""

    @pytest.fixture(scope="class")
    def report(self):
        return characterize(
            "sparc_core", scale=0.8, vcpu_levels=(1, 8), sample_rate=8
        )

    def test_all_stages_measured(self, report):
        assert set(report.stages) == set(EDAStage.ordered())
        for char in report.stages.values():
            assert set(char.runtimes) == {1, 8}
            assert set(char.counters) == {1, 8}

    def test_figure2a_routing_has_highest_branch_misses(self, report):
        rates = {
            s: sum(c.branch_miss_rates().values()) for s, c in report.stages.items()
        }
        assert max(rates, key=rates.get) == EDAStage.ROUTING

    def test_figure2c_placement_leads_avx_then_sta(self, report):
        shares = {
            s: sum(c.avx_shares().values()) for s, c in report.stages.items()
        }
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert ordered[0] == EDAStage.PLACEMENT
        assert ordered[1] == EDAStage.STA

    def test_figure2d_routing_scales_best_synthesis_worst(self, report):
        spd = {s: c.speedup(8) for s, c in report.stages.items()}
        assert max(spd, key=spd.get) == EDAStage.ROUTING
        assert min(spd, key=spd.get) == EDAStage.SYNTHESIS

    def test_stage_runtimes_feed_optimizer(self, report):
        runtimes = report.stage_runtimes()
        assert all(
            runtimes[s][1] > runtimes[s][8] > 0 for s in EDAStage.ordered()
        )
