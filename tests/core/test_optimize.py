"""Tests for the MCKP deployment optimizer (Problem 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import InstanceFamily, VMConfig, aws_like_catalog
from repro.core.optimize import (
    ConfigOption,
    Selection,
    StageOptions,
    build_stage_options,
    cost_saving_percent,
    enumerate_feasible,
    over_provisioning,
    solve_brute_force,
    solve_greedy,
    solve_mckp_dp,
    solve_min_cost_dp,
    under_provisioning,
)
from repro.eda.job import EDAStage


def _vm(vcpus, price_per_hour):
    return VMConfig(
        name=f"vm{vcpus}x{price_per_hour}",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=vcpus,
        memory_gb=4.0 * vcpus,
        price_per_hour=price_per_hour,
    )


def make_stage(stage, entries):
    """entries: list of (vcpus, runtime_seconds, total_price)."""
    options = [
        ConfigOption(vm=_vm(v, 1.0 + i), runtime_seconds=t, price=p)
        for i, (v, t, p) in enumerate(entries)
    ]
    return StageOptions(stage=stage, options=options)


PAPER_LIKE_STAGES = [
    make_stage(
        EDAStage.SYNTHESIS,
        [(1, 6100, 0.16), (2, 4342, 0.15), (4, 3449, 0.19), (8, 3352, 0.37)],
    ),
    make_stage(
        EDAStage.PLACEMENT,
        [(1, 1206, 0.04), (2, 905, 0.04), (4, 644, 0.05), (8, 519, 0.08)],
    ),
    make_stage(
        EDAStage.ROUTING,
        [(1, 10461, 0.32), (2, 5514, 0.25), (4, 2894, 0.21), (8, 1692, 0.25)],
    ),
    make_stage(
        EDAStage.STA,
        [(1, 183, 0.02), (2, 119, 0.01), (4, 90, 0.02), (8, 82, 0.05)],
    ),
]


class TestPaperTableI:
    """Reproduce Table I's selections from the paper's own numbers."""

    def test_loose_constraint_10000(self):
        sel = solve_mckp_dp(PAPER_LIKE_STAGES, 10000)
        assert sel is not None
        assert sel.total_runtime <= 10000
        # The paper's row reaches total cost $0.41 (with 1v/2v placement
        # ties at $0.04 either way); the objective value must match.
        assert sel.total_cost == pytest.approx(0.41, abs=0.005)

    def test_selection_matches_paper_row_10000(self):
        sel = solve_mckp_dp(PAPER_LIKE_STAGES, 10000)
        chosen = {s.value: sel.choices[s].runtime_seconds for s in sel.choices}
        assert chosen["synthesis"] == 4342  # 2 vCPUs
        assert chosen["routing"] == 2894  # 4 vCPUs
        # placement/STA pick the cheapest (1/p max) feasible options
        assert sel.choices[EDAStage.PLACEMENT].price == 0.04
        assert sel.choices[EDAStage.STA].price == 0.01

    def test_tightening_constraints_escalates_configs(self):
        costs = []
        for deadline in (10000, 6000, 5645):
            sel = solve_mckp_dp(PAPER_LIKE_STAGES, deadline)
            assert sel is not None
            assert sel.total_runtime <= deadline
            costs.append(sel.total_cost)
        assert costs == sorted(costs)  # tighter deadline costs more

    def test_infeasible_is_na(self):
        """The paper's 5000-second row: not achievable."""
        fastest = sum(s.fastest.runtime_seconds for s in PAPER_LIKE_STAGES)
        assert fastest == 3352 + 519 + 1692 + 82  # 5645
        assert solve_mckp_dp(PAPER_LIKE_STAGES, 5000) is None
        assert solve_mckp_dp(PAPER_LIKE_STAGES, 5645) is not None

    def test_exact_boundary(self):
        sel = solve_mckp_dp(PAPER_LIKE_STAGES, 5645)
        assert sel.total_runtime == 5645
        for stage_opts in PAPER_LIKE_STAGES:
            assert sel.choices[stage_opts.stage] == stage_opts.fastest


class TestOptimality:
    @st.composite
    def random_instance(draw):
        num_stages = draw(st.integers(1, 4))
        stages = []
        stage_names = list(EDAStage.ordered())
        for i in range(num_stages):
            num_opts = draw(st.integers(1, 4))
            entries = []
            for v in range(num_opts):
                t = draw(st.integers(1, 60))
                p = draw(st.floats(0.01, 2.0))
                entries.append((2 ** v, t, round(p, 3)))
            stages.append(make_stage(stage_names[i], entries))
        deadline = draw(st.integers(1, 200))
        return stages, deadline

    @given(random_instance())
    @settings(max_examples=120, deadline=None)
    def test_dp_matches_brute_force_objective(self, instance):
        stages, deadline = instance
        dp = solve_mckp_dp(stages, deadline)
        bf = solve_brute_force(stages, deadline, maximize_inverse_price=True)
        if bf is None:
            assert dp is None
        else:
            assert dp is not None
            assert dp.total_runtime <= deadline
            assert dp.objective_inverse_price == pytest.approx(
                bf.objective_inverse_price
            )

    @given(random_instance())
    @settings(max_examples=120, deadline=None)
    def test_min_cost_dp_matches_brute_force(self, instance):
        stages, deadline = instance
        dp = solve_min_cost_dp(stages, deadline)
        bf = solve_brute_force(stages, deadline, maximize_inverse_price=False)
        if bf is None:
            assert dp is None
        else:
            assert dp is not None
            assert dp.total_cost == pytest.approx(bf.total_cost)

    @given(random_instance())
    @settings(max_examples=80, deadline=None)
    def test_greedy_feasible_but_not_cheaper_than_optimal(self, instance):
        stages, deadline = instance
        greedy = solve_greedy(stages, deadline)
        optimal = solve_min_cost_dp(stages, deadline)
        if greedy is not None:
            assert greedy.total_runtime <= deadline
            assert optimal is not None
            assert optimal.total_cost <= greedy.total_cost + 1e-9


class TestBaselines:
    def test_over_provisioning_uses_largest(self):
        sel = over_provisioning(PAPER_LIKE_STAGES)
        assert all(o.vm.vcpus == 8 for o in sel.choices.values())
        assert sel.total_runtime == 5645
        assert sel.total_cost == pytest.approx(0.75)

    def test_under_provisioning_uses_smallest(self):
        sel = under_provisioning(PAPER_LIKE_STAGES)
        assert all(o.vm.vcpus == 1 for o in sel.choices.values())
        assert sel.total_cost == pytest.approx(0.54)

    def test_cost_saving_percent(self):
        assert cost_saving_percent(0.41, 0.75) == pytest.approx(45.33, abs=0.01)
        with pytest.raises(ValueError):
            cost_saving_percent(1.0, 0.0)


class TestBuildStageOptions:
    def test_from_runtimes_and_catalog(self):
        runtimes = {
            EDAStage.SYNTHESIS: {1: 6100.4, 2: 4342.0},
            EDAStage.ROUTING: {1: 10461.0, 8: 1692.0},
        }
        stages = build_stage_options(runtimes, catalog=aws_like_catalog())
        assert len(stages) == 2
        synth = stages[0]
        assert synth.stage == EDAStage.SYNTHESIS
        assert synth.options[0].runtime_seconds == 6100  # rounded
        assert synth.options[0].vm.family == InstanceFamily.GENERAL_PURPOSE
        routing = stages[1]
        assert routing.options[0].vm.family == InstanceFamily.MEMORY_OPTIMIZED

    def test_prices_are_per_second_billed(self):
        runtimes = {EDAStage.STA: {1: 100.0}}
        stages = build_stage_options(runtimes)
        opt = stages[0].options[0]
        assert opt.price == pytest.approx(100 * opt.vm.price_per_second)

    def test_selection_to_plan(self):
        sel = solve_mckp_dp(PAPER_LIKE_STAGES, 10000)
        plan = sel.to_plan("sparc_core")
        assert plan.total_runtime == sel.total_runtime
        assert len(plan.assignments) == 4


class TestEdgeCases:
    def test_empty_stages(self):
        assert solve_mckp_dp([], 100).total_cost == 0

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            solve_mckp_dp(PAPER_LIKE_STAGES, 0)

    def test_empty_options_rejected(self):
        with pytest.raises(ValueError):
            StageOptions(stage=EDAStage.STA, options=[])

    def test_objective_divergence_exists(self):
        """Max sum(1/p) is NOT min cost: exhibit a divergent instance."""
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 10, 1.0), (2, 10, 0.9)]),
            make_stage(EDAStage.PLACEMENT, [(1, 10, 0.1), (2, 10, 0.12)]),
        ]
        # both objectives feasible at deadline 100
        inv = solve_mckp_dp(stages, 100)
        cost = solve_min_cost_dp(stages, 100)
        # min-cost picks 0.9 + 0.1 = 1.0; inverse-price also picks those,
        # so craft a sharper divergence:
        stages2 = [
            make_stage(EDAStage.SYNTHESIS, [(1, 10, 0.5), (2, 10, 0.45)]),
            make_stage(EDAStage.PLACEMENT, [(1, 10, 0.05), (2, 10, 0.01)]),
        ]
        inv2 = solve_mckp_dp(stages2, 100)
        cost2 = solve_min_cost_dp(stages2, 100)
        # 1/p rewards tiny prices enormously; both pick 0.01 placement,
        # but inverse-price may tolerate pricier synthesis if it frees time.
        assert cost2.total_cost <= inv2.total_cost + 1e-12


class TestGreedyTieBreaking:
    """solve_greedy uses strict ``>`` on the time/$ ratio: the first
    candidate encountered (stage insertion order, then option list
    order) wins every tie, deterministically."""

    def test_equal_ratio_upgrades_first_stage_wins(self):
        # Both stages offer the identical upgrade: save 10s for $1
        # (ratio 10.0).  One upgrade meets the deadline; the tie must
        # go to the first-listed stage.
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 20, 1.0), (2, 10, 2.0)]),
            make_stage(EDAStage.PLACEMENT, [(1, 20, 1.0), (2, 10, 2.0)]),
        ]
        sel = solve_greedy(stages, 30)
        assert sel is not None
        assert sel.choices[EDAStage.SYNTHESIS].runtime_seconds == 10
        assert sel.choices[EDAStage.PLACEMENT].runtime_seconds == 20

    def test_equal_ratio_within_stage_first_option_wins(self):
        # Two distinct upgrades inside one stage share ratio 10.0; the
        # earlier-listed option is bought.
        stages = [
            make_stage(
                EDAStage.SYNTHESIS,
                [(1, 30, 1.0), (2, 20, 2.0), (4, 10, 3.0)],
            ),
        ]
        # Deadline 20: one upgrade of 10s saved suffices.  Option index
        # 1 (save 10 for $1) and index 2 (save 20 for $2) tie at 10.0;
        # index 1 comes first in the list.
        sel = solve_greedy(stages, 20)
        assert sel is not None
        assert sel.choices[EDAStage.SYNTHESIS].runtime_seconds == 20

    def test_free_upgrade_beats_any_paid_ratio(self):
        # A faster option at the SAME price has extra <= 0 -> the 1e-9
        # clamp makes its ratio astronomically large, beating any paid
        # upgrade no matter how good.
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 20, 1.0), (2, 15, 1.0)]),
            make_stage(EDAStage.PLACEMENT, [(1, 20, 1.0), (2, 5, 1.001)]),
        ]
        sel = solve_greedy(stages, 35)
        assert sel is not None
        # The free synthesis upgrade (save 5 for $0) is taken, not the
        # near-free placement one (save 15 for $0.001, ratio 15000).
        assert sel.choices[EDAStage.SYNTHESIS].runtime_seconds == 15
        assert sel.choices[EDAStage.PLACEMENT].runtime_seconds == 20

    def test_deterministic_across_calls(self):
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 20, 1.0), (2, 10, 2.0)]),
            make_stage(EDAStage.PLACEMENT, [(1, 20, 1.0), (2, 10, 2.0)]),
        ]
        picks = {
            tuple(
                (s.value, o.runtime_seconds)
                for s, o in solve_greedy(stages, 30).choices.items()
            )
            for _ in range(5)
        }
        assert len(picks) == 1

    def test_returns_none_when_unmeetable(self):
        stages = [make_stage(EDAStage.SYNTHESIS, [(1, 100, 1.0)])]
        assert solve_greedy(stages, 50) is None


class TestEnumerateFeasibleDegenerate:
    def test_single_option_per_stage_feasible(self):
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 10, 1.0)]),
            make_stage(EDAStage.PLACEMENT, [(1, 5, 0.5)]),
        ]
        selections = list(enumerate_feasible(stages, 15))
        assert len(selections) == 1
        assert selections[0].total_runtime == 15

    def test_single_option_per_stage_infeasible(self):
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 10, 1.0)]),
            make_stage(EDAStage.PLACEMENT, [(1, 5, 0.5)]),
        ]
        assert list(enumerate_feasible(stages, 14)) == []

    def test_infeasible_deadline_empty_not_error(self):
        assert list(enumerate_feasible(PAPER_LIKE_STAGES, 1)) == []

    def test_zero_runtime_stage_costs_no_capacity(self):
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 0, 0.3), (2, 0, 0.1)]),
            make_stage(EDAStage.PLACEMENT, [(1, 10, 1.0), (2, 4, 2.0)]),
        ]
        # The zero-runtime stage never constrains: at deadline 10 all
        # four combos fit except none are excluded by the 0s options.
        selections = list(enumerate_feasible(stages, 10))
        assert len(selections) == 4
        # And the DP agrees a zero-runtime stage is free capacity-wise.
        sel = solve_mckp_dp(stages, 4)
        assert sel is not None
        assert sel.choices[EDAStage.PLACEMENT].runtime_seconds == 4

    def test_empty_stage_list_yields_empty_selection(self):
        selections = list(enumerate_feasible([], 10))
        assert len(selections) == 1
        assert selections[0].choices == {}

    def test_nonpositive_deadline_raises(self):
        with pytest.raises(ValueError):
            list(enumerate_feasible(PAPER_LIKE_STAGES, 0))

    def test_count_matches_product_minus_infeasible(self):
        stages = [
            make_stage(EDAStage.SYNTHESIS, [(1, 3, 1.0), (2, 1, 2.0)]),
            make_stage(EDAStage.PLACEMENT, [(1, 3, 1.0), (2, 1, 2.0)]),
        ]
        # runtimes: 6, 4, 4, 2 -> at deadline 4, three combos fit.
        assert len(list(enumerate_feasible(stages, 4))) == 3
