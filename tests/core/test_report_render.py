"""Edge-case tests for the report renderers."""

import pytest

from repro.core.report import format_table, render_figure5


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 2

    def test_cells_coerced_to_strings(self):
        text = format_table(["x"], [[42], [3.5]])
        assert "42" in text and "3.5" in text

    def test_width_tracks_longest_cell(self):
        text = format_table(["h"], [["a" * 30]])
        assert max(len(l) for l in text.splitlines()) >= 30


class TestFigure5Renderer:
    def test_empty_histogram_bucket(self):
        text = render_figure5({"m": {"0-10%": 0}}, {"m": 0.0})
        assert "0-10%" in text
        assert "0.0%" in text

    def test_bar_lengths_proportional(self):
        text = render_figure5(
            {"m": {"low": 30, "high": 10}}, {"m": 0.2}
        )
        lines = {l.split("|")[0].strip(): l for l in text.splitlines() if "|" in l}
        low_bar = lines["low"].count("#")
        high_bar = lines["high"].count("#")
        assert low_bar == 3 * high_bar
