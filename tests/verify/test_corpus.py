"""Replay corpus: format round-trips, recording semantics, tier-1 replay.

The last class is the point of the whole mechanism: every entry in the
real ``tests/verify/corpus.txt`` — one per oracle plus every historical
fuzz failure — replays as an ordinary parametrized test, so a
once-found oracle violation can never silently come back.
"""

import os

import pytest

from repro.verify import (
    CorpusEntry,
    append_failures,
    format_entry,
    load_corpus,
    parse_corpus,
    replay_corpus,
    replay_entry,
)
from repro.verify.fuzz import ORACLES

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "corpus.txt")


class TestParse:
    def test_round_trip(self):
        entry = CorpusEntry(oracle="mckp", seed=77)
        assert parse_corpus(format_entry("mckp", 77)) == [entry]
        assert str(entry) == "mckp:77"

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\nmckp:1\n  # indented comment\nspot:2\n"
        assert parse_corpus(text) == [
            CorpusEntry("mckp", 1),
            CorpusEntry("spot", 2),
        ]

    def test_junk_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_corpus("mckp:1\nnot a corpus line\n")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValueError, match="not an integer"):
            parse_corpus("mckp:banana")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            parse_corpus("mckp:-3")

    def test_missing_oracle_rejected(self):
        with pytest.raises(ValueError):
            parse_corpus(":42")


class TestLoadAppend:
    def test_missing_file_is_empty_corpus(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope.txt")) == []

    def test_append_writes_header_and_sorts(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        added = append_failures(
            path, [("spot", 9), CorpusEntry("mckp", 3), ("mckp", 1)]
        )
        assert added == 3
        text = open(path).read()
        assert text.startswith("#")
        assert load_corpus(path) == [
            CorpusEntry("mckp", 1),
            CorpusEntry("mckp", 3),
            CorpusEntry("spot", 9),
        ]

    def test_append_is_idempotent(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        assert append_failures(path, [("mckp", 1)]) == 1
        before = open(path).read()
        assert append_failures(path, [("mckp", 1)]) == 0
        assert open(path).read() == before

    def test_append_accepts_failure_objects(self, tmp_path):
        class Failure:
            oracle = "fleet"
            seed = 123

        path = str(tmp_path / "corpus.txt")
        assert append_failures(path, [Failure()]) == 1
        assert load_corpus(path) == [CorpusEntry("fleet", 123)]

    def test_append_preserves_existing_entries(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        append_failures(path, [("aig", 5)])
        append_failures(path, [("aig", 2)])
        assert load_corpus(path) == [
            CorpusEntry("aig", 5),
            CorpusEntry("aig", 2),
        ]


class TestReplay:
    def test_unknown_oracle_raises(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            replay_entry(CorpusEntry("not-an-oracle", 0))

    def test_replay_corpus_pairs_entries_with_results(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        append_failures(path, [("mckp", 42)])
        results = replay_corpus(path)
        assert len(results) == 1
        entry, violations = results[0]
        assert entry == CorpusEntry("mckp", 42)
        assert violations == []


def _real_corpus():
    entries = load_corpus(CORPUS_PATH)
    assert entries, "tests/verify/corpus.txt must seed at least one entry"
    return entries


class TestRealCorpus:
    """The tier-1 regression gate over the checked-in corpus."""

    @pytest.mark.parametrize(
        "entry", _real_corpus(), ids=lambda e: f"{e.oracle}-{e.seed}"
    )
    def test_entry_stays_fixed(self, entry):
        assert replay_entry(entry) == [], (
            f"corpus regression: oracle {entry.oracle!r} fails again "
            f"at seed {entry.seed}"
        )

    def test_corpus_covers_every_oracle(self):
        # Each oracle gets at least one seeded sentinel entry, so the
        # replay path itself is exercised for every oracle family.
        assert {e.oracle for e in _real_corpus()} == set(ORACLES)
