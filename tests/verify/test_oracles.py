"""Property tests for the differential oracles (fixed fast seed set).

Two halves per oracle: the real implementations pass on a fixed set of
seeded random instances, and a deliberately corrupted implementation is
caught (mutation smoke checks) — an oracle that cannot catch a planted bug
is no safety net.
"""

import random

import pytest

from repro.cloud.instance import InstanceFamily, VMConfig
from repro.core.optimize import (
    ConfigOption,
    StageOptions,
    enumerate_feasible,
    selection_objective,
    solve_brute_force,
    solve_mckp_dp,
)
from repro.eda.cuts import Cut, enumerate_cuts
from repro.eda.job import EDAStage
from repro.eda.synthesis import balance
from repro.netlist.aig import lit_not
from repro.parallel.scheduler import list_schedule
from repro.cloud.events import EventKind
from repro.cloud.executor import ExecutionPolicy, PlanExecutor
from repro.cloud.faults import FaultProfile
from repro.verify import (
    aig_equivalence_violations,
    convergence_violations,
    cut_function_violations,
    execution_violations,
    mckp_violations,
    node_value_words,
    recipe_equivalence_violations,
    schedule_violations,
    spot_violations,
)
from repro.verify.generators import (
    random_aig,
    random_execution_case,
    random_mckp_instance,
    random_recipe,
    random_spot_params,
    random_task_graph,
)

SEEDS = range(12)


def _mckp_case(seed):
    return random_mckp_instance(random.Random(seed))


def _option(runtime, price_per_hour, name="vm"):
    vm = VMConfig(
        name=name,
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=2,
        memory_gb=8.0,
        price_per_hour=price_per_hour,
    )
    return ConfigOption(vm=vm, runtime_seconds=runtime, price=vm.cost(runtime))


class TestMCKPOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_real_solvers_pass(self, seed):
        stages, deadline = _mckp_case(seed)
        assert mckp_violations(stages, deadline) == []

    def test_catches_dropped_option(self):
        """Mutant DP that never sees the fastest option: feasibility lies."""
        stages = [
            StageOptions(
                stage=EDAStage.SYNTHESIS,
                options=[_option(100, 0.1, "slow"), _option(10, 1.0, "fast")],
            )
        ]

        def corrupted(stage_opts, deadline):
            pruned = [
                StageOptions(stage=s.stage, options=s.options[:1])
                for s in stage_opts
            ]
            return solve_mckp_dp(pruned, deadline)

        # Deadline only the dropped fast option can meet.
        violations = mckp_violations(stages, 20, solver=corrupted)
        assert any("feasibility mismatch" in v for v in violations)

    def test_catches_suboptimal_selection(self):
        """Mutant DP that picks the worst feasible option: objective lies."""
        stages = [
            StageOptions(
                stage=EDAStage.SYNTHESIS,
                options=[_option(10, 0.5, "cheap"), _option(10, 2.0, "dear")],
            )
        ]

        def corrupted(stage_opts, deadline):
            best = None
            for sel in enumerate_feasible(stage_opts, deadline):
                value = selection_objective(sel, True)
                if best is None or value < selection_objective(best, True):
                    best = sel
            return best

        violations = mckp_violations(stages, 100, solver=corrupted)
        assert any("brute-force optimum" in v for v in violations)

    def test_brute_force_matches_dp_on_larger_sweep(self):
        for seed in range(6):
            stages, deadline = _mckp_case(seed + 100)
            dp = solve_mckp_dp(stages, deadline)
            bf = solve_brute_force(stages, deadline)
            assert (dp is None) == (bf is None)
            if dp is not None:
                assert dp.objective_inverse_price == pytest.approx(
                    bf.objective_inverse_price
                )


class TestScheduleOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_real_scheduler_passes(self, seed):
        graph, workers = random_task_graph(random.Random(seed))
        assert schedule_violations(graph, workers) == []

    def _graph_and_result(self):
        graph, workers = random_task_graph(random.Random(3))
        return graph, workers, list_schedule(graph, workers)

    def test_catches_precedence_violation(self):
        graph, workers, result = self._graph_and_result()
        child = next(t for t in graph.tasks if t.deps)
        result.start_times[child.task_id] = 0.0
        result.finish_times[child.task_id] = child.work
        violations = schedule_violations(graph, workers, result=result)
        assert any("before dependency" in v for v in violations)

    def test_catches_worker_overlap(self):
        graph, workers, result = self._graph_and_result()
        # Pile every task onto worker 0 at time 0.
        for task in graph.tasks:
            result.worker_of[task.task_id] = 0
            result.start_times[task.task_id] = 0.0
            result.finish_times[task.task_id] = task.work
        violations = schedule_violations(graph, workers, result=result)
        assert any("overlap" in v for v in violations)

    def test_catches_makespan_lie(self):
        graph, workers, result = self._graph_and_result()
        result.makespan = result.makespan * 2.0
        violations = schedule_violations(graph, workers, result=result)
        assert any("max finish" in v for v in violations)

    def test_catches_missing_task(self):
        graph, workers, result = self._graph_and_result()
        tid = graph.tasks[0].task_id
        del result.start_times[tid]
        violations = schedule_violations(graph, workers, result=result)
        assert any("exactly once" in v for v in violations)


class TestAIGOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_balance_and_recipes_preserve_function(self, seed):
        rng = random.Random(seed)
        aig = random_aig(rng)
        recipe, rseed = random_recipe(rng)
        assert aig_equivalence_violations(aig, balance(aig)) == []
        assert recipe_equivalence_violations(aig, recipe, rseed) == []

    def test_catches_complemented_output(self):
        aig = random_aig(random.Random(0))
        broken = aig.copy()
        broken._outputs[0] = lit_not(broken._outputs[0])
        violations = aig_equivalence_violations(aig, broken, label="mutant")
        assert any("output 0 function changed" in v for v in violations)

    def test_catches_output_count_change(self):
        aig = random_aig(random.Random(0))
        broken = aig.copy()
        broken.add_output(broken.outputs[0])
        violations = aig_equivalence_violations(aig, broken)
        assert any("output count changed" in v for v in violations)


class TestCutOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_real_cuts_pass(self, seed):
        aig = random_aig(random.Random(seed))
        assert cut_function_violations(aig) == []

    def test_catches_flipped_table_bit(self):
        aig = random_aig(random.Random(1))
        cuts, _ = enumerate_cuts(aig, k=4, cap=6)
        tampered = False
        for node in sorted(cuts):
            nontrivial = [c for c in cuts[node] if c.size > 1]
            if nontrivial:
                cut = nontrivial[0]
                cuts[node] = [
                    Cut(leaves=cut.leaves, table=cut.table ^ 1)
                    if c is cut
                    else c
                    for c in cuts[node]
                ]
                tampered = True
                break
        assert tampered, "generator produced no nontrivial cut"
        violations = cut_function_violations(aig, cuts=cuts)
        assert any("simulation says" in v for v in violations)

    def test_node_values_match_outputs(self):
        from repro.verify import exhaustive_output_tables
        from repro.netlist.aig import lit_is_complemented, lit_node

        aig = random_aig(random.Random(2))
        values = node_value_words(aig)
        mask = (1 << (1 << aig.num_inputs)) - 1
        tables = exhaustive_output_tables(aig)
        for out_lit, table in zip(aig.outputs, tables):
            word = values[lit_node(out_lit)]
            if lit_is_complemented(out_lit):
                word ^= mask
            assert word & mask == table


class TestSpotOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_real_model_passes(self, seed):
        runtime, rate, interval = random_spot_params(random.Random(seed))
        assert spot_violations(runtime, rate, interval) == []

    def test_catches_below_nominal(self):
        def mutant(runtime, rate, interval=None):
            return runtime * 0.9

        violations = spot_violations(1000.0, 0.5, None, fn=mutant)
        assert any("below nominal" in v for v in violations)

    def test_catches_non_monotone(self):
        def mutant(runtime, rate, interval=None):
            # Decreasing in the rate: clearly wrong.
            return runtime * (2.0 - min(rate, 1.0))

        violations = spot_violations(1000.0, 0.5, None, fn=mutant)
        assert any("not monotone" in v for v in violations)

    def test_catches_closed_form_mismatch(self):
        def mutant(runtime, rate, interval=None):
            return runtime * 1.5

        violations = spot_violations(1000.0, 0.5, None, fn=mutant)
        assert any("closed form mismatch" in v for v in violations)


class TestExecutionOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_real_executor_passes(self, seed):
        plan, deadline, profile, policy, eseed, menus = random_execution_case(
            random.Random(seed)
        )
        assert (
            execution_violations(
                plan, deadline, profile, policy, eseed, stage_options=menus
            )
            == []
        )

    def _case_and_result(self, profile=None, policy=None):
        plan, deadline, _, _, _, menus = random_execution_case(random.Random(4))
        profile = profile if profile is not None else FaultProfile.none()
        policy = policy if policy is not None else ExecutionPolicy()
        result = PlanExecutor(profile, policy).execute(
            plan, deadline, seed=9, stage_options=menus
        )
        return plan, deadline, profile, policy, result

    def _audit(self, plan, deadline, profile, policy, result):
        return execution_violations(
            plan, deadline, profile, policy, seed=9, result=result
        )

    def test_catches_billing_lie(self):
        plan, deadline, profile, policy, result = self._case_and_result()
        result.total_cost *= 1.5
        violations = self._audit(plan, deadline, profile, policy, result)
        assert any("sum of billed segments" in v for v in violations)

    def test_catches_causality_violation(self):
        """Tampered trace where stage 2 starts before stage 1 commits."""
        import dataclasses

        plan, deadline, profile, policy, result = self._case_and_result()
        events = result.trace.events
        commits = [
            i for i, e in enumerate(events) if e.kind == EventKind.STAGE_COMMIT
        ]
        starts = [
            i for i, e in enumerate(events) if e.kind == EventKind.STAGE_START
        ]
        if len(starts) < 2:
            pytest.skip("case has a single stage")
        # Swap the first commit with the following start, keeping seq
        # numbers contiguous so only the causality check can fire.
        i, j = commits[0], starts[1]
        events[i], events[j] = (
            dataclasses.replace(events[j], seq=i, time=events[i].time),
            dataclasses.replace(events[i], seq=j, time=events[j].time),
        )
        violations = self._audit(plan, deadline, profile, policy, result)
        assert any("before" in v and "commits" in v for v in violations)

    def test_catches_excess_retries(self):
        plan, deadline, profile, policy, result = self._case_and_result()
        stage = plan.assignments[0].stage.value
        for extra in range(policy.retry.max_retries + 2):
            result.trace.record(
                result.total_time,
                EventKind.BACKOFF,
                stage=stage,
                attempt=extra,
                seconds=1.0,
            )
        violations = self._audit(plan, deadline, profile, policy, result)
        assert any("exceed policy" in v for v in violations)

    def test_catches_time_reversal(self):
        import dataclasses

        plan, deadline, profile, policy, result = self._case_and_result()
        events = result.trace.events
        events[1] = dataclasses.replace(events[1], time=-5.0)
        violations = self._audit(plan, deadline, profile, policy, result)
        assert any("time goes backwards" in v for v in violations)

    def test_catches_fault_free_runtime_drift(self):
        plan, deadline, profile, policy, result = self._case_and_result()
        result.total_time += 10.0
        violations = self._audit(plan, deadline, profile, policy, result)
        assert any("fault-free run took" in v for v in violations)

    def test_catches_preemption_cap_breach(self):
        policy = ExecutionPolicy(max_preemptions_per_stage=1)
        plan, deadline, profile, _, result = self._case_and_result(policy=policy)
        stage = plan.assignments[0].stage.value
        for count in (1, 2):
            result.trace.record(
                result.total_time,
                EventKind.PREEMPTION,
                stage=stage,
                lost=1.0,
                count=count,
            )
        violations = self._audit(plan, deadline, profile, policy, result)
        assert any("exceed the fallback cap" in v for v in violations)


class TestConvergenceOracle:
    @pytest.mark.chaos
    @pytest.mark.parametrize(
        "runtime,rate,interval",
        [(900.0, 1.5, 120.0), (700.0, 2.0, None)],
    )
    def test_real_executor_converges(self, runtime, rate, interval):
        assert convergence_violations(runtime, rate, interval, seed=0) == []

    def test_catches_sub_nominal_completions(self):
        def mutant(runtime, rate, interval=None, trials=500, seed=0):
            return [runtime * 0.9] * trials

        violations = convergence_violations(
            500.0, 1.0, None, trials=20, simulate=mutant
        )
        assert any("beat the nominal runtime" in v for v in violations)

    def test_catches_biased_mean(self):
        def mutant(runtime, rate, interval=None, trials=500, seed=0):
            # Ignores preemptions entirely: always the nominal runtime.
            return [runtime] * trials

        violations = convergence_violations(
            500.0, 2.0, None, trials=20, simulate=mutant
        )
        assert any("deviates from the closed form" in v for v in violations)

    def test_catches_short_sample(self):
        def mutant(runtime, rate, interval=None, trials=500, seed=0):
            return [runtime]

        violations = convergence_violations(
            500.0, 1.0, None, trials=20, simulate=mutant
        )
        assert any("simulator returned" in v for v in violations)


class TestServiceOracle:
    def test_generated_cases_pass(self):
        from repro.verify import service_violations
        from repro.verify.generators import random_service_case

        for seed in range(4):
            requests, workers, depth = random_service_case(
                random.Random(seed)
            )
            assert service_violations(requests, workers, depth) == []

    def test_over_depth_batch_passes_with_typed_rejections(self):
        from repro.service import JobRequest
        from repro.verify import service_violations

        requests = [
            JobRequest(kind="sleep", priority=i % 2, params={"steps": 1})
            for i in range(6)
        ]
        assert service_violations(requests, workers=2, depth=3) == []
