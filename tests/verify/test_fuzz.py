"""Tests for the seeded fuzz driver: determinism, replay, and longer runs."""

import json

import pytest

from repro.verify import ORACLES, run_fuzz, run_trial, trial_seed
from repro.verify.fuzz import (
    FuzzFailure,
    FuzzReport,
    OracleReport,
    dump_trial_forensics,
)


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_fuzz(trials=25, seed=0)
        b = run_fuzz(trials=25, seed=0)
        assert a.render() == b.render()
        assert a.ok and b.ok

    def test_trial_seeds_are_stable_and_distinct(self):
        seeds = [trial_seed(0, "mckp", t) for t in range(50)]
        assert seeds == [trial_seed(0, "mckp", t) for t in range(50)]
        assert len(set(seeds)) == 50
        # Different oracle or base seed shifts the stream.
        assert trial_seed(0, "mckp", 0) != trial_seed(0, "schedule", 0)
        assert trial_seed(0, "mckp", 0) != trial_seed(1, "mckp", 0)

    def test_replay_matches_fuzz_trial(self):
        for trial in range(5):
            seed = trial_seed(0, "schedule", trial)
            assert run_trial("schedule", seed) == []


class TestDriver:
    def test_all_oracles_registered(self):
        assert list(ORACLES) == [
            "mckp",
            "schedule",
            "aig",
            "cuts",
            "spot",
            "executor",
            "chaos",
            "obs",
            "service",
            "scenario",
            "fleet",
            "attrib",
            "slo",
        ]

    def test_oracle_subset(self):
        report = run_fuzz(oracle_names=["spot"], trials=10, seed=3)
        assert [o.name for o in report.oracles] == ["spot"]
        assert report.oracles[0].trials == 10

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_fuzz(oracle_names=["nope"], trials=1)
        with pytest.raises(ValueError, match="unknown oracle"):
            run_trial("nope", 0)

    def test_trials_validated(self):
        with pytest.raises(ValueError, match="trials"):
            run_fuzz(trials=0)

    def test_progress_callback(self):
        lines = []
        run_fuzz(oracle_names=["spot", "mckp"], trials=5, seed=0,
                 progress=lines.append)
        assert len(lines) == 2
        assert "spot" in lines[0] and "mckp" in lines[1]

    def test_failure_rendering(self):
        report = FuzzReport(base_seed=0, trials_per_oracle=1)
        report.oracles.append(
            OracleReport(
                name="mckp",
                trials=1,
                failures=[
                    FuzzFailure(
                        oracle="mckp",
                        trial=0,
                        seed=42,
                        messages=("objective off by 1",),
                    )
                ],
            )
        )
        text = report.render()
        assert not report.ok
        assert report.num_violations == 1
        assert "--replay-seed 42" in text
        assert "objective off by 1" in text
        assert text.endswith("FAIL: 1 oracles, 1 trials, 1 violations")

    def test_failure_rendering_includes_dump_path(self):
        report = FuzzReport(base_seed=0, trials_per_oracle=1)
        report.oracles.append(
            OracleReport(
                name="mckp",
                trials=1,
                failures=[
                    FuzzFailure(
                        oracle="mckp",
                        trial=0,
                        seed=42,
                        messages=("objective off by 1",),
                        dump_path="crashes/crash_verify.mckp_42.json",
                    )
                ],
            )
        )
        text = report.render()
        assert "--replay-seed 42; dump: crashes/crash_verify.mckp_42.json" in text


class TestForensicsDumps:
    def test_dump_is_byte_identical_across_replays(self, tmp_path):
        # The fuzz run's dump and a later `--replay-seed` dump must be the
        # same bytes: the forensics scope is fully isolated and tick-clocked.
        seed = trial_seed(3, "mckp", 0)
        path_a = dump_trial_forensics("mckp", seed, str(tmp_path / "a"))
        path_b = dump_trial_forensics("mckp", seed, str(tmp_path / "b"))
        bytes_a = open(path_a, "rb").read()
        assert bytes_a == open(path_b, "rb").read()
        doc = json.loads(bytes_a)
        assert doc["schema"] == "repro-crash/1"
        assert doc["component"] == "verify.mckp"
        assert doc["seed"] == seed
        assert doc["messages"] == []
        assert doc["records"][0]["message"] == "verify.trial"

    def test_dump_carries_violations(self, tmp_path, monkeypatch):
        monkeypatch.setitem(ORACLES, "boom", lambda rng: ["it broke"])
        path = dump_trial_forensics("boom", 5, str(tmp_path))
        doc = json.loads(open(path).read())
        assert doc["messages"] == ["it broke"]

    def test_dump_unknown_oracle_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown oracle"):
            dump_trial_forensics("nope", 0, str(tmp_path))

    def test_failing_fuzz_run_writes_dumps(self, tmp_path, monkeypatch):
        monkeypatch.setitem(ORACLES, "boom", lambda rng: ["it broke"])
        report = run_fuzz(
            oracle_names=["boom"], trials=2, seed=0,
            dump_dir=str(tmp_path),
        )
        assert not report.ok
        for failure in report.oracles[0].failures:
            assert failure.dump_path is not None
            assert (
                failure.dump_path
                == str(tmp_path / f"crash_verify.boom_{failure.seed}.json")
            )
            assert json.loads(open(failure.dump_path).read())["messages"] == [
                "it broke"
            ]
        assert "dump:" in report.render()

    def test_no_dump_dir_no_dump_paths(self, monkeypatch):
        monkeypatch.setitem(ORACLES, "boom", lambda rng: ["it broke"])
        report = run_fuzz(oracle_names=["boom"], trials=1, seed=0)
        assert report.oracles[0].failures[0].dump_path is None


@pytest.mark.fuzz
class TestLongFuzz:
    """Longer sweeps; deselect with ``-m "not fuzz"`` for quick runs."""

    def test_300_trials_per_oracle(self):
        report = run_fuzz(trials=300, seed=1)
        assert report.ok, report.render()

    def test_alternate_base_seeds(self):
        for seed in (11, 29, 57):
            report = run_fuzz(trials=60, seed=seed)
            assert report.ok, report.render()
