"""The typed error taxonomy: codes, statuses, and response documents."""

import pytest

from repro.service import (
    ERROR_CODES,
    InvalidRequestError,
    JobCancelled,
    JobNotFoundError,
    JobTimeout,
    NotCancellableError,
    QueueFullError,
    RateLimitedError,
    ServiceDrainingError,
    ServiceError,
)


class TestTaxonomy:
    def test_every_code_maps_to_its_class(self):
        for code, cls in ERROR_CODES.items():
            assert cls.code == code
            assert issubclass(cls, ServiceError)

    def test_statuses_are_http_flavoured(self):
        assert InvalidRequestError.status == 400
        assert JobNotFoundError.status == 404
        assert NotCancellableError.status == 409
        assert RateLimitedError.status == 429
        assert QueueFullError.status == 503
        assert ServiceDrainingError.status == 503

    def test_retryable_split(self):
        # Backoff-and-resubmit can succeed only for load-shedding errors.
        assert RateLimitedError.retryable
        assert QueueFullError.retryable
        assert ServiceDrainingError.retryable
        assert not InvalidRequestError.retryable
        assert not JobNotFoundError.retryable
        assert not NotCancellableError.retryable

    def test_control_flow_exceptions_are_not_responses(self):
        assert not issubclass(JobCancelled, ServiceError)
        assert not issubclass(JobTimeout, ServiceError)
        assert "cancelled" not in ERROR_CODES
        assert "timed_out" not in ERROR_CODES


class TestResponseDocument:
    def test_shape_and_sorted_details(self):
        exc = RateLimitedError(
            "slow down", retry_after_seconds=0.5, client="alice"
        )
        doc = exc.to_response()
        assert set(doc) == {"error"}
        err = doc["error"]
        assert err["code"] == "rate_limited"
        assert err["status"] == 429
        assert err["message"] == "slow down"
        assert err["retryable"] is True
        assert list(err["details"]) == ["client", "retry_after_seconds"]

    def test_details_default_empty(self):
        err = QueueFullError("full").to_response()["error"]
        assert err["details"] == {}

    def test_message_is_the_exception_string(self):
        exc = JobNotFoundError("no such job: job-0001", job_id="job-0001")
        assert str(exc) == "no such job: job-0001"
        with pytest.raises(ServiceError):
            raise exc
