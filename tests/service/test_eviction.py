"""External evictions: crash dumps, slot release, and requeue semantics.

An eviction is *not* a client cancel: something outside the service (an
AZ reclaim, a capacity storm) destroyed a job's worker.  The contract:

* the job lands in ``cancelled`` with ``external_cancel`` recording why,
* the pool writes the forensic crash dump (the job did real work) and
  still releases the slot in ``finally``,
* the service requeues a fresh incarnation — unless the client had
  cancelled, the requeue budget is spent, or the service is draining.

The 1k storm-churn test is the headline: a thousand jobs across every
terminal path *including mid-run evictions and their requeues* leak
nothing.
"""

import asyncio
import os

import pytest

from repro.obs import Logger, scoped
from repro.service import (
    EDAService,
    JobEvicted,
    JobNotFoundError,
    JobRequest,
    JobState,
    NotCancellableError,
    ServiceConfig,
    run_session,
)


def ok_runner(job, ctx):
    ctx.checkpoint()
    return {"ok": True}


def run_evicting_session(requests, evicted, config, runner=ok_runner):
    """Drive a session where ``evicted`` (index -> reason) jobs lose
    their capacity at the first in-run checkpoint.

    Waits for the service to go *idle* before draining: requeues are
    refused while draining, and these tests exercise the requeue path.
    """
    evicted_ids = {}

    def wrapper(job, ctx):
        reason = evicted_ids.get(job.job_id)
        if reason is not None:
            job.external_cancel = reason
        ctx.checkpoint()
        return runner(job, ctx)

    service = EDAService(config=config, runner=wrapper)

    async def drive():
        service.start()
        for i, request in enumerate(requests):
            doc = service.submit(request)
            if i in evicted:
                evicted_ids[doc["job_id"]] = evicted[i]
        await service.join()
        await service.drain()

    asyncio.run(drive())
    return service


class TestMidRunEviction:
    def test_evicted_job_lands_cancelled_with_reason(self):
        service = run_evicting_session(
            [JobRequest(kind="sleep") for _ in range(3)],
            {1: "az_reclaim:us-east-1a"},
            ServiceConfig(workers=2, queue_depth=8),
        )
        job = service.jobs["job-0001"]
        assert job.state is JobState.CANCELLED
        assert job.external_cancel == "az_reclaim:us-east-1a"
        assert job.worker is not None  # it was running, not queued

    def test_evicted_job_is_requeued_as_a_fresh_incarnation(self):
        service = run_evicting_session(
            [JobRequest(kind="sleep") for _ in range(2)],
            {0: "storm"},
            ServiceConfig(workers=1, queue_depth=8),
        )
        clones = [
            job for job in service.jobs.values() if job.requeue_of is not None
        ]
        assert len(clones) == 1
        clone = clones[0]
        assert clone.requeue_of == "job-0000"
        assert clone.requeues == 1
        assert clone.job_id not in ("job-0000", "job-0001")
        assert clone.state is JobState.DONE  # fresh id, never re-struck
        assert clone.request == service.jobs["job-0000"].request
        assert service.registry.snapshot().counters["service.requeued"] == 1

    def test_requeue_budget_is_finite(self):
        # Strike every incarnation: the original is requeued once, the
        # clone's eviction then exhausts max_requeues=1.
        def always_evict(job, ctx):
            job.external_cancel = "storm"
            ctx.checkpoint()
            return {"ok": True}

        service = EDAService(
            config=ServiceConfig(workers=1, queue_depth=8),
            runner=always_evict,
        )

        async def drive():
            service.start()
            service.submit(JobRequest(kind="sleep"))
            await service.join()
            await service.drain()

        asyncio.run(drive())
        assert len(service.jobs) == 2
        assert all(
            job.state is JobState.CANCELLED for job in service.jobs.values()
        )
        counters = service.registry.snapshot().counters
        assert counters["service.requeued"] == 1
        assert counters["service.requeue_exhausted"] == 1

    def test_requeue_can_be_disabled(self):
        service = run_evicting_session(
            [JobRequest(kind="sleep")],
            {0: "storm"},
            ServiceConfig(workers=1, queue_depth=8, requeue_on_eviction=False),
        )
        assert len(service.jobs) == 1

    def test_eviction_outranks_client_cancel_at_checkpoint(self):
        def both(job, ctx):
            job.cancel_requested = True
            job.external_cancel = "storm"
            with pytest.raises(JobEvicted):
                ctx.checkpoint()
            raise JobEvicted(job.job_id, job.external_cancel)

        service = run_evicting_session(
            [JobRequest(kind="sleep")],
            {},
            ServiceConfig(workers=1, queue_depth=4, requeue_on_eviction=False),
            runner=both,
        )
        assert service.jobs["job-0000"].state is JobState.CANCELLED

    def test_eviction_writes_a_crash_dump(self, tmp_path):
        crash_dir = str(tmp_path / "crashes")
        with scoped(log=Logger(deterministic=True)):
            run_evicting_session(
                [JobRequest(kind="sleep")],
                {0: "az_reclaim:us-east-1b"},
                ServiceConfig(
                    workers=1,
                    queue_depth=4,
                    crash_dir=crash_dir,
                    requeue_on_eviction=False,
                ),
            )
        dumps = os.listdir(crash_dir)
        assert len(dumps) == 1
        assert "service.job.job-0000" in dumps[0]


class TestEvictVerb:
    def test_evict_queued_job_cancels_and_requeues(self):
        service = EDAService(
            config=ServiceConfig(workers=1, queue_depth=8), runner=ok_runner
        )

        async def drive():
            service.start()
            service.submit(JobRequest(kind="sleep"))
            doc = service.evict("job-0000", reason="maintenance")
            assert doc["state"] == "cancelled"
            await service.join()
            await service.drain()

        asyncio.run(drive())
        original = service.jobs["job-0000"]
        assert original.state is JobState.CANCELLED
        assert original.external_cancel == "maintenance"
        assert original.worker is None  # evicted before pickup
        clones = [
            job for job in service.jobs.values() if job.requeue_of is not None
        ]
        assert len(clones) == 1 and clones[0].state is JobState.DONE
        counters = service.registry.snapshot().counters
        assert counters["service.evictions"] == 1

    def test_evict_unknown_and_terminal_jobs_raise_typed_errors(self):
        service = EDAService(
            config=ServiceConfig(workers=1, queue_depth=4), runner=ok_runner
        )

        async def drive():
            service.start()
            service.submit(JobRequest(kind="sleep"))
            await service.join()
            with pytest.raises(JobNotFoundError):
                service.evict("job-9999")
            with pytest.raises(NotCancellableError):
                service.evict("job-0000")
            await service.drain()

        asyncio.run(drive())


class TestStormChurn:
    def test_no_slot_leak_after_1k_storm_churned_jobs(self):
        """1000 jobs; every 7th is evicted mid-run and requeued.  All
        slots come back, every incarnation is terminal, nothing leaks."""
        jobs = 1000
        requests = [
            JobRequest(kind="sleep", priority=i % 3) for i in range(jobs)
        ]
        evicted = {i: f"storm:{i}" for i in range(0, jobs, 7)}
        service = run_evicting_session(
            requests,
            evicted,
            ServiceConfig(workers=4, queue_depth=2 * jobs),
        )
        pool = service.pool
        assert pool.active == 0
        assert pool.slots_acquired == pool.slots_released
        # Every original ran, every eviction spawned exactly one clone,
        # and the clones ran too.
        assert len(service.jobs) == jobs + len(evicted)
        assert pool.slots_acquired == jobs + len(evicted)
        assert all(job.terminal for job in service.jobs.values())
        cancelled = [
            job
            for job in service.jobs.values()
            if job.state is JobState.CANCELLED
        ]
        assert len(cancelled) == len(evicted)
        assert all(job.external_cancel is not None for job in cancelled)
        counters = service.registry.snapshot().counters
        assert counters["service.requeued"] == len(evicted)

    def test_storm_session_replay_is_deterministic(self):
        requests = [JobRequest(kind="sleep", priority=i % 2) for i in range(40)]
        evicted = {i: "storm" for i in range(0, 40, 5)}
        config = ServiceConfig(workers=3, queue_depth=128)
        first = run_evicting_session(requests, evicted, config)
        second = run_evicting_session(requests, evicted, config)
        assert first.pool.completed == second.pool.completed
        assert [
            (j.job_id, j.state.value) for j in first.jobs.values()
        ] == [(j.job_id, j.state.value) for j in second.jobs.values()]


class TestBaselineUnchanged:
    def test_plain_sessions_never_touch_the_eviction_path(self):
        result = run_session(
            [JobRequest(kind="sleep") for _ in range(4)],
            ServiceConfig(workers=2, queue_depth=8),
        )
        counters = result.service.registry.snapshot().counters
        assert "service.evictions" not in counters
        assert "service.requeued" not in counters
        assert all(
            job.external_cancel is None
            for job in result.service.jobs.values()
        )
