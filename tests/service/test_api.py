"""The three-verb request API: submit/status/cancel plus the session
driver's determinism contract."""

import pytest

from repro.service import (
    EDAService,
    InvalidRequestError,
    JobNotFoundError,
    JobRequest,
    NotCancellableError,
    QueueFullError,
    RateLimitedError,
    ServiceConfig,
    ServiceDrainingError,
    run_session,
    seeded_job_mix,
    session_log,
)


def sleepy(priority=0, client="default", steps=0):
    return JobRequest(
        kind="sleep", priority=priority, client=client,
        params={"steps": steps},
    )


def toy_runner(job, ctx):
    return {"ok": True}


class TestSubmit:
    def test_returns_the_job_document(self):
        service = EDAService(runner=toy_runner)
        doc = service.submit(sleepy())
        assert doc["job_id"] == "job-0000"
        assert doc["state"] == "queued"
        assert doc["request"]["kind"] == "sleep"
        assert doc["history"][0][0] == "queued"

    def test_job_ids_are_sequential(self):
        service = EDAService(runner=toy_runner)
        ids = [service.submit(sleepy())["job_id"] for _ in range(3)]
        assert ids == ["job-0000", "job-0001", "job-0002"]

    def test_invalid_kind_is_a_typed_400(self):
        service = EDAService(runner=toy_runner)
        with pytest.raises(InvalidRequestError) as excinfo:
            service.submit(JobRequest(kind="frobnicate"))
        assert excinfo.value.status == 400
        # Rejected submissions never consume a job id.
        assert service.submit(sleepy())["job_id"] == "job-0000"

    def test_invalid_scale_and_timeout(self):
        service = EDAService(runner=toy_runner)
        with pytest.raises(InvalidRequestError):
            service.submit(JobRequest(kind="sleep", scale=0.0))
        with pytest.raises(InvalidRequestError):
            service.submit(JobRequest(kind="sleep", timeout_seconds=-1.0))

    def test_queue_full_is_a_typed_503(self):
        service = EDAService(
            ServiceConfig(queue_depth=2), runner=toy_runner
        )
        service.submit(sleepy())
        service.submit(sleepy())
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(sleepy())
        err = excinfo.value.to_response()["error"]
        assert (err["status"], err["retryable"]) == (503, True)
        assert err["details"]["depth"] == 2

    def test_rate_limit_is_a_typed_429_per_client(self):
        service = EDAService(
            ServiceConfig(rate_capacity=2, rate_refill_per_second=1e-6),
            runner=toy_runner,
        )
        service.submit(sleepy(client="alice"))
        service.submit(sleepy(client="alice"))
        with pytest.raises(RateLimitedError) as excinfo:
            service.submit(sleepy(client="alice"))
        err = excinfo.value.to_response()["error"]
        assert err["status"] == 429
        assert err["retryable"] is True
        assert err["details"]["retry_after_seconds"] > 0
        # A different client has its own bucket.
        service.submit(sleepy(client="bob"))

    def test_draining_service_rejects_with_503(self):
        service = EDAService(runner=toy_runner)
        service.admission.draining = True
        with pytest.raises(ServiceDrainingError) as excinfo:
            service.submit(sleepy())
        assert excinfo.value.code == "draining"

    def test_rejections_are_counted_by_code(self):
        service = EDAService(
            ServiceConfig(queue_depth=1), runner=toy_runner
        )
        service.submit(sleepy())
        for _ in range(3):
            with pytest.raises(QueueFullError):
                service.submit(sleepy())
        assert service.admission.rejected == {"queue_full": 3}
        snapshot = service.registry.snapshot().to_dict()
        assert snapshot["counters"]["service.rejected.queue_full"] == 3


class TestStatusAndCancel:
    def test_status_unknown_job_is_404(self):
        service = EDAService(runner=toy_runner)
        with pytest.raises(JobNotFoundError):
            service.status("job-9999")

    def test_cancel_queued_job_is_immediate(self):
        service = EDAService(runner=toy_runner)
        job_id = service.submit(sleepy())["job_id"]
        doc = service.cancel(job_id)
        assert doc["state"] == "cancelled"
        assert service.terminal_order == [job_id]

    def test_cancel_terminal_job_is_409(self):
        service = EDAService(runner=toy_runner)
        job_id = service.submit(sleepy())["job_id"]
        service.cancel(job_id)
        with pytest.raises(NotCancellableError) as excinfo:
            service.cancel(job_id)
        assert excinfo.value.status == 409

    def test_cancel_unknown_job_is_404(self):
        service = EDAService(runner=toy_runner)
        with pytest.raises(JobNotFoundError):
            service.cancel("job-1234")

    def test_cancelled_queued_job_never_runs(self):
        result = run_session(
            [sleepy(), sleepy(), sleepy()],
            ServiceConfig(workers=1, queue_depth=8),
            runner=toy_runner,
            cancel={1: 0},
        )
        victim = result.service.jobs["job-0001"]
        assert victim.state.value == "cancelled"
        assert victim.worker is None
        assert result.service.pool.slots_acquired == 2


class TestSessionDeterminism:
    def test_completion_order_is_priority_then_fifo_on_one_worker(self):
        requests = [
            sleepy(priority=0),
            sleepy(priority=2),
            sleepy(priority=1),
            sleepy(priority=2),
        ]
        result = run_session(
            requests, ServiceConfig(workers=1, queue_depth=8),
            runner=toy_runner,
        )
        assert result.completion_order == [
            "job-0001", "job-0003", "job-0002", "job-0000"
        ]

    def test_whole_batch_admission_bound(self):
        # Submit never awaits, so exactly `depth` requests land.
        requests = [sleepy() for _ in range(10)]
        result = run_session(
            requests, ServiceConfig(workers=2, queue_depth=6),
            runner=toy_runner,
        )
        assert result.accepted == 6
        assert result.rejected == 4
        codes = {
            o["error"]["code"]
            for o in result.outcomes
            if not o.get("accepted")
        }
        assert codes == {"queue_full"}

    def test_hundred_job_mixed_priority_run_replays_identically(self):
        """The acceptance property: same seed, same everything."""
        config = ServiceConfig(workers=4, queue_depth=128)
        runs = []
        for _ in range(2):
            requests = seeded_job_mix(42, 100, kinds=("sleep",))
            result = run_session(requests, config, runner=None)
            runs.append(
                (
                    result.completion_order,
                    result.billing_totals(),
                    session_log(result.service),
                    [j.state.value for j in result.service.jobs.values()],
                )
            )
        assert runs[0] == runs[1]
        order, billing, log, states = runs[0]
        assert len(order) == 100
        assert set(states) == {"done"}
        assert len(log) == 100

    def test_session_log_is_byte_stable(self):
        config = ServiceConfig(workers=2, queue_depth=32)
        logs = []
        for _ in range(2):
            result = run_session(
                seeded_job_mix(7, 12, kinds=("sleep",)),
                config, runner=toy_runner,
            )
            logs.append("\n".join(session_log(result.service)))
        assert logs[0] == logs[1]
        for line in logs[0].splitlines():
            assert line.startswith("job-")
            assert "billed_seconds=" in line


class TestRecords:
    def test_records_one_per_job_plus_session(self):
        result = run_session(
            [sleepy(priority=1, client="alice"), sleepy()],
            ServiceConfig(workers=1, queue_depth=8),
            runner=toy_runner,
        )
        records = result.service.records("2026-08-08T00:00:00Z")
        kinds = [r.kind for r in records]
        assert kinds == ["service.job", "service.job", "service"]
        session = records[-1]
        assert session.labels["admitted"] == 2
        assert session.labels["states"] == {
            "job-0000": "done", "job-0001": "done"
        }
        assert session.labels["completion_order"] == [
            "job-0000", "job-0001"
        ]
        job_record = records[0]
        assert job_record.labels["client"] == "alice"
        assert job_record.labels["history"][-1][0] == "done"

    def test_seeded_job_mix_is_reproducible(self):
        assert seeded_job_mix(3, 10) == seeded_job_mix(3, 10)
        assert seeded_job_mix(3, 10) != seeded_job_mix(4, 10)
