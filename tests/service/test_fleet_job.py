"""The ``fleet`` job kind: capacity planning through the service layer."""

import pytest

from repro.service import (
    InvalidRequestError,
    JobRequest,
    ServiceConfig,
    run_session,
)
from repro.service.jobs import JOB_KINDS
from repro.service.runners import PipelineRunner


def _run(request):
    result = run_session([request], ServiceConfig(workers=1, queue_depth=4))
    assert result.accepted == 1
    (job,) = result.service.jobs.values()
    return job


class TestFleetJobKind:
    def test_fleet_is_a_registered_kind(self):
        assert "fleet" in JOB_KINDS

    def test_result_document_shape(self):
        job = _run(
            JobRequest(
                kind="fleet",
                seed=3,
                params={"flows": 300, "menus": 4, "mode": "approx"},
            )
        )
        assert job.state.value == "done"
        doc = job.result
        assert doc["kind"] == "fleet"
        assert doc["mode"] == "approx"
        assert doc["flows"] == 300
        assert (
            doc["feasible_flows"] + doc["infeasible_flows"] == doc["flows"]
        )
        assert doc["groups"] >= 1
        assert doc["total_cost"] > 0
        assert doc["max_certified_gap"] >= 0.0

    def test_exact_mode_has_zero_gap(self):
        job = _run(
            JobRequest(
                kind="fleet",
                seed=1,
                params={"flows": 200, "menus": 3, "mode": "exact"},
            )
        )
        assert job.result["mode"] == "exact"
        assert job.result["max_certified_gap"] == 0.0

    def test_same_seed_same_result(self):
        request = JobRequest(
            kind="fleet", seed=9, params={"flows": 250, "menus": 4}
        )
        a = _run(request).result
        b = _run(request).result
        assert a == b

    def test_invalid_params_are_typed_400s(self):
        runner = PipelineRunner()
        bad_flows = JobRequest(kind="fleet", params={"flows": 0})
        bad_mode = JobRequest(kind="fleet", params={"mode": "magic"})
        for request in (bad_flows, bad_mode):
            result = run_session(
                [request], ServiceConfig(workers=1, queue_depth=4)
            )
            (job,) = result.service.jobs.values()
            assert job.state.value == "failed"
            assert job.error["code"] == "invalid_request"

        class _Ctx:
            def checkpoint(self):
                pass

        class _Job:
            request = bad_mode

        with pytest.raises(InvalidRequestError):
            runner._run_fleet(_Job(), _Ctx())
