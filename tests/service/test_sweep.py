"""The concurrency sweep: makespan model, determinism, knee gating.

The full sweeps re-run the seeded batch at every worker level, so they
carry the ``service`` marker (excluded from tier-1, run by the CI
service-smoke job); the makespan model unit tests stay in tier-1.
"""

import pytest

from repro.service import DEFAULT_LEVELS, run_sweep, simulated_makespan


class TestSimulatedMakespan:
    def test_empty_batch_is_zero(self):
        assert simulated_makespan([], 4) == 0.0

    def test_one_worker_is_the_sum(self):
        assert simulated_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_workers_is_the_max(self):
        assert simulated_makespan([1.0, 2.0, 3.0], 3) == 3.0
        assert simulated_makespan([1.0, 2.0, 3.0], 10) == 3.0

    def test_greedy_earliest_free_worker(self):
        # Two workers, list order: w0=[3], w1=[1,1,1] -> makespan 3.
        assert simulated_makespan([3.0, 1.0, 1.0, 1.0], 2) == 3.0
        # Equal jobs pack evenly: ceil(4/2) * 2 = 4.
        assert simulated_makespan([2.0] * 4, 2) == 4.0

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            simulated_makespan([1.0], 0)


@pytest.mark.service
class TestRunSweep:
    def test_sweep_is_deterministic_and_finds_a_knee(self):
        kwargs = dict(seed=0, jobs=8, levels=(1, 2, 4, 8, 16))
        a = run_sweep(**kwargs)
        b = run_sweep(**kwargs)
        assert a == b
        assert a["levels"] == [1, 2, 4, 8, 16]
        assert len(a["job_seconds"]) == 8
        # Near-equal simulated jobs: throughput saturates once workers
        # cover the batch, so the knee lands at w == jobs.
        assert a["knee"] is not None
        assert a["knee"]["x"] == 8.0
        throughput = [a["throughput"][str(w)] for w in a["levels"]]
        assert throughput == sorted(throughput)

    def test_single_level_sweep_does_not_crash(self):
        doc = run_sweep(seed=0, jobs=4, levels=(2,))
        assert doc["levels"] == [2]
        assert doc["knee"] is None
        assert doc["throughput"]["2"] > 0

    def test_wall_seconds_pass_through(self):
        doc = run_sweep(
            seed=0, jobs=4, levels=(1, 2), wall_seconds={1: 0.5, 2: 0.3}
        )
        assert doc["wall_seconds"] == {"1": 0.5, "2": 0.3}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_sweep(jobs=0)
        with pytest.raises(ValueError):
            run_sweep(levels=())

    def test_default_levels_are_sorted_powers(self):
        assert DEFAULT_LEVELS == (1, 2, 4, 8, 16)
