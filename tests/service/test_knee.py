"""The shared knee-detection helper (kneedle-lite).

One helper serves both the bench flow-scaling gauges and the service
concurrency sweep, so its edge cases are pinned here: flat, monotone
saturating, noisy, and degenerate (fewer than three points) curves.
"""

import pytest

from repro.obs.bench import KneePoint, detect_knee


class TestDegenerateCurves:
    def test_single_point_returns_none(self):
        # A single concurrency point must not crash the sweep.
        assert detect_knee([4], [2.5]) is None

    def test_two_points_return_none(self):
        assert detect_knee([1, 2], [1.0, 2.0]) is None

    def test_empty_returns_none(self):
        assert detect_knee([], []) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            detect_knee([1, 2, 3], [1.0, 2.0])


class TestFlatCurves:
    def test_flat_y_returns_none(self):
        assert detect_knee([1, 2, 4, 8], [3.0, 3.0, 3.0, 3.0]) is None

    def test_flat_x_returns_none(self):
        assert detect_knee([2, 2, 2, 2], [1.0, 2.0, 3.0, 4.0]) is None


class TestMonotoneCurves:
    def test_saturating_curve_has_its_knee_at_saturation(self):
        xs = [1, 2, 4, 8, 16]
        ys = [1.0, 2.0, 4.0, 7.5, 7.8]
        knee = detect_knee(xs, ys)
        assert knee is not None
        assert knee.x == 8.0
        assert knee.index == 3
        assert knee.gain > 0.3

    def test_linear_curve_has_no_knee(self):
        xs = [1, 2, 3, 4, 5]
        ys = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert detect_knee(xs, ys) is None

    def test_min_gain_threshold_filters_weak_knees(self):
        xs = [1, 2, 3, 4]
        ys = [1.0, 2.1, 3.1, 4.0]  # barely superlinear early on
        assert detect_knee(xs, ys, min_gain=0.5) is None
        assert detect_knee(xs, ys, min_gain=0.0) is not None


class TestNoisyCurves:
    def test_noise_does_not_move_the_knee_far(self):
        xs = [1, 2, 4, 8, 16]
        ys = [1.02, 1.97, 4.05, 7.4, 7.6]  # jittered saturating curve
        knee = detect_knee(xs, ys)
        assert knee is not None
        assert knee.x in (4.0, 8.0)

    def test_non_monotone_tail_is_tolerated(self):
        xs = [1, 2, 4, 8, 16]
        ys = [1.0, 2.0, 4.0, 7.5, 7.2]  # slight decline after the knee
        knee = detect_knee(xs, ys)
        assert knee is not None
        assert knee.x == 8.0


class TestKneePoint:
    def test_to_dict_round_trip(self):
        knee = detect_knee([1, 2, 4, 8], [1.0, 2.0, 3.6, 3.9])
        doc = knee.to_dict()
        assert set(doc) == {"index", "x", "y", "gain"}
        assert doc["x"] == knee.x
        assert "KneePoint" in repr(knee)
