"""Multi-job billing: per-job scoped counters must equal each job's own
execution trace exactly, and seeded sessions must replay bit-identically.

This extends the single-run obs billing oracle to concurrent sessions:
inline workers scope a fresh metric registry per job, so the counters on
``job.metrics`` are *that job's* executor counters and nothing else.
"""

import pytest

from repro.service import (
    JobRequest,
    ServiceConfig,
    run_session,
    seeded_job_mix,
    session_log,
)


def execute_request(i, priority):
    return JobRequest(
        kind="execute",
        design="ctrl",
        scale=0.2,
        seed=1000 + i,
        flow_seed=0,
        priority=priority,
        client="alice" if i % 2 else "bob",
    )


class TestPerJobBillingExactness:
    def test_counters_equal_trace_for_a_mixed_priority_burst(self):
        requests = [execute_request(i, priority=i % 3) for i in range(6)]
        result = run_session(
            requests, ServiceConfig(workers=3, queue_depth=16)
        )
        service = result.service
        assert service.all_terminal
        checked = 0
        for job in service.jobs.values():
            assert job.state.value == "done"
            assert job.result["feasible"] is True
            counters = job.metrics["counters"]
            # Exact equality, not approx: same floats, same order of
            # accumulation, because the registry was scoped to this job.
            assert counters["executor.billed_seconds"] == (
                job.result["billed_seconds"]
            )
            assert counters["executor.billed_cost"] == (
                job.result["billed_cost"]
            )
            checked += 1
        assert checked == len(requests)

    def test_session_totals_are_the_sum_of_job_totals(self):
        requests = [execute_request(i, priority=0) for i in range(4)]
        result = run_session(
            requests, ServiceConfig(workers=2, queue_depth=8)
        )
        totals = result.billing_totals()
        assert set(totals) == set(result.service.jobs)
        summed = sum(t["billed_cost"] for t in totals.values())
        per_job = sum(
            job.result["billed_cost"]
            for job in result.service.jobs.values()
        )
        assert summed == per_job > 0

    def test_non_executing_kinds_bill_zero(self):
        requests = [
            JobRequest(kind="flow", design="ctrl", scale=0.2),
            JobRequest(kind="plan", design="ctrl", scale=0.2),
            JobRequest(kind="sleep", params={"steps": 2}),
        ]
        result = run_session(
            requests, ServiceConfig(workers=1, queue_depth=8)
        )
        for job_id, totals in result.billing_totals().items():
            assert totals == {
                "billed_seconds": 0.0, "billed_cost": 0.0
            }, job_id


class TestSeededReplays:
    def test_hundred_job_mixed_kind_run_replays_identically(self):
        """The PR's acceptance run: 100 mixed-priority pipeline jobs,
        two same-seed sessions, identical order *and* billing."""
        config = ServiceConfig(workers=4, queue_depth=128)
        runs = []
        for _ in range(2):
            result = run_session(seeded_job_mix(42, 100), config)
            assert result.accepted == 100
            assert result.service.all_terminal
            runs.append(
                (
                    result.completion_order,
                    result.billing_totals(),
                    "\n".join(session_log(result.service)),
                )
            )
        assert runs[0] == runs[1]
        order, billing, _ = runs[0]
        assert len(order) == len(billing) == 100
        executed = [b for b in billing.values() if b["billed_cost"] > 0]
        assert executed  # the mix contains execute jobs that billed

    def test_different_seeds_change_the_session(self):
        config = ServiceConfig(workers=2, queue_depth=32)
        log_a = session_log(
            run_session(seeded_job_mix(1, 10), config).service
        )
        log_b = session_log(
            run_session(seeded_job_mix(2, 10), config).service
        )
        assert log_a != log_b
