"""Worker-pool properties: slot release, drain/shutdown, state mapping.

The load-bearing invariant: a worker slot is *always* released — done,
failed, cancelled, or timed out — so a churned service never leaks
capacity.  The 1k-churn test hammers every terminal path at once.
"""

import asyncio

import pytest

from repro.service import (
    EDAService,
    JobCancelled,
    JobRequest,
    JobState,
    JobTimeout,
    ServiceConfig,
    run_session,
)


def churn_runner(job, ctx):
    """Toy runner whose behaviour the request's params select."""
    behavior = job.request.params.get("behavior", "ok")
    if behavior == "fail":
        raise ValueError("boom")
    if behavior == "cancel":
        # A cancel request lands mid-run; the next checkpoint observes it.
        job.cancel_requested = True
        ctx.checkpoint()
    if behavior == "timeout":
        raise JobTimeout(job.job_id)
    return {"ok": True}


def churn_request(behavior="ok", priority=0):
    return JobRequest(
        kind="sleep", priority=priority, params={"behavior": behavior}
    )


BEHAVIOR_STATE = {
    "ok": JobState.DONE,
    "fail": JobState.FAILED,
    "cancel": JobState.CANCELLED,
    "timeout": JobState.TIMED_OUT,
}


class TestTerminalMapping:
    def test_each_behavior_maps_to_its_terminal_state(self):
        behaviors = ["ok", "fail", "cancel", "timeout"]
        result = run_session(
            [churn_request(b) for b in behaviors],
            ServiceConfig(workers=2, queue_depth=8),
            runner=churn_runner,
        )
        states = [
            result.service.jobs[f"job-{i:04d}"].state
            for i in range(len(behaviors))
        ]
        assert states == [BEHAVIOR_STATE[b] for b in behaviors]

    def test_failure_carries_structured_error_document(self):
        result = run_session(
            [churn_request("fail")],
            ServiceConfig(workers=1, queue_depth=4),
            runner=churn_runner,
        )
        job = result.service.jobs["job-0000"]
        assert job.state is JobState.FAILED
        assert job.error["code"] == "job_failed"
        assert "ValueError" in job.error["message"]
        assert job.result is None

    def test_control_flow_exceptions_leave_no_error_document(self):
        result = run_session(
            [churn_request("cancel"), churn_request("timeout")],
            ServiceConfig(workers=1, queue_depth=4),
            runner=churn_runner,
        )
        for job in result.service.jobs.values():
            assert job.error is None
            assert job.terminal

    def test_cooperative_timeout_on_the_tick_clock(self):
        # Each checkpoint advances the deterministic clock; ten rounds
        # overrun a 3-tick budget and must terminate as timed_out.
        request = JobRequest(
            kind="sleep", timeout_seconds=3.0, params={"steps": 10}
        )
        result = run_session(
            [request], ServiceConfig(workers=1, queue_depth=4)
        )
        job = result.service.jobs["job-0000"]
        assert job.state is JobState.TIMED_OUT
        assert job.error is None


class TestSlotRelease:
    def test_slots_balance_after_mixed_outcomes(self):
        behaviors = ["ok", "fail", "cancel", "timeout"] * 3
        result = run_session(
            [churn_request(b) for b in behaviors],
            ServiceConfig(workers=3, queue_depth=32),
            runner=churn_runner,
        )
        pool = result.service.pool
        assert pool.active == 0
        assert pool.slots_acquired == pool.slots_released == len(behaviors)
        assert all(job.terminal for job in result.service.jobs.values())

    def test_no_slot_leak_after_1k_churned_jobs(self):
        """The headline property: 1000 jobs across every terminal path
        (including cancelled-while-queued) release every slot."""
        behaviors = ["ok", "fail", "cancel", "timeout"]
        jobs = 1000
        requests = [
            churn_request(behaviors[i % 4], priority=i % 3)
            for i in range(jobs)
        ]
        # Cancel every 10th job before the pool takes its first step.
        cancel = {i: 0 for i in range(0, jobs, 10)}
        result = run_session(
            requests,
            ServiceConfig(workers=4, queue_depth=jobs),
            runner=churn_runner,
            cancel=cancel,
        )
        service = result.service
        pool = service.pool
        ran = pool.slots_acquired
        assert pool.active == 0
        assert pool.slots_released == ran
        # Queued-cancelled jobs never touch a worker.
        assert ran == jobs - len(cancel)
        assert all(job.terminal for job in service.jobs.values())
        assert len(service.terminal_order) == jobs
        assert service.all_terminal

    def test_worker_indices_are_recorded(self):
        result = run_session(
            [churn_request() for _ in range(6)],
            ServiceConfig(workers=2, queue_depth=8),
            runner=churn_runner,
        )
        workers = {
            job.worker for job in result.service.jobs.values()
        }
        assert workers <= {0, 1}
        assert all(job.worker is not None for job in result.service.jobs.values())


class TestDrainAndShutdown:
    def test_drain_finishes_the_backlog(self):
        result = run_session(
            [churn_request() for _ in range(5)],
            ServiceConfig(workers=1, queue_depth=8),
            runner=churn_runner,
        )
        assert all(
            job.state is JobState.DONE
            for job in result.service.jobs.values()
        )
        assert len(result.service.pool.completed) == 5

    def test_shutdown_cancels_the_backlog_unrun(self):
        async def drive():
            service = EDAService(
                ServiceConfig(workers=1, queue_depth=8),
                runner=churn_runner,
            )
            for _ in range(4):
                service.submit(churn_request())
            # Pool never started: shutdown must drop everything queued.
            dropped = await service.shutdown()
            return service, dropped

        service, dropped = asyncio.run(drive())
        assert len(dropped) == 4
        assert all(job.state is JobState.CANCELLED for job in dropped)
        assert service.pool.slots_acquired == 0
        assert len(service.terminal_order) == 4

    def test_pool_rejects_double_start(self):
        async def drive():
            service = EDAService(
                ServiceConfig(workers=1, queue_depth=4),
                runner=churn_runner,
            )
            service.start()
            with pytest.raises(RuntimeError):
                service.start()
            await service.drain()

        asyncio.run(drive())

    def test_invalid_pool_parameters(self):
        with pytest.raises(ValueError):
            EDAService(ServiceConfig(workers=0), runner=churn_runner)
        with pytest.raises(ValueError):
            EDAService(ServiceConfig(mode="fibers"), runner=churn_runner)
