"""Priority queue, token bucket, and admission-control properties."""

import random

import pytest

from repro.service import (
    AdmissionController,
    Job,
    JobQueue,
    JobRequest,
    JobState,
    QueueFullError,
    RateLimitedError,
    ServiceDrainingError,
    TokenBucket,
)


def make_job(seq, priority=0, client="default"):
    return Job(
        job_id=f"job-{seq:04d}",
        request=JobRequest(kind="sleep", priority=priority, client=client),
        seq=seq,
    )


class ManualClock:
    """A clock the test advances explicitly."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_fresh_client_starts_full(self):
        clock = ManualClock()
        bucket = TokenBucket(capacity=2, refill_per_second=1.0, clock=clock)
        assert bucket.tokens("alice") == 2.0
        assert bucket.try_acquire("alice") is None
        assert bucket.try_acquire("alice") is None

    def test_dry_bucket_returns_retry_after(self):
        clock = ManualClock()
        bucket = TokenBucket(capacity=2, refill_per_second=0.5, clock=clock)
        bucket.try_acquire("alice")
        bucket.try_acquire("alice")
        retry = bucket.try_acquire("alice")
        # Empty bucket at 0.5 tokens/s: one token is 2 seconds away.
        assert retry == pytest.approx(2.0)

    def test_refill_restores_tokens(self):
        clock = ManualClock()
        bucket = TokenBucket(capacity=1, refill_per_second=1.0, clock=clock)
        assert bucket.try_acquire("alice") is None
        assert bucket.try_acquire("alice") is not None
        clock.now = 1.0
        assert bucket.try_acquire("alice") is None

    def test_refill_caps_at_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(capacity=3, refill_per_second=1.0, clock=clock)
        bucket.try_acquire("alice")
        clock.now = 1000.0
        assert bucket.tokens("alice") == 3.0

    def test_clients_are_independent(self):
        clock = ManualClock()
        bucket = TokenBucket(capacity=1, refill_per_second=1.0, clock=clock)
        assert bucket.try_acquire("alice") is None
        assert bucket.try_acquire("alice") is not None
        assert bucket.try_acquire("bob") is None

    def test_invalid_parameters(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_per_second=1.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_per_second=0.0, clock=clock)


class TestJobQueue:
    def test_higher_priority_pops_first(self):
        queue = JobQueue(depth=8)
        low, high = make_job(0, priority=0), make_job(1, priority=5)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_fifo_within_priority(self):
        queue = JobQueue(depth=8)
        jobs = [make_job(seq, priority=1) for seq in range(5)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop() for _ in jobs] == jobs

    def test_delivery_order_matches_sort_key(self):
        rng = random.Random(7)
        queue = JobQueue(depth=64)
        jobs = [make_job(seq, priority=rng.randint(0, 3)) for seq in range(20)]
        for job in jobs:
            queue.push(job)
        expected = sorted(jobs, key=lambda j: (-j.request.priority, j.seq))
        assert queue.snapshot() == [j.job_id for j in expected]
        popped = []
        while True:
            job = queue.pop()
            if job is None:
                break
            popped.append(job)
        assert popped == expected

    def test_depth_bound(self):
        queue = JobQueue(depth=2)
        queue.push(make_job(0))
        queue.push(make_job(1))
        assert queue.full
        with pytest.raises(QueueFullError):
            queue.push(make_job(2))

    def test_cancelled_jobs_free_capacity_immediately(self):
        queue = JobQueue(depth=2)
        victim = make_job(0)
        queue.push(victim)
        queue.push(make_job(1))
        victim.transition(JobState.CANCELLED, 0.0)
        assert len(queue) == 1
        assert not queue.full
        queue.push(make_job(2))  # must not raise

    def test_pop_skips_cancelled(self):
        queue = JobQueue(depth=4)
        victim, survivor = make_job(0), make_job(1)
        queue.push(victim)
        queue.push(survivor)
        victim.transition(JobState.CANCELLED, 0.0)
        assert queue.pop() is survivor
        assert queue.pop() is None

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(depth=0)


class TestAdmissionController:
    def test_admits_and_counts(self):
        admission = AdmissionController(JobQueue(depth=4))
        admission.admit(make_job(0))
        admission.admit(make_job(1))
        assert admission.admitted == 2
        assert admission.rejected == {}

    def test_queue_full_rejection_is_typed_and_counted(self):
        admission = AdmissionController(JobQueue(depth=1))
        admission.admit(make_job(0))
        with pytest.raises(QueueFullError) as excinfo:
            admission.admit(make_job(1))
        assert excinfo.value.to_response()["error"]["code"] == "queue_full"
        assert admission.rejected == {"queue_full": 1}
        assert admission.admitted == 1

    def test_draining_rejects_before_anything_else(self):
        admission = AdmissionController(JobQueue(depth=1))
        admission.admit(make_job(0))  # queue now full
        admission.draining = True
        with pytest.raises(ServiceDrainingError):
            admission.admit(make_job(1))
        assert admission.rejected == {"draining": 1}

    def test_rate_limit_checked_before_queue_depth(self):
        clock = ManualClock()
        bucket = TokenBucket(capacity=1, refill_per_second=1.0, clock=clock)
        admission = AdmissionController(JobQueue(depth=1), rate_limiter=bucket)
        admission.admit(make_job(0, client="alice"))  # queue now full too
        with pytest.raises(RateLimitedError) as excinfo:
            admission.admit(make_job(1, client="alice"))
        details = excinfo.value.to_response()["error"]["details"]
        assert details["client"] == "alice"
        assert details["retry_after_seconds"] > 0
        assert admission.rejected == {"rate_limited": 1}

    def test_admission_never_exceeds_depth(self):
        rng = random.Random(11)
        for depth in (1, 2, 5):
            queue = JobQueue(depth=depth)
            admission = AdmissionController(queue)
            offered = depth + rng.randint(1, 5)
            outcomes = []
            for seq in range(offered):
                try:
                    admission.admit(make_job(seq, priority=rng.randint(0, 2)))
                    outcomes.append("ok")
                except QueueFullError:
                    outcomes.append("full")
            assert len(queue) <= depth
            assert admission.admitted == depth
            # The bound binds deterministically: first `depth` in, rest out.
            assert outcomes == ["ok"] * depth + ["full"] * (offered - depth)
