"""End-to-end integration tests spanning all subsystems."""

import pytest

from repro.cloud import aws_like_catalog
from repro.core import (
    build_stage_options,
    characterize,
    cost_saving_percent,
    over_provisioning,
    solve_mckp_dp,
    under_provisioning,
)
from repro.eda import EDAStage, FlowRunner
from repro.netlist import benchmarks


@pytest.fixture(scope="module")
def report():
    """A coarse characterization of a mid-size design."""
    return characterize("fpu", scale=0.8, vcpu_levels=(1, 2, 4, 8), sample_rate=8)


class TestCharacterizeToDeployment:
    """Figure 1's arrow from characterization to optimization."""

    def test_full_pipeline(self, report):
        runtimes = report.stage_runtimes()
        stages = build_stage_options(
            runtimes,
            catalog=aws_like_catalog(),
            families=report.recommended_families(),
        )
        # Deadline halfway between fastest and slowest uniform plans.
        slowest = sum(opts.options[0].runtime_seconds for opts in stages)
        fastest = sum(opts.fastest.runtime_seconds for opts in stages)
        deadline = (slowest + fastest) / 2
        selection = solve_mckp_dp(stages, deadline)
        assert selection is not None
        assert selection.total_runtime <= deadline

        over = over_provisioning(stages)
        under = under_provisioning(stages)
        saving_over = cost_saving_percent(selection.total_cost, over.total_cost)
        # The optimized plan should never cost more than over-provisioning.
        assert saving_over >= -1e-9
        assert selection.total_runtime <= under.total_runtime

    def test_infeasible_deadline_is_na(self, report):
        stages = build_stage_options(report.stage_runtimes())
        fastest = sum(opts.fastest.runtime_seconds for opts in stages)
        assert solve_mckp_dp(stages, fastest * 0.5) is None

    def test_characterization_reproduces_paper_orderings(self, report):
        """The qualitative claims of Figure 2 hold on another design."""
        spd = {s: c.speedup(8) for s, c in report.stages.items()}
        branch = {
            s: list(c.branch_miss_rates().values())[0]
            for s, c in report.stages.items()
        }
        assert max(spd, key=spd.get) == EDAStage.ROUTING
        assert max(branch, key=branch.get) == EDAStage.ROUTING


class TestFlowArtifactsConsistency:
    def test_flow_reuses_placement_for_sta_and_routing(self):
        fr = FlowRunner().run(benchmarks.build("int2float", 0.6))
        placement = fr[EDAStage.PLACEMENT].artifact
        routing = fr[EDAStage.ROUTING].artifact
        # every routed gcell coordinate lies within the placement-derived grid
        assert routing.grid_width >= 4
        sta = fr[EDAStage.STA].artifact
        assert sta.max_arrival > 0
        # the timing graph saw every instance
        netlist = fr[EDAStage.SYNTHESIS].artifact
        assert len(sta.arrival) >= netlist.num_instances
