"""Tests for the branch predictor simulators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.branch import GSharePredictor, TwoBitPredictor


class TestTwoBit:
    def test_always_taken_converges(self):
        p = TwoBitPredictor()
        misses = p.process([7] * 100, [True] * 100)
        assert misses <= 1  # counters start weakly-taken

    def test_always_not_taken_converges(self):
        p = TwoBitPredictor()
        misses = p.process([7] * 100, [False] * 100)
        assert misses <= 2  # at most the warm-up transitions

    def test_alternating_pattern_confuses_2bit(self):
        p = TwoBitPredictor()
        outcomes = [i % 2 == 0 for i in range(200)]
        misses = p.process([3] * 200, outcomes)
        assert misses >= 80  # the classic 2-bit pathological case

    def test_biased_stream_low_misses(self):
        import random

        rng = random.Random(0)
        outcomes = [rng.random() < 0.95 for _ in range(1000)]
        p = TwoBitPredictor()
        misses = p.process([1] * 1000, outcomes)
        assert misses / 1000 < 0.15

    def test_distinct_sites_do_not_alias(self):
        p = TwoBitPredictor(table_bits=12)
        p.process([0] * 50, [True] * 50)
        misses = p.process([1], [False])
        # site 1 is fresh (weakly taken) -> one miss, unaffected by site 0
        assert misses == 1

    def test_process_equals_predict_and_update(self):
        import random

        rng = random.Random(5)
        pcs = [rng.randrange(64) for _ in range(300)]
        outcomes = [rng.random() < 0.6 for _ in range(300)]
        p1 = TwoBitPredictor(table_bits=6)
        p2 = TwoBitPredictor(table_bits=6)
        batch_misses = p1.process(pcs, outcomes)
        loop_misses = sum(
            0 if p2.predict_and_update(pc, o) else 1 for pc, o in zip(pcs, outcomes)
        )
        assert batch_misses == loop_misses

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TwoBitPredictor().process([1, 2], [True])

    def test_table_bits_validation(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(table_bits=0)

    @given(st.lists(st.booleans(), min_size=1, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_miss_count_bounded(self, outcomes):
        p = TwoBitPredictor()
        misses = p.process([9] * len(outcomes), outcomes)
        assert 0 <= misses <= len(outcomes)
        assert p.stats.branches == len(outcomes)
        assert p.miss_rate == pytest.approx(misses / len(outcomes))


class TestGShare:
    def test_learns_global_pattern(self):
        """Gshare learns a period-2 global pattern that defeats 2-bit."""
        outcomes = [i % 2 == 0 for i in range(400)]
        g = GSharePredictor(table_bits=10, history_bits=4)
        t = TwoBitPredictor(table_bits=10)
        g_misses = g.process([3] * 400, outcomes)
        t_misses = t.process([3] * 400, outcomes)
        assert g_misses < t_misses

    def test_stats(self):
        g = GSharePredictor()
        g.process([1] * 10, [True] * 10)
        assert g.stats.branches == 10
        assert 0 <= g.miss_rate <= 1
