"""Tests for the instrumentation facade (sampling, scaling, null path)."""

import pytest

from repro.perf import Instrument, NullInstrument, make_instrument


class TestNullInstrument:
    def test_swallows_everything(self):
        inst = NullInstrument()
        inst.mem([1, 2, 3])
        inst.branch(0, [True, False])
        inst.flops(scalar=5, avx=8)
        inst.instructions(100)
        c = inst.counters
        assert c.instructions == 0
        assert c.mem_accesses == 0
        assert not inst.enabled
        assert inst.concurrency == 1


class TestInstrument:
    def test_mem_counts(self):
        inst = Instrument()
        inst.mem(list(range(0, 64 * 10, 64)))
        c = inst.counters
        assert c.mem_accesses == 10
        assert c.l1_hits + c.l1_misses == 10

    def test_reads_per_element_scales_counts(self):
        inst = Instrument()
        inst.mem([0, 64, 128], reads_per_element=4)
        assert inst.counters.mem_accesses == 12

    def test_sampling_scales_back_up(self):
        full = Instrument(sample_rate=1)
        sampled = Instrument(sample_rate=4)
        addrs = list(range(0, 64 * 400, 64))
        full.mem(addrs)
        sampled.mem(addrs)
        assert sampled.counters.mem_accesses == full.counters.mem_accesses
        # miss estimates agree within sampling error
        assert sampled.counters.l1_misses == pytest.approx(
            full.counters.l1_misses, rel=0.2
        )

    def test_branch_weight(self):
        inst = Instrument()
        inst.branch(3, [True] * 10, weight=5)
        assert inst.counters.branches == 50

    def test_branch_counts_and_misses(self):
        inst = Instrument()
        inst.branch(1, [True] * 100)
        c = inst.counters
        assert c.branches == 100
        assert c.branch_misses <= 2

    def test_flops_instruction_accounting(self):
        inst = Instrument()
        inst.flops(scalar=10, avx=40)
        c = inst.counters
        assert c.fp_scalar_ops == 10
        assert c.fp_avx_ops == 40
        assert c.instructions == 10 + 10  # 40 avx ops = 10 vector instrs

    def test_empty_events_are_noops(self):
        inst = Instrument()
        inst.mem([])
        inst.branch(0, [])
        assert inst.counters.instructions == 0

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            Instrument(sample_rate=0)


class TestMakeInstrument:
    def test_concurrency_set(self):
        inst = make_instrument(8)
        assert inst.concurrency == 8
        assert inst.enabled

    def test_llc_scales_with_vcpus(self):
        small = make_instrument(1)
        big = make_instrument(4)
        assert big.cache.llc.config.size_bytes == 4 * small.cache.llc.config.size_bytes
