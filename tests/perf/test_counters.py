"""Tests for performance-counter aggregation."""

import pytest

from repro.perf import PerfCounters


class TestRates:
    def test_branch_miss_rate(self):
        c = PerfCounters(branches=200, branch_misses=30)
        assert c.branch_miss_rate == pytest.approx(0.15)

    def test_cache_miss_rate_uses_llc_references(self):
        c = PerfCounters(l1_hits=900, l1_misses=100, llc_hits=60, llc_misses=40)
        assert c.llc_accesses == 100
        assert c.cache_miss_rate == pytest.approx(0.40)
        assert c.l1_miss_rate == pytest.approx(0.10)

    def test_avx_share_counts_vector_instructions(self):
        c = PerfCounters(instructions=1000, fp_avx_ops=400)
        assert c.avx_instructions == 100
        assert c.avx_share == pytest.approx(0.1)

    def test_fp_share(self):
        c = PerfCounters(instructions=100, fp_scalar_ops=10, fp_avx_ops=20)
        assert c.fp_ops == 30
        assert c.fp_share == pytest.approx(0.30)

    def test_zero_denominators(self):
        c = PerfCounters()
        assert c.branch_miss_rate == 0.0
        assert c.cache_miss_rate == 0.0
        assert c.l1_miss_rate == 0.0
        assert c.avx_share == 0.0


class TestComposition:
    def test_merge_adds_fields(self):
        a = PerfCounters(instructions=10, branches=5)
        b = PerfCounters(instructions=1, branch_misses=2)
        merged = a + b
        assert merged.instructions == 11
        assert merged.branches == 5
        assert merged.branch_misses == 2

    def test_merge_does_not_mutate(self):
        a = PerfCounters(instructions=10)
        _ = a + PerfCounters(instructions=5)
        assert a.instructions == 10

    def test_as_dict_has_rates(self):
        d = PerfCounters(branches=10, branch_misses=1).as_dict()
        assert d["branch_miss_rate"] == pytest.approx(0.1)
        assert "cache_miss_rate" in d
        assert "avx_share" in d

    def test_summary_format(self):
        text = PerfCounters(
            instructions=1234, branches=100, branch_misses=10
        ).summary()
        assert "instructions" in text
        assert "10.00%" in text
