"""Tests for the cache hierarchy simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
    hierarchy_for_vcpus,
)


class TestConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=4096, line_bytes=64, associativity=4)
        assert cfg.num_sets == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=7)


class TestCacheLevel:
    def test_hit_after_miss(self):
        level = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
        assert not level.access(0)
        assert level.access(0)
        assert level.access(63)  # same line
        assert not level.access(64)  # next line

    def test_lru_eviction(self):
        # 2-way, 1 set: 128B cache with 64B lines
        level = CacheLevel(CacheConfig(size_bytes=128, line_bytes=64, associativity=2))
        level.access(0)    # line 0
        level.access(64)   # line 1
        level.access(0)    # touch line 0 (now MRU)
        level.access(128)  # evicts line 1 (LRU)
        assert level.access(0)
        assert not level.access(64)

    def test_stats(self):
        level = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
        for a in (0, 0, 64):
            level.access(a)
        assert level.hits == 1
        assert level.misses == 2
        assert level.miss_rate == pytest.approx(2 / 3)
        level.reset_stats()
        assert level.hits == 0 and level.misses == 0

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        level = CacheLevel(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))
        for a in addresses:
            level.access(a)
        assert level.hits + level.misses == len(addresses)

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_misses_more(self, addresses):
        """Inclusion property of LRU: a larger cache has fewer misses."""
        small = CacheLevel(CacheConfig(size_bytes=512, line_bytes=64, associativity=8))
        large = CacheLevel(CacheConfig(size_bytes=4096, line_bytes=64, associativity=8))
        # Use fully-associative-like configs (single set) for strict LRU
        # inclusion; here both have 1 and 8 sets, so compare loosely.
        for a in addresses:
            small.access(a)
            large.access(a)
        assert large.misses <= small.misses + 8  # small slack for set effects


class TestHierarchy:
    def test_l1_hit_short_circuits_llc(self):
        h = hierarchy_for_vcpus(1)
        h.access(0)
        llc_before = h.llc.hits + h.llc.misses
        h.access(0)  # L1 hit
        assert h.llc.hits + h.llc.misses == llc_before

    def test_llc_must_cover_l1(self):
        small = CacheConfig(size_bytes=4096, line_bytes=64, associativity=4)
        tiny = CacheConfig(size_bytes=1024, line_bytes=64, associativity=4)
        with pytest.raises(ValueError):
            CacheHierarchy(small, tiny)

    def test_access_stream_counts(self):
        h = hierarchy_for_vcpus(1)
        h.access_stream(range(0, 64 * 100, 64))
        stats = h.stats
        assert stats["l1_hits"] + stats["l1_misses"] == 100

    def test_vcpus_scale_llc_not_l1(self):
        h1 = hierarchy_for_vcpus(1)
        h8 = hierarchy_for_vcpus(8)
        assert h8.llc.config.size_bytes == 8 * h1.llc.config.size_bytes
        assert h8.l1.config.size_bytes == h1.l1.config.size_bytes

    def test_invalid_vcpus(self):
        with pytest.raises(ValueError):
            hierarchy_for_vcpus(0)

    def test_capacity_miss_disappears_with_bigger_llc(self):
        """A working set between the two LLC sizes shows the VM effect."""
        # 64KB working set: misses in 32KB LLC (1 vCPU), fits in 256KB (8).
        addresses = list(range(0, 64 * 1024, 64)) * 3
        h1 = hierarchy_for_vcpus(1)
        h8 = hierarchy_for_vcpus(8)
        h1.access_stream(addresses)
        h8.access_stream(addresses)
        assert h8.llc.misses < h1.llc.misses
