"""Region/AZ topology: pricing twins, transfer billing, failover ring.

The home-region identity is the load-bearing property: the home catalog
is the *same object graph* as the reference catalog, so a zero-severity
chaos run plans and bills byte-identically to a single-region run.
"""

import pytest

from repro.chaos import CloudTopology, Region, default_topology


def two_region_topology():
    return CloudTopology(
        regions=(
            Region(name="alpha", zones=("alpha-1a", "alpha-1b")),
            Region(
                name="beta",
                zones=("beta-1a",),
                price_multiplier=1.25,
                egress_per_gb=0.08,
            ),
        )
    )


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
def test_region_validation_rejects_bad_knobs_by_name():
    with pytest.raises(ValueError, match="at least one zone"):
        Region(name="r", zones=())
    with pytest.raises(ValueError, match="price_multiplier"):
        Region(name="r", zones=("z",), price_multiplier=0.0)
    with pytest.raises(ValueError, match="spot_discount"):
        Region(name="r", zones=("z",), spot_discount=1.5)
    with pytest.raises(ValueError, match="interrupt_rate_multiplier"):
        Region(name="r", zones=("z",), interrupt_rate_multiplier=-1.0)
    with pytest.raises(ValueError, match="egress_per_gb"):
        Region(name="r", zones=("z",), egress_per_gb=-0.01)


def test_duplicate_regions_and_zones_rejected():
    r = Region(name="alpha", zones=("z1",))
    with pytest.raises(ValueError, match="duplicate region"):
        CloudTopology(regions=(r, Region(name="alpha", zones=("z2",))))
    with pytest.raises(ValueError, match="appears in two regions"):
        CloudTopology(
            regions=(r, Region(name="beta", zones=("z1",)))
        )
    with pytest.raises(ValueError, match="at least one region"):
        CloudTopology(regions=())


def test_unknown_lookups_raise_keyerror():
    topo = two_region_topology()
    with pytest.raises(KeyError, match="unknown region"):
        topo.region("gamma")
    with pytest.raises(KeyError, match="unknown availability zone"):
        topo.region_of("gamma-1a")
    with pytest.raises(KeyError, match="home region"):
        CloudTopology(
            regions=(Region(name="alpha", zones=("z",)),), home="beta"
        )


def test_zone_to_region_mapping():
    topo = two_region_topology()
    assert topo.region_of("alpha-1b").name == "alpha"
    assert topo.region_of("beta-1a").name == "beta"
    assert topo.zones == ("alpha-1a", "alpha-1b", "beta-1a")


# ----------------------------------------------------------------------
# Pricing: home identity, remote twins
# ----------------------------------------------------------------------
def test_home_region_pricing_is_the_identity():
    topo = two_region_topology()
    assert topo.catalog_in("alpha") is topo.catalog
    vm = topo.catalog.options()[0]
    assert topo.price_in(vm, "alpha") is vm


def test_remote_region_mints_suffixed_twins_at_its_multiplier():
    topo = two_region_topology()
    vm = topo.catalog.options()[0]
    twin = topo.price_in(vm, "beta")
    assert twin.name == f"{vm.name}@beta"
    assert twin.price_per_hour == pytest.approx(vm.price_per_hour * 1.25)
    # Shape is preserved — only name and rate change.
    assert twin.vcpus == vm.vcpus
    catalog = topo.catalog_in("beta")
    assert all(
        inst.name.endswith("@beta") for inst in catalog.options()
    )


def test_spot_market_applies_region_interrupt_multiplier():
    topo = default_topology()
    home = topo.spot_market("us-east", interrupt_rate_per_hour=3.0)
    eu = topo.spot_market("eu-central", interrupt_rate_per_hour=3.0)
    # eu-central declares a 0.6 interrupt multiplier in default_topology.
    assert eu.interrupt_rate_per_hour == pytest.approx(
        0.6 * home.interrupt_rate_per_hour
    )


# ----------------------------------------------------------------------
# Transfers and failover
# ----------------------------------------------------------------------
def test_intra_region_transfer_is_free_cross_region_bills_src_egress():
    topo = two_region_topology()
    assert topo.transfer_cost("alpha", "alpha", 100.0) == 0.0
    assert topo.transfer_cost("alpha", "beta", 10.0) == pytest.approx(
        0.02 * 10.0
    )
    # Egress is billed at the *source* rate — asymmetric by design.
    assert topo.transfer_cost("beta", "alpha", 10.0) == pytest.approx(
        0.08 * 10.0
    )
    with pytest.raises(ValueError, match="non-negative"):
        topo.transfer_cost("alpha", "beta", -1.0)


def test_failover_ring_walks_declaration_order_and_wraps():
    topo = default_topology()
    ring = [topo.home]
    for _ in range(len(topo.regions)):
        ring.append(topo.failover_target(ring[-1]))
    assert ring == ["us-east", "us-west", "eu-central", "us-east"]


def test_single_region_topology_fails_over_to_itself():
    topo = CloudTopology(regions=(Region(name="solo", zones=("z",)),))
    assert topo.failover_target("solo") == "solo"
