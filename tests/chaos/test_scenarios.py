"""Named scenario suites: replay, bounds, severity-blind planning, records.

These are the end-to-end properties ``repro chaos --scenario`` and the
``scenario`` fuzz oracle stand on; the tests here pin them at fixed
seeds so a regression names the broken property directly.
"""

import pytest

from repro.chaos import (
    SCENARIOS,
    run_scenario,
    scenario_names,
    scenario_to_run,
)
from repro.chaos.scenarios import _build_workload
from repro.chaos.topology import default_topology
from repro.cloud.executor import ExecutionPolicy


def test_scenario_registry_is_sorted_and_self_consistent():
    assert scenario_names() == (
        "az_reclaim_storm",
        "noisy_region",
        "regime_flap",
        "transfer_partition",
    )
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.description
        assert scenario.policy.max_preemptions_per_stage is not None


def test_unknown_scenario_raises_keyerror_naming_the_known_suites():
    with pytest.raises(KeyError, match="az_reclaim_storm"):
        run_scenario("volcano")


def test_scenario_validation_rejects_degenerate_suites():
    template = SCENARIOS["regime_flap"]
    from dataclasses import replace

    with pytest.raises(ValueError, match="deadline_factor"):
        replace(template, deadline_factor=0.5)
    with pytest.raises(ValueError, match="jobs"):
        replace(template, jobs=0)
    with pytest.raises(ValueError, match="bounded"):
        replace(
            template,
            policy=ExecutionPolicy(max_preemptions_per_stage=None),
        )


def test_replay_is_byte_identical():
    a = run_scenario("regime_flap", severity=1.0, seed=4)
    b = run_scenario("regime_flap", severity=1.0, seed=4)
    assert a.trace_dump() == b.trace_dump()
    assert a.summary() == b.summary()


def test_zero_severity_run_has_zero_overrun_and_no_evictions():
    result = run_scenario("az_reclaim_storm", severity=0.0, seed=2)
    assert result.execution.trace.to_jsonl() == (
        result.baseline.trace.to_jsonl()
    )
    assert result.time_overrun == 0.0
    assert result.cost_overrun == 0.0
    assert result.bound.time_overrun == 0.0
    assert result.within_bounds
    assert result.storm.evictions == {}


def test_planning_is_severity_blind():
    """One scenario's plan must be identical across its severity sweep,
    so overruns compare like-for-like against the severity-0 baseline."""
    mild = run_scenario("noisy_region", severity=0.25, seed=1)
    harsh = run_scenario("noisy_region", severity=1.0, seed=1)
    assert mild.execution.plan == harsh.execution.plan
    assert mild.deadline_seconds == harsh.deadline_seconds
    assert mild.baseline.trace.to_jsonl() == harsh.baseline.trace.to_jsonl()


def test_full_severity_runs_sit_inside_the_degradation_bound():
    for name in scenario_names():
        result = run_scenario(name, severity=1.0, seed=0)
        assert result.within_bounds, result.summary()


def test_workload_derives_deadline_from_the_fastest_critical_path():
    scenario = SCENARIOS["transfer_partition"]
    menu, plan, deadline = _build_workload(scenario, default_topology())
    assert plan.design == "transfer_partition"
    assert len(plan.assignments) == len(menu)
    # 1200 + 2400 + 3600 + 600 fastest seconds times the 1.8 factor.
    assert deadline == pytest.approx(scenario.deadline_factor * 7800.0)


def test_scenario_to_run_record_shape():
    result = run_scenario("az_reclaim_storm", severity=0.5, seed=0)
    record = scenario_to_run(
        result, rev="testrev", timestamp_utc="2026-08-08T00:00:00Z"
    )
    assert record.kind == "chaos.scenario"
    assert record.scale == 0.5
    assert record.seed == 0
    assert record.rev == "testrev"
    assert record.labels["scenario"] == "az_reclaim_storm"
    assert record.labels["design"] == "az_reclaim_storm"
    assert record.labels["within_bounds"] is True
    gauges = record.metrics["gauges"]
    for key in (
        "chaos.scenario.total_cost",
        "chaos.scenario.sim_seconds",
        "chaos.scenario.overrun_time",
        "chaos.scenario.overrun_cost",
        "chaos.scenario.bound_time",
        "chaos.scenario.bound_cost",
        "chaos.scenario.preemptions",
        "chaos.scenario.az_reclaims",
        "chaos.scenario.failovers",
        "chaos.scenario.evictions",
    ):
        assert key in gauges
    assert gauges["chaos.scenario.overrun_time"] == result.time_overrun
    # Records round-trip through the store schema.
    from repro.obs.store import RunRecord

    assert RunRecord.from_dict(record.to_dict()) == record
