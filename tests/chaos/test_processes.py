"""Correlated fault processes: schedules, attribution, the severity knob.

Two properties carry the whole chaos stack:

* the global schedules (regime flips, AZ events, boot waves) are
  append-only functions of the seed — any query order observes the same
  prefix, which is what makes executor traces replayable;
* at severity zero nothing ever touches a stream, the anchor that makes
  a severity-0 chaos run bit-identical to the fault-free executor.
"""

import math

import pytest

from repro.chaos import ChaosInjector, ChaosSpec, default_topology
from repro.cloud.faults import FaultProfile
from repro.cloud.tenancy import NeighborLoad


def make_injector(severity=1.0, seed=0, spec=None, placement=None):
    return ChaosInjector(
        spec if spec is not None else ChaosSpec(),
        severity,
        default_topology(),
        placement=placement,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Spec validation and severity scaling
# ----------------------------------------------------------------------
def test_spec_validation_rejects_bad_knobs_by_name():
    with pytest.raises(ValueError, match="storm_rate_multiplier"):
        ChaosSpec(storm_rate_multiplier=0.5)
    with pytest.raises(ValueError, match="dwell means"):
        ChaosSpec(mean_calm_seconds=0.0)
    with pytest.raises(ValueError, match="az_reclaim_rate_per_hour"):
        ChaosSpec(az_reclaim_rate_per_hour=-1.0)
    with pytest.raises(ValueError, match="boot_wave_prob"):
        ChaosSpec(boot_wave_prob=1.5)
    with pytest.raises(ValueError, match="checkpoint_gb"):
        ChaosSpec(checkpoint_gb=-1.0)


def test_effective_profile_scales_rates_linearly():
    spec = ChaosSpec()
    full = spec.effective_profile(1.0)
    half = spec.effective_profile(0.5)
    zero = spec.effective_profile(0.0)
    assert full == spec.profile
    assert half.spot_interrupt_rate_per_hour == pytest.approx(
        0.5 * full.spot_interrupt_rate_per_hour
    )
    assert half.boot_failure_prob == pytest.approx(
        0.5 * full.boot_failure_prob
    )
    # The straggler *multiplier* keeps its full value — only the
    # probability of being struck scales.
    assert half.straggler_slowdown == full.straggler_slowdown
    assert zero.fault_free
    with pytest.raises(ValueError, match="severity"):
        spec.effective_profile(1.5)


def test_zero_severity_consults_no_streams_and_draws_nothing():
    injector = make_injector(severity=0.0)
    assert injector.regime_at(1e6) == "calm"
    assert injector.next_az_reclaim("us-east-1a", 0.0) == math.inf
    assert injector.az_reclaims_until(1e6) == []
    assert injector.in_boot_wave(1e6) is False
    assert injector.boot_fails("synthesis", 0) is False
    assert injector.time_to_preemption("synthesis", 0) == math.inf
    assert injector.straggler_factor("synthesis", 0) == 1.0
    assert injector._streams == {}


# ----------------------------------------------------------------------
# Schedules: deterministic, append-only, query-order independent
# ----------------------------------------------------------------------
def test_regime_schedule_is_query_order_independent():
    horizon = 8 * 3600.0
    probes = [0.0, 7200.0, 300.0, horizon, 1800.0]
    forward = make_injector(seed=13)
    ordered = {t: forward.regime_at(t) for t in sorted(probes)}
    scrambled = make_injector(seed=13)
    assert {t: scrambled.regime_at(t) for t in probes} == ordered
    # Extending past the horizon must not rewrite the earlier prefix.
    prefix = list(forward._regime_flips)
    forward.regime_at(4 * horizon)
    assert forward._regime_flips[: len(prefix)] == prefix


def test_az_events_are_a_seeded_append_only_schedule():
    spec = ChaosSpec(az_reclaim_rate_per_hour=6.0)
    a = make_injector(seed=5, spec=spec)
    b = make_injector(seed=5, spec=spec)
    horizon = 4 * 3600.0
    events = a.az_reclaims_until(horizon)
    assert events, "6/h over 4h should produce reclaim events"
    assert all(az in default_topology().zones for _, az in events)
    assert [t for t, _ in events] == sorted(t for t, _ in events)
    # A zone-targeted query on a fresh injector sees the same schedule.
    first_for_zone = {}
    for t, az in events:
        first_for_zone.setdefault(az, t)
    for az, t in first_for_zone.items():
        assert b.next_az_reclaim(az, 0.0) == t
    assert make_injector(seed=6, spec=spec).az_reclaims_until(
        horizon
    ) != events


def test_regime_flap_modulates_preemption_draws():
    calm_spec = ChaosSpec(az_reclaim_rate_per_hour=0.0)
    flap_spec = ChaosSpec(
        az_reclaim_rate_per_hour=0.0,
        storm_rate_multiplier=10.0,
        mean_calm_seconds=600.0,
        mean_storm_seconds=300.0,
    )
    # Same seed: identical unit-exponential budgets, different hazard
    # inversion — the flapping world can only preempt sooner or equal.
    for attempt in range(6):
        calm = make_injector(seed=21, spec=calm_spec)
        flap = make_injector(seed=21, spec=flap_spec)
        assert flap.time_to_preemption(
            "placement", attempt
        ) <= calm.time_to_preemption("placement", attempt)


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def test_az_only_spec_attributes_preemptions_to_the_reclaim():
    spec = ChaosSpec(
        profile=FaultProfile.none(), az_reclaim_rate_per_hour=30.0
    )
    injector = make_injector(
        spec=spec, placement={"routing": "us-west-2a"}
    )
    delta = injector.time_to_preemption("routing", 0)
    assert math.isfinite(delta)
    assert injector.last_preemption_cause == "az_reclaim"
    assert injector.last_reclaim_az == "us-west-2a"
    # The returned delta is exactly the next scheduled reclaim of that AZ.
    assert delta == injector.next_az_reclaim("us-west-2a", 0.0)


def test_idiosyncratic_only_spec_attributes_to_the_spot_hazard():
    spec = ChaosSpec(az_reclaim_rate_per_hour=0.0)
    injector = make_injector(spec=spec)
    assert math.isfinite(injector.time_to_preemption("routing", 0))
    assert injector.last_preemption_cause == "idiosyncratic"
    assert injector.last_reclaim_az is None


# ----------------------------------------------------------------------
# Noisy regions
# ----------------------------------------------------------------------
def test_region_load_scales_the_straggler_factor_with_severity():
    spec = ChaosSpec(
        profile=FaultProfile.none(),
        region_loads={"us-east": NeighborLoad(cpu=0.9, memory_bandwidth=0.9)},
    )
    quiet = make_injector(severity=1.0, spec=ChaosSpec(
        profile=FaultProfile.none()
    )).straggler_factor("synthesis", 0)
    loud = make_injector(severity=1.0, spec=spec).straggler_factor(
        "synthesis", 0
    )
    mild = make_injector(severity=0.3, spec=spec).straggler_factor(
        "synthesis", 0
    )
    assert quiet == 1.0
    assert loud > mild > 1.0
    # A stage placed outside the loaded region hears nothing.
    away = make_injector(
        severity=1.0, spec=spec, placement={"synthesis": "eu-central-1a"}
    )
    assert away.straggler_factor("synthesis", 0) == 1.0


def test_unlisted_stage_defaults_to_home_first_zone():
    injector = make_injector(placement={"routing": "eu-central-1b"})
    assert injector.zone_of("synthesis") == "us-east-1a"
    assert injector.region_of("synthesis") == "us-east"
    assert injector.region_of("routing") == "eu-central"
    with pytest.raises(KeyError, match="unknown availability zone"):
        make_injector(placement={"sta": "nowhere-9z"})
