"""Chaos executor: the zero-severity anchor, failover billing, the bound.

The anchor test is the contract everything else leans on: a
severity-zero ``ChaosPlanExecutor`` must produce a trace *byte-identical*
to the fault-free base ``PlanExecutor`` — regions, placement and spec
notwithstanding — because at severity zero no stream is ever consulted.
"""

import pytest

from repro.chaos import (
    ChaosPlanExecutor,
    ChaosSpec,
    DegradationBound,
    default_topology,
    degradation_bound,
)
from repro.chaos.scenarios import SCENARIOS, _build_workload, _placement
from repro.cloud.events import EventKind
from repro.cloud.executor import ExecutionPolicy, PlanExecutor
from repro.cloud.faults import FaultProfile


def workload(name="az_reclaim_storm", topology=None):
    scenario = SCENARIOS[name]
    topology = topology if topology is not None else default_topology()
    menu, plan, deadline = _build_workload(scenario, topology)
    return scenario, menu, plan, deadline


# ----------------------------------------------------------------------
# The zero-severity anchor
# ----------------------------------------------------------------------
def test_zero_severity_trace_is_byte_identical_to_base_executor():
    scenario, menu, plan, deadline = workload()
    topology = default_topology()
    placement = _placement(scenario, topology, seed=3)
    chaos = ChaosPlanExecutor(
        scenario.spec,
        0.0,
        topology=topology,
        placement=placement,
        policy=scenario.policy,
    ).execute(plan, deadline_seconds=deadline, seed=3, stage_options=menu)
    base = PlanExecutor(
        profile=FaultProfile.none(), policy=scenario.policy
    ).execute(plan, deadline_seconds=deadline, seed=3, stage_options=menu)
    assert chaos.trace.to_jsonl() == base.trace.to_jsonl()
    assert chaos.total_time == base.total_time
    assert chaos.total_cost == base.total_cost


def test_chaos_replay_is_deterministic_and_seeds_diverge():
    scenario, menu, plan, deadline = workload()

    def run(seed):
        return ChaosPlanExecutor(
            scenario.spec, 1.0, policy=scenario.policy
        ).execute(
            plan, deadline_seconds=deadline, seed=seed, stage_options=menu
        )

    assert run(0).trace.to_jsonl() == run(0).trace.to_jsonl()
    assert run(0).trace.to_jsonl() != run(1).trace.to_jsonl()


# ----------------------------------------------------------------------
# Failover: events, transfers, billing views
# ----------------------------------------------------------------------
def test_az_reclaim_triggers_failover_transfer_and_consistent_billing():
    scenario, menu, plan, deadline = workload("az_reclaim_storm")
    topology = default_topology()
    struck = 0
    failovers = 0
    for seed in range(12):
        result = ChaosPlanExecutor(
            scenario.spec,
            1.0,
            topology=topology,
            placement=_placement(scenario, topology, seed),
            policy=scenario.policy,
        ).execute(
            plan, deadline_seconds=deadline, seed=seed, stage_options=menu
        )
        trace = result.trace
        # Billing is one number seen three ways, exactly.
        assert result.total_cost == sum(s.cost for s in result.segments)
        assert result.total_cost == trace.billed_cost
        if trace.count(EventKind.AZ_RECLAIM):
            struck += 1
            # Every AZ-wide reclaim is also a preemption.
            assert trace.preemptions() >= trace.count(EventKind.AZ_RECLAIM)
        # A failover moves exactly one checkpoint: one TRANSFER each.
        assert trace.count(EventKind.REGION_FAILOVER) == trace.count(
            EventKind.TRANSFER
        )
        failovers += trace.count(EventKind.REGION_FAILOVER)
    assert struck >= 3, "the reclaim-storm scenario should strike often"
    assert failovers >= 1, "cap exhaustion should force some failovers"


def test_transfer_events_bill_the_source_egress_rate():
    scenario, menu, plan, deadline = workload("transfer_partition")
    topology = default_topology()
    for seed in range(8):
        result = ChaosPlanExecutor(
            scenario.spec,
            1.0,
            topology=topology,
            placement=_placement(scenario, topology, seed),
            policy=scenario.policy,
        ).execute(
            plan, deadline_seconds=deadline, seed=seed, stage_options=menu
        )
        transfers = result.trace.of_kind(EventKind.TRANSFER)
        if not transfers:
            continue
        gb = scenario.spec.checkpoint_gb
        valid = {
            topology.transfer_cost(src.name, dst.name, gb)
            for src in topology.regions
            for dst in topology.regions
            if src.name != dst.name
        }
        for event in transfers:
            assert event.get("cost") in valid
        return
    pytest.fail("no TRANSFER event over 8 seeds of transfer_partition")


# ----------------------------------------------------------------------
# The degradation bound
# ----------------------------------------------------------------------
def test_bound_is_zero_at_zero_and_monotone_in_severity():
    scenario, menu, plan, deadline = workload()
    topology = default_topology()

    def bound(sev):
        return degradation_bound(
            plan,
            scenario.policy,
            scenario.spec,
            topology,
            sev,
            stage_options=menu,
        )

    zero = bound(0.0)
    assert zero == DegradationBound(time_overrun=0.0, cost_overrun=0.0)
    sweep = [bound(s) for s in (0.25, 0.5, 1.0)]
    for lo, hi in zip(sweep, sweep[1:]):
        assert hi.time_overrun >= lo.time_overrun
        assert hi.cost_overrun >= lo.cost_overrun
    assert sweep[-1].time_overrun > 0
    assert sweep[-1].cost_overrun > 0


def test_bound_requires_a_bounded_policy():
    scenario, menu, plan, _ = workload()
    unbounded = ExecutionPolicy(max_preemptions_per_stage=None)
    with pytest.raises(ValueError, match="bounded policy"):
        degradation_bound(
            plan,
            unbounded,
            scenario.spec,
            default_topology(),
            1.0,
            stage_options=menu,
        )
    with pytest.raises(ValueError, match="severity"):
        degradation_bound(
            plan,
            scenario.policy,
            scenario.spec,
            default_topology(),
            -0.1,
            stage_options=menu,
        )


def test_dominates_accepts_interior_points_and_rejects_exterior():
    bound = DegradationBound(time_overrun=100.0, cost_overrun=5.0)
    assert bound.dominates(0.0, 0.0)
    assert bound.dominates(100.0, 5.0)
    assert not bound.dominates(100.1, 0.0)
    assert not bound.dominates(0.0, 5.1)
