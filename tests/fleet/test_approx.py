"""Certified greedy approximation: the bound always dominates the truth.

``solve_approx`` walks the LP frontier; its ``upper_bound`` is the LP
relaxation's optimum, which dominates the integer optimum, so the
per-instance ``certified_gap`` must always dominate the *true* gap
against the exact DP.  The certificate may be loose — never wrong.
"""

import random

import pytest

from repro.core.optimize import (
    prune_stage_options,
    solve_approx,
    solve_brute_force,
    solve_mckp_dp,
)
from repro.verify.generators import random_mckp_instance

pytestmark = pytest.mark.fleet


class TestSolveApprox:
    @pytest.mark.parametrize("seed", range(200))
    def test_bound_dominates_true_gap(self, seed):
        rng = random.Random(seed)
        stages, deadline = random_mckp_instance(rng)
        exact = solve_mckp_dp(stages, deadline)
        result = solve_approx(stages, deadline)
        # Feasibility parity with the exact DP, on every instance.
        assert (result is None) == (exact is None)
        if result is None:
            return
        opt = exact.objective_inverse_price
        tol = 1e-9 * max(1.0, abs(opt))
        assert result.objective <= opt + tol
        assert result.upper_bound >= opt - tol
        true_gap = opt - result.objective
        assert result.certified_gap >= true_gap - tol
        assert result.certified_gap >= 0.0
        assert result.upper_bound >= result.objective

    @pytest.mark.parametrize("seed", range(0, 200, 7))
    def test_selection_is_menu_valid_and_feasible(self, seed):
        rng = random.Random(seed)
        stages, deadline = random_mckp_instance(rng)
        result = solve_approx(stages, deadline)
        if result is None:
            return
        selection = result.selection
        assert set(selection.choices) == {s.stage for s in stages}
        for so in stages:
            assert selection.choices[so.stage] in so.options
        assert selection.total_runtime <= int(deadline)

    @pytest.mark.parametrize("seed", range(0, 60, 3))
    def test_matches_brute_force_feasibility(self, seed):
        rng = random.Random(seed)
        stages, deadline = random_mckp_instance(rng)
        brute = solve_brute_force(stages, deadline)
        assert (solve_approx(stages, deadline) is None) == (brute is None)

    def test_pruning_first_changes_nothing_about_validity(self):
        for seed in range(30):
            stages, deadline = random_mckp_instance(random.Random(seed))
            pruned, _ = prune_stage_options(stages)
            raw = solve_approx(stages, deadline)
            cut = solve_approx(pruned, deadline)
            assert (raw is None) == (cut is None)

    def test_empty_stages_zero_everything(self):
        result = solve_approx([], 100)
        assert result is not None
        assert result.objective == 0.0
        assert result.upper_bound == 0.0
        assert result.certified_gap == 0.0
        assert result.selection.choices == {}

    def test_nonpositive_deadline_raises(self):
        stages, _ = random_mckp_instance(random.Random(3))
        with pytest.raises(ValueError):
            solve_approx(stages, 0)

    def test_single_option_per_stage_is_exact(self):
        rng = random.Random(11)
        stages, deadline = random_mckp_instance(rng)
        narrowed = [
            type(s)(stage=s.stage, options=[s.options[0]]) for s in stages
        ]
        exact = solve_mckp_dp(narrowed, deadline)
        result = solve_approx(narrowed, deadline)
        assert (result is None) == (exact is None)
        if result is not None:
            # One choice per stage: approximation == optimum, gap == 0.
            assert result.certified_gap <= 1e-9 * max(
                1.0, result.objective
            )
