"""DP-table reuse: one table answers every smaller deadline identically.

The invariant the fleet planner leans on: the DP state at capacity ``c``
never reads entries above ``c``, so a table built to capacity ``C``
contains — as a prefix — exactly the table a fresh solve at any
``d <= C`` would build.  The reuse answer must therefore be *identical*
(same option per stage, not merely the same objective) to a fresh
``solve_mckp_dp`` call.
"""

import random

import pytest

from repro.core.optimize import MCKPTable, solve_mckp_dp
from repro.verify.generators import random_mckp_instance

pytestmark = pytest.mark.fleet


def _choices(selection):
    return {
        stage.value: (opt.vm.name, opt.runtime_seconds)
        for stage, opt in selection.choices.items()
    }


class TestTableReuse:
    @pytest.mark.parametrize("seed", range(100))
    def test_every_smaller_deadline_matches_fresh_solve(self, seed):
        rng = random.Random(seed)
        stages, deadline = random_mckp_instance(rng)
        slowest = sum(
            max(o.runtime_seconds for o in s.options) for s in stages
        )
        capacity = slowest + 10
        table = MCKPTable(stages, capacity)
        # Sweep a deadline ladder from clearly-infeasible to slack.
        for d in range(1, capacity + 1, max(1, capacity // 17)):
            reused = table.query(d)
            fresh = solve_mckp_dp(stages, d)
            assert (reused is None) == (fresh is None), f"deadline {d}"
            if fresh is not None:
                assert _choices(reused) == _choices(fresh), f"deadline {d}"

    def test_query_beyond_capacity_raises(self):
        stages, deadline = random_mckp_instance(random.Random(0))
        table = MCKPTable(stages, deadline)
        with pytest.raises(ValueError):
            table.query(table.capacity + 1)

    def test_query_at_capacity_matches_solver(self):
        stages, deadline = random_mckp_instance(random.Random(7))
        table = MCKPTable(stages, deadline)
        fresh = solve_mckp_dp(stages, deadline)
        got = table.query(deadline)
        assert (got is None) == (fresh is None)
        if fresh is not None:
            assert _choices(got) == _choices(fresh)

    def test_nonpositive_deadline_rejected(self):
        stages, _ = random_mckp_instance(random.Random(1))
        with pytest.raises(ValueError):
            MCKPTable(stages, 0)
        table = MCKPTable(stages, 10)
        with pytest.raises(ValueError):
            table.query(0)

    def test_solver_delegates_to_table(self):
        # solve_mckp_dp is now a build-and-query; the two paths must
        # stay literally interchangeable.
        stages, deadline = random_mckp_instance(random.Random(21))
        via_solver = solve_mckp_dp(stages, deadline)
        via_table = MCKPTable(stages, deadline).query(deadline)
        assert (via_solver is None) == (via_table is None)
        if via_solver is not None:
            assert _choices(via_solver) == _choices(via_table)
