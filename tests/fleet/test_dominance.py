"""Dominance pruning never changes the DP optimum (property suite).

The satellite contract: on 200 seeded instances, the DP over the pruned
menu agrees with the DP over the raw menu — same feasibility and the
same optimum for *both* DP objectives.  Selections may differ (pruning
can change which of several optimal selections the backtrack picks), so
the agreement is on objective values, compared at the oracle tolerance.
"""

import math
import random

import pytest

from repro.core.optimize import (
    ConfigOption,
    StageOptions,
    prune_dominated,
    prune_stage_options,
    solve_mckp_dp,
    solve_min_cost_dp,
)
from repro.eda.job import EDAStage
from repro.verify.generators import random_mckp_instance

pytestmark = pytest.mark.fleet


def _close(a, b):
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


def _opt(stage, name, runtime, price):
    from repro.cloud.instance import InstanceFamily, VMConfig

    vm = VMConfig(
        name=name,
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=2,
        memory_gb=8.0,
        price_per_hour=1.0,
    )
    return ConfigOption(vm=vm, runtime_seconds=runtime, price=price)


class TestPruneDominated:
    def test_strictly_dominated_option_removed(self):
        a = _opt(EDAStage.SYNTHESIS, "fast-cheap", 10, 1.0)
        b = _opt(EDAStage.SYNTHESIS, "slow-dear", 20, 2.0)
        kept = prune_dominated([a, b])
        assert kept == [a]

    def test_frontier_options_all_kept(self):
        a = _opt(EDAStage.SYNTHESIS, "fast-dear", 10, 3.0)
        b = _opt(EDAStage.SYNTHESIS, "slow-cheap", 20, 1.0)
        assert prune_dominated([a, b]) == [a, b]

    def test_exact_duplicate_keeps_earliest(self):
        a = _opt(EDAStage.SYNTHESIS, "first", 10, 2.0)
        b = _opt(EDAStage.SYNTHESIS, "twin", 10, 2.0)
        assert prune_dominated([a, b]) == [a]

    def test_equal_runtime_cheaper_wins(self):
        a = _opt(EDAStage.SYNTHESIS, "dear", 10, 3.0)
        b = _opt(EDAStage.SYNTHESIS, "cheap", 10, 1.0)
        assert prune_dominated([a, b]) == [b]

    def test_never_empties_a_menu(self):
        for seed in range(50):
            rng = random.Random(seed)
            stages, _ = random_mckp_instance(rng)
            for so in stages:
                assert len(prune_dominated(so.options)) >= 1


class TestPruneStageOptions:
    def test_reuses_object_when_nothing_pruned(self):
        a = _opt(EDAStage.SYNTHESIS, "fast-dear", 10, 3.0)
        b = _opt(EDAStage.SYNTHESIS, "slow-cheap", 20, 1.0)
        so = StageOptions(stage=EDAStage.SYNTHESIS, options=[a, b])
        pruned, removed = prune_stage_options([so])
        assert removed == 0
        assert pruned[0] is so

    def test_removed_count_sums_across_stages(self):
        s1 = StageOptions(
            stage=EDAStage.SYNTHESIS,
            options=[
                _opt(EDAStage.SYNTHESIS, "a", 10, 1.0),
                _opt(EDAStage.SYNTHESIS, "b", 20, 2.0),
            ],
        )
        s2 = StageOptions(
            stage=EDAStage.PLACEMENT,
            options=[
                _opt(EDAStage.PLACEMENT, "c", 5, 1.0),
                _opt(EDAStage.PLACEMENT, "d", 5, 1.0),
                _opt(EDAStage.PLACEMENT, "e", 9, 9.0),
            ],
        )
        pruned, removed = prune_stage_options([s1, s2])
        assert removed == 3
        assert [len(p.options) for p in pruned] == [1, 1]


class TestPruningPreservesOptimum:
    """The 200-instance property sweep from the satellite checklist."""

    @pytest.mark.parametrize("seed", range(200))
    def test_dp_optimum_unchanged(self, seed):
        rng = random.Random(seed)
        stages, deadline = random_mckp_instance(rng)
        pruned, removed = prune_stage_options(stages)
        assert removed >= 0

        raw = solve_mckp_dp(stages, deadline)
        cut = solve_mckp_dp(pruned, deadline)
        assert (raw is None) == (cut is None)
        if raw is not None:
            assert _close(
                raw.objective_inverse_price, cut.objective_inverse_price
            )

        raw_cost = solve_min_cost_dp(stages, deadline)
        cut_cost = solve_min_cost_dp(pruned, deadline)
        assert (raw_cost is None) == (cut_cost is None)
        if raw_cost is not None:
            assert _close(raw_cost.total_cost, cut_cost.total_cost)

    @pytest.mark.parametrize("seed", range(0, 200, 10))
    def test_pruned_options_subset_of_raw(self, seed):
        rng = random.Random(seed)
        stages, _ = random_mckp_instance(rng)
        pruned, _ = prune_stage_options(stages)
        for raw_so, cut_so in zip(stages, pruned):
            assert cut_so.stage == raw_so.stage
            for opt in cut_so.options:
                assert opt in raw_so.options
