"""FleetPlanner: grouping, cell caching, invalidation, byte-stable dumps."""

import random

import pytest

from repro.fleet import FleetPlanner, FlowSpec, synthetic_fleet
from repro.fleet.planner import menu_signature
from repro.verify.generators import random_mckp_instance

pytestmark = pytest.mark.fleet


def _fleet(seed=0, flows=400, menus=6):
    menu_map, specs = synthetic_fleet(seed=seed, flows=flows, menus=menus)
    planner = FleetPlanner(mode="exact")
    for menu_id in sorted(menu_map):
        planner.register_menu(menu_id, menu_map[menu_id])
    return planner, menu_map, specs


class TestGrouping:
    def test_group_hits_amortize_duplicate_flows(self):
        planner, _, specs = _fleet(flows=400, menus=4)
        plan = planner.plan(specs)
        assert plan.stats.flows == 400
        # Bucketed deadlines over 4 menus: far fewer groups than flows,
        # and every flow beyond the first in its group is a dict hit.
        assert plan.stats.groups < 400
        assert plan.stats.group_hits == 400 - plan.stats.groups
        assert sum(len(g.flow_ids) for g in plan.groups) == 400

    def test_one_table_per_menu(self):
        planner, menu_map, specs = _fleet(flows=500, menus=5)
        plan = planner.plan(specs)
        used_menus = {s.menu_id for s in specs}
        assert plan.stats.tables_built == len(used_menus)
        assert plan.stats.table_queries == plan.stats.groups

    def test_feasible_plus_infeasible_is_total(self):
        planner, _, specs = _fleet()
        plan = planner.plan(specs)
        assert (
            plan.stats.feasible_flows + plan.stats.infeasible_flows
            == plan.stats.flows
        )

    def test_group_for_finds_every_flow(self):
        planner, _, specs = _fleet(flows=50)
        plan = planner.plan(specs)
        for spec in specs:
            group = plan.group_for(spec.flow_id)
            assert group is not None
            assert group.menu_id == spec.menu_id

    def test_unregistered_menu_raises(self):
        planner, _, _ = _fleet()
        with pytest.raises(KeyError):
            planner.plan([FlowSpec("f0", "no-such-menu", 100.0)])

    def test_nonpositive_deadline_raises(self):
        planner, menu_map, _ = _fleet()
        menu_id = sorted(menu_map)[0]
        with pytest.raises(ValueError):
            planner.plan([FlowSpec("f0", menu_id, 0.0)])

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            FleetPlanner(mode="magic")


class TestCellCache:
    def test_replan_hits_cache_and_matches(self):
        planner, _, specs = _fleet()
        first = planner.plan(specs)
        second = planner.plan(specs)
        assert second.stats.tables_built == 0
        assert second.stats.table_queries == 0
        # Group lines (everything but the counter header) are identical.
        assert (
            first.dump().split("\n", 1)[1]
            == second.dump().split("\n", 1)[1]
        )
        assert first.total_cost == second.total_cost

    def test_plans_do_not_leak_flows_across_calls(self):
        planner, _, specs = _fleet(flows=100)
        planner.plan(specs)
        plan = planner.plan(specs[:10])
        assert plan.stats.flows == 10
        assert sum(len(g.flow_ids) for g in plan.groups) == 10

    def test_invalidate_forces_resolve(self):
        planner, _, specs = _fleet()
        first = planner.plan(specs)
        dropped = planner.invalidate()
        assert dropped > 0
        third = planner.plan(specs)
        assert third.stats.tables_built == first.stats.tables_built
        assert third.stats.invalidations > first.stats.invalidations


class TestRegistration:
    def test_reregister_unchanged_menu_keeps_cache(self):
        planner, menu_map, specs = _fleet()
        planner.plan(specs)
        for menu_id in sorted(menu_map):
            assert planner.register_menu(menu_id, menu_map[menu_id]) is False
        assert planner.plan(specs).stats.tables_built == 0

    def test_reregister_changed_prices_invalidates(self):
        planner, menu_map, specs = _fleet()
        planner.plan(specs)
        menu_id = sorted(menu_map)[0]
        stages = menu_map[menu_id]
        from dataclasses import replace

        bumped = [
            type(so)(
                stage=so.stage,
                options=[
                    replace(opt, price=opt.price * 2.0)
                    for opt in so.options
                ],
            )
            for so in stages
        ]
        assert menu_signature(bumped) != menu_signature(stages)
        assert planner.register_menu(menu_id, bumped) is True
        # Only the changed menu re-solves; the rest answer from cache.
        used = {s.menu_id for s in specs}
        plan = planner.plan(specs)
        assert plan.stats.tables_built == (1 if menu_id in used else 0)

    def test_menu_ids_sorted(self):
        planner, menu_map, _ = _fleet()
        assert planner.menu_ids == sorted(menu_map)

    def test_signature_sensitive_to_each_field(self):
        stages, _ = random_mckp_instance(random.Random(0))
        base = menu_signature(stages)
        from dataclasses import replace

        tweaked = [
            type(so)(
                stage=so.stage,
                options=[
                    replace(opt, runtime_seconds=opt.runtime_seconds + 1)
                    for opt in so.options
                ],
            )
            for so in stages
        ]
        assert menu_signature(tweaked) != base


class TestDumpStability:
    def test_fresh_planners_dump_identically(self):
        dumps = []
        for _ in range(2):
            planner, _, specs = _fleet(seed=3, flows=300)
            dumps.append(planner.plan(specs).dump())
        assert dumps[0] == dumps[1]

    def test_flow_order_does_not_change_dump_body(self):
        planner_a, _, specs = _fleet(seed=5, flows=200)
        planner_b, _, _ = _fleet(seed=5, flows=200)
        body_a = planner_a.plan(specs).dump().split("\n", 1)[1]
        body_b = (
            planner_b.plan(list(reversed(specs))).dump().split("\n", 1)[1]
        )
        assert body_a == body_b


class TestApproxMode:
    def test_approx_counts_solves_not_tables(self):
        menu_map, specs = synthetic_fleet(seed=1, flows=300, menus=4)
        planner = FleetPlanner(mode="approx")
        for menu_id in sorted(menu_map):
            planner.register_menu(menu_id, menu_map[menu_id])
        plan = planner.plan(specs)
        assert plan.mode == "approx"
        assert plan.stats.tables_built == 0
        assert plan.stats.approx_solves == plan.stats.groups
        assert plan.max_certified_gap >= 0.0

    def test_no_prune_keeps_every_option(self):
        menu_map, specs = synthetic_fleet(seed=2, flows=100, menus=3)
        pruned = FleetPlanner(mode="exact", prune=True)
        raw = FleetPlanner(mode="exact", prune=False)
        for menu_id in sorted(menu_map):
            pruned.register_menu(menu_id, menu_map[menu_id])
            raw.register_menu(menu_id, menu_map[menu_id])
        plan_p = pruned.plan(specs)
        plan_r = raw.plan(specs)
        assert plan_r.stats.pruned_options == 0
        assert plan_p.stats.pruned_options >= 0
        # Pruning must not move the fleet's total cost.
        assert plan_p.total_cost == pytest.approx(plan_r.total_cost)
        assert plan_p.stats.feasible_flows == plan_r.stats.feasible_flows
