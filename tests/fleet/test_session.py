"""ContinuousSession + synthetic_fleet: deterministic tick-by-tick replay."""

import pytest

from repro.fleet import (
    ContinuousSession,
    FleetPlanner,
    SpotMarketFeed,
    synthetic_fleet,
)

pytestmark = pytest.mark.fleet


class TestSyntheticFleet:
    def test_same_seed_same_fleet(self):
        menus_a, flows_a = synthetic_fleet(seed=7, flows=100)
        menus_b, flows_b = synthetic_fleet(seed=7, flows=100)
        assert flows_a == flows_b
        assert sorted(menus_a) == sorted(menus_b)
        from repro.fleet.planner import menu_signature

        for menu_id in menus_a:
            assert menu_signature(menus_a[menu_id]) == menu_signature(
                menus_b[menu_id]
            )

    def test_different_seeds_differ(self):
        _, flows_a = synthetic_fleet(seed=1, flows=100)
        _, flows_b = synthetic_fleet(seed=2, flows=100)
        assert flows_a != flows_b

    def test_every_flow_references_a_menu(self):
        menus, flows = synthetic_fleet(seed=0, flows=200, menus=5)
        assert len(menus) == 5
        assert len(flows) == 200
        for spec in flows:
            assert spec.menu_id in menus
            assert spec.deadline_seconds > 0

    def test_single_deadline_bucket(self):
        menus, flows = synthetic_fleet(
            seed=0, flows=50, menus=2, deadline_buckets=1
        )
        per_menu = {}
        for spec in flows:
            per_menu.setdefault(spec.menu_id, set()).add(
                spec.deadline_seconds
            )
        for deadlines in per_menu.values():
            assert len(deadlines) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_fleet(seed=0, flows=0)
        with pytest.raises(ValueError):
            synthetic_fleet(seed=0, flows=1, menus=0)
        with pytest.raises(ValueError):
            synthetic_fleet(seed=0, flows=1, deadline_buckets=0)


def _session(seed=0, flows=60, execute_per_tick=0, mode="exact"):
    menus, specs = synthetic_fleet(seed=seed, flows=flows, menus=4)
    return ContinuousSession(
        menus,
        specs,
        feed=SpotMarketFeed(seed=seed),
        planner=FleetPlanner(mode=mode),
        seed=seed,
        execute_per_tick=execute_per_tick,
    )


class TestContinuousSession:
    def test_dump_replays_byte_for_byte(self):
        a = _session(seed=11, execute_per_tick=10).run(4).dump()
        b = _session(seed=11, execute_per_tick=10).run(4).dump()
        assert a == b

    def test_executed_flows_drain_pending(self):
        session = _session(flows=60, execute_per_tick=25)
        report = session.run(3)
        # 25 + 25 + 10: the queue drains, then sits empty.
        assert [len(t.executed) <= 25 for t in report.ticks]
        assert len(session.pending) == 0
        assert (
            report.executed_flows
            + sum(
                t.replanned_flows - t.feasible_flows
                for t in report.ticks[:1]
            )
            <= 60
        )

    def test_tick_zero_invalidates_nothing(self):
        # Tick 0 reprices at the base discount: signatures unchanged,
        # no caches dropped.
        report = _session(seed=3).run(1)
        assert report.ticks[0].invalidated == 0

    def test_later_ticks_invalidate_moved_menus(self):
        report = _session(seed=3).run(5)
        assert sum(t.invalidated for t in report.ticks[1:]) > 0

    def test_every_tick_replans_all_pending(self):
        report = _session(flows=40, execute_per_tick=0).run(3)
        for t in report.ticks:
            assert t.replanned_flows == 40

    def test_report_counts_are_consistent(self):
        report = _session(flows=30, execute_per_tick=7).run(3)
        assert report.executed_flows == sum(
            len(t.executed) for t in report.ticks
        )
        assert report.executed_cost == pytest.approx(
            sum(t.executed_cost for t in report.ticks)
        )
        for t in report.ticks:
            assert t.executed_completed <= len(t.executed)

    def test_approx_mode_session_runs(self):
        report = _session(mode="approx", execute_per_tick=5).run(2)
        assert report.mode == "approx"
        assert report.final_plan is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            _session(execute_per_tick=-1)
        with pytest.raises(ValueError):
            _session().run(0)
