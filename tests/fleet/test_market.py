"""SpotMarketFeed: deterministic walks, clamps, non-compounding repricing."""

import pytest

from repro.cloud.executor import is_spot_vm
from repro.cloud.spot import SpotMarket
from repro.fleet import SpotMarketFeed
from repro.fleet.planner import menu_signature
from repro.verify.generators import random_mckp_instance

pytestmark = pytest.mark.fleet


def _spot_menu(seed=0, discount=0.3):
    import random

    stages, _ = random_mckp_instance(random.Random(seed))
    market = SpotMarket(discount=discount, interrupt_rate_per_hour=0.05)
    return market.augment_stage_options(stages)


class TestWalk:
    def test_same_seed_same_path(self):
        a = SpotMarketFeed(seed=5)
        b = SpotMarketFeed(seed=5)
        assert [a.discount(t) for t in range(50)] == [
            b.discount(t) for t in range(50)
        ]

    def test_different_seeds_diverge(self):
        a = SpotMarketFeed(seed=1)
        b = SpotMarketFeed(seed=2)
        assert [a.discount(t) for t in range(20)] != [
            b.discount(t) for t in range(20)
        ]

    def test_query_order_does_not_matter(self):
        a = SpotMarketFeed(seed=9)
        b = SpotMarketFeed(seed=9)
        forward = [a.discount(t) for t in range(30)]
        backward = [b.discount(t) for t in reversed(range(30))]
        assert forward == list(reversed(backward))

    def test_tick_zero_is_base_discount(self):
        feed = SpotMarketFeed(seed=3, base_discount=0.42)
        assert feed.discount(0) == 0.42

    def test_walk_respects_clamp(self):
        feed = SpotMarketFeed(seed=7, volatility=2.0, floor=0.1, cap=0.6)
        for t in range(200):
            assert 0.1 <= feed.discount(t) <= 0.6

    def test_zero_volatility_freezes_market(self):
        feed = SpotMarketFeed(seed=0, volatility=0.0, base_discount=0.3)
        assert all(feed.discount(t) == 0.3 for t in range(10))

    def test_tick_materializes_all_pools(self):
        feed = SpotMarketFeed(
            seed=0, pools=("spot", "spot-2"), tick_interval_seconds=60.0
        )
        tick = feed.tick(4)
        assert tick.index == 4
        assert tick.time_seconds == 240.0
        assert set(tick.discounts) == {"spot", "spot-2"}
        assert tick.discount("spot") == feed.discount(4, "spot")

    def test_validation(self):
        with pytest.raises(ValueError):
            SpotMarketFeed(base_discount=0.0)
        with pytest.raises(ValueError):
            SpotMarketFeed(volatility=-0.1)
        with pytest.raises(ValueError):
            SpotMarketFeed(floor=0.5, cap=0.4)
        with pytest.raises(ValueError):
            SpotMarketFeed(tick_interval_seconds=0.0)
        with pytest.raises(ValueError):
            SpotMarketFeed(pools=())
        feed = SpotMarketFeed()
        with pytest.raises(ValueError):
            feed.discount(-1)
        with pytest.raises(KeyError):
            feed.discount(0, "nope")


class TestReprice:
    def test_tick_zero_prices_unchanged(self):
        menu = _spot_menu()
        feed = SpotMarketFeed(seed=0, base_discount=0.3)
        repriced, discount = feed.reprice_stage_options(menu, 0)
        assert discount == 0.3
        assert menu_signature(repriced) == menu_signature(menu)

    def test_on_demand_options_never_move(self):
        menu = _spot_menu()
        feed = SpotMarketFeed(seed=1, volatility=0.5)
        repriced, _ = feed.reprice_stage_options(menu, 5)
        for raw_so, new_so in zip(menu, repriced):
            for raw_opt, new_opt in zip(raw_so.options, new_so.options):
                if not is_spot_vm(raw_opt.vm):
                    assert new_opt is raw_opt

    def test_spot_options_scale_by_discount_ratio(self):
        menu = _spot_menu(discount=0.3)
        feed = SpotMarketFeed(seed=2, base_discount=0.3, volatility=0.5)
        tick = 7
        repriced, discount = feed.reprice_stage_options(menu, tick)
        factor = discount / 0.3
        for raw_so, new_so in zip(menu, repriced):
            for raw_opt, new_opt in zip(raw_so.options, new_so.options):
                if is_spot_vm(raw_opt.vm):
                    assert new_opt.price == pytest.approx(
                        raw_opt.price * factor
                    )
                    assert new_opt.runtime_seconds == raw_opt.runtime_seconds

    def test_repricing_never_compounds(self):
        # Repricing the ORIGINAL menu at tick t, twice, gives the same
        # prices — the factor is always relative to base_discount.
        menu = _spot_menu()
        feed = SpotMarketFeed(seed=4, volatility=0.4)
        once, _ = feed.reprice_stage_options(menu, 9)
        again, _ = feed.reprice_stage_options(menu, 9)
        assert menu_signature(once) == menu_signature(again)
