"""Profiler tests: self-time math, folded/flame/JSON exports, diffing, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import Tracer, scoped
from repro.obs.log import build_crash_report, Logger
from repro.obs.profile import (
    FUSED_TAGS,
    PROFILE_SCHEMA,
    FrameStat,
    Profile,
    SamplingProfiler,
    build_profile,
    diff_profiles,
    load_profile,
    parse_folded,
    render_diff,
    render_flame_html,
    render_profile,
)

pytestmark = pytest.mark.obs


def _tick_tracer():
    """root spans 8 ticks, child.a 2, child.b 2 -> root self = 8-4 = 4."""
    tracer = Tracer(deterministic=True)
    with tracer.span("root"):
        with tracer.span("child.a", flops=10, instructions=100):
            pass
        with tracer.span("child.b"):
            pass
        with tracer.span("child.a", flops=5):
            pass
    return tracer


class TestBuildProfile:
    def test_self_time_excludes_direct_children(self):
        profile = build_profile(_tick_tracer().spans, deterministic=True)
        root = profile.frames["root"]
        a = profile.frames["root/child.a"]
        b = profile.frames["root/child.b"]
        # Tick clock: every span open/close consumes one tick, so each
        # child lasts exactly 1.0s; root lasts 7.0s (8 clock reads).
        assert a.calls == 2 and a.total == 2.0 and a.self_time == 2.0
        assert b.calls == 1 and b.total == 1.0 and b.self_time == 1.0
        assert root.total == root.self_time + a.total + b.total
        assert profile.total_self == root.total

    def test_leaf_name_property(self):
        profile = build_profile(_tick_tracer().spans)
        assert profile.frames["root/child.a"].name == "child.a"

    def test_counter_tags_fused_and_summed(self):
        profile = build_profile(_tick_tracer().spans)
        counters = profile.frames["root/child.a"].counters
        assert counters["flops"] == 15.0
        assert counters["instructions"] == 100.0
        assert "branches" not in counters

    def test_bool_tags_not_fused(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("x", flops=True):
            pass
        profile = build_profile(tracer.spans)
        assert profile.frames["x"].counters == {}
        assert set(FUSED_TAGS) == {
            "instructions", "branches", "mem_accesses", "flops"
        }

    def test_unfinished_spans_skipped(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("done"):
            pass
        tracer.spans[0].end = None
        assert build_profile(tracer.spans).frames == {}

    def test_top_ranks_by_self_time_then_path(self):
        profile = build_profile(_tick_tracer().spans)
        assert [f.path for f in profile.top(2)] == ["root", "root/child.a"]

    def test_same_seed_profiles_identical(self):
        one = build_profile(_tick_tracer().spans, deterministic=True)
        two = build_profile(_tick_tracer().spans, deterministic=True)
        assert one.to_dict() == two.to_dict()
        assert one.to_folded() == two.to_folded()


class TestFoldedFormat:
    def test_folded_lines_sorted_integer_micros(self):
        text = build_profile(_tick_tracer().spans).to_folded()
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert "root;child.a 2000000" in lines
        assert text.endswith("\n")

    def test_empty_profile_folds_to_empty_string(self):
        assert Profile().to_folded() == ""

    def test_roundtrip_preserves_self_time(self):
        profile = build_profile(_tick_tracer().spans)
        back = parse_folded(profile.to_folded())
        assert set(back.frames) == set(profile.frames)
        for path, frame in profile.frames.items():
            assert back.frames[path].self_time == pytest.approx(
                frame.self_time
            )

    def test_parse_rejects_bad_lines(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_folded("justonetoken\n")
        with pytest.raises(ValueError, match="non-integer"):
            parse_folded("a;b notanumber\n")


class TestJsonDocument:
    def test_schema_and_roundtrip(self, tmp_path):
        profile = build_profile(
            _tick_tracer().spans, deterministic=True, meta={"seed": 0}
        )
        doc = profile.to_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["deterministic"] is True
        path = tmp_path / "p.json"
        path.write_text(json.dumps(doc))
        loaded = load_profile(str(path))
        assert loaded.to_dict() == doc

    def test_load_profile_detects_folded(self, tmp_path):
        path = tmp_path / "p.folded"
        path.write_text("a;b 1000000\n")
        loaded = load_profile(str(path))
        assert loaded.frames["a/b"].self_time == pytest.approx(1.0)

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            Profile.from_dict({"schema": "nope/9"})


class TestDiff:
    def test_identical_profiles_diff_to_nothing(self):
        profile = build_profile(_tick_tracer().spans)
        diff = diff_profiles(profile, profile)
        assert diff.empty and diff.top_regression is None
        assert "no self-time deltas" in render_diff(diff)

    def test_slowdown_ranked_by_delta(self):
        base = build_profile(_tick_tracer().spans)
        cur = parse_folded(base.to_folded())
        cur.frames["root/child.a"].self_time += 3.0
        cur.frames["root/child.b"].self_time += 1.0
        diff = diff_profiles(base, cur)
        assert [d.path for d in diff.regressions] == [
            "root/child.a", "root/child.b"
        ]
        assert diff.top_regression.delta == pytest.approx(3.0)
        text = render_diff(diff)
        assert "regressions (2)" in text and "root/child.a" in text

    def test_improvement_and_frame_drift(self):
        base = build_profile(_tick_tracer().spans)
        cur = parse_folded(base.to_folded())
        cur.frames["root/child.b"].self_time = 0.25
        del cur.frames["root/child.a"]
        cur.frames["root/new"] = FrameStat(path="root/new", self_time=1.0)
        diff = diff_profiles(base, cur)
        assert [d.path for d in diff.improvements] == ["root/child.b"]
        assert diff.added == ["root/new"]
        assert diff.removed == ["root/child.a"]
        assert not diff.empty

    def test_guards_absorb_small_deltas(self):
        base = build_profile(_tick_tracer().spans)
        cur = parse_folded(base.to_folded())
        cur.frames["root"].self_time += 0.5
        assert diff_profiles(base, cur, abs_guard_seconds=1.0).empty
        # 0.5s on a 4.0s baseline is 12.5% -- inside a 20% tolerance.
        assert diff_profiles(base, cur, tolerance_pct=20.0).empty
        assert not diff_profiles(base, cur).empty

    def test_zero_baseline_percent_is_infinite(self):
        base = parse_folded("a 0\n")
        cur = parse_folded("a 1000000\n")
        diff = diff_profiles(base, cur)
        assert diff.regressions[0].percent == float("inf")
        assert "new" in render_diff(diff)

    def test_negative_guards_rejected(self):
        with pytest.raises(ValueError):
            diff_profiles(Profile(), Profile(), tolerance_pct=-1.0)


class TestRenderProfile:
    def test_table_lists_hottest_frames(self):
        profile = build_profile(_tick_tracer().spans)
        text = render_profile(profile, top=2)
        assert "root" in text and "root/child.a" in text
        assert "root/child.b" not in text
        assert "3 frames" in text


class TestFlameHtml:
    def test_self_contained_light_dark(self):
        html = render_flame_html(
            build_profile(_tick_tracer().spans, deterministic=True),
            title="t<est",
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "prefers-color-scheme: dark" in html
        assert "t&lt;est" in html
        assert "child.a" in html and "child.b" in html
        assert "tick clock (deterministic)" in html
        assert "<script" not in html and "http" not in html

    def test_child_widths_are_shares_of_parent(self):
        html = render_flame_html(build_profile(_tick_tracer().spans))
        # root/child.a is 2 of root's 7 inclusive seconds.
        assert f"flex: 0 0 {100.0 * 2.0 / 7.0:.4f}%" in html

    def test_sparse_paths_get_synthetic_parents(self):
        profile = parse_folded("a;b;c 1000000\n")
        html = render_flame_html(profile)
        # "a" and "a;b" carry no frame of their own but must nest "c".
        assert html.count('<div class="frame"') == 3


class TestSamplingProfiler:
    def test_accumulates_python_frames(self):
        def inner():
            return sum(range(50))

        def outer():
            return inner() + inner()

        with SamplingProfiler() as sampler:
            outer()
        frames = sampler.profile.frames
        inner_paths = [p for p in frames if p.endswith(":inner")]
        assert len(inner_paths) == 1
        assert frames[inner_paths[0]].calls == 2
        assert all(f.self_time >= 0 for f in frames.values())

    def test_restores_previous_profile_hook(self):
        import sys

        assert sys.getprofile() is None
        with SamplingProfiler():
            pass
        assert sys.getprofile() is None


class TestCrashReportProfile:
    def test_crash_dump_names_hot_frames(self):
        tracer = _tick_tracer()
        logger = Logger(deterministic=True)
        with scoped(tracer=tracer, log=logger):
            doc = build_crash_report(
                "unit", 0, exc=RuntimeError("x"),
                logger=logger, tracer=tracer,
            )
        assert doc["profile"][0]["path"] == "root"
        assert {"path", "calls", "self"} == set(doc["profile"][0])
        assert len(doc["profile"]) <= 10


class TestProfileCli:
    def _run(self, tmp_path, tag):
        folded = tmp_path / f"{tag}.folded"
        args = [
            "profile", "--workload", "flow", "--design", "ctrl",
            "--scale", "0.2", "--seed", "0", "--deterministic",
            "--folded", str(folded),
        ]
        assert main(args) == 0
        return folded

    def test_same_seed_folded_byte_identical(self, tmp_path, capsys):
        a = self._run(tmp_path, "a")
        b = self._run(tmp_path, "b")
        out = capsys.readouterr().out
        assert a.read_bytes() == b.read_bytes()
        assert "flow/stage.synthesis" in out
        # Byte-identical profiles diff to exactly nothing (exit 0).
        assert main(["profile", "--diff", str(a), str(b)]) == 0
        assert "no self-time deltas" in capsys.readouterr().out

    def test_diff_flags_injected_slowdown(self, tmp_path, capsys):
        a = self._run(tmp_path, "a")
        profile = parse_folded(a.read_text())
        path = max(
            profile.frames, key=lambda p: profile.frames[p].self_time
        )
        profile.frames[path].self_time += 9.0
        slow = tmp_path / "slow.folded"
        slow.write_text(profile.to_folded())
        assert main(["profile", "--diff", str(a), str(slow)]) == 1
        out = capsys.readouterr().out
        assert "regressions (1)" in out and path in out

    def test_diff_unreadable_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.folded"
        code = main(["profile", "--diff", str(missing), str(missing)])
        assert code == 2
        assert "cannot load profile" in capsys.readouterr().err

    def test_html_and_json_exports(self, tmp_path, capsys):
        html = tmp_path / "flame.html"
        doc = tmp_path / "prof.json"
        args = [
            "profile", "--workload", "flow", "--design", "ctrl",
            "--scale", "0.2", "--deterministic",
            "--html", str(html), "--json", str(doc),
        ]
        assert main(args) == 0
        assert "<!DOCTYPE html>" in html.read_text()
        loaded = json.loads(doc.read_text())
        assert loaded["schema"] == PROFILE_SCHEMA
        assert loaded["meta"]["workload"] == "flow"
        assert any("/" in p for p in loaded["frames"])

    def test_execute_workload_and_sampling(self, capsys):
        code = main(
            [
                "profile", "--workload", "execute", "--design", "ctrl",
                "--scale", "0.2", "--seed", "1", "--profile", "heavy",
                "--sampling",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execute" in out
        assert "sampling profiler" in out
