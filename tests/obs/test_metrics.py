"""Unit tests for counters, gauges, log-scale histograms, snapshots."""

import pytest

from repro.obs import (
    MAX_BIN,
    MIN_BIN,
    ZERO_BIN,
    MetricsRegistry,
    bin_bounds,
    get_metrics,
    histogram_bin,
    merge_snapshots,
    scoped,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2.5)
        assert reg.snapshot().counters == {"hits": 3.5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("loss").set(0.5)
        reg.gauge("loss").set(0.25)
        assert reg.snapshot().gauges == {"loss": 0.25}

    def test_unwritten_gauge_absent_from_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("idle")
        assert reg.snapshot().gauges == {}

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap.counters == {} and snap.histograms == {}


class TestHistogramBins:
    def test_power_of_two_binning(self):
        assert histogram_bin(1.0) == 0
        assert histogram_bin(1.5) == 0
        assert histogram_bin(2.0) == 1
        assert histogram_bin(0.5) == -1
        assert histogram_bin(1000.0) == 9

    def test_nonpositive_goes_to_zero_bin(self):
        assert histogram_bin(0.0) == ZERO_BIN
        assert histogram_bin(-3.0) == ZERO_BIN
        assert histogram_bin(float("nan")) == ZERO_BIN

    def test_clamping(self):
        assert histogram_bin(2.0 ** 100) == MAX_BIN
        assert histogram_bin(2.0 ** -100) == MIN_BIN
        assert histogram_bin(float("inf")) == MAX_BIN

    def test_bin_bounds_contain_values(self):
        for value in (0.01, 0.5, 1.0, 3.7, 1024.0):
            lo, hi = bin_bounds(histogram_bin(value))
            assert lo <= value < hi

    def test_stats_track_min_max_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("d")
        for v in (4.0, 1.0, 16.0):
            h.observe(v)
        snap = reg.snapshot().histograms["d"]
        assert snap.count == 3
        assert snap.total == 21.0
        assert snap.min == 1.0 and snap.max == 16.0
        assert sum(c for _, c in snap.bins) == 3


class TestSnapshotsAndMerge:
    def test_snapshot_is_point_in_time(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc()
        assert snap.counters == {"c": 1.0}
        assert reg.snapshot().counters == {"c": 2.0}

    def test_snapshot_equality(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("c").inc(2)
            reg.gauge("g").set(7)
            reg.histogram("h").observe(3.0)
            return reg.snapshot()

        assert build() == build()

    def test_merge_matches_sequential_application(self):
        ops_a = [("c", 1.0), ("h", 4.0), ("g", 1.0)]
        ops_b = [("c", 2.0), ("h", 0.25), ("g", 9.0), ("h", 64.0)]

        def apply(reg, ops):
            for name, value in ops:
                if name == "c":
                    reg.counter("count").inc(value)
                elif name == "g":
                    reg.gauge("level").set(value)
                else:
                    reg.histogram("dist").observe(value)

        ra, rb, rboth = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        apply(ra, ops_a)
        apply(rb, ops_b)
        apply(rboth, ops_a)
        apply(rboth, ops_b)
        merged = merge_snapshots(ra.snapshot(), rb.snapshot())
        assert merged == rboth.snapshot()

    def test_merge_with_disjoint_names(self):
        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.counter("a").inc()
        rb.gauge("b").set(2.0)
        rb.histogram("h").observe(1.0)
        merged = merge_snapshots(ra.snapshot(), rb.snapshot())
        assert merged.counters == {"a": 1.0}
        assert merged.gauges == {"b": 2.0}
        assert merged.histograms["h"].count == 1

    def test_to_dict_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(2.0)
        doc = reg.snapshot().to_dict()
        assert list(doc["counters"]) == ["a", "b"]
        json.dumps(doc)  # must serialize cleanly


class TestGlobalRegistry:
    def test_scoped_swaps_registry(self):
        fresh = MetricsRegistry()
        with scoped(metrics=fresh):
            get_metrics().counter("inside").inc()
        assert fresh.snapshot().counters == {"inside": 1.0}
        assert "inside" not in get_metrics().snapshot().counters


class TestNaNObserve:
    def test_nan_is_counted_but_does_not_poison_moments(self):
        import math

        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(2.0)
        h.observe(float("nan"))
        h.observe(8.0)
        snap = reg.snapshot().histograms["lat"]
        assert snap.count == 3
        assert snap.total == 10.0
        assert snap.min == 2.0 and snap.max == 8.0
        assert not math.isnan(snap.total)

    def test_nan_first_observation_leaves_min_max_unset(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(float("nan"))
        snap = reg.snapshot().histograms["lat"]
        assert snap.count == 1
        assert snap.min is None and snap.max is None and snap.total == 0.0

    def test_nan_lands_in_zero_bin(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(float("nan"))
        snap = reg.snapshot().histograms["lat"]
        assert dict(snap.bins) == {ZERO_BIN: 1}


class TestLabels:
    def test_labeled_name_sorts_keys_canonically(self):
        from repro.obs import labeled_name

        assert (
            labeled_name("jobs", {"region": "east", "priority": "high"})
            == 'jobs{priority="high",region="east"}'
        )

    def test_labeled_name_escapes_values(self):
        from repro.obs import labeled_name, parse_labeled_name

        series = labeled_name("jobs", {"note": 'say "hi"\nnow'})
        base, labels = parse_labeled_name(series)
        assert base == "jobs"
        assert labels == (("note", 'say "hi"\nnow'),)

    def test_bad_label_key_raises_named_error(self):
        from repro.obs import LabelError, labeled_name

        with pytest.raises(LabelError):
            labeled_name("jobs", {"bad-key": "v"})
        with pytest.raises(LabelError):
            labeled_name("jobs{oops", {"region": "east"})

    def test_registry_encodes_labels_into_series(self):
        reg = MetricsRegistry()
        reg.counter("service.jobs", region="east", priority="1").inc(3)
        reg.counter("service.jobs", region="west", priority="1").inc()
        snap = reg.snapshot()
        assert snap.counters == {
            'service.jobs{priority="1",region="east"}': 3.0,
            'service.jobs{priority="1",region="west"}': 1.0,
        }

    def test_same_labels_any_order_is_one_series(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs", region="east", priority="1")
        b = reg.counter("jobs", priority="1", region="east")
        assert a is b

    def test_kind_conflict_across_label_sets_rejected(self):
        reg = MetricsRegistry()
        reg.counter("jobs", region="east")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("jobs", region="west")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("jobs")

    def test_labeled_snapshot_roundtrips_and_merges(self):
        from repro.obs import snapshot_from_dict

        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.histogram("lat", job_kind="execute").observe(4.0)
        rb.histogram("lat", job_kind="execute").observe(16.0)
        rb.histogram("lat", job_kind="flow").observe(1.0)
        merged = merge_snapshots(ra.snapshot(), rb.snapshot())
        roundtrip = snapshot_from_dict(merged.to_dict())
        assert roundtrip == merged
        assert merged.histograms['lat{job_kind="execute"}'].count == 2
        assert merged.histograms['lat{job_kind="flow"}'].count == 1


class TestMergeGaugeSemantics:
    def test_gauge_conflict_is_last_writer_wins(self):
        """merge_snapshots(a, b) takes b's gauge on conflict — the
        documented last-writer-wins contract (non-commutative)."""
        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.gauge("depth").set(5.0)
        rb.gauge("depth").set(2.0)
        ab = merge_snapshots(ra.snapshot(), rb.snapshot())
        ba = merge_snapshots(rb.snapshot(), ra.snapshot())
        assert ab.gauges["depth"] == 2.0
        assert ba.gauges["depth"] == 5.0

    def test_counters_and_histograms_merge_commutatively(self):
        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.counter("n").inc(2)
        rb.counter("n").inc(3)
        ra.histogram("h").observe(1.0)
        rb.histogram("h").observe(2.0)
        ab = merge_snapshots(ra.snapshot(), rb.snapshot())
        ba = merge_snapshots(rb.snapshot(), ra.snapshot())
        assert ab.counters == ba.counters == {"n": 5.0}
        assert ab.histograms["h"] == ba.histograms["h"]
