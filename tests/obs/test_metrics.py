"""Unit tests for counters, gauges, log-scale histograms, snapshots."""

import pytest

from repro.obs import (
    MAX_BIN,
    MIN_BIN,
    ZERO_BIN,
    MetricsRegistry,
    bin_bounds,
    get_metrics,
    histogram_bin,
    merge_snapshots,
    scoped,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2.5)
        assert reg.snapshot().counters == {"hits": 3.5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("loss").set(0.5)
        reg.gauge("loss").set(0.25)
        assert reg.snapshot().gauges == {"loss": 0.25}

    def test_unwritten_gauge_absent_from_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("idle")
        assert reg.snapshot().gauges == {}

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap.counters == {} and snap.histograms == {}


class TestHistogramBins:
    def test_power_of_two_binning(self):
        assert histogram_bin(1.0) == 0
        assert histogram_bin(1.5) == 0
        assert histogram_bin(2.0) == 1
        assert histogram_bin(0.5) == -1
        assert histogram_bin(1000.0) == 9

    def test_nonpositive_goes_to_zero_bin(self):
        assert histogram_bin(0.0) == ZERO_BIN
        assert histogram_bin(-3.0) == ZERO_BIN
        assert histogram_bin(float("nan")) == ZERO_BIN

    def test_clamping(self):
        assert histogram_bin(2.0 ** 100) == MAX_BIN
        assert histogram_bin(2.0 ** -100) == MIN_BIN
        assert histogram_bin(float("inf")) == MAX_BIN

    def test_bin_bounds_contain_values(self):
        for value in (0.01, 0.5, 1.0, 3.7, 1024.0):
            lo, hi = bin_bounds(histogram_bin(value))
            assert lo <= value < hi

    def test_stats_track_min_max_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("d")
        for v in (4.0, 1.0, 16.0):
            h.observe(v)
        snap = reg.snapshot().histograms["d"]
        assert snap.count == 3
        assert snap.total == 21.0
        assert snap.min == 1.0 and snap.max == 16.0
        assert sum(c for _, c in snap.bins) == 3


class TestSnapshotsAndMerge:
    def test_snapshot_is_point_in_time(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc()
        assert snap.counters == {"c": 1.0}
        assert reg.snapshot().counters == {"c": 2.0}

    def test_snapshot_equality(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("c").inc(2)
            reg.gauge("g").set(7)
            reg.histogram("h").observe(3.0)
            return reg.snapshot()

        assert build() == build()

    def test_merge_matches_sequential_application(self):
        ops_a = [("c", 1.0), ("h", 4.0), ("g", 1.0)]
        ops_b = [("c", 2.0), ("h", 0.25), ("g", 9.0), ("h", 64.0)]

        def apply(reg, ops):
            for name, value in ops:
                if name == "c":
                    reg.counter("count").inc(value)
                elif name == "g":
                    reg.gauge("level").set(value)
                else:
                    reg.histogram("dist").observe(value)

        ra, rb, rboth = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        apply(ra, ops_a)
        apply(rb, ops_b)
        apply(rboth, ops_a)
        apply(rboth, ops_b)
        merged = merge_snapshots(ra.snapshot(), rb.snapshot())
        assert merged == rboth.snapshot()

    def test_merge_with_disjoint_names(self):
        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.counter("a").inc()
        rb.gauge("b").set(2.0)
        rb.histogram("h").observe(1.0)
        merged = merge_snapshots(ra.snapshot(), rb.snapshot())
        assert merged.counters == {"a": 1.0}
        assert merged.gauges == {"b": 2.0}
        assert merged.histograms["h"].count == 1

    def test_to_dict_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(2.0)
        doc = reg.snapshot().to_dict()
        assert list(doc["counters"]) == ["a", "b"]
        json.dumps(doc)  # must serialize cleanly


class TestGlobalRegistry:
    def test_scoped_swaps_registry(self):
        fresh = MetricsRegistry()
        with scoped(metrics=fresh):
            get_metrics().counter("inside").inc()
        assert fresh.snapshot().counters == {"inside": 1.0}
        assert "inside" not in get_metrics().snapshot().counters
