"""Unit tests for the span tracer: nesting, determinism, no-op mode."""

import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    TickClock,
    Tracer,
    get_tracer,
    scoped,
    set_tracer,
    traced,
    well_nested_violations,
)


class TestSpanBasics:
    def test_parent_child_nesting(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert tracer.current() is child
            assert tracer.current() is root
        assert tracer.current() is None
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert [s.name for s in tracer.roots()] == ["root"]
        assert [s.name for s in tracer.children_of(root)] == ["child"]

    def test_tags_and_events(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("work", design="fpu") as span:
            span.set_tag("k", 1)
            span.set_tags(a=2, b=3)
            tracer.event("fault", kind="boot")
        assert span.tags == {"design": "fpu", "k": 1, "a": 2, "b": 3}
        assert [e.name for e in span.events] == ["fault"]
        assert span.events[0].tags == {"kind": "boot"}

    def test_add_event_defaults_to_tracer_clock(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("work") as span:
            span.add_event("direct", kind="manual")
        event = span.events[0]
        assert event.name == "direct"
        assert event.tags == {"kind": "manual"}
        # The default timestamp comes from the tracer's (tick) clock, so
        # the event lands inside the span, not at time 0.
        assert span.start <= event.time <= span.end
        assert well_nested_violations(tracer.spans) == []

    def test_add_event_explicit_time_preserved(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("work") as span:
            span.add_event("pinned", time=0.25)
        assert span.events[0].time == 0.25

    def test_null_span_add_event_accepts_same_signature(self):
        span = NULL_SPAN
        assert span.add_event("ignored") is None
        assert span.add_event("ignored", time=1.0, kind="x") is None
        assert span.events == []

    def test_orphan_event_kept(self):
        tracer = Tracer(deterministic=True)
        tracer.event("stray", x=1)
        assert [e.name for e in tracer.orphan_events] == ["stray"]

    def test_span_closes_on_exception(self):
        tracer = Tracer(deterministic=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans[0].finished
        assert tracer.current() is None

    def test_find_and_reset(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2
        tracer.reset()
        assert tracer.spans == [] and tracer.orphan_events == []


class TestDeterminism:
    def test_tick_clock_counts(self):
        clock = TickClock()
        assert [clock() for _ in range(3)] == [0.0, 1.0, 2.0]

    def test_deterministic_traces_are_identical(self):
        def run():
            tracer = Tracer(deterministic=True)
            with tracer.span("outer", n=1):
                with tracer.span("inner"):
                    tracer.event("tick")
            return [
                (s.span_id, s.parent_id, s.name, s.start, s.end)
                for s in tracer.spans
            ]

        assert run() == run()

    def test_ids_allocate_in_start_order(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.span_id for s in tracer.spans] == [0, 1, 2]

    def test_monotonic_default_clock(self):
        tracer = Tracer()
        with tracer.span("t") as span:
            pass
        assert span.end >= span.start >= 0.0


class TestDisabledTracer:
    def test_disabled_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("nope", k=1) as span:
            assert span is NULL_SPAN
            span.set_tag("x", 2)  # no-op, must not raise
            span.set_tags(y=3)
            tracer.event("nothing")
        assert tracer.spans == []
        assert tracer.orphan_events == []

    def test_global_tracer_starts_disabled(self):
        assert get_tracer().enabled is False

    def test_scoped_swaps_and_restores(self):
        before = get_tracer()
        fresh = Tracer(deterministic=True)
        with scoped(tracer=fresh) as (active, _metrics):
            assert active is fresh and get_tracer() is fresh
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is before
        assert [s.name for s in fresh.spans] == ["inside"]

    def test_scoped_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(ValueError):
            with scoped(tracer=Tracer()):
                raise ValueError("x")
        assert get_tracer() is before


class TestDecorator:
    def test_traced_wraps_function(self):
        tracer = Tracer(deterministic=True)
        previous = set_tracer(tracer)
        try:

            @traced("my.op", kind="test")
            def add(a, b):
                return a + b

            assert add(2, 3) == 5
        finally:
            set_tracer(previous)
        assert [s.name for s in tracer.spans] == ["my.op"]
        assert tracer.spans[0].tags == {"kind": "test"}


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main"):
            thread = threading.Thread(target=worker, name="w1")
            thread.start()
            thread.join()
        # The worker's span must NOT become a child of main's span.
        assert seen["parent"] is None
        threads = {s.thread for s in tracer.spans}
        assert "w1" in threads
        assert well_nested_violations(tracer.spans) == []


class TestWellNestedChecker:
    def test_clean_tree_passes(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("e")
            with tracer.span("c"):
                pass
        assert well_nested_violations(tracer.spans) == []

    def test_detects_escaping_child(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.spans[1].end = tracer.spans[0].end + 100.0
        assert any(
            "escapes parent" in v
            for v in well_nested_violations(tracer.spans)
        )

    def test_detects_unfinished_span(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            pass
        tracer.spans[0].end = None
        assert any(
            "never finished" in v
            for v in well_nested_violations(tracer.spans)
        )

    def test_detects_sibling_overlap(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.spans[1].start = tracer.spans[0].start
        assert any(
            "overlap" in v for v in well_nested_violations(tracer.spans)
        )

    def test_detects_event_outside_span(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a") as span:
            tracer.event("e")
        span.events[0] = type(span.events[0])(
            name="e", time=span.end + 50.0, tags={}
        )
        assert any(
            "outside the span" in v
            for v in well_nested_violations(tracer.spans)
        )
