"""Seeded-random property tests for span/metric invariants.

Hypothesis-free, mirroring ``tests/verify``: each property is checked
over many ``random.Random(seed)`` instances, so failures replay from the
printed seed.
"""

import random

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    bin_bounds,
    histogram_bin,
    merge_snapshots,
    well_nested_violations,
)

pytestmark = pytest.mark.obs


def _random_span_walk(tracer, rng, max_ops=60):
    """Random open/close/event walk that always closes what it opens."""
    stack = []
    for _ in range(rng.randrange(max_ops)):
        move = rng.random()
        if move < 0.45 and len(stack) < 8:
            ctx = tracer.span(f"op{rng.randrange(6)}", d=rng.randrange(4))
            stack.append((ctx, ctx.__enter__()))
        elif move < 0.75 and stack:
            ctx, _span = stack.pop()
            ctx.__exit__(None, None, None)
        else:
            tracer.event(f"ev{rng.randrange(3)}")
    while stack:
        ctx, _span = stack.pop()
        ctx.__exit__(None, None, None)


class TestSpanProperties:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_walks_are_well_nested(self, seed):
        rng = random.Random(seed)
        tracer = Tracer(deterministic=True)
        _random_span_walk(tracer, rng)
        assert well_nested_violations(tracer.spans) == [], f"seed={seed}"

    @pytest.mark.parametrize("seed", range(10))
    def test_mutated_walks_are_caught(self, seed):
        """Tampering with a finished trace must trip the checker."""
        rng = random.Random(seed)
        tracer = Tracer(deterministic=True)
        with tracer.span("root"):
            _random_span_walk(tracer, rng, max_ops=30)
        victim = tracer.spans[rng.randrange(len(tracer.spans))]
        victim.end = victim.start - 1.0  # negative duration
        assert well_nested_violations(tracer.spans), f"seed={seed}"

    @pytest.mark.parametrize("seed", range(20))
    def test_ids_unique_and_start_ordered(self, seed):
        rng = random.Random(seed + 1000)
        tracer = Tracer(deterministic=True)
        _random_span_walk(tracer, rng)
        ids = [s.span_id for s in tracer.spans]
        assert ids == sorted(set(ids))
        starts = [s.start for s in tracer.spans]
        assert starts == sorted(starts)


def _random_value(rng):
    kind = rng.random()
    if kind < 0.1:
        return 0.0
    if kind < 0.2:
        # Quarter-integers below too: see the comment on positives.
        return -rng.randrange(1, 400) / 4.0
    # Quarter-integers: float sums stay exact, so the merge property can
    # be asserted with == rather than approx.
    return rng.randrange(1, 1 << 20) / 4.0


class TestHistogramProperties:
    @pytest.mark.parametrize("seed", range(40))
    def test_bin_counts_sum_to_observation_count(self, seed):
        rng = random.Random(seed)
        reg = MetricsRegistry()
        h = reg.histogram("d")
        n = rng.randrange(1, 200)
        for _ in range(n):
            h.observe(_random_value(rng))
        snap = reg.snapshot().histograms["d"]
        assert snap.count == n
        assert sum(c for _, c in snap.bins) == n

    @pytest.mark.parametrize("seed", range(40))
    def test_every_value_lands_in_its_bin(self, seed):
        rng = random.Random(seed + 500)
        for _ in range(50):
            value = _random_value(rng)
            lo, hi = bin_bounds(histogram_bin(value))
            assert lo <= value < hi or (value <= 0 and hi == 0.0)


def _random_ops(rng, n):
    ops = []
    for _ in range(n):
        kind = rng.choice(["c", "g", "h"])
        name = f"{kind}{rng.randrange(3)}"
        ops.append((kind, name, _random_value(rng) if kind != "c" else
                    rng.randrange(100) / 4.0))
    return ops


def _apply(reg, ops):
    for kind, name, value in ops:
        if kind == "c":
            reg.counter(name).inc(value)
        elif kind == "g":
            reg.gauge(name).set(value)
        else:
            reg.histogram(name).observe(value)


class TestMergeProperties:
    @pytest.mark.parametrize("seed", range(40))
    def test_merge_equals_union(self, seed):
        rng = random.Random(seed)
        ops_a = _random_ops(rng, rng.randrange(40))
        ops_b = _random_ops(rng, rng.randrange(40))
        ra, rb, rboth = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        _apply(ra, ops_a)
        _apply(rb, ops_b)
        _apply(rboth, ops_a)
        _apply(rboth, ops_b)
        merged = merge_snapshots(ra.snapshot(), rb.snapshot())
        assert merged == rboth.snapshot(), f"seed={seed}"

    @pytest.mark.parametrize("seed", range(10))
    def test_merge_with_empty_is_identity(self, seed):
        rng = random.Random(seed + 77)
        reg = MetricsRegistry()
        _apply(reg, _random_ops(rng, 30))
        snap = reg.snapshot()
        empty = MetricsRegistry().snapshot()
        assert merge_snapshots(snap, empty) == snap
        assert merge_snapshots(empty, snap) == snap
