"""Run-store tests: JSONL roundtrip, named errors, series, percentiles."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.store import (
    DEFAULT_STORE_PATH,
    RUNS_SCHEMA,
    RunRecord,
    RunStore,
    StoreCorruptError,
    StoreError,
    StoreSchemaError,
    bench_to_run,
    histogram_percentile,
    merged_histogram,
    metric_names,
    metric_series,
    metric_value,
    percentile_summary,
)


def _record(rev="r1", seed=0, cost=1.5, hist_values=()):
    registry = MetricsRegistry()
    registry.counter("executor.billed_cost").inc(cost)
    registry.gauge("bench.gnn.final_loss").set(0.25)
    for value in hist_values:
        registry.histogram("stage.seconds").observe(value)
    return RunRecord(
        kind="bench",
        rev=rev,
        seed=seed,
        timestamp_utc="2026-08-06T00:00:00Z",
        scale=0.3,
        labels={"design": "ctrl"},
        metrics=registry.snapshot().to_dict(),
    )


class TestRunRecord:
    def test_roundtrip(self):
        record = _record()
        doc = record.to_dict()
        assert doc["schema"] == RUNS_SCHEMA
        again = RunRecord.from_dict(doc)
        assert again == record

    def test_schema_mismatch_is_named_error(self):
        doc = _record().to_dict()
        doc["schema"] = "repro-runs/99"
        with pytest.raises(StoreSchemaError) as err:
            RunRecord.from_dict(doc, line=3)
        message = str(err.value)
        assert "repro-runs/1" in message
        assert "repro-runs/99" in message
        assert "line 3" in message

    def test_missing_fields_is_corrupt_not_keyerror(self):
        doc = _record().to_dict()
        del doc["rev"]
        del doc["seed"]
        with pytest.raises(StoreCorruptError) as err:
            RunRecord.from_dict(doc)
        assert "rev" in str(err.value) and "seed" in str(err.value)

    def test_named_errors_share_a_base(self):
        assert issubclass(StoreSchemaError, StoreError)
        assert issubclass(StoreCorruptError, StoreError)


class TestRunStore:
    def test_append_then_load(self, tmp_path):
        store = RunStore(str(tmp_path / "runs.jsonl"))
        store.append(_record(rev="a"))
        store.append(_record(rev="b"))
        runs = store.load()
        assert [r.rev for r in runs] == ["a", "b"]
        assert len(store) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert RunStore(str(tmp_path / "absent.jsonl")).load() == []

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(str(path))
        store.append(_record())
        path.write_text(path.read_text() + "\n\n")
        assert len(store.load()) == 1

    def test_bad_json_line_reports_line_number(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(str(path))
        store.append(_record())
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(StoreCorruptError) as err:
            store.load()
        assert "line 2" in str(err.value)

    def test_non_object_line_is_corrupt(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(StoreCorruptError):
            RunStore(str(path)).load()

    def test_schema_mismatch_raises_named_error_not_keyerror(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        doc = _record().to_dict()
        doc["schema"] = "repro-runs/0"
        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(StoreSchemaError):
            RunStore(str(path)).load()

    def test_default_path_under_benchmarks(self):
        assert DEFAULT_STORE_PATH.startswith("benchmarks")


class TestBenchToRun:
    def test_converts_bench_document(self):
        bench_doc = {
            "schema": "repro-bench/1",
            "rev": "abc",
            "seed": 5,
            "design": "ctrl",
            "scale": 0.3,
            "epochs": 3,
            "workloads": {"flow": 0.1},
            "timings": {"bench.flow": 0.1},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        record = bench_to_run(bench_doc, "2026-08-06T00:00:00Z")
        assert record.kind == "bench"
        assert record.rev == "abc"
        assert record.seed == 5
        assert record.labels["design"] == "ctrl"
        assert record.labels["workloads"] == {"flow": 0.1}
        assert record.timings == {"bench.flow": 0.1}


class TestQueries:
    def test_metric_value_counter_and_gauge(self):
        record = _record(cost=2.0)
        assert metric_value(record, "executor.billed_cost") == 2.0
        assert metric_value(record, "bench.gnn.final_loss") == 0.25
        assert metric_value(record, "nope") is None

    def test_metric_names_union(self):
        names = metric_names([_record(), _record()])
        assert "executor.billed_cost" in names
        assert "bench.gnn.final_loss" in names
        assert names == sorted(names)

    def test_metric_series_preserves_store_order(self):
        runs = [_record(rev="a", cost=1.0), _record(rev="b", cost=2.0)]
        series = metric_series(runs, "executor.billed_cost")
        assert [(r.rev, v) for r, v in series] == [("a", 1.0), ("b", 2.0)]

    def test_merged_histogram_sums_counts(self):
        runs = [
            _record(rev="a", hist_values=[1.0, 2.0]),
            _record(rev="b", hist_values=[4.0]),
        ]
        hist = merged_histogram(runs, "stage.seconds")
        assert hist.count == 3
        assert merged_histogram(runs, "absent") is None

    def test_percentiles_from_bins(self):
        runs = [_record(rev="a", hist_values=[1.0, 2.0, 4.0, 8.0, 100.0])]
        hist = merged_histogram(runs, "stage.seconds")
        assert histogram_percentile(hist, 0.0) == pytest.approx(1.0)
        assert histogram_percentile(hist, 100.0) <= 100.0
        p50 = histogram_percentile(hist, 50.0)
        assert 1.0 <= p50 <= 8.0
        with pytest.raises(ValueError):
            histogram_percentile(hist, 101.0)

    def test_percentile_summary_keys(self):
        runs = [_record(hist_values=[1.0, 2.0, 3.0])]
        summary = percentile_summary(runs, "stage.seconds")
        assert set(summary) == {"p50", "p90", "p99"}
        assert percentile_summary(runs, "absent") == {}


class TestEmptyHistogramError:
    def test_percentile_of_empty_histogram_is_named_error(self):
        from repro.obs.store import EmptyHistogramError

        reg = MetricsRegistry()
        reg.histogram("empty")  # registered, never observed
        hist = reg.snapshot().histograms.get("empty")
        if hist is None:
            # Unobserved histograms may be absent from snapshots; build
            # an explicitly empty one via from-dict instead.
            from repro.obs.metrics import HistogramSnapshot

            hist = HistogramSnapshot()
        with pytest.raises(EmptyHistogramError, match="empty histogram"):
            histogram_percentile(hist, 99.0)

    def test_empty_histogram_error_is_a_store_error(self):
        from repro.obs.store import EmptyHistogramError

        assert issubclass(EmptyHistogramError, StoreError)

    def test_percentile_summary_tolerates_empty(self):
        from repro.obs.metrics import HistogramSnapshot

        record = _record(hist_values=())
        record.metrics.setdefault("histograms", {})
        assert percentile_summary([record], "stage.seconds") == {}
