"""Critical-path attribution: exact bucket sums over stitched job traces."""

import json

import pytest

from repro.obs.attrib import (
    BUCKETS,
    Attribution,
    AttributionError,
    attribute_job,
    attribute_session,
    attribution_violations,
)
from repro.obs.spans import mint_trace_id
from repro.service import JobRequest, ServiceConfig, run_session


def _session(seed=11, jobs=8, workers=2, cancel=None):
    from repro.service import seeded_job_mix

    return run_session(
        seeded_job_mix(seed, jobs),
        ServiceConfig(workers=workers),
        cancel=cancel,
    )


class TestExactness:
    def test_bucket_sums_equal_totals_bit_for_bit(self):
        service = _session().service
        for a in attribute_session(service):
            total = 0.0
            for _, value in a.buckets:
                total += value
                assert value >= 0.0
            assert total == a.total  # exact float equality, no tolerance

    def test_violation_checker_is_clean_on_seeded_session(self):
        assert attribution_violations(_session().service) == []

    def test_every_terminal_job_is_attributed_in_order(self):
        service = _session().service
        attribs = attribute_session(service)
        assert [a.job_id for a in attribs] == list(service.terminal_order)
        for a in attribs:
            assert a.trace_id == service.jobs[a.job_id].trace_id

    def test_bucket_order_is_canonical(self):
        a = attribute_session(_session().service)[0]
        assert tuple(k for k, _ in a.buckets) == BUCKETS
        assert tuple(a.to_dict()["buckets"]) == BUCKETS


class TestQueueCancelled:
    def test_cancelled_in_queue_attributes_only_wait(self):
        # One worker; cancel the last submitted job before anything
        # completes — it dies in the queue.
        requests = [
            JobRequest(kind="sleep", params={"steps": 2}, priority=1)
            for _ in range(3)
        ]
        result = run_session(
            requests, ServiceConfig(workers=1), cancel={2: 0}
        )
        service = result.service
        cancelled = [
            job for job in service.jobs.values()
            if job.state.value == "cancelled"
        ]
        assert cancelled
        attribs = {a.job_id: a for a in attribute_session(service)}
        for job in cancelled:
            a = attribs[job.job_id]
            assert a.bucket("planning") == 0.0
            assert a.bucket("execution") == 0.0
            assert a.bucket("dispatch") == 0.0
            assert a.bucket("admission") + a.bucket("queue_wait") == a.total


class TestExecutionBuckets:
    def test_execute_jobs_get_execution_ticks(self):
        service = _session(seed=42, jobs=12).service
        attribs = {a.job_id: a for a in attribute_session(service)}
        execute_jobs = [
            job_id
            for job_id in service.terminal_order
            if service.jobs[job_id].request.kind == "execute"
        ]
        assert execute_jobs
        for job_id in execute_jobs:
            assert attribs[job_id].bucket("execution") > 0.0

    def test_non_execute_jobs_have_no_execution(self):
        service = _session(seed=42, jobs=12).service
        for a in attribute_session(service):
            if service.jobs[a.job_id].request.kind in ("flow", "plan"):
                assert a.bucket("execution") == 0.0
                assert a.bucket("fault_retry") == 0.0


class TestReplay:
    def test_attribution_is_byte_stable_across_sessions(self):
        first = [a.to_dict() for a in attribute_session(_session().service)]
        second = [a.to_dict() for a in attribute_session(_session().service)]
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_records_embed_attribution_and_stay_idempotent(self):
        service = _session().service
        stamp = "2026-01-01T00:00:00Z"
        docs1 = [r.to_dict() for r in service.records(stamp)]
        docs2 = [r.to_dict() for r in service.records(stamp)]
        assert docs1 == docs2
        job_docs = docs1[:-1]
        assert all("attrib" in d["labels"] for d in job_docs)
        session = docs1[-1]
        hists = session["metrics"]["histograms"]
        assert hists["service.latency_ticks"]["count"] == len(job_docs)
        assert 'service.attrib_ticks{bucket="queue_wait"}' in hists


class TestErrors:
    def test_non_terminal_job_raises_named_error(self):
        from repro.service.jobs import Job

        job = Job(job_id="j", request=JobRequest(kind="sleep"), seq=0)
        job.history.append(("queued", 0.0))
        with pytest.raises(AttributionError, match="not terminal"):
            attribute_job(job, [])

    def test_missing_history_raises_named_error(self):
        from repro.service.jobs import Job

        job = Job(job_id="j", request=JobRequest(kind="sleep"), seq=0)
        with pytest.raises(AttributionError, match="no lifecycle history"):
            attribute_job(job, [])


class TestTraceIds:
    def test_mint_is_deterministic_and_distinct(self):
        a = mint_trace_id("service", 7, 0)
        assert a == mint_trace_id("service", 7, 0)
        assert len(a) == 16 and int(a, 16) >= 0
        assert a != mint_trace_id("service", 7, 1)
        assert a != mint_trace_id("service", 8, 0)
        assert a != mint_trace_id("fleet", 7, 0)

    def test_session_trace_ids_are_unique_per_job(self):
        service = _session().service
        ids = [job.trace_id for job in service.jobs.values()]
        assert None not in ids
        assert len(set(ids)) == len(ids)
