"""Golden-trace tests: the span-tree *shape* of the instrumented hot
paths is pinned to checked-in JSON.

Run with ``REPRO_UPDATE_GOLDENS=1`` to regenerate after an intentional
instrumentation change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_golden.py

The comparison uses :func:`repro.obs.export.structural_tree` — names,
nesting, sorted tag keys, and event names only — so timings and tag
*values* can never make these flake.
"""

import json
import os
import pathlib

from repro.cloud.executor import ExecutionPolicy, PlanExecutor
from repro.cloud.faults import FaultProfile
from repro.cloud.instance import InstanceFamily, VMConfig
from repro.eda.flow import FlowRunner
from repro.netlist import benchmarks
from repro.obs import MetricsRegistry, Tracer, scoped
from repro.obs.export import structural_tree

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def _check_golden(name: str, tree):
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        path.write_text(json.dumps(tree, indent=2, sort_keys=True) + "\n")
    assert path.exists(), (
        f"golden {name} missing — regenerate with REPRO_UPDATE_GOLDENS=1"
    )
    expected = json.loads(path.read_text())
    assert tree == expected, (
        f"span tree drifted from goldens/{name}; if the change is "
        f"intentional, regenerate with REPRO_UPDATE_GOLDENS=1"
    )


def _deterministic_run(workload):
    tracer = Tracer(deterministic=True)
    with scoped(tracer=tracer, metrics=MetricsRegistry()):
        workload()
    return structural_tree(tracer.spans)


class TestFlowGolden:
    def _run_flow(self):
        runner = FlowRunner(seed=0)
        runner.run(benchmarks.build("ctrl", 0.3), seed=0)

    def test_flow_trace_matches_golden(self):
        _check_golden("flow_trace.json", _deterministic_run(self._run_flow))

    def test_flow_trace_is_deterministic(self):
        assert _deterministic_run(self._run_flow) == _deterministic_run(
            self._run_flow
        )


def _executor_plan():
    spot = VMConfig(
        name="gp.4x.spot",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=4,
        memory_gb=16.0,
        price_per_hour=0.06,
    )
    on_demand = VMConfig(
        name="gp.8x",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=8,
        memory_gb=32.0,
        price_per_hour=0.40,
    )
    from repro.cloud.provisioner import DeploymentPlan
    from repro.eda.job import EDAStage

    plan = DeploymentPlan(design="golden")
    plan.add(EDAStage.SYNTHESIS, spot, 900.0)
    plan.add(EDAStage.PLACEMENT, on_demand, 300.0)
    plan.add(EDAStage.ROUTING, spot, 600.0)
    plan.add(EDAStage.STA, on_demand, 120.0)
    return plan


class TestExecutorGolden:
    def _run_executor(self):
        profile = FaultProfile(
            spot_interrupt_rate_per_hour=6.0,
            checkpoint_interval_seconds=120.0,
            boot_failure_prob=0.2,
        )
        executor = PlanExecutor(profile=profile, policy=ExecutionPolicy())
        executor.execute(_executor_plan(), deadline_seconds=8000.0, seed=7)

    def test_executor_trace_matches_golden(self):
        _check_golden(
            "executor_trace.json", _deterministic_run(self._run_executor)
        )

    def test_executor_trace_is_deterministic(self):
        assert _deterministic_run(self._run_executor) == _deterministic_run(
            self._run_executor
        )

    def test_executor_trace_exercises_faults(self):
        """The golden scenario must actually contain fault instants —
        otherwise the golden pins a trivially quiet trace."""
        tree = _deterministic_run(self._run_executor)

        def events(node):
            out = list(node["events"])
            for child in node["children"]:
                out.extend(events(child))
            return out

        all_events = [e for root in tree for e in events(root)]
        assert "preemption" in all_events


class TestServiceGolden:
    """The stitched end-to-end service trace: one job, one trace id."""

    def _run_service(self):
        from repro.service import (
            JobRequest,
            ServiceConfig,
            run_session,
        )

        requests = [
            JobRequest(kind="sleep", params={"steps": 2}, priority=1,
                       client="alice", seed=3),
            JobRequest(kind="sleep", params={"steps": 1}, priority=0,
                       client="bob", seed=4),
        ]
        return run_session(requests, ServiceConfig(workers=1)).service

    def test_service_trace_matches_golden(self):
        service = self._run_service()
        _check_golden(
            "service_trace.json", structural_tree(service.tracer.spans)
        )

    def test_stitched_trace_export_is_byte_identical_across_runs(self):
        """Same seed + same batch => byte-identical full trace export
        (timings, trace ids, span uids included), twice."""
        from repro.obs.export import span_tree

        def export():
            service = self._run_service()
            return json.dumps(
                span_tree(service.tracer.spans), sort_keys=True
            )

        assert export() == export()

    def test_one_job_is_one_trace_end_to_end(self):
        service = self._run_service()
        for job in service.jobs.values():
            stitched = [
                s for s in service.tracer.spans
                if s.trace_id == job.trace_id
            ]
            names = {s.name for s in stitched}
            # Submit and execution spans share the job's single trace.
            assert "service.submit" in names
            assert "service.job" in names
            assert all(s.trace_id == job.trace_id for s in stitched)
