"""Bench harness tests: determinism, schema, regression comparison, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_filename,
    compare_bench,
    run_bench,
    validate_bench,
    write_bench,
)

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def bench_doc():
    return run_bench(seed=0, scale=0.2, epochs=2, rev="test")


class TestRunBench:
    def test_schema_valid(self, bench_doc):
        assert validate_bench(bench_doc) == []
        assert bench_doc["schema"] == BENCH_SCHEMA
        assert bench_doc["rev"] == "test"

    def test_same_seed_same_structure_and_metrics(self, bench_doc):
        again = run_bench(seed=0, scale=0.2, epochs=2, rev="test")
        assert again["structure"] == bench_doc["structure"]
        assert again["metrics"] == bench_doc["metrics"]

    def test_covers_all_workloads(self, bench_doc):
        roots = [node["name"] for node in bench_doc["structure"]]
        assert roots == [
            "bench.flow",
            "bench.executor",
            "bench.gnn",
            "bench.fleet",
        ]
        assert set(bench_doc["workloads"]) == {
            "flow",
            "executor",
            "gnn",
            "fleet",
        }

    def test_fleet_block_and_gauges(self, bench_doc):
        gauges = bench_doc["metrics"]["gauges"]
        assert gauges["bench.fleet.planned_flows"] == 40000
        assert (
            gauges["bench.fleet.planned_flows"]
            == gauges["bench.fleet.feasible_flows"]
            + bench_doc["metrics"]["gauges"].get(
                "bench.fleet.infeasible_flows",
                gauges["bench.fleet.planned_flows"]
                - gauges["bench.fleet.feasible_flows"],
            )
        )
        assert gauges["bench.fleet.total_cost"] > 0
        assert gauges["bench.fleet.max_certified_gap"] >= 0.0
        # Wall-clock throughput rides in its own doc block, never in the
        # gauge registry (which must be same-seed identical).
        assert "bench.fleet.flows_per_second" not in gauges
        fleet = bench_doc["fleet"]
        assert fleet["flows"] == 40000
        assert fleet["flows_per_second"] > 0
        assert fleet["groups"] == gauges["bench.fleet.groups"]

    def test_flow_runtimes_recorded_at_vcpu_grid(self, bench_doc):
        gauges = bench_doc["metrics"]["gauges"]
        for stage in ("synthesis", "placement", "routing", "sta"):
            for vcpus in (1, 2, 4, 8):
                key = f"flow.runtime_seconds.{stage}.{vcpus}v"
                assert key in gauges and gauges[key] > 0

    def test_executor_billing_metrics_present(self, bench_doc):
        counters = bench_doc["metrics"]["counters"]
        assert counters["executor.billed_seconds"] > 0
        assert counters["executor.billed_cost"] > 0

    def test_timings_cover_every_span_path(self, bench_doc):
        assert all(t >= 0 for t in bench_doc["timings"].values())
        assert "bench.gnn/gnn.train/gnn.epoch" in bench_doc["timings"]

    def test_validate_catches_corruption(self, bench_doc):
        bad = dict(bench_doc)
        bad["schema"] = "nope/9"
        del bad["timings"]
        problems = validate_bench(bad)
        assert any("schema" in p for p in problems)
        assert any("timings" in p for p in problems)

    def test_profile_block_covers_timing_paths(self, bench_doc):
        profile = bench_doc["profile"]
        assert set(profile) == set(bench_doc["timings"])
        for frame in profile.values():
            assert frame["calls"] >= 1
            assert frame["total"] >= frame["self"] >= 0
        # The engine-level frames surface under their stage spans.
        assert any("cuts.enumerate" in p for p in profile)
        assert any("routing.iteration" in p for p in profile)

    def test_profile_call_counts_deterministic(self, bench_doc):
        again = run_bench(seed=0, scale=0.2, epochs=2, rev="test")
        calls = {p: f["calls"] for p, f in bench_doc["profile"].items()}
        assert calls == {p: f["calls"] for p, f in again["profile"].items()}

    def test_validate_catches_missing_profile(self, bench_doc):
        bad = dict(bench_doc)
        del bad["profile"]
        assert any("profile" in p for p in validate_bench(bad))
        bad["profile"] = {"some/path": {"calls": 1}}
        assert any(
            "missing calls/total/self" in p for p in validate_bench(bad)
        )


class TestWriteBench:
    def test_filename_embeds_rev(self):
        assert bench_filename("abc1234") == "BENCH_abc1234.json"

    def test_roundtrip(self, bench_doc, tmp_path):
        path = write_bench(bench_doc, str(tmp_path))
        assert path.endswith("BENCH_test.json")
        loaded = json.loads(open(path).read())
        assert validate_bench(loaded) == []
        assert loaded["structure"] == bench_doc["structure"]


class TestCompareBench:
    def test_identical_docs_no_regression(self, bench_doc):
        regressions, notes = compare_bench(bench_doc, bench_doc, 25.0)
        assert regressions == [] and notes == []

    def test_detects_slowdown(self, bench_doc):
        slower = dict(bench_doc)
        slower["timings"] = {
            k: v * 3.0 + 1.0 for k, v in bench_doc["timings"].items()
        }
        regressions, _notes = compare_bench(slower, bench_doc, 25.0)
        assert regressions
        assert all("vs baseline" in r for r in regressions)

    def test_attribution_names_top_regressed_span(self, bench_doc):
        slower = dict(bench_doc)
        slower["timings"] = {
            k: v * 3.0 + 1.0 for k, v in bench_doc["timings"].items()
        }
        slower["profile"] = {
            k: dict(f) for k, f in bench_doc["profile"].items()
        }
        victim = "bench.flow/flow/stage.synthesis"
        slower["profile"][victim]["self"] += 2.5
        regressions, _notes = compare_bench(slower, bench_doc, 25.0)
        assert regressions[-1] == (
            f"top regressed span: {victim} (+2.5000s self time)"
        )

    def test_no_attribution_without_profile_blocks(self, bench_doc):
        slower = dict(bench_doc)
        slower["timings"] = {
            k: v * 3.0 + 1.0 for k, v in bench_doc["timings"].items()
        }
        del slower["profile"]
        regressions, _notes = compare_bench(slower, bench_doc, 25.0)
        assert regressions
        assert not any("top regressed span" in r for r in regressions)

    def test_tolerance_absorbs_noise(self, bench_doc):
        slightly = dict(bench_doc)
        slightly["timings"] = {
            k: v * 1.05 for k, v in bench_doc["timings"].items()
        }
        regressions, _notes = compare_bench(slightly, bench_doc, 25.0)
        assert regressions == []

    def test_structure_drift_is_a_note_not_a_regression(self, bench_doc):
        drifted = dict(bench_doc)
        drifted["timings"] = dict(bench_doc["timings"])
        drifted["timings"]["bench.new/path"] = 1.0
        regressions, notes = compare_bench(drifted, bench_doc, 25.0)
        assert regressions == []
        assert any("new span path" in n for n in notes)

    def test_negative_tolerance_rejected(self, bench_doc):
        with pytest.raises(ValueError, match="tolerance"):
            compare_bench(bench_doc, bench_doc, -1.0)


class TestBenchCli:
    def test_bench_writes_and_passes_self_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench"
        args = [
            "bench", "--seed", "0", "--scale", "0.2", "--epochs", "2",
            "--rev", "cli", "--out", str(out),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(args) == 0
        path = out / "BENCH_cli.json"
        assert path.exists()
        assert validate_bench(json.loads(path.read_text())) == []
        # Second run against the first as baseline: same machine,
        # generous tolerance -> no regression.
        assert main(args + ["--baseline", str(path), "--tolerance", "400"]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_bench_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "bench"
        args = [
            "bench", "--seed", "0", "--scale", "0.2", "--epochs", "2",
            "--rev", "cli", "--out", str(out), "--no-store",
        ]
        assert main(args) == 0
        path = out / "BENCH_cli.json"
        doc = json.loads(path.read_text())
        doc["timings"] = {k: v / 100.0 for k, v in doc["timings"].items()}
        fast = tmp_path / "impossible_baseline.json"
        fast.write_text(json.dumps(doc))
        code = main(args + ["--baseline", str(fast), "--tolerance", "1"])
        out_text = capsys.readouterr().out
        # Only paths above the absolute noise guard can regress; at this
        # tiny scale a clean exit is possible, but a reported regression
        # must come with the REGRESSION banner and exit 1.
        assert code in (0, 1)
        if code == 1:
            assert "REGRESSION" in out_text

    def test_bench_missing_baseline_errors(self, tmp_path):
        code = main(
            [
                "bench", "--seed", "0", "--scale", "0.2", "--epochs", "2",
                "--rev", "cli", "--out", str(tmp_path), "--no-store",
                "--baseline", str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2


class TestTraceCli:
    def test_trace_flow_prints_tree_and_exports(self, tmp_path, capsys):
        json_out = tmp_path / "trace.json"
        chrome_out = tmp_path / "chrome.json"
        code = main(
            [
                "trace", "--design", "ctrl", "--scale", "0.2",
                "--deterministic",
                "--json", str(json_out), "--chrome", str(chrome_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flow" in out and "stage.synthesis" in out
        doc = json.loads(json_out.read_text())
        assert doc["schema"] == "repro-trace/1"
        chrome = json.loads(chrome_out.read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_trace_execute_workload(self, capsys):
        code = main(
            [
                "trace", "--workload", "execute", "--design", "ctrl",
                "--scale", "0.2", "--profile", "heavy", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execute" in out
        assert "executor.billed_seconds" in out
