"""Report tests: sparklines, MAD outliers, deterministic drift, HTML."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.report import (
    DETERMINISTIC_METRICS,
    build_report,
    deterministic_drift,
    mad_outlier,
    render_html,
    render_text,
    sparkline,
)
from repro.obs.store import RunRecord


def _run(rev, cost=0.5, loss=0.25, seed=0, hist_values=()):
    registry = MetricsRegistry()
    registry.counter("executor.billed_cost").inc(cost)
    registry.gauge("gnn.train.loss").set(loss)
    for value in hist_values:
        registry.histogram("stage.seconds").observe(value)
    return RunRecord(
        kind="bench",
        rev=rev,
        seed=seed,
        timestamp_utc="2026-08-06T00:00:00Z",
        scale=0.3,
        labels={"design": "ctrl"},
        metrics=registry.snapshot().to_dict(),
    )


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_rises(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"


class TestMadOutlier:
    def test_needs_four_values(self):
        assert mad_outlier([1.0, 1.0, 5.0]) is None

    def test_stable_series_not_flagged(self):
        assert mad_outlier([1.0, 1.1, 0.9, 1.0, 1.05]) is None

    def test_spike_flagged(self):
        message = mad_outlier([1.0, 1.1, 0.9, 1.0, 1.05, 50.0])
        assert message is not None
        assert "outlier" in message

    def test_constant_baseline_jump_flagged(self):
        message = mad_outlier([1.0, 1.0, 1.0, 1.0, 2.0])
        assert message is not None
        assert "constant baseline" in message

    def test_constant_baseline_constant_latest_ok(self):
        assert mad_outlier([1.0, 1.0, 1.0, 1.0, 1.0]) is None

    def test_window_limits_baseline(self):
        # Spike relative to the recent window even if ancient history
        # contained similar values.
        values = [50.0] + [1.0] * 8 + [50.0]
        assert mad_outlier(values, window=8) is not None

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            mad_outlier([1.0, 2.0, 3.0, 4.0], window=0)


class TestDeterministicDrift:
    def test_stable_group_not_flagged(self):
        runs = [_run("a"), _run("b"), _run("c")]
        assert deterministic_drift(runs) == []

    def test_drift_within_group_flagged(self):
        runs = [_run("a"), _run("b"), _run("c", cost=0.75)]
        flags = deterministic_drift(runs)
        assert len(flags) == 1
        flag = flags[0]
        assert flag.metric == "executor.billed_cost"
        assert flag.kind == "deterministic"
        assert "bit-stable" in flag.message
        assert "c=" in flag.message

    def test_different_seeds_are_different_groups(self):
        runs = [_run("a", seed=0, cost=0.5), _run("b", seed=1, cost=0.75)]
        assert deterministic_drift(runs) == []

    def test_nondeterministic_metric_ignored(self):
        runs = [_run("a", loss=0.25), _run("b", loss=0.30)]
        assert deterministic_drift(runs) == []
        assert "gnn.train.loss" not in DETERMINISTIC_METRICS


class TestBuildReport:
    def test_empty_store(self):
        report = build_report([])
        assert report.ok
        assert report.rows == []

    def test_three_run_store_flags_injected_cost_drift(self):
        # Acceptance: `repro report` over a 3-run store flags injected
        # billed-cost drift as a deterministic regression.
        runs = [_run("a"), _run("b"), _run("c", cost=0.75)]
        report = build_report(runs)
        assert not report.ok
        assert [f.metric for f in report.drift] == ["executor.billed_cost"]

    def test_rows_cover_counters_and_gauges(self):
        report = build_report([_run("a"), _run("b")])
        names = [row.name for row in report.rows]
        assert "executor.billed_cost" in names
        assert "gnn.train.loss" in names

    def test_metric_filter(self):
        report = build_report([_run("a")], metric_filter=["gnn."])
        assert [row.name for row in report.rows] == ["gnn.train.loss"]

    def test_histogram_rows(self):
        report = build_report([_run("a", hist_values=[1.0, 2.0, 3.0])])
        assert [h.name for h in report.histogram_rows] == ["stage.seconds"]
        assert report.histogram_rows[0].count == 3

    def test_mad_flags_are_warnings_not_failures(self):
        runs = [_run(str(i), loss=0.25) for i in range(5)]
        runs.append(_run("spike", loss=9.0))
        report = build_report(runs)
        assert report.ok  # MAD outliers never fail the report
        assert any(f.metric == "gnn.train.loss" for f in report.outliers)


class TestRenderText:
    def test_empty_store_notice(self):
        text = render_text(build_report([]), store_path="x.jsonl")
        assert text == "repro report: no runs in x.jsonl"

    def test_summary_and_sparklines(self):
        text = render_text(build_report([_run("a"), _run("b")]))
        assert "2 runs" in text
        assert "executor.billed_cost" in text
        assert "bit-stable" in text

    def test_drift_rendered_with_banner(self):
        runs = [_run("a"), _run("b"), _run("c", cost=0.75)]
        text = render_text(build_report(runs))
        assert "DETERMINISTIC DRIFT" in text
        assert "✗" in text

    def test_deterministic_output(self):
        runs = [_run("a"), _run("b")]
        assert render_text(build_report(runs)) == render_text(
            build_report(runs)
        )


class TestRenderHtml:
    def test_self_contained(self):
        html = render_html(build_report([_run("a"), _run("b")]))
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "<svg" in html  # inline sparklines
        assert "http://" not in html and "https://" not in html

    def test_empty_store(self):
        html = render_html(build_report([]), store_path="x.jsonl")
        assert "no runs" in html

    def test_drift_rendered_in_red_with_chip(self):
        runs = [_run("a"), _run("b"), _run("c", cost=0.75)]
        html = render_html(build_report(runs))
        assert "--status-critical" in html
        assert 'class="drift"' in html
        assert "✗ drift" in html
        assert "correctness bug" in html

    def test_mad_outlier_chip(self):
        runs = [_run(str(i), loss=0.25) for i in range(5)]
        runs.append(_run("spike", loss=9.0))
        html = render_html(build_report(runs))
        assert "MAD outlier" in html

    def test_dark_mode_palette_present(self):
        html = render_html(build_report([_run("a")]))
        assert "prefers-color-scheme: dark" in html

    def test_metadata_table_lists_runs(self):
        html = render_html(build_report([_run("a"), _run("b")]))
        assert "<h2>Runs</h2>" in html
        assert "2026-08-06T00:00:00Z" in html
