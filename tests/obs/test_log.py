"""Flight recorder tests: ring buffer, span correlation, crash dumps."""

import json

import pytest

from repro.cloud.executor import ExecutionPolicy, PlanExecutor
from repro.cloud.faults import FaultProfile
from repro.cloud.instance import InstanceFamily, VMConfig
from repro.cloud.provisioner import DeploymentPlan
from repro.eda.job import EDAStage
from repro.obs import Logger, MetricsRegistry, Tracer, get_logger, scoped
from repro.obs.log import (
    CRASH_SCHEMA,
    LEVELS,
    build_crash_report,
    crash_dump_path,
    crash_scope,
    default_crash_dir,
    write_crash_report,
)


class TestLogger:
    def test_records_carry_level_message_and_fields(self):
        log = Logger(deterministic=True)
        record = log.info("executor.flow_start", design="ctrl", stages=4)
        assert record.level == "info"
        assert record.message == "executor.flow_start"
        assert record.fields == {"design": "ctrl", "stages": 4}
        assert record.seq == 0
        assert record.time == 0.0

    def test_ring_buffer_is_bounded(self):
        log = Logger(capacity=8, deterministic=True)
        for i in range(20):
            log.debug("tick", i=i)
        tail = log.tail()
        assert len(tail) == 8
        # Oldest records fell off the front; seq numbers keep counting.
        assert [r.fields["i"] for r in tail] == list(range(12, 20))
        assert tail[-1].seq == 19

    def test_tail_n_returns_most_recent(self):
        log = Logger(deterministic=True)
        for i in range(5):
            log.debug("tick", i=i)
        assert [r.fields["i"] for r in log.tail(2)] == [3, 4]

    def test_level_threshold_filters(self):
        log = Logger(deterministic=True, level="warn")
        assert log.debug("quiet") is None
        assert log.info("quiet") is None
        assert log.warn("loud") is not None
        assert log.error("loud") is not None
        assert len(log.tail()) == 2

    def test_disabled_logger_records_nothing(self):
        log = Logger(deterministic=True, enabled=False)
        assert log.info("nope") is None
        assert log.tail() == []

    def test_global_logger_starts_disabled(self):
        assert get_logger().enabled is False

    def test_span_correlation(self):
        tracer = Tracer(deterministic=True)
        log = Logger(deterministic=True)
        with scoped(tracer=tracer, log=log):
            outside = log.info("outside")
            with tracer.span("work") as span:
                inside = log.info("inside")
        assert outside.span_id is None
        assert inside.span_id == span.span_id

    def test_deterministic_clock_is_private(self):
        # The logger's tick clock must not advance the tracer's.
        tracer = Tracer(deterministic=True)
        log = Logger(deterministic=True)
        with scoped(tracer=tracer, log=log):
            log.info("one")
            log.info("two")
            with tracer.span("work"):
                pass
        assert tracer.spans[0].start == 0.0

    def test_reset_clears_records_and_seq(self):
        log = Logger(deterministic=True)
        log.info("x")
        log.reset()
        assert log.tail() == []
        assert log.info("y").seq == 0

    def test_bad_capacity_and_level_rejected(self):
        with pytest.raises(ValueError):
            Logger(capacity=0)
        with pytest.raises(ValueError):
            Logger(level="shout")

    def test_levels_are_ordered(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warn"] < LEVELS["error"]

    def test_record_to_dict_sorts_fields(self):
        log = Logger(deterministic=True)
        record = log.info("m", zebra=1, alpha=2)
        assert list(record.to_dict()["fields"]) == ["alpha", "zebra"]


class TestCrashReport:
    def test_build_report_shape(self):
        tracer = Tracer(deterministic=True)
        log = Logger(deterministic=True)
        registry = MetricsRegistry()
        with scoped(tracer=tracer, metrics=registry, log=log):
            log.info("before")
            doc = build_crash_report(
                "unit", 7, logger=log, tracer=tracer, metrics=registry
            )
        assert doc["schema"] == CRASH_SCHEMA
        assert doc["component"] == "unit"
        assert doc["seed"] == 7
        assert doc["deterministic"] is True
        assert [r["message"] for r in doc["records"]] == ["before"]
        assert "exception" not in doc

    def test_open_span_stack_survives_unwinding(self):
        # Span context managers pop in `finally` during unwinding, so the
        # stack must be captured keyed by exception identity.
        tracer = Tracer(deterministic=True)
        log = Logger(deterministic=True)
        registry = MetricsRegistry()
        with scoped(tracer=tracer, metrics=registry, log=log):
            try:
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        raise RuntimeError("boom")
            except RuntimeError as exc:
                doc = build_crash_report(
                    "unit", 0, exc=exc,
                    logger=log, tracer=tracer, metrics=registry,
                )
        assert [s["name"] for s in doc["open_spans"]] == ["outer", "inner"]
        assert doc["exception"] == {"type": "RuntimeError", "message": "boom"}

    def test_dump_path_is_deterministic(self):
        assert crash_dump_path("d", "verify.mckp", 42) == (
            "d/crash_verify.mckp_42.json"
        )

    def test_default_dir_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_DIR", "/tmp/xyz")
        assert default_crash_dir() == "/tmp/xyz"
        monkeypatch.delenv("REPRO_CRASH_DIR")
        assert default_crash_dir().endswith("crashes")

    def test_write_report_sorted_keys(self, tmp_path):
        doc = {"schema": CRASH_SCHEMA, "component": "c", "seed": 1, "b": 2, "a": 1}
        path = write_crash_report(doc, str(tmp_path))
        text = open(path).read()
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text)["component"] == "c"

    def test_crash_scope_noop_when_logger_disabled(self, tmp_path, capsys):
        # Global logger is disabled by default: no dump, exception intact.
        with pytest.raises(RuntimeError):
            with crash_scope("unit", 0, directory=str(tmp_path)):
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_crash_scope_dumps_and_reraises(self, tmp_path, capsys):
        log = Logger(deterministic=True)
        with scoped(
            tracer=Tracer(deterministic=True),
            metrics=MetricsRegistry(),
            log=log,
        ):
            log.info("last words", n=1)
            with pytest.raises(RuntimeError):
                with crash_scope("unit", 9, directory=str(tmp_path)):
                    raise RuntimeError("boom")
        path = tmp_path / "crash_unit_9.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["exception"]["type"] == "RuntimeError"
        assert doc["records"][-1]["message"] == "last words"
        err = capsys.readouterr().err
        assert "seed=9" in err and str(path) in err

    def test_crash_scope_happy_path_writes_nothing(self, tmp_path):
        with scoped(
            tracer=Tracer(deterministic=True),
            metrics=MetricsRegistry(),
            log=Logger(deterministic=True),
        ):
            with crash_scope("unit", 0, directory=str(tmp_path)):
                pass
        assert list(tmp_path.iterdir()) == []


def _failing_executor_run(directory):
    """One tick-clock executor run with a forced internal exception."""
    vm = VMConfig(
        name="gp.4x",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=4,
        memory_gb=16.0,
        price_per_hour=0.2,
    )
    plan = DeploymentPlan(design="crash")
    plan.add(EDAStage.SYNTHESIS, vm, 10.0)
    executor = PlanExecutor(profile=FaultProfile.calm(), policy=ExecutionPolicy())
    executor._run_stage = lambda *a, **k: (_ for _ in ()).throw(
        RuntimeError("forced")
    )
    tracer = Tracer(deterministic=True)
    log = Logger(deterministic=True)
    with scoped(tracer=tracer, metrics=MetricsRegistry(), log=log):
        with pytest.raises(RuntimeError):
            # crash_scope inside execute() writes to $REPRO_CRASH_DIR.
            executor.execute(plan, deadline_seconds=100.0, seed=7)
    return directory / "crash_executor_7.json"


class TestExecutorCrashDumpDeterminism:
    def test_same_seed_dumps_are_byte_identical(self, tmp_path, monkeypatch, capsys):
        # Acceptance: a forced executor exception under tick-clock mode
        # produces a crash dump whose record sequence and open-span stack
        # are byte-identical across two runs with the same seed.
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        monkeypatch.setenv("REPRO_CRASH_DIR", str(dir_a))
        path_a = _failing_executor_run(dir_a)
        monkeypatch.setenv("REPRO_CRASH_DIR", str(dir_b))
        path_b = _failing_executor_run(dir_b)
        bytes_a = path_a.read_bytes()
        bytes_b = path_b.read_bytes()
        assert bytes_a == bytes_b
        doc = json.loads(bytes_a)
        assert doc["schema"] == CRASH_SCHEMA
        assert doc["exception"] == {"type": "RuntimeError", "message": "forced"}
        assert [s["name"] for s in doc["open_spans"]] == ["execute"]
        assert [r["message"] for r in doc["records"]] == ["executor.flow_start"]
