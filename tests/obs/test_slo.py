"""SLO engine: spec validation, burn math, windows, byte-stable reports."""

import json

import pytest

from repro.obs.slo import (
    SLO_SCHEMA,
    SLOSpecError,
    burn_sparkline,
    evaluate_slo,
    load_slo_spec,
    parse_slo_spec,
)
from repro.obs.store import RunRecord
from repro.service import ServiceConfig, run_session, seeded_job_mix


def _spec_doc(**overrides):
    doc = {
        "schema": SLO_SCHEMA,
        "name": "test-slo",
        "kind": "service",
        "objectives": [
            {
                "name": "hit-rate",
                "type": "ratio",
                "label": "met_deadline",
                "objective": 0.5,
            },
            {
                "name": "p99",
                "type": "latency",
                "metric": "service.latency_ticks",
                "percentile": 99.0,
                "threshold": 1000.0,
            },
            {
                "name": "spend",
                "type": "cost",
                "metric": "executor.billed_cost",
                "budget": 10.0,
            },
        ],
    }
    doc.update(overrides)
    return doc


def _records(seed=42, jobs=12):
    service = run_session(
        seeded_job_mix(seed, jobs), ServiceConfig(workers=2)
    ).service
    return service.records("2026-01-01T00:00:00Z")


class TestSpecValidation:
    def test_valid_spec_parses(self):
        spec = parse_slo_spec(_spec_doc())
        assert spec.name == "test-slo"
        assert [o.type for o in spec.objectives] == [
            "ratio", "latency", "cost",
        ]

    def test_schema_mismatch_is_named_error(self):
        with pytest.raises(SLOSpecError, match="schema mismatch"):
            parse_slo_spec(_spec_doc(schema="repro-slo/0"))

    def test_ratio_objective_must_leave_error_budget(self):
        doc = _spec_doc()
        doc["objectives"][0]["objective"] = 1.0
        with pytest.raises(SLOSpecError, match=r"\[0, 1\)"):
            parse_slo_spec(doc)

    def test_unknown_objective_type_rejected(self):
        doc = _spec_doc()
        doc["objectives"][0]["type"] = "availability"
        with pytest.raises(SLOSpecError, match="unknown type"):
            parse_slo_spec(doc)

    def test_unknown_fields_rejected(self):
        doc = _spec_doc()
        doc["objectives"][0]["threshold_ticks"] = 5
        with pytest.raises(SLOSpecError, match="unknown fields"):
            parse_slo_spec(doc)

    def test_duplicate_objective_names_rejected(self):
        doc = _spec_doc()
        doc["objectives"][1]["name"] = "hit-rate"
        with pytest.raises(SLOSpecError, match="unique"):
            parse_slo_spec(doc)

    def test_nonpositive_threshold_and_budget_rejected(self):
        doc = _spec_doc()
        doc["objectives"][1]["threshold"] = 0.0
        with pytest.raises(SLOSpecError, match="positive"):
            parse_slo_spec(doc)
        doc = _spec_doc()
        doc["objectives"][2]["budget"] = -1.0
        with pytest.raises(SLOSpecError, match="positive"):
            parse_slo_spec(doc)

    def test_load_missing_file_is_named_error(self, tmp_path):
        with pytest.raises(SLOSpecError, match="cannot read"):
            load_slo_spec(str(tmp_path / "absent.json"))

    def test_load_bad_json_is_named_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SLOSpecError, match="not valid JSON"):
            load_slo_spec(str(path))


class TestEvaluation:
    def test_burn_above_one_iff_violated(self):
        spec = parse_slo_spec(_spec_doc())
        report = evaluate_slo(spec, _records())
        for result in report.results:
            if result.burn is not None:
                assert (result.burn > 1.0) == (not result.passed)

    def test_tiny_budget_violates(self):
        doc = _spec_doc()
        doc["objectives"][2]["budget"] = 1e-9
        report = evaluate_slo(parse_slo_spec(doc), _records())
        spend = next(r for r in report.results if r.name == "spend")
        assert not spend.passed and spend.burn > 1.0
        assert report.violated

    def test_no_data_objective_passes_vacuously(self):
        doc = _spec_doc()
        doc["objectives"][0]["label"] = "never_recorded_label"
        report = evaluate_slo(parse_slo_spec(doc), _records())
        hit = next(r for r in report.results if r.name == "hit-rate")
        assert hit.no_data and hit.passed and hit.burn is None

    def test_empty_store_passes_vacuously(self):
        report = evaluate_slo(parse_slo_spec(_spec_doc()), [])
        assert report.records == 0
        assert not report.violated
        assert all(r.no_data for r in report.results)

    def test_windows_partition_records(self):
        import math

        spec = parse_slo_spec(_spec_doc())
        records = _records()
        report = evaluate_slo(spec, records, window=5)
        for result in report.results:
            assert len(result.windows) == math.ceil(report.records / 5)

    def test_report_json_is_byte_stable(self):
        spec = parse_slo_spec(_spec_doc())
        records = _records()
        first = evaluate_slo(spec, records, window=4)
        second = evaluate_slo(spec, records, window=4)
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_same_seed_sessions_evaluate_identically(self):
        spec = parse_slo_spec(_spec_doc())
        a = evaluate_slo(spec, _records(), window=3)
        b = evaluate_slo(spec, _records(), window=3)
        assert a.to_json() == b.to_json()

    def test_kind_filter_excludes_other_records(self):
        spec = parse_slo_spec(_spec_doc(kind="bench"))
        report = evaluate_slo(spec, _records())
        assert report.records == 0


class TestSparkline:
    def test_burn_one_is_full_block(self):
        assert burn_sparkline([1.0]) == "█"
        assert burn_sparkline([0.0]) == "▁"
        assert burn_sparkline([None]) == "·"
        assert burn_sparkline([5.0]) == "█"  # clamped

    def test_length_matches_windows(self):
        assert len(burn_sparkline([0.1, 0.5, None, 1.0])) == 4


class TestReportIntegration:
    def test_build_report_carries_slo_and_gates_ok(self):
        from repro.obs.report import build_report

        records = _records()
        doc = _spec_doc()
        doc["objectives"][2]["budget"] = 1e-9  # force a violation
        report = build_report(
            records, slo_spec=parse_slo_spec(doc), slo_window=4
        )
        assert report.slo is not None and report.slo.violated
        assert not report.ok

    def test_render_text_includes_slo_section(self):
        from repro.obs.report import build_report, render_text

        report = build_report(
            _records(), slo_spec=parse_slo_spec(_spec_doc())
        )
        text = render_text(report)
        assert "SLO 'test-slo'" in text

    def test_render_html_includes_slo_section(self):
        from repro.obs.report import build_report, render_html

        report = build_report(
            _records(), slo_spec=parse_slo_spec(_spec_doc()), slo_window=4
        )
        html = render_html(report)
        assert "SLO: test-slo" in html
