"""Exporter tests: JSON tree, structural tree, Chrome trace, text tree."""

import json

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    TRACE_SCHEMA,
    render_metrics,
    render_tree,
    span_tree,
    structural_tree,
    to_chrome_trace,
    to_json_doc,
)


def _sample_tracer():
    tracer = Tracer(deterministic=True)
    with tracer.span("root", design="fpu"):
        with tracer.span("child.a", stage="synthesis"):
            tracer.event("fault", kind="boot")
        with tracer.span("child.b"):
            pass
    return tracer


class TestSpanTree:
    def test_nesting_and_fields(self):
        tree = span_tree(_sample_tracer().spans)
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "root"
        assert root["tags"] == {"design": "fpu"}
        assert [c["name"] for c in root["children"]] == ["child.a", "child.b"]
        child = root["children"][0]
        assert child["events"][0]["name"] == "fault"
        assert child["duration"] >= 0

    def test_structural_tree_has_no_timings(self):
        tree = structural_tree(_sample_tracer().spans)
        root = tree[0]
        assert set(root) == {"name", "tags", "events", "children"}
        assert root["tags"] == ["design"]  # keys only, sorted
        assert root["children"][0]["events"] == ["fault"]

    def test_structural_tree_identical_across_runs(self):
        assert structural_tree(_sample_tracer().spans) == structural_tree(
            _sample_tracer().spans
        )


class TestJsonDoc:
    def test_schema_and_metrics(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        doc = to_json_doc(_sample_tracer().spans, reg.snapshot())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["metrics"]["counters"] == {"n": 2.0}
        json.dumps(doc)  # serializable

    def test_metrics_optional(self):
        doc = to_json_doc(_sample_tracer().spans)
        assert "metrics" not in doc


class TestChromeTrace:
    def test_trace_event_format(self):
        doc = to_chrome_trace(_sample_tracer().spans)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in complete] == ["root", "child.a", "child.b"]
        assert len(instants) == 1 and instants[0]["s"] == "t"
        for event in complete:
            assert {"name", "ph", "pid", "tid", "ts", "dur", "args"} <= set(
                event
            )
            assert event["ts"] >= 0 and event["dur"] >= 0
        json.dumps(doc)

    def test_microsecond_conversion(self):
        tracer = Tracer(deterministic=True)  # ticks are 1.0 s apart
        with tracer.span("one.tick"):
            pass
        event = to_chrome_trace(tracer.spans)["traceEvents"][0]
        assert event["ts"] == 0.0
        assert event["dur"] == 1e6

    def test_one_complete_event_per_span(self):
        tracer = _sample_tracer()
        with tracer.span("late"):
            pass
        tracer.spans[-1].end = None  # simulate a span that never closed
        doc = to_chrome_trace(tracer.spans)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans) == 4
        # Unfinished spans still export, with a zero duration.
        assert complete[-1]["name"] == "late" and complete[-1]["dur"] == 0.0

    def test_json_roundtrip_is_stable(self):
        doc = to_chrome_trace(_sample_tracer().spans)
        text = json.dumps(doc, sort_keys=True)
        assert json.dumps(json.loads(text), sort_keys=True) == text

    def test_tick_clock_output_identical_across_runs(self):
        one = json.dumps(
            to_chrome_trace(_sample_tracer().spans), sort_keys=True
        )
        two = json.dumps(
            to_chrome_trace(_sample_tracer().spans), sort_keys=True
        )
        assert one == two

    def test_span_tags_land_in_args(self):
        doc = to_chrome_trace(_sample_tracer().spans)
        root = [e for e in doc["traceEvents"] if e["name"] == "root"][0]
        assert root["args"].get("design") == "fpu"


class TestTextRenderers:
    def test_render_tree_shape(self):
        text = render_tree(_sample_tracer().spans, unit="ms")
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert any(line.startswith("  child.a") for line in lines)
        assert any("* fault" in line for line in lines)
        assert "design=fpu" in lines[0]

    def test_render_metrics_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        text = render_metrics(reg.snapshot())
        assert text == render_metrics(reg.snapshot())
        assert text.index("a") < text.index("b")
        assert "histogram" in text and "gauge" in text


class TestTraceContextExport:
    def test_span_tree_carries_trace_ids(self):
        tracer = Tracer(deterministic=True)
        with tracer.trace("00decafc0ffee000"):
            with tracer.span("job"):
                with tracer.span("stage"):
                    pass
        tree = span_tree(tracer.spans)
        root = tree[0]
        assert root["trace_id"] == "00decafc0ffee000"
        assert root["children"][0]["trace_id"] == "00decafc0ffee000"
        assert root["span_uid"] != root["children"][0]["span_uid"]

    def test_structural_tree_ignores_trace_ids(self):
        """Adding trace context must not disturb the golden shape."""
        tracer = Tracer(deterministic=True)
        with tracer.trace("00decafc0ffee000"):
            with tracer.span("job", design="fpu"):
                pass
        bare = Tracer(deterministic=True)
        with bare.span("job", design="fpu"):
            pass
        assert structural_tree(tracer.spans) == structural_tree(bare.spans)


class TestOpenMetrics:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("service.jobs", region="east", priority="high").inc(3)
        reg.gauge("service.queue_depth").set(4.0)
        h = reg.histogram("service.latency_ticks", job_kind="execute")
        for v in (0.0, 3.0, 6.5, 10.0):
            h.observe(v)
        return reg.snapshot()

    def test_export_is_byte_stable_and_terminated(self):
        from repro.obs.export import to_openmetrics

        snap = self._snapshot()
        text = to_openmetrics(snap)
        assert text == to_openmetrics(snap)
        assert text.endswith("# EOF\n")

    def test_counters_get_total_suffix_with_labels(self):
        from repro.obs.export import to_openmetrics

        text = to_openmetrics(self._snapshot())
        assert (
            'service_jobs_total{priority="high",region="east"} 3' in text
        )
        assert "# TYPE service_jobs counter" in text

    def test_histogram_buckets_are_cumulative(self):
        from repro.obs.export import parse_openmetrics, to_openmetrics

        families = parse_openmetrics(to_openmetrics(self._snapshot()))
        hist = families["service_latency_ticks"]
        assert hist["type"] == "histogram"
        buckets = [
            (labels, value)
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        ]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 4.0  # +Inf bucket equals count

    def test_parse_rejects_missing_eof(self):
        import pytest

        from repro.obs.export import (
            OpenMetricsError,
            parse_openmetrics,
            to_openmetrics,
        )

        text = to_openmetrics(self._snapshot())
        with pytest.raises(OpenMetricsError, match="EOF"):
            parse_openmetrics(text.replace("# EOF\n", ""))

    def test_roundtrip_scalar_values(self):
        from repro.obs.export import parse_openmetrics, to_openmetrics

        families = parse_openmetrics(to_openmetrics(self._snapshot()))
        gauge = families["service_queue_depth"]
        assert gauge["type"] == "gauge"
        [(name, labels, value)] = gauge["samples"]
        assert name == "service_queue_depth"
        assert not labels  # unlabeled sample
        assert value == 4.0
