"""Tests for the RuntimeGCN model (architecture of Figure 4)."""

import numpy as np
import pytest

from repro.gnn import RuntimeGCN
from repro.gnn.graph import PreparedGraph, normalized_adjacency
from repro.netlist import aig_to_graph, benchmarks


@pytest.fixture(scope="module")
def graph():
    return PreparedGraph(aig_to_graph(benchmarks.build("ctrl", 0.3)))


class TestArchitecture:
    def test_paper_defaults(self):
        model = RuntimeGCN(feature_dim=8)
        assert model.gcn1.weight.shape == (8, 256)
        assert model.gcn2.weight.shape == (256, 128)
        assert model.fc.weight.shape == (128 + model.meta_dim, 128)
        assert model.head.weight.shape == (128, 4)

    def test_forward_output_shape(self, graph):
        model = RuntimeGCN(feature_dim=graph.features.shape[1], hidden1=16, hidden2=8, fc_units=8)
        out = model.forward(graph)
        assert out.shape == (4,)
        assert np.all(np.isfinite(out))

    def test_num_parameters(self):
        model = RuntimeGCN(feature_dim=8, hidden1=4, hidden2=3, fc_units=2)
        # gcn1: 8*4*2 + 4; gcn2: 4*3*2 + 3; fc: (3+meta)*2 + 2; head: 2*4 + 4
        meta = model.meta_dim
        expected = (8 * 4 * 2 + 4) + (4 * 3 * 2 + 3) + ((3 + meta) * 2 + 2) + (2 * 4 + 4)
        assert model.num_parameters() == expected


class TestGradients:
    def test_full_model_gradcheck(self, graph):
        model = RuntimeGCN(
            feature_dim=graph.features.shape[1], hidden1=10, hidden2=6, fc_units=5, seed=3
        )
        target = np.array([1.0, 0.5, 0.2, 0.1])

        def loss():
            return float(np.mean((model.forward(graph) - target) ** 2))

        pred = model.forward(graph)
        model.zero_grad()
        model.backward(2.0 * (pred - target) / 4)
        rng = np.random.default_rng(0)
        for p in model.parameters:
            flat = p.value.ravel()
            gflat = p.grad.ravel()
            for i in rng.choice(flat.size, size=min(4, flat.size), replace=False):
                orig = flat[i]
                eps = 1e-6
                flat[i] = orig + eps
                lp = loss()
                flat[i] = orig - eps
                lm = loss()
                flat[i] = orig
                numeric = (lp - lm) / (2 * eps)
                denom = abs(numeric) + abs(gflat[i]) + 1e-9
                assert abs(numeric - gflat[i]) / denom < 1e-4


class TestStateDict:
    def test_roundtrip(self, graph):
        m1 = RuntimeGCN(feature_dim=graph.features.shape[1], hidden1=8, hidden2=4, fc_units=4, seed=1)
        m2 = RuntimeGCN(feature_dim=graph.features.shape[1], hidden1=8, hidden2=4, fc_units=4, seed=2)
        assert not np.allclose(m1.forward(graph), m2.forward(graph))
        m2.load_state_dict(m1.state_dict())
        assert np.allclose(m1.forward(graph), m2.forward(graph))

    def test_shape_mismatch_rejected(self, graph):
        m1 = RuntimeGCN(feature_dim=8, hidden1=8, hidden2=4, fc_units=4)
        m2 = RuntimeGCN(feature_dim=8, hidden1=6, hidden2=4, fc_units=4)
        with pytest.raises(ValueError):
            m2.load_state_dict(m1.state_dict())


class TestNormalizedAdjacency:
    def test_rows_average_neighbors(self):
        sample = aig_to_graph(benchmarks.build("adder", 0.2))
        a_hat = normalized_adjacency(sample)
        sums = np.asarray(a_hat.sum(axis=1)).ravel()
        import numpy as np2

        indeg = np.bincount(sample.edges[:, 1], minlength=sample.num_nodes)
        for v in range(sample.num_nodes):
            if indeg[v] > 0:
                assert sums[v] == pytest.approx(1.0)
            else:
                assert sums[v] == 0.0

    def test_direction_preserved(self):
        """AND nodes aggregate from fanins, not vice versa (DAG property)."""
        sample = aig_to_graph(benchmarks.build("adder", 0.2))
        a_hat = normalized_adjacency(sample).toarray()
        # inputs have zero in-degree -> zero rows
        aig = benchmarks.build("adder", 0.2)
        for node in aig.inputs:
            assert np.all(a_hat[node] == 0)

    def test_meta_vector(self):
        g = PreparedGraph(aig_to_graph(benchmarks.build("ctrl", 0.3)))
        assert g.meta_vector.shape == (5,)
        assert g.meta_vector[0] == pytest.approx(np.log(g.num_nodes))
        assert g.meta_vector[3] > 0  # max fanout present
