"""Gradient checks and behavior tests for the GNN layers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn.layers import DenseLayer, GCNLayer, Parameter, Readout


def finite_diff_check(params, loss_fn, eps=1e-6, samples=6, tol=1e-4):
    """Compare analytic grads (already accumulated) to finite differences."""
    rng = np.random.default_rng(0)
    worst = 0.0
    for p in params:
        flat = p.value.ravel()
        gflat = p.grad.ravel()
        idxs = rng.choice(flat.size, size=min(samples, flat.size), replace=False)
        for i in idxs:
            orig = flat[i]
            flat[i] = orig + eps
            lp = loss_fn()
            flat[i] = orig - eps
            lm = loss_fn()
            flat[i] = orig
            numeric = (lp - lm) / (2 * eps)
            denom = abs(numeric) + abs(gflat[i]) + 1e-9
            worst = max(worst, abs(numeric - gflat[i]) / denom)
    assert worst < tol, worst


@pytest.fixture()
def small_graph():
    rng = np.random.default_rng(1)
    n, f = 7, 4
    h = rng.normal(size=(n, f))
    edges = [(0, 1), (1, 2), (2, 3), (0, 3), (4, 5), (5, 6), (3, 6)]
    import numpy as np2

    rows = [d for _s, d in edges]
    cols = [s for s, _d in edges]
    indeg = np.bincount(rows, minlength=n).astype(float)
    vals = [1.0 / indeg[d] for d in rows]
    a_hat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    return h, a_hat


class TestGCNLayer:
    def test_forward_shape(self, small_graph):
        h, a_hat = small_graph
        layer = GCNLayer(4, 5, np.random.default_rng(0))
        out = layer.forward(h, a_hat)
        assert out.shape == (7, 5)
        assert np.all(out >= 0)  # relu

    def test_gradcheck(self, small_graph):
        h, a_hat = small_graph
        layer = GCNLayer(4, 3, np.random.default_rng(0))
        target = np.random.default_rng(2).normal(size=(7, 3))

        def loss():
            out = layer.forward(h, a_hat)
            return float(np.sum((out - target) ** 2))

        out = layer.forward(h, a_hat)
        for p in layer.parameters:
            p.zero_grad()
        layer.backward(2.0 * (out - target))
        finite_diff_check(layer.parameters, loss)

    def test_input_gradient(self, small_graph):
        """Gradient w.r.t. the input H is exact too."""
        h, a_hat = small_graph
        layer = GCNLayer(4, 3, np.random.default_rng(0), activation="linear")
        target = np.zeros((7, 3))
        out = layer.forward(h, a_hat)
        dh = layer.backward(2.0 * (out - target))
        eps = 1e-6
        rng = np.random.default_rng(3)
        for _ in range(6):
            i = rng.integers(h.shape[0])
            j = rng.integers(h.shape[1])
            h2 = h.copy()
            h2[i, j] += eps
            lp = float(np.sum(layer.forward(h2, a_hat) ** 2))
            h2[i, j] -= 2 * eps
            lm = float(np.sum(layer.forward(h2, a_hat) ** 2))
            numeric = (lp - lm) / (2 * eps)
            assert numeric == pytest.approx(dh[i, j], rel=1e-3, abs=1e-6)

    def test_bad_activation(self):
        with pytest.raises(ValueError):
            GCNLayer(2, 2, np.random.default_rng(0), activation="tanh")


class TestDenseLayer:
    def test_gradcheck(self):
        layer = DenseLayer(5, 3, np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=5)
        target = np.array([1.0, -1.0, 0.5])

        def loss():
            return float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        for p in layer.parameters:
            p.zero_grad()
        layer.backward(2.0 * (out - target))
        finite_diff_check(layer.parameters, loss)

    def test_linear_activation_passes_negative(self):
        layer = DenseLayer(2, 2, np.random.default_rng(0), activation="linear")
        layer.weight.value[:] = -np.eye(2)
        layer.bias.value[:] = 0
        out = layer.forward(np.array([1.0, 2.0]))
        assert out[0] < 0


class TestReadout:
    def test_sum_and_mean(self):
        h = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(Readout("sum").forward(h), [4.0, 6.0])
        assert np.allclose(Readout("mean").forward(h), [2.0, 3.0])

    def test_backward_shapes(self):
        h = np.ones((5, 3))
        r = Readout("mean")
        r.forward(h)
        grad = r.backward(np.array([1.0, 2.0, 3.0]))
        assert grad.shape == (5, 3)
        assert np.allclose(grad[0], [0.2, 0.4, 0.6])

    def test_sum_backward_tiles(self):
        h = np.ones((4, 2))
        r = Readout("sum")
        r.forward(h)
        grad = r.backward(np.array([1.0, 2.0]))
        assert np.allclose(grad, np.tile([1.0, 2.0], (4, 1)))

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            Readout("max")


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)
        assert p.shape == (2, 2)
