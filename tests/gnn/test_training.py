"""Tests for the optimizers, dataset handling, and training loop."""

import numpy as np
import pytest

from repro.gnn import (
    Adam,
    RuntimeGCN,
    RuntimeSample,
    SGD,
    TrainConfig,
    evaluate,
    split_by_design,
    train,
)
from repro.gnn.layers import Parameter
from repro.netlist import aig_to_graph, benchmarks


def make_samples(designs=("ctrl", "adder", "voter", "router", "dec"), variants=3):
    """Tiny synthetic dataset: runtime = size-derived closed form."""
    samples = []
    for design in designs:
        for v in range(variants):
            aig = benchmarks.build(design, 0.2 + 0.1 * v)
            graph = aig_to_graph(aig)
            base = graph.num_nodes ** 1.2
            runtimes = np.array([base, base / 1.7, base / 2.6, base / 3.2])
            samples.append(RuntimeSample(graph=graph, runtimes=runtimes, design=design))
    return samples


class TestOptimizers:
    def test_adam_minimizes_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.zero_grad()
            p.grad[:] = 2 * p.value
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-2)

    def test_sgd_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad[:] = 2.0
        opt.step()
        assert p.value[0] == pytest.approx(0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        opt = Adam([p])
        p.grad += 1
        opt.zero_grad()
        assert np.all(p.grad == 0)

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0)
        with pytest.raises(ValueError):
            SGD([], lr=-1)


class TestDataset:
    def test_runtime_sample_validation(self):
        graph = aig_to_graph(benchmarks.build("ctrl", 0.2))
        with pytest.raises(ValueError):
            RuntimeSample(graph=graph, runtimes=np.array([1.0, 2.0]), design="x")
        with pytest.raises(ValueError):
            RuntimeSample(graph=graph, runtimes=np.array([1, 2, 3, -1.0]), design="x")

    def test_speedups(self):
        graph = aig_to_graph(benchmarks.build("ctrl", 0.2))
        s = RuntimeSample(
            graph=graph, runtimes=np.array([100.0, 50.0, 25.0, 12.5]), design="x"
        )
        assert np.allclose(s.speedups, [1, 2, 4, 8])

    def test_split_by_design_no_leakage(self):
        samples = make_samples()
        train_set, test_set = split_by_design(samples, test_fraction=0.2, seed=1)
        train_designs = {s.design for s in train_set}
        test_designs = {s.design for s in test_set}
        assert not (train_designs & test_designs)
        assert len(train_set) + len(test_set) == len(samples)

    def test_split_deterministic(self):
        samples = make_samples()
        a = split_by_design(samples, 0.2, seed=3)
        b = split_by_design(samples, 0.2, seed=3)
        assert [s.design for s in a[1]] == [s.design for s in b[1]]

    def test_split_needs_two_designs(self):
        samples = make_samples(designs=("ctrl",))
        with pytest.raises(ValueError):
            split_by_design(samples, 0.2)

    def test_split_fraction_validation(self):
        with pytest.raises(ValueError):
            split_by_design(make_samples(), 0.0)


class TestTrainingLoop:
    def test_loss_decreases(self):
        samples = make_samples()
        model = RuntimeGCN(
            feature_dim=samples[0].graph.feature_dim, hidden1=16, hidden2=8, fc_units=8
        )
        result = train(model, samples, TrainConfig(epochs=30, lr=3e-3))
        assert result.losses[-1] < result.losses[0]

    def test_learns_size_law(self):
        """On a size-driven synthetic task the model reaches low error."""
        samples = make_samples(variants=4)
        model = RuntimeGCN(
            feature_dim=samples[0].graph.feature_dim, hidden1=24, hidden2=12, fc_units=8
        )
        result = train(model, samples, TrainConfig(epochs=120, lr=3e-3))
        ev = evaluate(model, samples, result.target_offset, result.target_std)
        assert ev.mean_error < 0.12
        assert ev.accuracy > 88.0

    def test_empty_training_set_rejected(self):
        model = RuntimeGCN(feature_dim=8, hidden1=4, hidden2=4, fc_units=4)
        with pytest.raises(ValueError):
            train(model, [])
        with pytest.raises(ValueError):
            evaluate(model, [])

    def test_error_histogram(self):
        samples = make_samples()
        model = RuntimeGCN(
            feature_dim=samples[0].graph.feature_dim, hidden1=8, hidden2=4, fc_units=4
        )
        result = train(model, samples, TrainConfig(epochs=5, lr=1e-3))
        ev = evaluate(model, samples, result.target_offset, result.target_std)
        hist = ev.error_histogram([0.0, 0.1, 0.2, 0.5, 1.0, 10.0])
        assert sum(hist.values()) == len(samples)
        assert all("%" in label for label in hist)

    def test_per_output_errors_shape(self):
        samples = make_samples()
        model = RuntimeGCN(
            feature_dim=samples[0].graph.feature_dim, hidden1=8, hidden2=4, fc_units=4
        )
        result = train(model, samples, TrainConfig(epochs=2, lr=1e-3))
        ev = evaluate(model, samples, result.target_offset, result.target_std)
        assert ev.per_output_error.shape == (len(samples), 4)
        assert ev.predictions.shape == (len(samples), 4)


class TestTrainingDeterminism:
    """Same shuffle seed => identical loss trajectory; different => different."""

    def _fresh_model(self, samples):
        return RuntimeGCN(
            feature_dim=samples[0].graph.feature_dim,
            hidden1=8,
            hidden2=4,
            fc_units=4,
            seed=7,
        )

    def test_same_shuffle_seed_identical_losses(self):
        samples = make_samples(designs=("ctrl", "adder"), variants=2)
        runs = []
        for _ in range(2):
            model = self._fresh_model(samples)
            result = train(
                model, samples, TrainConfig(epochs=4, lr=1e-3, shuffle_seed=5)
            )
            runs.append(result.losses)
        assert runs[0] == runs[1]

    def test_different_shuffle_seed_different_trajectory(self):
        samples = make_samples(designs=("ctrl", "adder"), variants=2)
        losses = {}
        for seed in (0, 1):
            model = self._fresh_model(samples)
            result = train(
                model, samples, TrainConfig(epochs=4, lr=1e-3, shuffle_seed=seed)
            )
            losses[seed] = result.losses
        # Per-sample updates make the trajectory order-dependent, so a
        # different shuffle must show up in the per-epoch losses.
        assert losses[0] != losses[1]

    def test_same_model_seed_identical_init(self):
        samples = make_samples(designs=("ctrl",), variants=1)
        a = self._fresh_model(samples)
        b = self._fresh_model(samples)
        for pa, pb in zip(a.parameters, b.parameters):
            assert np.array_equal(pa.value, pb.value)
