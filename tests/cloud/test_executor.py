"""Tests for the fault-tolerant plan executor.

Covers the acceptance criteria of the execution engine: fault-free runs
reproduce the plan's nominal runtime/cost exactly, the same seed yields a
byte-identical trace, distinct seeds diverge, retry exhaustion aborts the
flow cleanly, and the degradation path (K preemptions -> on-demand
fallback -> mid-flight re-plan) works end to end.  Monte-Carlo
convergence suites are marked ``chaos``.
"""

import math

import pytest

from repro.cloud import (
    ExecutionPolicy,
    ExecutionTrace,
    EventKind,
    FaultProfile,
    PlanExecutor,
    RetryPolicy,
    simulate_spot_completion_times,
)
from repro.cloud.executor import SPOT_SUFFIX, is_spot_vm
from repro.cloud.instance import InstanceFamily, VMConfig
from repro.cloud.provisioner import DeploymentPlan
from repro.cloud.spot import spot_expected_runtime
from repro.core.optimize import ConfigOption, StageOptions
from repro.eda.job import EDAStage

DISCOUNT = 0.3


def _vm(name, price, vcpus=4):
    return VMConfig(
        name=name,
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=vcpus,
        memory_gb=4.0 * vcpus,
        price_per_hour=price,
    )


def _spot_twin(vm):
    return VMConfig(
        name=vm.name + SPOT_SUFFIX,
        family=vm.family,
        vcpus=vm.vcpus,
        memory_gb=vm.memory_gb,
        price_per_hour=vm.price_per_hour * DISCOUNT,
    )


def _menus_and_plan(spot_stages=()):
    """A 4-stage plan plus full menus (on-demand + spot twin per stage).

    ``spot_stages`` selects which stages run on their spot twin.
    """
    runtimes = {
        EDAStage.SYNTHESIS: 400,
        EDAStage.PLACEMENT: 600,
        EDAStage.ROUTING: 900,
        EDAStage.STA: 200,
    }
    menus = []
    plan = DeploymentPlan(design="exec-test")
    for i, (stage, runtime) in enumerate(runtimes.items()):
        od = _vm(f"od{i}", 1.0 + 0.5 * i)
        spot = _spot_twin(od)
        options = [
            ConfigOption(vm=od, runtime_seconds=runtime, price=od.cost(runtime)),
            ConfigOption(
                vm=spot, runtime_seconds=runtime, price=spot.cost(runtime)
            ),
        ]
        menus.append(StageOptions(stage=stage, options=options))
        plan.add(stage, spot if stage in spot_stages else od, runtime)
    return plan, menus


class TestFaultFree:
    def test_reproduces_plan_exactly(self):
        plan, _ = _menus_and_plan()
        result = PlanExecutor(FaultProfile.none()).execute(
            plan, deadline_seconds=3000.0, seed=7
        )
        assert result.completed
        assert result.met_deadline
        assert result.total_time == plan.total_runtime
        assert result.total_cost == pytest.approx(plan.total_cost, rel=1e-12)
        assert result.trace.preemptions() == 0
        assert not result.replanned

    def test_trace_shape(self):
        plan, _ = _menus_and_plan()
        result = PlanExecutor(FaultProfile.none()).execute(plan, seed=0)
        trace = result.trace
        assert trace.count(EventKind.FLOW_START) == 1
        assert trace.count(EventKind.FLOW_COMPLETE) == 1
        n = len(plan.assignments)
        assert trace.count(EventKind.STAGE_START) == n
        assert trace.count(EventKind.STAGE_COMMIT) == n
        assert trace.count(EventKind.BILLED) == n
        assert [e.seq for e in trace] == list(range(len(trace)))

    def test_spot_without_interrupts_runs_nominal(self):
        plan, _ = _menus_and_plan(spot_stages={EDAStage.ROUTING})
        result = PlanExecutor(FaultProfile.none()).execute(plan, seed=0)
        assert result.total_time == plan.total_runtime
        assert result.total_cost == pytest.approx(plan.total_cost, rel=1e-12)

    def test_lean_mode_matches_recorded_totals(self):
        plan, _ = _menus_and_plan(spot_stages={EDAStage.PLACEMENT})
        profile = FaultProfile.preemption_heavy()
        full = PlanExecutor(profile).execute(plan, seed=11)
        lean = PlanExecutor(profile).execute(plan, seed=11, record_events=False)
        assert lean.total_time == full.total_time
        assert lean.total_cost == pytest.approx(full.total_cost, rel=1e-12)
        assert lean.trace.events == [] and lean.segments == []
        assert full.trace.events


HEAVY = FaultProfile(
    spot_interrupt_rate_per_hour=120.0,
    checkpoint_interval_seconds=60.0,
)


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        plan, menus = _menus_and_plan(
            spot_stages={EDAStage.PLACEMENT, EDAStage.ROUTING}
        )
        runs = [
            PlanExecutor(HEAVY).execute(
                plan, deadline_seconds=20_000.0, seed=42, stage_options=menus
            )
            for _ in range(2)
        ]
        assert runs[0].trace.events == runs[1].trace.events
        assert runs[0].trace.render() == runs[1].trace.render()
        assert runs[0].trace.to_jsonl() == runs[1].trace.to_jsonl()
        assert runs[0].summary() == runs[1].summary()

    def test_distinct_seeds_distinct_preemption_schedules(self):
        plan, _ = _menus_and_plan(spot_stages={EDAStage.ROUTING})
        executor = PlanExecutor(HEAVY, ExecutionPolicy.unbounded())
        schedules = set()
        for seed in range(6):
            result = executor.execute(plan, seed=seed)
            schedules.add(
                tuple(
                    e.time for e in result.trace.of_kind(EventKind.PREEMPTION)
                )
            )
        assert len(schedules) >= 5

    def test_trace_disabled_record_is_noop(self):
        trace = ExecutionTrace(seed=0, enabled=False)
        trace.record(1.0, EventKind.FLOW_START)
        assert len(trace) == 0


class TestRetryBackoff:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=10,
            backoff_base_seconds=2.0,
            backoff_multiplier=2.0,
            backoff_max_seconds=30.0,
            jitter_fraction=0.0,
        )
        delays = [policy.backoff_seconds(a, 0.0) for a in range(6)]
        assert delays == [2.0, 4.0, 8.0, 16.0, 30.0, 30.0]
        # Jitter only ever lengthens the sleep, by at most the fraction.
        jittered = RetryPolicy(jitter_fraction=0.5).backoff_seconds(0, 1.0)
        assert 2.0 <= jittered <= 3.0

    def test_retry_exhaustion_aborts_flow(self):
        plan, _ = _menus_and_plan()
        profile = FaultProfile(boot_failure_prob=1.0)
        policy = ExecutionPolicy(retry=RetryPolicy(max_retries=2))
        result = PlanExecutor(profile, policy).execute(
            plan, deadline_seconds=3000.0, seed=0
        )
        assert not result.completed
        assert not result.met_deadline
        trace = result.trace
        stage0 = plan.assignments[0].stage.value
        assert trace.count(EventKind.BOOT_FAILURE, stage0) == 3
        assert trace.count(EventKind.BACKOFF, stage0) == 2
        assert trace.count(EventKind.STAGE_ABORT) == 1
        assert trace.count(EventKind.FLOW_FAIL) == 1
        # Backoff sleeps are real elapsed time, carried into the abort.
        assert result.total_time > 0.0
        assert result.total_time == trace.events[-1].time

    def test_transient_errors_recover(self):
        plan, _ = _menus_and_plan()
        profile = FaultProfile(boot_failure_prob=0.3, api_error_prob=0.3)
        result = PlanExecutor(profile).execute(plan, seed=3)
        assert result.completed
        # Recovery costs wall-clock (backoff) but never money.
        assert result.total_time >= plan.total_runtime
        assert result.total_cost == pytest.approx(plan.total_cost, rel=1e-12)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_preemptions_per_stage=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(spot_discount=0.0)
        with pytest.raises(ValueError):
            FaultProfile(boot_failure_prob=1.5)


#: A rate that preempts a 60s checkpoint segment with probability ~0.98.
RECLAIM_STORM = FaultProfile(
    spot_interrupt_rate_per_hour=240.0,
    checkpoint_interval_seconds=60.0,
)


class TestDegradation:
    def _run(self, deadline, **policy_kwargs):
        plan, menus = _menus_and_plan(
            spot_stages={EDAStage.PLACEMENT, EDAStage.ROUTING}
        )
        policy = ExecutionPolicy(
            max_preemptions_per_stage=2,
            timeout_stretch=None,
            spot_discount=DISCOUNT,
            **policy_kwargs,
        )
        result = PlanExecutor(RECLAIM_STORM, policy).execute(
            plan, deadline_seconds=deadline, seed=1, stage_options=menus
        )
        return plan, result

    def test_fallback_to_on_demand_twin_and_replan(self):
        plan, result = self._run(deadline=20_000.0)
        trace = result.trace
        assert result.completed
        assert trace.count(EventKind.FALLBACK) >= 1
        fallen = [r for r in result.stage_records if r.fell_back]
        assert fallen
        for rec in fallen:
            # The fallback VM is the catalog on-demand twin, not a spot shape.
            assert not is_spot_vm(rec.vm)
            assert rec.preemptions <= 2
        # Fallback triggered a re-plan of the remaining stages, and the
        # degraded flow fled spot entirely: no spot VM runs after the
        # first fallback event.
        assert result.replanned and result.replan_feasible
        assert trace.count(EventKind.REPLAN) >= 1
        fallback_seq = trace.of_kind(EventKind.FALLBACK)[0].seq
        for e in trace.of_kind(EventKind.STAGE_START):
            if e.seq > fallback_seq:
                assert not e.vm.endswith(SPOT_SUFFIX)
        assert result.met_deadline

    def test_infeasible_replan_is_reported_not_raised(self):
        plan, result = self._run(deadline=plan_deadline_too_tight())
        assert result.replanned
        assert not result.replan_feasible
        replans = result.trace.of_kind(EventKind.REPLAN)
        assert replans and replans[0].get("feasible") is False
        # The flow still finishes (on the original assignments) and the
        # miss is visible, not hidden.
        assert result.completed
        assert not result.met_deadline

    def test_fallback_without_menus_reconstructs_twin_from_discount(self):
        plan, _ = _menus_and_plan(spot_stages={EDAStage.ROUTING})
        policy = ExecutionPolicy(
            max_preemptions_per_stage=1, timeout_stretch=None,
            spot_discount=DISCOUNT,
        )
        result = PlanExecutor(RECLAIM_STORM, policy).execute(plan, seed=1)
        rec = next(r for r in result.stage_records if r.fell_back)
        spot_price = _spot_twin(_vm("od2", 2.0)).price_per_hour
        assert rec.vm.name == "od2"
        assert rec.vm.price_per_hour == pytest.approx(spot_price / DISCOUNT)

    def test_timeout_budget_triggers_early_fallback(self):
        plan, menus = _menus_and_plan(spot_stages={EDAStage.ROUTING})
        policy = ExecutionPolicy(
            max_preemptions_per_stage=None,
            timeout_stretch=1.0,
            spot_discount=DISCOUNT,
        )
        # Deadline == nominal: zero slack, so the routing stage's budget is
        # exactly its nominal runtime and the first preemption beyond it
        # falls back even though preemptions are uncapped.
        result = PlanExecutor(RECLAIM_STORM, policy).execute(
            plan, deadline_seconds=plan.total_runtime, seed=1,
            stage_options=menus,
        )
        trace = result.trace
        assert trace.count(EventKind.TIMEOUT) >= 1
        fallback = trace.of_kind(EventKind.FALLBACK)
        assert fallback and fallback[0].get("reason") == "timeout"
        assert result.completed


def plan_deadline_too_tight():
    """A deadline the nominal plan meets with no slack to lose."""
    plan, _ = _menus_and_plan()
    return plan.total_runtime + 1.0


@pytest.mark.chaos
class TestConvergence:
    """Monte-Carlo executor mean vs the closed-form spot model."""

    @pytest.mark.parametrize(
        "runtime,rate,interval",
        [(800.0, 1.5, 120.0), (1000.0, 2.0, None), (600.0, 0.5, 300.0)],
    )
    def test_mean_matches_closed_form_within_5pct(self, runtime, rate, interval):
        times = simulate_spot_completion_times(
            runtime, rate, interval, trials=600, seed=0
        )
        assert len(times) == 600
        assert min(times) >= runtime * (1.0 - 1e-9)
        expected = spot_expected_runtime(runtime, rate, interval)
        mean = sum(times) / len(times)
        assert abs(mean - expected) <= 0.05 * expected

    def test_zero_rate_degenerates_to_nominal(self):
        times = simulate_spot_completion_times(500.0, 0.0, None, trials=5)
        assert times == [500.0] * 5
