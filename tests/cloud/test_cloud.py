"""Tests for the cloud substrate: instances, pricing, tenancy, plans."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import (
    DeploymentPlan,
    InstanceFamily,
    NeighborLoad,
    PricingTable,
    RECOMMENDED_FAMILY,
    TenancyModel,
    VMConfig,
    aws_like_catalog,
    uniform_plan,
)
from repro.eda.job import EDAStage


@pytest.fixture(scope="module")
def catalog():
    return aws_like_catalog()


class TestVMConfig:
    def test_per_second_billing_rounds_up(self):
        vm = VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 2, 8.0, 3.6)
        assert vm.price_per_second == pytest.approx(0.001)
        assert vm.cost(10.2) == pytest.approx(11 * 0.001)
        assert vm.cost(10.0) == pytest.approx(10 * 0.001)

    def test_zero_runtime_costs_nothing(self):
        vm = VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 1, 4.0, 1.0)
        assert vm.cost(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 0, 4.0, 1.0)
        with pytest.raises(ValueError):
            VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 1, 4.0, -1.0)
        with pytest.raises(ValueError):
            VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 1, 4.0, 1.0).cost(-1)

    def test_memory_per_vcpu(self):
        vm = VMConfig("t", InstanceFamily.MEMORY_OPTIMIZED, 4, 32.0, 1.0)
        assert vm.memory_per_vcpu == 8.0

    @given(st.floats(0.0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_cost_monotone_in_runtime(self, runtime):
        vm = VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 1, 4.0, 0.5)
        assert vm.cost(runtime + 1.0) >= vm.cost(runtime)


class TestCatalog:
    def test_has_all_families_and_sizes(self, catalog):
        for family in InstanceFamily:
            for vcpus in (1, 2, 4, 8):
                vm = catalog.config(family, vcpus)
                assert vm.vcpus == vcpus
                assert vm.family == family

    def test_memory_optimized_has_higher_ratio(self, catalog):
        gp = catalog.config(InstanceFamily.GENERAL_PURPOSE, 4)
        mem = catalog.config(InstanceFamily.MEMORY_OPTIMIZED, 4)
        assert mem.memory_per_vcpu > gp.memory_per_vcpu
        assert mem.price_per_hour > gp.price_per_hour

    def test_prices_increase_with_size(self, catalog):
        for family in InstanceFamily:
            prices = [catalog.config(family, v).price_per_hour for v in (1, 2, 4, 8)]
            assert prices == sorted(prices)

    def test_sublinear_pricing_matches_paper_structure(self, catalog):
        """The 8-vCPU tier costs less than 8x the 1-vCPU tier (as in the
        effective rates implied by the paper's Table I)."""
        for family in (InstanceFamily.GENERAL_PURPOSE, InstanceFamily.MEMORY_OPTIMIZED):
            p1 = catalog.config(family, 1).price_per_hour
            p8 = catalog.config(family, 8).price_per_hour
            assert p8 < 8 * p1

    def test_options_filters(self, catalog):
        opts = catalog.options(family=InstanceFamily.GENERAL_PURPOSE, vcpus=[2, 4])
        assert [o.vcpus for o in opts] == [2, 4]

    def test_cheapest(self, catalog):
        cheapest = catalog.cheapest(1)
        assert cheapest.price_per_hour == min(
            c.price_per_hour for c in catalog.options(vcpus=[1])
        )

    def test_by_name_and_len(self, catalog):
        assert catalog.by_name("gp.2x").vcpus == 2
        assert len(catalog) == 12

    def test_missing_config_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.config(InstanceFamily.GENERAL_PURPOSE, 3)

    def test_duplicate_names_rejected(self, catalog):
        vm = catalog.by_name("gp.2x")
        with pytest.raises(ValueError):
            PricingTable([vm, vm])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            PricingTable([])


class TestTenancy:
    def test_no_neighbors_no_slowdown(self):
        model = TenancyModel()
        assert model.slowdown(NeighborLoad(), cache_miss_rate=0.5) == 1.0

    def test_memory_bound_jobs_suffer_more(self):
        model = TenancyModel()
        noisy = NeighborLoad(cpu=0.5, memory_bandwidth=0.9)
        placement_like = model.slowdown(noisy, cache_miss_rate=0.45)
        synthesis_like = model.slowdown(noisy, cache_miss_rate=0.10)
        assert placement_like > synthesis_like > 1.0

    def test_effective_runtime(self):
        model = TenancyModel(cpu_sensitivity=0.0, bandwidth_sensitivity=0.5)
        neighbor = NeighborLoad(memory_bandwidth=1.0)
        assert model.effective_runtime(100.0, neighbor, 0.4) == pytest.approx(120.0)

    def test_load_validation(self):
        with pytest.raises(ValueError):
            NeighborLoad(cpu=1.5)
        with pytest.raises(ValueError):
            TenancyModel().slowdown(NeighborLoad(), cache_miss_rate=2.0)

    def test_sample_neighbors_deterministic(self):
        model = TenancyModel()
        a = model.sample_neighbors(10, seed=1)
        b = model.sample_neighbors(10, seed=1)
        assert a == b
        assert len(a) == 10


class TestDeploymentPlan:
    def test_uniform_plan_baselines(self, catalog):
        runtimes = {
            EDAStage.SYNTHESIS: {1: 6100.0, 8: 3352.0},
            EDAStage.ROUTING: {1: 10461.0, 8: 1692.0},
        }
        over = uniform_plan("d", runtimes, vcpus=8, catalog=catalog)
        under = uniform_plan("d", runtimes, vcpus=1, catalog=catalog)
        assert over.total_runtime < under.total_runtime
        assert over.total_cost != under.total_cost
        assert over.meets_deadline(6000)
        assert not under.meets_deadline(6000)

    def test_uniform_plan_uses_recommended_families(self, catalog):
        runtimes = {EDAStage.ROUTING: {1: 100.0}}
        plan = uniform_plan("d", runtimes, vcpus=1, catalog=catalog)
        assert plan.assignments[0].vm.family == RECOMMENDED_FAMILY[EDAStage.ROUTING]

    def test_missing_vcpu_level_raises(self, catalog):
        with pytest.raises(KeyError):
            uniform_plan("d", {EDAStage.STA: {1: 10.0}}, vcpus=4, catalog=catalog)

    def test_meets_deadline_float_boundary(self):
        """Accumulated float error must not flip an on-time plan to late.

        Three 0.1s stages sum to 0.30000000000000004 in binary floating
        point; a 0.3s deadline is met, not missed by 4e-17 seconds.
        """
        vm = VMConfig("t", InstanceFamily.GENERAL_PURPOSE, 2, 8.0, 1.0)
        plan = DeploymentPlan(design="fp")
        for stage in (EDAStage.SYNTHESIS, EDAStage.PLACEMENT, EDAStage.ROUTING):
            plan.add(stage, vm, 0.1)
        assert plan.total_runtime > 0.3  # the raw sum really is over
        assert plan.meets_deadline(0.3)
        assert plan.meets_deadline(plan.total_runtime)
        assert not plan.meets_deadline(0.2999)

    def test_summary_contains_total(self, catalog):
        plan = uniform_plan(
            "design_x", {EDAStage.STA: {1: 10.0}}, vcpus=1, catalog=catalog
        )
        text = plan.summary()
        assert "design_x" in text
        assert "TOTAL" in text
