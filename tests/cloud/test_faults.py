"""Property tests for the fault profile and the seeded injector streams.

The load-bearing invariant is stream *independence*: every fault draw is
a pure function of ``(seed, purpose, stage, attempt)``, so what one
stage consumes can never shift another stage's schedule.  That is what
keeps executor traces stable under re-planning and what lets the chaos
engine layer correlated processes on top without perturbing the
idiosyncratic draws.
"""

import math

import pytest

from repro.cloud.faults import PROFILES, FaultInjector, FaultProfile


# ----------------------------------------------------------------------
# Profile validation: named errors, not silent nonsense
# ----------------------------------------------------------------------
def test_negative_interrupt_rate_rejected_by_name():
    with pytest.raises(ValueError, match="spot_interrupt_rate_per_hour"):
        FaultProfile(spot_interrupt_rate_per_hour=-0.1)


def test_straggler_slowdown_of_one_rejected():
    # A multiplier of exactly 1 is a no-op straggler — reject it loudly
    # rather than silently injecting faults that change nothing.
    with pytest.raises(ValueError, match="straggler_slowdown must be > 1"):
        FaultProfile(straggler_prob=0.1, straggler_slowdown=1.0)
    with pytest.raises(ValueError, match="straggler_slowdown must be > 1"):
        FaultProfile(straggler_slowdown=0.5)


def test_out_of_range_probabilities_rejected_by_name():
    with pytest.raises(ValueError, match="boot_failure_prob"):
        FaultProfile(boot_failure_prob=1.5)
    with pytest.raises(ValueError, match="api_error_prob"):
        FaultProfile(api_error_prob=-0.01)


def test_nonpositive_checkpoint_interval_rejected():
    with pytest.raises(ValueError, match="checkpoint_interval_seconds"):
        FaultProfile(checkpoint_interval_seconds=0.0)


def test_storm_preset_is_registered_and_harsher_than_heavy():
    storm = FaultProfile.storm()
    heavy = FaultProfile.preemption_heavy()
    assert PROFILES["storm"]() == storm
    assert not storm.fault_free
    assert (
        storm.spot_interrupt_rate_per_hour
        > heavy.spot_interrupt_rate_per_hour
    )
    assert storm.boot_failure_prob > heavy.boot_failure_prob
    assert (
        storm.checkpoint_interval_seconds
        < heavy.checkpoint_interval_seconds
    )


# ----------------------------------------------------------------------
# Stream independence
# ----------------------------------------------------------------------
def test_stage_streams_are_independent_of_other_stages_consumption():
    """Stage 2's draws must not move when stage 1 retries more."""
    profile = FaultProfile.storm()

    def placement_draws(synthesis_attempts):
        injector = FaultInjector(profile, seed=7)
        # Simulate synthesis burning a variable number of attempts.
        for attempt in range(synthesis_attempts):
            injector.boot_fails("synthesis", attempt)
            injector.api_errors("synthesis", attempt)
            injector.time_to_preemption("synthesis", attempt)
            injector.jitter("synthesis", attempt)
        return [
            injector.time_to_preemption("placement", 0) for _ in range(5)
        ]

    baseline = placement_draws(0)
    for attempts in (1, 3, 10):
        assert placement_draws(attempts) == baseline


def test_attempt_streams_are_independent_within_a_stage():
    profile = FaultProfile.storm()
    lone = FaultInjector(profile, seed=3)
    expected = lone.time_to_preemption("routing", 2)

    busy = FaultInjector(profile, seed=3)
    for attempt in (0, 1):
        for _ in range(4):
            busy.time_to_preemption("routing", attempt)
    assert busy.time_to_preemption("routing", 2) == expected


def test_purposes_draw_from_disjoint_streams():
    profile = FaultProfile.storm()
    a = FaultInjector(profile, seed=11)
    b = FaultInjector(profile, seed=11)
    # Interleave purposes on one injector, query them in isolation on
    # the other: each purpose's sequence must match regardless.
    seq_a = []
    for attempt in range(3):
        a.boot_fails("sta", attempt)
        seq_a.append(a.time_to_preemption("sta", attempt))
    seq_b = [b.time_to_preemption("sta", k) for k in range(3)]
    assert seq_a == seq_b


def test_same_key_continues_one_stream():
    profile = FaultProfile.storm()
    injector = FaultInjector(profile, seed=0)
    first = injector.time_to_preemption("placement", 0)
    second = injector.time_to_preemption("placement", 0)
    assert first != second  # successive draws, not a restarted stream


def test_distinct_seeds_diverge_on_the_first_draw():
    profile = FaultProfile.storm()
    draws = {
        FaultInjector(profile, seed=s).time_to_preemption("synthesis", 0)
        for s in range(8)
    }
    assert len(draws) == 8


def test_fault_free_profile_consults_no_streams():
    """Zero rates short-circuit before touching a stream.

    This is the base of the chaos engine's zero-severity anchor: if no
    stream is ever created, a severity-0 run cannot perturb — or be
    perturbed by — any other draw.
    """
    injector = FaultInjector(FaultProfile.none(), seed=5)
    assert injector.boot_fails("synthesis", 0) is False
    assert injector.api_errors("synthesis", 0) is False
    assert injector.straggler_factor("synthesis", 0) == 1.0
    assert injector.time_to_preemption("synthesis", 0) == math.inf
    assert injector._streams == {}


def test_now_kwarg_is_accepted_and_ignored_by_the_base_model():
    profile = FaultProfile.storm()
    a = FaultInjector(profile, seed=9)
    b = FaultInjector(profile, seed=9)
    assert a.boot_fails("sta", 0, now=0.0) == b.boot_fails(
        "sta", 0, now=12345.0
    )
    assert a.time_to_preemption("sta", 0, now=0.0) == b.time_to_preemption(
        "sta", 0, now=99999.0
    )
