"""Tests for the spot-market extension."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import SpotMarket, aws_like_catalog, spot_expected_runtime
from repro.core.optimize import (
    ConfigOption,
    StageOptions,
    solve_min_cost_dp,
)
from repro.eda.job import EDAStage


class TestExpectedRuntime:
    def test_no_interruptions_is_identity(self):
        assert spot_expected_runtime(1234.0, 0.0) == 1234.0

    def test_zero_runtime(self):
        assert spot_expected_runtime(0.0, 1.0) == 0.0

    def test_closed_form(self):
        """E[T] = (e^{lam T} - 1)/lam for restart-from-scratch."""
        lam = 0.2 / 3600.0
        t = 3600.0
        expected = (math.exp(lam * t) - 1.0) / lam
        assert spot_expected_runtime(t, 0.2) == pytest.approx(expected)

    def test_checkpointing_caps_penalty(self):
        """Fine checkpoints make expected time approach nominal."""
        long_job = 8 * 3600.0
        raw = spot_expected_runtime(long_job, 0.5)
        ckpt = spot_expected_runtime(long_job, 0.5, checkpoint_interval_seconds=600)
        assert ckpt < raw
        assert ckpt == pytest.approx(long_job, rel=0.06)

    @given(st.floats(1.0, 1e5), st.floats(0.0, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_expected_at_least_nominal(self, runtime, rate):
        assert spot_expected_runtime(runtime, rate) >= runtime - 1e-6

    @given(st.floats(1.0, 1e4), st.floats(0.01, 1.0), st.floats(10.0, 5e3))
    @settings(max_examples=80, deadline=None)
    def test_checkpointing_never_hurts(self, runtime, rate, interval):
        raw = spot_expected_runtime(runtime, rate)
        ckpt = spot_expected_runtime(runtime, rate, checkpoint_interval_seconds=interval)
        assert ckpt <= raw * (1 + 1e-9)

    @given(st.floats(1.0, 1e4), st.floats(0.0, 1.0), st.floats(0.01, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_interrupt_rate(self, runtime, rate, bump):
        """More interruptions never reduce the expected completion time."""
        low = spot_expected_runtime(runtime, rate)
        high = spot_expected_runtime(runtime, rate + bump)
        assert high >= low * (1 - 1e-12)

    @given(st.floats(1.0, 1e4), st.floats(0.0, 1.0), st.floats(0.01, 1.0),
           st.floats(10.0, 5e3))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_rate_with_checkpointing(
        self, runtime, rate, bump, interval
    ):
        low = spot_expected_runtime(runtime, rate, interval)
        high = spot_expected_runtime(runtime, rate + bump, interval)
        assert high >= low * (1 - 1e-12)

    @given(st.floats(1.0, 1e5))
    @settings(max_examples=60, deadline=None)
    def test_vanishing_rate_recovers_nominal(self, runtime):
        """E[T] -> T as the interrupt rate -> 0 (continuity at lam = 0)."""
        assert spot_expected_runtime(runtime, 1e-9) == pytest.approx(
            runtime, rel=1e-6
        )
        assert spot_expected_runtime(
            runtime, 1e-9, checkpoint_interval_seconds=60.0
        ) == pytest.approx(runtime, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            spot_expected_runtime(-1.0, 0.1)
        with pytest.raises(ValueError):
            spot_expected_runtime(1.0, -0.1)
        with pytest.raises(ValueError):
            spot_expected_runtime(1.0, 0.1, checkpoint_interval_seconds=0)


class TestSpotMarket:
    def test_quote_economics(self):
        market = SpotMarket(discount=0.3, interrupt_rate_per_hour=0.05)
        vm = market.catalog.by_name("gp.2x")
        quote = market.quote(vm, 1800.0)
        # short job in a calm pool: spot is a clear win
        on_demand = vm.cost(1800.0)
        assert quote.expected_cost < on_demand
        assert quote.risk_stretch < 1.05

    def test_long_jobs_lose_without_checkpoints(self):
        market = SpotMarket(discount=0.3, interrupt_rate_per_hour=0.5)
        vm = market.catalog.by_name("gp.2x")
        breakeven = market.breakeven_runtime(vm)
        assert math.isfinite(breakeven)
        short = market.quote(vm, breakeven * 0.5)
        long = market.quote(vm, breakeven * 2.0)
        assert short.expected_cost < vm.cost(short.nominal_runtime)
        assert long.expected_cost > vm.cost(long.nominal_runtime)

    def test_breakeven_with_checkpointing(self):
        calm = SpotMarket(
            discount=0.3, interrupt_rate_per_hour=0.5,
            checkpoint_interval_seconds=300,
        )
        vm = calm.catalog.by_name("gp.2x")
        assert calm.breakeven_runtime(vm) == math.inf  # spot always wins

    def test_no_interrupts_breakeven_infinite(self):
        market = SpotMarket(discount=0.3, interrupt_rate_per_hour=0.0)
        assert market.breakeven_runtime(market.catalog.by_name("gp.1x")) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            SpotMarket(discount=0.0)
        with pytest.raises(ValueError):
            SpotMarket(interrupt_rate_per_hour=-1.0)

    def test_augment_stage_options_doubles_menu(self):
        catalog = aws_like_catalog()
        vm = catalog.config_list = None  # noqa - keep linter quiet
        stage = StageOptions(
            stage=EDAStage.SYNTHESIS,
            options=[
                ConfigOption(
                    vm=catalog.by_name("gp.1x"), runtime_seconds=600, price=0.02
                ),
                ConfigOption(
                    vm=catalog.by_name("gp.8x"), runtime_seconds=100, price=0.01
                ),
            ],
        )
        market = SpotMarket(discount=0.3, interrupt_rate_per_hour=0.05)
        augmented = market.augment_stage_options([stage])
        assert len(augmented[0].options) == 4
        spot_names = [o.vm.name for o in augmented[0].options if "spot" in o.vm.name]
        assert spot_names == ["gp.1x.spot", "gp.8x.spot"]

    def test_optimizer_picks_spot_when_cheap(self):
        """End-to-end: the MCKP DP mixes spot in when the deadline allows."""
        catalog = aws_like_catalog()
        stage = StageOptions(
            stage=EDAStage.ROUTING,
            options=[
                ConfigOption(
                    vm=catalog.by_name("mem.4x"),
                    runtime_seconds=1000,
                    price=catalog.by_name("mem.4x").cost(1000),
                )
            ],
        )
        market = SpotMarket(discount=0.3, interrupt_rate_per_hour=0.05)
        augmented = market.augment_stage_options([stage])
        relaxed = solve_min_cost_dp(augmented, 5000)
        assert "spot" in relaxed.choices[EDAStage.ROUTING].vm.name
        # With a deadline tighter than the spot expected runtime, the DP
        # must fall back to on-demand.
        spot_rt = max(o.runtime_seconds for o in augmented[0].options)
        tight = solve_min_cost_dp(augmented, spot_rt - 1)
        assert "spot" not in tight.choices[EDAStage.ROUTING].vm.name
