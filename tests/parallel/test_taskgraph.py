"""Tests for work profiles and task graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import Section, TaskGraph, WorkProfile


class TestSection:
    def test_runtime_serial(self):
        s = Section(work=10.0, parallelism=1.0)
        assert s.runtime(1, sync_overhead=0.0) == 10.0
        assert s.runtime(8, sync_overhead=0.0) == 10.0  # capped at parallelism

    def test_runtime_parallel_ideal(self):
        s = Section(work=8.0, parallelism=8.0)
        assert s.runtime(8, sync_overhead=0.0) == pytest.approx(1.0)
        assert s.runtime(4, sync_overhead=0.0) == pytest.approx(2.0)

    def test_sync_overhead_penalizes_width(self):
        s = Section(work=8.0, parallelism=8.0)
        assert s.runtime(8, sync_overhead=0.05) == pytest.approx(1.0 * 1.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            Section(work=-1.0)
        with pytest.raises(ValueError):
            Section(work=1.0, parallelism=0.5)
        with pytest.raises(ValueError):
            Section(work=1.0).runtime(0)


class TestWorkProfile:
    def test_amdahl_equivalence(self):
        """A profile with serial + parallel parts follows Amdahl's law."""
        p = WorkProfile()
        p.add(50.0, parallelism=1)
        p.add(50.0, parallelism=1000)
        t1 = p.runtime(1, sync_overhead=0.0)
        t4 = p.runtime(4, sync_overhead=0.0)
        assert t1 / t4 == pytest.approx(1.0 / (0.5 + 0.5 / 4))

    def test_zero_work_sections_dropped(self):
        p = WorkProfile()
        p.add(0.0, parallelism=4)
        assert p.sections == []

    def test_totals_and_span(self):
        p = WorkProfile()
        p.add(10, parallelism=1)
        p.add(20, parallelism=4)
        assert p.total_work == 30
        assert p.span == pytest.approx(10 + 5)
        assert p.parallel_fraction() == pytest.approx(20 / 30)

    def test_scaled(self):
        p = WorkProfile()
        p.add(10, parallelism=2)
        q = p.scaled(3.0)
        assert q.total_work == 30
        assert p.total_work == 10

    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 100.0),
                st.floats(1.0, 16.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(1, 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_runtime_bounds(self, sections, workers):
        """runtime(k) between span and total work; monotone in k (no overhead)."""
        p = WorkProfile()
        for work, par in sections:
            p.add(work, parallelism=par)
        t = p.runtime(workers, sync_overhead=0.0)
        assert t <= p.total_work + 1e-9
        assert t >= p.span - 1e-9
        t_more = p.runtime(workers + 1, sync_overhead=0.0)
        assert t_more <= t + 1e-9


class TestTaskGraph:
    def test_basic_construction(self):
        g = TaskGraph("t")
        a = g.add_task(1.0)
        b = g.add_task(2.0, deps=[a])
        assert len(g) == 2
        assert g.total_work == 3.0
        assert g.critical_path() == 3.0

    def test_parallel_tasks_critical_path(self):
        g = TaskGraph()
        g.add_task(5.0)
        g.add_task(3.0)
        assert g.critical_path() == 5.0

    def test_unknown_dep_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add_task(1.0, deps=[42])

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph().add_task(-1.0)

    def test_bottom_levels(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        b = g.add_task(2.0, deps=[a])
        c = g.add_task(4.0, deps=[a])
        levels = g.bottom_levels()
        assert levels[b] == 2.0
        assert levels[c] == 4.0
        assert levels[a] == 5.0  # 1 + max(2, 4)
