"""Tests for speedup curves and Amdahl fitting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    SpeedupCurve,
    amdahl_speedup,
    fit_amdahl_fraction,
    gustafson_speedup,
    speedup_curve,
)


class TestFormulas:
    def test_amdahl_endpoints(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(1.0)
        assert amdahl_speedup(1.0, 8) == pytest.approx(8.0)

    def test_amdahl_paper_value(self):
        """f ~ 0.515 gives the paper's ~1.8x synthesis speedup at 8 vCPUs."""
        assert amdahl_speedup(0.515, 8) == pytest.approx(1.82, abs=0.05)

    def test_gustafson_linear_in_k(self):
        assert gustafson_speedup(0.5, 8) == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)
        with pytest.raises(ValueError):
            gustafson_speedup(-0.1, 4)


class TestFit:
    @given(st.floats(0.05, 0.98))
    @settings(max_examples=100, deadline=None)
    def test_fit_recovers_true_fraction(self, f):
        ks = [1, 2, 4, 8, 16]
        speedups = [amdahl_speedup(f, k) for k in ks]
        estimated = fit_amdahl_fraction(ks, speedups)
        assert estimated == pytest.approx(f, abs=0.02)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_amdahl_fraction([1], [1.0])
        with pytest.raises(ValueError):
            fit_amdahl_fraction([1, 2], [1.0, -2.0])

    def test_fit_clips_to_unit_interval(self):
        # Superlinear "speedups" should clip to f = 1.
        assert fit_amdahl_fraction([1, 2, 4], [1.0, 2.5, 7.0]) == 1.0


class TestCurve:
    def test_speedups_and_efficiency(self):
        curve = SpeedupCurve(vcpus=[1, 2, 4], runtimes=[100.0, 60.0, 40.0])
        assert curve.speedups == pytest.approx([1.0, 100 / 60, 2.5])
        assert curve.efficiencies[2] == pytest.approx(2.5 / 4)

    def test_from_runtime_fn(self):
        curve = speedup_curve(lambda k: 100.0 / k, vcpus=(1, 2, 4))
        assert curve.runtimes == [100.0, 50.0, 25.0]
        assert curve.as_dict()[4] == 25.0

    def test_parallel_fraction_of_ideal_curve(self):
        curve = speedup_curve(lambda k: 100.0 / k, vcpus=(1, 2, 4, 8))
        assert curve.parallel_fraction() == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedupCurve(vcpus=[1, 2], runtimes=[1.0])
        with pytest.raises(ValueError):
            SpeedupCurve(vcpus=[4, 1], runtimes=[1.0, 2.0])
