"""Cross-cutting property tests for the execution model.

These pin down the invariants the whole reproduction leans on: runtimes
derived from work profiles and task graphs behave like runtimes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    Section,
    TaskGraph,
    TaskGraphWorkload,
    WorkProfile,
    amdahl_speedup,
    fit_amdahl_fraction,
)


@st.composite
def work_profiles(draw):
    profile = WorkProfile()
    n = draw(st.integers(1, 8))
    for _ in range(n):
        profile.add(
            draw(st.floats(0.5, 500.0)),
            parallelism=draw(st.sampled_from([1.0, 2.0, 4.0, 8.0, 16.0])),
        )
    return profile


@given(work_profiles())
@settings(max_examples=80, deadline=None)
def test_profile_speedup_bounded_by_amdahl(profile):
    """Measured speedup never exceeds Amdahl's bound for the profile's
    parallel fraction at infinite width (no overhead)."""
    f = profile.parallel_fraction()
    for k in (2, 4, 8):
        s = profile.runtime(1, sync_overhead=0.0) / profile.runtime(
            k, sync_overhead=0.0
        )
        assert s <= amdahl_speedup(f, 1e9) + 1e-9


@given(work_profiles())
@settings(max_examples=60, deadline=None)
def test_amdahl_fit_recovers_profile_fraction(profile):
    """Fitting Amdahl to a two-section profile's curve recovers ~f when
    all parallel sections are unbounded."""
    unbounded = WorkProfile()
    serial = sum(s.work for s in profile.sections if s.parallelism == 1)
    parallel = sum(s.work for s in profile.sections if s.parallelism > 1)
    unbounded.add(serial, parallelism=1)
    unbounded.add(parallel, parallelism=1e9)
    if unbounded.total_work == 0:
        return
    ks = [1, 2, 4, 8, 16]
    speedups = [
        unbounded.runtime(1, sync_overhead=0.0)
        / unbounded.runtime(k, sync_overhead=0.0)
        for k in ks
    ]
    f_true = unbounded.parallel_fraction()
    f_fit = fit_amdahl_fraction(ks, speedups)
    assert f_fit == pytest.approx(f_true, abs=0.03)


@given(
    st.lists(
        st.tuples(st.floats(0.1, 20.0), st.lists(st.integers(0, 30), max_size=2)),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=60, deadline=None)
def test_taskgraph_workload_work_conservation(spec):
    """runtime(1) with no overhead equals total work exactly."""
    g = TaskGraph()
    for work, deps in spec:
        g.add_task(work, deps=[d for d in deps if d < len(g)])
    w = TaskGraphWorkload(g, sync_overhead=0.0)
    w.add(3.0, parallelism=1)
    assert w.runtime(1) == pytest.approx(g.total_work + 3.0)


@given(
    st.lists(
        st.tuples(st.floats(0.1, 20.0), st.lists(st.integers(0, 30), max_size=2)),
        min_size=1,
        max_size=25,
    ),
    st.integers(1, 12),
)
@settings(max_examples=60, deadline=None)
def test_taskgraph_workload_never_beats_critical_path(spec, workers):
    g = TaskGraph()
    for work, deps in spec:
        g.add_task(work, deps=[d for d in deps if d < len(g)])
    w = TaskGraphWorkload(g, sync_overhead=0.0)
    assert w.runtime(workers) >= g.critical_path() - 1e-9
