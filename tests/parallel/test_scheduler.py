"""Tests for list scheduling and the task-graph workload."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import TaskGraph, TaskGraphWorkload, list_schedule


def diamond_graph():
    g = TaskGraph()
    a = g.add_task(1.0)
    b = g.add_task(2.0, deps=[a])
    c = g.add_task(3.0, deps=[a])
    d = g.add_task(1.0, deps=[b, c])
    return g


class TestListSchedule:
    def test_serial_schedule_is_total_work(self):
        g = diamond_graph()
        assert list_schedule(g, 1).makespan == pytest.approx(g.total_work)

    def test_two_workers_diamond(self):
        g = diamond_graph()
        # a(1) then b||c (3), then d(1) -> 5
        assert list_schedule(g, 2).makespan == pytest.approx(5.0)

    def test_empty_graph(self):
        assert list_schedule(TaskGraph(), 4).makespan == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            list_schedule(diamond_graph(), 0)

    def test_dependencies_respected(self):
        g = diamond_graph()
        result = list_schedule(g, 4)
        tasks = {t.task_id: t for t in g.tasks}
        for task_id, start in result.start_times.items():
            for dep in tasks[task_id].deps:
                assert result.finish_times[dep] <= start + 1e-12

    def test_workers_not_double_booked(self):
        g = diamond_graph()
        result = list_schedule(g, 2)
        by_worker = {}
        for task_id, worker in result.worker_of.items():
            by_worker.setdefault(worker, []).append(
                (result.start_times[task_id], result.finish_times[task_id])
            )
        for intervals in by_worker.values():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert f1 <= s2 + 1e-12

    def test_utilization_bounded(self):
        result = list_schedule(diamond_graph(), 2)
        assert 0.0 < result.utilization <= 1.0

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 10.0), st.lists(st.integers(0, 50), max_size=3)),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, spec, workers):
        """Graham bounds: max(cp, W/k) <= makespan <= W/k + cp."""
        g = TaskGraph()
        for work, deps in spec:
            valid = [d for d in deps if d < len(g)]
            g.add_task(work, deps=valid)
        result = list_schedule(g, workers)
        cp = g.critical_path()
        lower = max(cp, g.total_work / workers)
        upper = g.total_work / workers + cp
        assert lower - 1e-9 <= result.makespan <= upper + 1e-9


class TestTaskGraphWorkload:
    def test_runtime_monotone_in_workers(self):
        w = TaskGraphWorkload(diamond_graph(), sync_overhead=0.0)
        w.add(2.0, parallelism=1, name="serial")
        times = [w.runtime(k) for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_serial_sections_added(self):
        w = TaskGraphWorkload(diamond_graph(), sync_overhead=0.0)
        w.add(3.0, parallelism=1)
        assert w.runtime(1) == pytest.approx(7.0 + 3.0)
        assert w.total_work == pytest.approx(10.0)

    def test_speedup_relative_to_one(self):
        w = TaskGraphWorkload(diamond_graph(), sync_overhead=0.0)
        assert w.speedup(1) == pytest.approx(1.0)
        assert w.speedup(2) == pytest.approx(7.0 / 5.0)

    def test_parallel_fraction(self):
        w = TaskGraphWorkload(diamond_graph())
        w.add(7.0, parallelism=1)
        assert w.parallel_fraction() == pytest.approx(0.5)

    def test_sync_overhead_applied(self):
        w0 = TaskGraphWorkload(diamond_graph(), sync_overhead=0.0)
        w5 = TaskGraphWorkload(diamond_graph(), sync_overhead=0.05)
        assert w5.runtime(4) > w0.runtime(4)
        assert w5.runtime(1) == pytest.approx(w0.runtime(1))

    def test_makespan_cached(self):
        w = TaskGraphWorkload(diamond_graph())
        first = w.makespan(4)
        assert w.makespan(4) == first
        assert 4 in w._makespan_cache
