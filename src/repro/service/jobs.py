"""Job model: requests, lifecycle states, and the cooperative context.

A :class:`JobRequest` describes *what* to run (pipeline kind, design,
scale, seeds, priority); a :class:`Job` is one admitted request moving
through the lifecycle::

    queued -> running -> done | failed | cancelled | timed_out
    queued -> cancelled                      (cancelled before pickup)

Transitions are validated — an illegal edge raises ``ValueError`` — and
every transition is appended to ``Job.history`` with the service clock's
timestamp, so a job's full lifecycle is replayable.  Terminal jobs are
persisted through the existing :mod:`repro.obs.store` run store
(:func:`job_to_run`), which is how the regression dashboard sees
per-job billing.

:class:`JobContext` is the cooperative cancellation/timeout surface:
runners call :meth:`JobContext.checkpoint` between pipeline stages, and
the pool turns the raised :class:`~repro.service.errors.JobCancelled` /
:class:`~repro.service.errors.JobTimeout` into terminal states that
always release the worker slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.store import RunRecord
from .errors import InvalidRequestError, JobCancelled, JobEvicted, JobTimeout

__all__ = [
    "JOB_KINDS",
    "JobState",
    "TERMINAL_STATES",
    "JobRequest",
    "Job",
    "JobContext",
    "job_to_run",
]

#: Pipeline kinds the default runner understands (see ``runners.py``).
JOB_KINDS = ("flow", "plan", "execute", "pipeline", "sleep", "fleet")


class JobState(enum.Enum):
    """Lifecycle states; values are the wire/log spelling."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
)

#: Legal lifecycle edges.
_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
    ),
}


@dataclass(frozen=True)
class JobRequest:
    """One pipeline request as a client would submit it.

    ``priority`` is higher-wins; ties break FIFO on admission order.
    ``seed`` seeds the job's own execution (fault draws, GCN init);
    ``flow_seed`` seeds the characterization flow so jobs can share the
    warm artifact cache.  ``timeout_seconds`` is measured on the service
    clock and enforced at runner checkpoints (cooperative).
    """

    kind: str = "execute"
    design: str = "ctrl"
    scale: float = 0.3
    seed: int = 0
    flow_seed: int = 0
    priority: int = 0
    client: str = "default"
    timeout_seconds: Optional[float] = None
    params: Dict[str, object] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`InvalidRequestError` on a malformed request."""
        if self.kind not in JOB_KINDS:
            raise InvalidRequestError(
                f"unknown job kind {self.kind!r}; known: {', '.join(JOB_KINDS)}",
                kind=self.kind,
            )
        if self.scale <= 0:
            raise InvalidRequestError(
                f"scale must be positive, got {self.scale!r}", scale=self.scale
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise InvalidRequestError(
                f"timeout_seconds must be positive, got "
                f"{self.timeout_seconds!r}",
                timeout_seconds=self.timeout_seconds,
            )
        if not self.client:
            raise InvalidRequestError("client must be non-empty")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "design": self.design,
            "scale": self.scale,
            "seed": self.seed,
            "flow_seed": self.flow_seed,
            "priority": self.priority,
            "client": self.client,
            "timeout_seconds": self.timeout_seconds,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }


@dataclass
class Job:
    """One admitted request and everything its execution produced."""

    job_id: str
    request: JobRequest
    seq: int
    state: JobState = JobState.QUEUED
    history: List[Tuple[str, float]] = field(default_factory=list)
    result: Optional[dict] = None
    error: Optional[dict] = None
    worker: Optional[int] = None
    cancel_requested: bool = False
    #: Reason string set when an *external* event (AZ reclaim, storm)
    #: revokes this job's capacity; checkpoints then raise
    #: :class:`~repro.service.errors.JobEvicted` instead of plain
    #: :class:`JobCancelled`.
    external_cancel: Optional[str] = None
    #: How many times this request has been requeued after evictions.
    requeues: int = 0
    #: Job id of the evicted incarnation this job re-runs, if any.
    requeue_of: Optional[str] = None
    #: Deterministic end-to-end trace id minted by the service at
    #: admission (:func:`repro.obs.spans.mint_trace_id`); every span the
    #: job's execution opens — service, planner, executor, chaos — is
    #: stitched under it.  Requeued incarnations get fresh trace ids.
    trace_id: Optional[str] = None
    #: Per-job metric snapshot (``MetricsSnapshot.to_dict()``), recorded
    #: by the pool in inline mode — the multi-job billing oracle compares
    #: these counters against the job's own execution trace.
    metrics: Dict[str, dict] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: JobState, time: float) -> None:
        """Move to ``state`` at service-clock ``time``; validates the edge."""
        allowed = _TRANSITIONS.get(self.state, frozenset())
        if state not in allowed:
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state
        self.history.append((state.value, time))

    def to_public_dict(self) -> dict:
        """The client-facing job document (stable keys, JSON-safe)."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "request": self.request.to_dict(),
            "history": [list(edge) for edge in self.history],
            "worker": self.worker,
            "result": self.result,
            "error": self.error,
        }


class JobContext:
    """Cooperative cancellation/timeout handle passed to every runner.

    Runners call :meth:`checkpoint` between pipeline stages; it raises
    :class:`JobCancelled` once :meth:`request_cancel` has been called and
    :class:`JobTimeout` once the service clock passes the job's deadline.
    Deterministic services inject a tick clock, so timeout behaviour is
    replayable.
    """

    def __init__(
        self,
        job: Job,
        clock: Callable[[], float],
        started: float,
        timeout_seconds: Optional[float] = None,
    ):
        self.job = job
        self.clock = clock
        self.started = started
        self.timeout_seconds = timeout_seconds

    @property
    def elapsed(self) -> float:
        return self.clock() - self.started

    def checkpoint(self) -> None:
        """Raise if the job was evicted, cancelled, or past its deadline.

        Eviction outranks a client cancel: an external capacity loss is
        the stronger fact and carries the forensic/requeue semantics.
        """
        if self.job.external_cancel is not None:
            raise JobEvicted(self.job.job_id, self.job.external_cancel)
        if self.job.cancel_requested:
            raise JobCancelled(self.job.job_id)
        if (
            self.timeout_seconds is not None
            and self.elapsed > self.timeout_seconds
        ):
            raise JobTimeout(self.job.job_id)


def job_to_run(
    job: Job,
    rev: str,
    timestamp_utc: str,
    attribution: Optional[dict] = None,
) -> RunRecord:
    """Convert one terminal job into a ``repro-runs/1`` store record.

    The record's ``kind`` is ``service.job`` and its labels carry the
    lifecycle (state, priority, client, pipeline kind, history), so the
    dashboard can group and drift-check per-job billing counters the
    same way it gates bench runs.  ``attribution`` (an
    :meth:`repro.obs.attrib.Attribution.to_dict` document) rides along in
    the labels when the caller computed one, and jobs that executed a
    plan surface their deadline verdict as ``labels["met_deadline"]`` —
    the field the SLO engine's deadline-hit-rate objective reads.
    """
    if not job.terminal:
        raise ValueError(f"job {job.job_id} is not terminal ({job.state.value})")
    labels: Dict[str, object] = {
        "job_id": job.job_id,
        "state": job.state.value,
        "priority": job.request.priority,
        "client": job.request.client,
        "job_kind": job.request.kind,
        "design": job.request.design,
        "history": [list(edge) for edge in job.history],
    }
    if job.trace_id is not None:
        labels["trace_id"] = job.trace_id
    if attribution is not None:
        labels["attrib"] = attribution
    result = job.result if isinstance(job.result, dict) else {}
    met = result.get("met_deadline")
    if met is None and isinstance(result.get("execution"), dict):
        met = result["execution"].get("met_deadline")
    if met is not None:
        labels["met_deadline"] = bool(met)
    if job.error is not None:
        labels["error"] = job.error
    if job.external_cancel is not None:
        labels["evicted"] = job.external_cancel
    if job.requeues:
        labels["requeues"] = job.requeues
    if job.requeue_of is not None:
        labels["requeue_of"] = job.requeue_of
    return RunRecord(
        kind="service.job",
        rev=rev,
        seed=job.request.seed,
        timestamp_utc=timestamp_utc,
        scale=job.request.scale,
        labels=labels,
        metrics=dict(job.metrics),
    )
