"""Priority job queue and admission control (bounded depth, rate limit).

The queue is a binary heap ordered by ``(-priority, seq)``: higher
priority first, and *within* a priority strictly first-in-first-out by
admission sequence number — the tie-break is deterministic by
construction, never by heap internals, which is what makes a seeded
arrival schedule produce one canonical service order.

Admission is refused with **typed** errors before a job object is ever
created:

* :class:`~repro.service.errors.QueueFullError` (503) once the bounded
  queue holds ``depth`` undelivered jobs,
* :class:`~repro.service.errors.RateLimitedError` (429, with a
  ``retry_after_seconds`` hint) once the submitting client's token
  bucket runs dry,
* :class:`~repro.service.errors.ServiceDrainingError` (503) once the
  service began draining.

The token bucket is clock-injected: production uses a monotonic clock,
deterministic sessions a tick clock, tests a manual clock — refill
arithmetic is identical everywhere.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from .errors import QueueFullError, RateLimitedError, ServiceDrainingError
from .jobs import Job, JobState

__all__ = ["TokenBucket", "JobQueue", "AdmissionController"]


class TokenBucket:
    """Per-client token buckets: ``capacity`` burst, ``refill_per_second``.

    A fresh client starts with a full bucket.  ``try_acquire`` either
    takes one token and returns ``None``, or returns the number of
    seconds until one token will be available (the 429 retry hint).
    """

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Callable[[], float],
    ):
        if capacity < 1:
            raise ValueError("token bucket capacity must be >= 1")
        if refill_per_second <= 0:
            raise ValueError("refill rate must be positive")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self.clock = clock
        #: client -> (tokens, last refill time)
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def _refill(self, client: str, now: float) -> float:
        tokens, last = self._buckets.get(client, (self.capacity, now))
        tokens = min(
            self.capacity, tokens + (now - last) * self.refill_per_second
        )
        return tokens

    def tokens(self, client: str) -> float:
        """Current token count for ``client`` (refilled to now)."""
        return self._refill(client, self.clock())

    def try_acquire(self, client: str) -> Optional[float]:
        """Take one token; returns ``None`` on success, retry-after secs
        when the bucket is dry."""
        now = self.clock()
        tokens = self._refill(client, now)
        if tokens >= 1.0:
            self._buckets[client] = (tokens - 1.0, now)
            return None
        self._buckets[client] = (tokens, now)
        return (1.0 - tokens) / self.refill_per_second


class JobQueue:
    """Bounded max-priority queue with deterministic FIFO tie-breaking.

    ``depth`` bounds the number of *undelivered* jobs; jobs cancelled
    while queued are discarded lazily at ``pop`` time and stop counting
    toward the bound immediately (``__len__`` skips them), so a
    cancelled backlog can never wedge admission.
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self._heap: List[Tuple[int, int, Job]] = []

    def __len__(self) -> int:
        return sum(
            1
            for _, _, job in self._heap
            if job.state is JobState.QUEUED
        )

    @property
    def full(self) -> bool:
        return len(self) >= self.depth

    def push(self, job: Job) -> None:
        """Enqueue an admitted job; raises :class:`QueueFullError`."""
        if self.full:
            raise QueueFullError(
                f"queue is at capacity ({self.depth} jobs)",
                depth=self.depth,
            )
        heapq.heappush(self._heap, (-job.request.priority, job.seq, job))

    def pop(self) -> Optional[Job]:
        """Highest-priority, earliest-admitted live job; ``None`` if empty.

        Jobs cancelled while queued are dropped here, never returned.
        """
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state is JobState.QUEUED:
                return job
        return None

    def snapshot(self) -> List[str]:
        """Job ids in exact delivery order (non-destructive, for tests)."""
        return [
            job.job_id
            for _, _, job in sorted(self._heap)
            if job.state is JobState.QUEUED
        ]


class AdmissionController:
    """Gate in front of the queue: draining, rate limit, then depth.

    Check order is fixed (draining -> request validation -> rate limit ->
    queue depth) so a given request always fails with the same typed
    error — rejection streams are as deterministic as admissions.
    """

    def __init__(
        self,
        queue: JobQueue,
        rate_limiter: Optional[TokenBucket] = None,
    ):
        self.queue = queue
        self.rate_limiter = rate_limiter
        self.draining = False
        self.admitted = 0
        self.rejected: Dict[str, int] = {}

    def _reject(self, exc) -> None:
        self.rejected[exc.code] = self.rejected.get(exc.code, 0) + 1
        raise exc

    def admit(self, job: Job) -> None:
        """Admit ``job`` into the queue or raise a typed rejection."""
        if self.draining:
            self._reject(
                ServiceDrainingError(
                    "service is draining; not accepting new jobs"
                )
            )
        if self.rate_limiter is not None:
            retry_after = self.rate_limiter.try_acquire(job.request.client)
            if retry_after is not None:
                self._reject(
                    RateLimitedError(
                        f"client {job.request.client!r} is over its rate "
                        f"limit; retry in {retry_after:.3f}s",
                        client=job.request.client,
                        retry_after_seconds=retry_after,
                    )
                )
        if self.queue.full:
            self._reject(
                QueueFullError(
                    f"queue is at capacity ({self.queue.depth} jobs)",
                    depth=self.queue.depth,
                )
            )
        self.queue.push(job)
        self.admitted += 1
