"""EDA-flow-as-a-service: async job layer over the full pipeline.

The paper frames cloud EDA as many concurrent flows competing for
shared capacity; this package serves the repo's characterize ->
predict -> plan (MCKP) -> execute pipeline as *jobs* behind a
framework-free, stdlib-asyncio service:

* :mod:`repro.service.errors`  — typed rejection taxonomy (429/503/...)
  with structured response documents,
* :mod:`repro.service.jobs`    — requests, validated lifecycle states,
  cooperative cancellation/timeout contexts, run-store persistence,
* :mod:`repro.service.queue`   — bounded priority queue (deterministic
  FIFO tie-break), per-client token buckets, admission control,
* :mod:`repro.service.pool`    — asyncio worker pool (inline mode for
  replayable sessions, thread mode for wall-clock overlap), graceful
  drain, guaranteed slot release,
* :mod:`repro.service.runners` — job kinds mapped onto the pipeline,
  with a memoized characterization flow,
* :mod:`repro.service.api`     — the in-process request API
  (submit/status/cancel), the synchronous session driver the CLI uses,
  and the byte-stable session log,
* :mod:`repro.service.sweep`   — the deterministic concurrency sweep
  that locates the throughput knee for the bench gate.

Everything is deterministic by default: tick clocks, inline workers,
and whole-batch admission make a seeded session a pure function of its
requests — the property the acceptance tests replay twice and diff.
"""

from .api import (
    EDAService,
    ServiceConfig,
    SessionResult,
    run_session,
    seeded_job_mix,
    session_log,
)
from .errors import (
    ERROR_CODES,
    InvalidRequestError,
    JobCancelled,
    JobEvicted,
    JobNotFoundError,
    JobTimeout,
    NotCancellableError,
    QueueFullError,
    RateLimitedError,
    ServiceDrainingError,
    ServiceError,
)
from .jobs import (
    JOB_KINDS,
    TERMINAL_STATES,
    Job,
    JobContext,
    JobRequest,
    JobState,
    job_to_run,
)
from .pool import WorkerPool
from .queue import AdmissionController, JobQueue, TokenBucket
from .runners import PipelineRunner
from .sweep import DEFAULT_LEVELS, run_sweep, simulated_makespan

__all__ = [
    "AdmissionController",
    "DEFAULT_LEVELS",
    "EDAService",
    "ERROR_CODES",
    "InvalidRequestError",
    "JOB_KINDS",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobEvicted",
    "JobNotFoundError",
    "JobQueue",
    "JobRequest",
    "JobState",
    "JobTimeout",
    "NotCancellableError",
    "PipelineRunner",
    "QueueFullError",
    "RateLimitedError",
    "ServiceConfig",
    "ServiceDrainingError",
    "ServiceError",
    "SessionResult",
    "TERMINAL_STATES",
    "TokenBucket",
    "WorkerPool",
    "job_to_run",
    "run_session",
    "run_sweep",
    "seeded_job_mix",
    "session_log",
    "simulated_makespan",
]
