"""Concurrency sweep: ramp worker counts, find the throughput knee.

In the spirit of chipforge-style parallel performance tests, the sweep
offers the *same* seeded batch of execute jobs to the service at each
worker level and measures simulated-capacity throughput:

* every job reports its simulated execution seconds (the fault-injected
  executor's ``total_time`` — deterministic for one seed);
* the level's **makespan** is the greedy earliest-free-worker schedule
  of those durations over ``w`` workers (exactly the schedule an ideal
  ``w``-worker pool achieves when job runtimes dominate);
* throughput is ``jobs / makespan``.

Because the durations are simulated, the throughput curve is a pure
function of the seed: it rises near-linearly while workers are the
bottleneck and saturates once ``w`` exceeds what the batch can use —
and :func:`repro.obs.bench.detect_knee` (the same helper the bench
flow-scaling gauges use) finds that knee deterministically, which is
what lets CI gate on it.  Wall-clock seconds per level are also
recorded, but only the simulated quantities are drift-gated.

The sweep doubles as a cross-level consistency check: every level must
report *identical* per-job durations (same seeds, same jobs) — any
divergence means service scheduling leaked into job results, and the
sweep raises instead of emitting a bogus curve.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from ..obs.bench import detect_knee
from .api import EDAService, ServiceConfig, run_session
from .jobs import JobRequest
from .runners import PipelineRunner

__all__ = ["simulated_makespan", "run_sweep", "DEFAULT_LEVELS"]

#: Worker counts the default sweep ramps through.
DEFAULT_LEVELS = (1, 2, 4, 8, 16)


def simulated_makespan(durations: Sequence[float], workers: int) -> float:
    """Greedy earliest-free-worker makespan of ``durations`` on
    ``workers`` identical workers, jobs assigned in list order."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not durations:
        return 0.0
    free = [0.0] * min(workers, len(durations))
    for duration in durations:
        start = heapq.heappop(free)
        heapq.heappush(free, start + float(duration))
    return max(free)


def _sweep_requests(seed: int, jobs: int) -> List[JobRequest]:
    """The per-level batch: uniform execute jobs, per-job seeds derived
    from the sweep seed, one shared flow characterization."""
    return [
        JobRequest(
            kind="execute",
            design="ctrl",
            scale=0.2,
            seed=seed * 1000 + i,
            flow_seed=seed,
            priority=i % 2,
            client="sweep",
        )
        for i in range(jobs)
    ]


def run_sweep(
    seed: int = 0,
    jobs: int = 8,
    levels: Sequence[int] = DEFAULT_LEVELS,
    wall_seconds: Optional[Dict[int, float]] = None,
) -> dict:
    """Run the sweep; returns the ``sweep`` block of the bench document.

    ``wall_seconds`` (optional, filled in by the caller) maps level ->
    measured wall-clock seconds; everything else in the returned block
    is deterministic for one ``(seed, jobs, levels)`` triple.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if not levels:
        raise ValueError("levels must be non-empty")
    levels = sorted(set(int(w) for w in levels))
    runner = PipelineRunner()  # shared flow cache across all levels
    reference: Optional[List[float]] = None
    throughput: Dict[int, float] = {}
    makespans: Dict[int, float] = {}
    for workers in levels:
        config = ServiceConfig(
            workers=workers, queue_depth=max(jobs, 1), deterministic=True
        )
        result = run_session(_sweep_requests(seed, jobs), config, runner)
        service: EDAService = result.service
        durations: List[float] = []
        for job_id in sorted(service.jobs):
            job = service.jobs[job_id]
            if not job.result or not job.result.get("feasible"):
                raise RuntimeError(
                    f"sweep job {job_id} did not execute: "
                    f"state={job.state.value} error={job.error}"
                )
            durations.append(float(job.result["total_time"]))
        if reference is None:
            reference = durations
        elif durations != reference:
            raise RuntimeError(
                f"sweep level {workers} changed job durations — service "
                f"scheduling leaked into job results"
            )
        makespan = simulated_makespan(durations, workers)
        makespans[workers] = makespan
        throughput[workers] = jobs / makespan if makespan > 0 else 0.0
    knee = detect_knee(levels, [throughput[w] for w in levels])
    return {
        "seed": seed,
        "jobs": jobs,
        "levels": list(levels),
        "job_seconds": list(reference or []),
        "makespan_seconds": {str(w): makespans[w] for w in levels},
        "throughput": {str(w): throughput[w] for w in levels},
        "knee": knee.to_dict() if knee is not None else None,
        "wall_seconds": {
            str(w): wall_seconds[w]
            for w in sorted(wall_seconds or {})
        },
    }
