"""Asyncio worker pool: N workers draining the priority queue.

Two execution modes, one scheduling discipline:

* ``inline`` (default) — the runner executes synchronously *inside* the
  event loop.  Workers only interleave at the explicit yield between
  jobs, so with a seeded arrival schedule the completion order equals
  the queue's delivery order exactly: the whole service becomes a
  deterministic state machine.  Inline mode also lets the pool scope a
  **fresh metric registry per job** (``scoped(metrics=...)`` swaps a
  process-global, which is only safe while jobs are serialized), which
  is what the multi-job billing oracle audits.
* ``thread`` — the runner executes via ``loop.run_in_executor`` for
  real wall-clock overlap.  Jobs share the ambient metric registry and
  completion order is timing-dependent; use for throughput, not for
  replayable sessions.

Invariants the property tests hold the pool to:

* a worker slot is **always** released — done, failed, cancelled or
  timed out, the release sits in a ``finally``; after 1k churned jobs
  ``slots_released == slots_acquired`` and ``active == 0``;
* :class:`~repro.service.errors.JobCancelled` / ``JobTimeout`` raised at
  runner checkpoints become the ``cancelled`` / ``timed_out`` terminal
  states, never crash dumps — except
  :class:`~repro.service.errors.JobEvicted` (external capacity loss),
  which lands in ``cancelled`` *and* writes the per-job crash dump;
* any *other* exception marks the job ``failed`` with a structured
  error document and (when a crash directory is configured and the
  flight recorder is on) writes a replayable per-job crash dump.

``drain()`` stops admission upstream, lets queued jobs finish, and
joins all workers; ``shutdown()`` additionally cancels whatever is
still queued.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional

from ..obs import MetricsRegistry, Tracer, get_logger, get_tracer, scoped
from ..obs.log import build_crash_report, write_crash_report
from .errors import JobCancelled, JobEvicted, JobTimeout, ServiceError
from .jobs import Job, JobContext, JobState
from .queue import JobQueue

__all__ = ["WorkerPool"]


class WorkerPool:
    """``size`` async workers running jobs popped from ``queue``."""

    def __init__(
        self,
        queue: JobQueue,
        runner: Callable[[Job, JobContext], dict],
        size: int,
        clock: Callable[[], float],
        mode: str = "inline",
        crash_dir: Optional[str] = None,
        on_terminal: Optional[Callable[[Job], None]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if mode not in ("inline", "thread"):
            raise ValueError(f"unknown pool mode {mode!r}")
        self.queue = queue
        self.runner = runner
        self.size = size
        self.clock = clock
        self.mode = mode
        self.crash_dir = crash_dir
        self.on_terminal = on_terminal
        #: Installed as the global tracer around each inline job (the
        #: same swap discipline as the per-job metric registry), so
        #: runner-internal spans land on the service's tracer and under
        #: the job's trace id.
        self.tracer = tracer
        self.active = 0
        self.slots_acquired = 0
        self.slots_released = 0
        self.completed: List[str] = []  # job ids in completion order
        self._tasks: List[asyncio.Task] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._stopping = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        if self._tasks:
            raise RuntimeError("pool already started")
        self._stopping = False
        self._wakeup = asyncio.Event()
        self._tasks = [
            asyncio.get_running_loop().create_task(
                self._worker(i), name=f"service-worker-{i}"
            )
            for i in range(self.size)
        ]

    def notify(self) -> None:
        """Wake idle workers (call after every admission)."""
        if self._wakeup is not None:
            self._wakeup.set()

    async def drain(self) -> None:
        """Finish everything queued, then stop all workers."""
        self._stopping = True
        self.notify()
        if self._tasks:
            await asyncio.gather(*self._tasks)
        self._tasks = []

    async def shutdown(self) -> List[Job]:
        """Cancel the backlog, finish running jobs, stop workers.

        Returns the queued jobs that were cancelled unrun.
        """
        dropped: List[Job] = []
        while True:
            job = self.queue.pop()
            if job is None:
                break
            job.transition(JobState.CANCELLED, self.clock())
            self._finalize(job)
            dropped.append(job)
        await self.drain()
        return dropped

    # -- the worker loop --------------------------------------------------

    async def _worker(self, index: int) -> None:
        assert self._wakeup is not None
        while True:
            job = self.queue.pop()
            if job is None:
                if self._stopping:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            await self._run_job(index, job)
            # Yield so peers (and cancellation requests) interleave at a
            # deterministic point even in inline mode.
            await asyncio.sleep(0)

    async def _run_job(self, index: int, job: Job) -> None:
        started = self.clock()
        job.worker = index
        job.transition(JobState.RUNNING, started)
        ctx = JobContext(
            job,
            self.clock,
            started=started,
            timeout_seconds=job.request.timeout_seconds,
        )
        self.active += 1
        self.slots_acquired += 1
        try:
            if self.mode == "inline":
                registry = MetricsRegistry()
                tracer = self.tracer if self.tracer is not None else get_tracer()
                try:
                    with scoped(metrics=registry, tracer=self.tracer):
                        with tracer.trace(job.trace_id):
                            ctx.checkpoint()
                            result = self.runner(job, ctx)
                finally:
                    job.metrics = registry.snapshot().to_dict()
            else:
                ctx.checkpoint()
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    None, self.runner, job, ctx
                )
            job.result = result
            job.transition(JobState.DONE, self.clock())
        except JobEvicted as exc:
            # External capacity loss, not a client cancel: same terminal
            # state, but keep the forensic dump — the job did real work
            # that something outside the service destroyed.
            job.transition(JobState.CANCELLED, self.clock())
            self._dump_crash(job, exc)
        except JobCancelled:
            job.transition(JobState.CANCELLED, self.clock())
        except JobTimeout:
            job.transition(JobState.TIMED_OUT, self.clock())
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = self._error_doc(exc)
            job.transition(JobState.FAILED, self.clock())
            self._dump_crash(job, exc)
        finally:
            self.active -= 1
            self.slots_released += 1
            self.completed.append(job.job_id)
            self._finalize(job)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _error_doc(exc: Exception) -> dict:
        if isinstance(exc, ServiceError):
            return exc.to_response()["error"]
        return {
            "code": "job_failed",
            "status": 500,
            "message": f"{type(exc).__name__}: {exc}",
            "retryable": False,
            "details": {},
        }

    def _dump_crash(self, job: Job, exc: Exception) -> None:
        """Forensic dump for *unexpected* failures only."""
        if self.crash_dir is None or not get_logger().enabled:
            return
        doc = build_crash_report(
            f"service.job.{job.job_id}", job.request.seed, exc=exc
        )
        write_crash_report(doc, self.crash_dir)

    def _finalize(self, job: Job) -> None:
        if self.on_terminal is not None:
            self.on_terminal(job)
