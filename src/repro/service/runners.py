"""Job runners: map a job kind onto the characterize/plan/execute pipeline.

The default :class:`PipelineRunner` understands six kinds:

* ``flow``     — run the four-stage flow, record the modelled runtime
  grid (the characterization step);
* ``plan``     — flow runtimes -> MCKP item classes -> optimal selection
  under the request deadline (the optimization step);
* ``execute``  — plan, then run the selected deployment on the
  fault-injecting :class:`~repro.cloud.executor.PlanExecutor` seeded by
  the *job's* seed (billing counters land in the job's scoped registry);
* ``pipeline`` — flow + plan + execute in one job, cooperative
  checkpoints between stages;
* ``sleep``    — ``params["steps"]`` checkpoint rounds with no real
  work: the churn kind the cancellation/timeout/slot-leak property
  tests hammer 1k times;
* ``fleet``    — plan a seeded synthetic fleet
  (:func:`~repro.fleet.synthetic_fleet` sized by ``params``) through a
  batched :class:`~repro.fleet.FleetPlanner`; returns the amortization
  stats and fleet totals.

Flow results are memoized on ``(design, scale, flow_seed)`` — many jobs
in one session characterize the same design, and the flow is by far the
most expensive step.  The cache is lock-guarded for thread-mode pools.
Results are plain JSON-safe dicts and, for fixed request seeds,
bit-deterministic — the service's determinism contract bottoms out
here.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from ..cloud.executor import ExecutionPolicy, PlanExecutor
from ..cloud.faults import FaultProfile
from ..core.optimize import Selection, build_stage_options, solve_mckp_dp
from ..eda.flow import FlowResult, FlowRunner
from ..netlist import benchmarks
from ..obs import get_metrics
from ..obs.bench import VCPU_LEVELS
from .errors import InvalidRequestError
from .jobs import Job, JobContext

__all__ = ["PipelineRunner"]


class PipelineRunner:
    """The default ``runner(job, ctx) -> dict`` for the worker pool."""

    def __init__(
        self,
        fault_profile: Optional[FaultProfile] = None,
        policy: Optional[ExecutionPolicy] = None,
        cache_flows: bool = True,
    ):
        self.fault_profile = (
            fault_profile if fault_profile is not None else FaultProfile.calm()
        )
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.cache_flows = cache_flows
        self._flow_cache: Dict[Tuple[str, float, int], FlowResult] = {}
        self._lock = threading.Lock()

    def __call__(self, job: Job, ctx: JobContext) -> dict:
        kind = job.request.kind
        handler: Callable[[Job, JobContext], dict] = {
            "flow": self._run_flow,
            "plan": self._run_plan,
            "execute": self._run_execute,
            "pipeline": self._run_pipeline,
            "sleep": self._run_sleep,
            "fleet": self._run_fleet,
        }.get(kind)
        if handler is None:
            raise InvalidRequestError(f"unknown job kind {kind!r}", kind=kind)
        return handler(job, ctx)

    # -- shared steps -----------------------------------------------------

    def _flow(self, job: Job) -> FlowResult:
        req = job.request
        key = (req.design, req.scale, req.flow_seed)
        if self.cache_flows:
            with self._lock:
                cached = self._flow_cache.get(key)
            if cached is not None:
                return cached
        runner = FlowRunner(seed=req.flow_seed)
        aig = benchmarks.build(req.design, req.scale)
        flow = runner.run(aig, seed=req.flow_seed)
        if self.cache_flows:
            with self._lock:
                self._flow_cache[key] = flow
        return flow

    @staticmethod
    def _runtime_grid(flow: FlowResult) -> Dict[str, Dict[int, float]]:
        return {
            stage.value: {v: res.runtime(v) for v in VCPU_LEVELS}
            for stage, res in flow.stages.items()
        }

    def _select(
        self, job: Job, flow: FlowResult
    ) -> Tuple[Optional[Selection], list, float]:
        """MCKP selection under the request deadline (or a safe default)."""
        runtimes = {
            stage: {v: res.runtime(v) for v in VCPU_LEVELS}
            for stage, res in flow.stages.items()
        }
        options = build_stage_options(runtimes)
        deadline = job.request.params.get("deadline_seconds")
        if deadline is None:
            # Twice the all-cheapest makespan: always feasible.
            deadline = 2.0 * sum(s.cheapest.runtime_seconds for s in options)
        deadline = float(deadline)
        if deadline <= 0:
            raise InvalidRequestError(
                f"deadline_seconds must be positive, got {deadline!r}",
                deadline_seconds=deadline,
            )
        return solve_mckp_dp(options, deadline), options, deadline

    @staticmethod
    def _selection_doc(selection: Selection, deadline: float) -> dict:
        return {
            "feasible": True,
            "deadline_seconds": deadline,
            "total_runtime_seconds": selection.total_runtime,
            "total_cost": selection.total_cost,
            "choices": {
                stage.value: opt.label
                for stage, opt in sorted(
                    selection.choices.items(), key=lambda kv: kv[0].value
                )
            },
        }

    def _execute_selection(
        self, job: Job, selection: Selection, options, deadline: float
    ) -> dict:
        plan = selection.to_plan(job.request.design)
        executor = PlanExecutor(profile=self.fault_profile, policy=self.policy)
        outcome = executor.execute(
            plan,
            deadline_seconds=deadline * 4.0,
            seed=job.request.seed,
            stage_options=options,
        )
        metrics = get_metrics()
        metrics.gauge("service.job.total_cost").set(outcome.total_cost)
        metrics.gauge("service.job.sim_seconds").set(outcome.total_time)
        met_deadline = bool(outcome.met_deadline)
        metrics.gauge("service.job.met_deadline").set(float(met_deadline))
        metrics.gauge("service.job.deadline_seconds").set(deadline * 4.0)
        return {
            "completed": outcome.completed,
            "replanned": outcome.replanned,
            "met_deadline": met_deadline,
            "total_time": outcome.total_time,
            "total_cost": outcome.total_cost,
            "billed_seconds": outcome.trace.billed_seconds,
            "billed_cost": outcome.trace.billed_cost,
        }

    # -- kinds ------------------------------------------------------------

    def _run_flow(self, job: Job, ctx: JobContext) -> dict:
        flow = self._flow(job)
        ctx.checkpoint()
        grid = self._runtime_grid(flow)
        metrics = get_metrics()
        for stage, per_vcpu in grid.items():
            for vcpus, runtime in per_vcpu.items():
                metrics.gauge(
                    f"flow.runtime_seconds.{stage}.{vcpus}v"
                ).set(runtime)
        return {"kind": "flow", "design": flow.design, "runtimes": grid}

    def _run_plan(self, job: Job, ctx: JobContext) -> dict:
        flow = self._flow(job)
        ctx.checkpoint()
        selection, _, deadline = self._select(job, flow)
        if selection is None:
            return {
                "kind": "plan",
                "feasible": False,
                "deadline_seconds": deadline,
            }
        return {"kind": "plan", **self._selection_doc(selection, deadline)}

    def _run_execute(self, job: Job, ctx: JobContext) -> dict:
        flow = self._flow(job)
        ctx.checkpoint()
        selection, options, deadline = self._select(job, flow)
        if selection is None:
            return {
                "kind": "execute",
                "feasible": False,
                "deadline_seconds": deadline,
            }
        ctx.checkpoint()
        doc = self._execute_selection(job, selection, options, deadline)
        return {"kind": "execute", "feasible": True, **doc}

    def _run_pipeline(self, job: Job, ctx: JobContext) -> dict:
        flow = self._flow(job)
        ctx.checkpoint()
        selection, options, deadline = self._select(job, flow)
        ctx.checkpoint()
        plan_doc = (
            self._selection_doc(selection, deadline)
            if selection is not None
            else {"feasible": False, "deadline_seconds": deadline}
        )
        exec_doc = (
            self._execute_selection(job, selection, options, deadline)
            if selection is not None
            else None
        )
        return {
            "kind": "pipeline",
            "runtimes": self._runtime_grid(flow),
            "plan": plan_doc,
            "execution": exec_doc,
        }

    def _run_sleep(self, job: Job, ctx: JobContext) -> dict:
        steps = int(job.request.params.get("steps", 1))
        if steps < 0:
            raise InvalidRequestError(
                f"sleep steps must be >= 0, got {steps}", steps=steps
            )
        done = 0
        for _ in range(steps):
            ctx.checkpoint()
            done += 1
        return {"kind": "sleep", "steps": done}

    def _run_fleet(self, job: Job, ctx: JobContext) -> dict:
        from ..fleet import FleetPlanner, synthetic_fleet

        params = job.request.params
        flows = int(params.get("flows", 2000))
        menus = int(params.get("menus", 8))
        mode = params.get("mode", "approx")
        if flows < 1 or menus < 1:
            raise InvalidRequestError(
                f"fleet flows/menus must be >= 1, got {flows}/{menus}",
                flows=flows,
                menus=menus,
            )
        if mode not in ("exact", "approx"):
            raise InvalidRequestError(
                f"fleet mode must be 'exact' or 'approx', got {mode!r}",
                mode=mode,
            )
        menu_map, specs = synthetic_fleet(
            seed=job.request.seed, flows=flows, menus=menus
        )
        ctx.checkpoint()
        planner = FleetPlanner(mode=mode)
        for menu_id in sorted(menu_map):
            planner.register_menu(menu_id, menu_map[menu_id])
        plan = planner.plan(specs)
        ctx.checkpoint()
        metrics = get_metrics()
        metrics.gauge("service.fleet.total_cost").set(plan.total_cost)
        metrics.gauge("service.fleet.feasible_flows").set(
            plan.stats.feasible_flows
        )
        return {
            "kind": "fleet",
            "mode": mode,
            "flows": plan.stats.flows,
            "feasible_flows": plan.stats.feasible_flows,
            "infeasible_flows": plan.stats.infeasible_flows,
            "groups": plan.stats.groups,
            "group_hits": plan.stats.group_hits,
            "pruned_options": plan.stats.pruned_options,
            "total_cost": plan.total_cost,
            "max_certified_gap": plan.max_certified_gap,
        }
