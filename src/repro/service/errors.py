"""Typed error taxonomy for the EDA-flow service layer.

Every way a request can be refused or a job can die has a **named**
exception carrying an HTTP-flavoured status code and a machine-readable
``code`` slug, so clients (and tests) dispatch on types and never parse
message strings.  :meth:`ServiceError.to_response` renders the
structured error document the in-process API and the CLI print:

.. code-block:: json

    {"error": {"code": "rate_limited", "status": 429,
               "message": "...", "retryable": true,
               "details": {"client": "alice", "retry_after_seconds": 0.5}}}

Three extra exceptions — :class:`JobCancelled`, :class:`JobEvicted` and
:class:`JobTimeout` — are *control flow*, not responses: runners raise
them at cooperative checkpoints and the worker pool converts them into
the ``cancelled`` / ``timed_out`` terminal states instead of error
documents.  :class:`JobEvicted` (a :class:`JobCancelled` subtype) marks
cancellation by an *external* event — an AZ reclaim, a chaos storm —
rather than a client request; unlike a client cancel it leaves a
forensic crash dump and is eligible for automatic requeueing.
"""

from __future__ import annotations

from typing import Dict, Type

__all__ = [
    "ServiceError",
    "InvalidRequestError",
    "JobNotFoundError",
    "NotCancellableError",
    "RateLimitedError",
    "QueueFullError",
    "ServiceDrainingError",
    "JobCancelled",
    "JobEvicted",
    "JobTimeout",
    "ERROR_CODES",
]


class ServiceError(Exception):
    """Base class for typed request rejections and lookup failures.

    Subclasses pin ``code`` (a stable slug), ``status`` (the HTTP status
    the error maps to at a transport boundary), and ``retryable``
    (whether backing off and resubmitting can succeed).
    """

    code: str = "service_error"
    status: int = 500
    retryable: bool = False

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.message = message
        self.details: Dict[str, object] = details

    def to_response(self) -> dict:
        """The structured error document (sorted details, stable keys)."""
        return {
            "error": {
                "code": self.code,
                "status": self.status,
                "message": self.message,
                "retryable": self.retryable,
                "details": {k: self.details[k] for k in sorted(self.details)},
            }
        }


class InvalidRequestError(ServiceError):
    """The request itself is malformed (unknown kind, bad priority...)."""

    code = "invalid_request"
    status = 400


class JobNotFoundError(ServiceError):
    """No job with the given id exists in this service instance."""

    code = "job_not_found"
    status = 404


class NotCancellableError(ServiceError):
    """The job is already terminal; cancellation cannot apply."""

    code = "not_cancellable"
    status = 409


class RateLimitedError(ServiceError):
    """The client exhausted its token bucket; retry after the hint."""

    code = "rate_limited"
    status = 429
    retryable = True


class QueueFullError(ServiceError):
    """Admission refused: the bounded queue is at capacity."""

    code = "queue_full"
    status = 503
    retryable = True


class ServiceDrainingError(ServiceError):
    """The service is draining/shut down and accepts no new work."""

    code = "draining"
    status = 503
    retryable = True


#: Registry of rejection codes -> exception types (stable public map).
ERROR_CODES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        InvalidRequestError,
        JobNotFoundError,
        NotCancellableError,
        RateLimitedError,
        QueueFullError,
        ServiceDrainingError,
    )
}


class JobCancelled(Exception):
    """Control flow: a runner observed its job's cancellation request."""


class JobEvicted(JobCancelled):
    """Control flow: the job was cancelled by an *external* event.

    Raised at cooperative checkpoints once ``Job.external_cancel`` is
    set (a spot reclaim took the worker's capacity, a chaos scenario
    struck the job's zone).  The pool still lands the job in the
    ``cancelled`` terminal state and always releases its slot, but —
    unlike a client cancel — it also writes the per-job crash dump and
    the service may requeue the job.
    """

    def __init__(self, job_id: str, reason: str = "external"):
        super().__init__(job_id)
        self.job_id = job_id
        self.reason = reason


class JobTimeout(Exception):
    """Control flow: a runner observed its per-job deadline had passed."""
