"""The in-process EDA-flow service: submit/status/cancel + session driver.

:class:`EDAService` wires the pieces together — admission controller in
front of the priority queue, the asyncio worker pool behind it, a
dedicated tracer/registry pair so every request is span-wrapped and
every rejection counted.  ``submit``/``status``/``cancel`` are plain
synchronous methods (they never block); only *running* the pool needs an
event loop, so tests can drive scheduling explicitly while the CLI uses
:func:`run_session`.

Determinism contract (``deterministic=True``, the default): the service
clock is a shared :class:`~repro.obs.spans.TickClock`, the pool runs
``inline``, and :func:`run_session` admits the whole request list before
the first worker step runs — so for one seed the admission outcomes, the
completion order, the per-job billing totals, and the byte-level
:func:`session_log` are all identical across runs.  That is the
acceptance property the 100-job regression test replays twice.

Nothing here reads wall-clock time; timestamps enter only at the CLI
boundary (``repro serve`` stamps the run-store records it persists).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..obs import MetricsRegistry, Tracer, merge_snapshots
from ..obs.attrib import attribute_session
from ..obs.spans import TickClock, mint_trace_id
from ..obs.store import RunRecord
from .errors import JobNotFoundError, NotCancellableError, ServiceError
from .jobs import Job, JobContext, JobRequest, JobState, job_to_run
from .pool import WorkerPool
from .queue import AdmissionController, JobQueue, TokenBucket
from .runners import PipelineRunner

__all__ = [
    "ServiceConfig",
    "EDAService",
    "SessionResult",
    "run_session",
    "session_log",
    "seeded_job_mix",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one service instance.

    ``rate_capacity=None`` disables per-client rate limiting entirely;
    otherwise each client gets a token bucket with that burst capacity,
    refilled at ``rate_refill_per_second`` on the service clock.
    """

    workers: int = 2
    queue_depth: int = 64
    rate_capacity: Optional[float] = None
    rate_refill_per_second: float = 1.0
    mode: str = "inline"
    deterministic: bool = True
    crash_dir: Optional[str] = None
    rev: str = "dev"
    #: Automatically resubmit jobs cancelled by an external eviction
    #: (never jobs cancelled by the client), up to ``max_requeues``
    #: incarnations per original request.
    requeue_on_eviction: bool = True
    max_requeues: int = 1


class EDAService:
    """Admission + queue + pool behind a three-verb request API."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        runner: Optional[Callable[[Job, JobContext], dict]] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.clock: Callable[[], float] = (
            TickClock() if self.config.deterministic else _monotonic()
        )
        # The tracer shares the service clock: job history edges and span
        # boundaries interleave on one timeline, which is what makes the
        # critical-path attribution in repro.obs.attrib exact (bucket
        # sums equal end-to-end durations bit-for-bit under tick clocks).
        self.tracer = Tracer(
            clock=self.clock, deterministic=self.config.deterministic
        )
        self.registry = MetricsRegistry()
        self.queue = JobQueue(depth=self.config.queue_depth)
        limiter = (
            TokenBucket(
                self.config.rate_capacity,
                self.config.rate_refill_per_second,
                self.clock,
            )
            if self.config.rate_capacity is not None
            else None
        )
        self.admission = AdmissionController(self.queue, rate_limiter=limiter)
        self.runner = runner if runner is not None else PipelineRunner()
        self.pool = WorkerPool(
            queue=self.queue,
            runner=self._traced_runner,
            size=self.config.workers,
            clock=self.clock,
            mode=self.config.mode,
            crash_dir=self.config.crash_dir,
            on_terminal=self._on_terminal,
            tracer=self.tracer,
        )
        self.jobs: Dict[str, Job] = {}
        self.terminal_order: List[str] = []
        self._seq = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- request API ------------------------------------------------------

    def submit(self, request: JobRequest) -> dict:
        """Admit one request; returns the job document or raises a
        :class:`~repro.service.errors.ServiceError` rejection."""
        with self.tracer.span(
            "service.submit",
            client=request.client,
            kind=request.kind,
            priority=request.priority,
        ) as span:
            try:
                request.validate()
                job = Job(
                    job_id=f"job-{self._seq:04d}",
                    request=request,
                    seq=self._seq,
                )
                self.admission.admit(job)
            except ServiceError as exc:
                span.set_tag("rejected", exc.code)
                self.registry.counter(f"service.rejected.{exc.code}").inc()
                raise
            self._seq += 1
            self.jobs[job.job_id] = job
            # One trace per admitted job, minted deterministically from
            # the request seed and the admission sequence number.  The
            # submit span joins it retroactively (the id exists only
            # once admission succeeded — rejected submits stay unstitched).
            job.trace_id = mint_trace_id("service", job.request.seed, job.seq)
            span.trace_id = job.trace_id
            span.set_tag("trace_id", job.trace_id)
            # Jobs are born QUEUED; record the admission edge directly.
            job.history.append((JobState.QUEUED.value, self.clock()))
            self.registry.counter("service.admitted").inc()
            self.registry.gauge("service.queue_depth").set(len(self.queue))
            span.set_tag("job_id", job.job_id)
            self._idle.clear()
            self.pool.notify()
            return job.to_public_dict()

    def status(self, job_id: str) -> dict:
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id}", job_id=job_id)
        return job.to_public_dict()

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued job immediately, or flag a running one.

        Running jobs observe the flag at their next cooperative
        checkpoint; terminal jobs raise
        :class:`~repro.service.errors.NotCancellableError`.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id}", job_id=job_id)
        if job.terminal:
            raise NotCancellableError(
                f"job {job_id} is already {job.state.value}",
                job_id=job_id,
                state=job.state.value,
            )
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            # Never reaches a worker: the queue drops it lazily at pop.
            job.transition(JobState.CANCELLED, self.clock())
            self._on_terminal(job)
        self.registry.counter("service.cancel_requests").inc()
        return job.to_public_dict()

    def evict(self, job_id: str, reason: str = "external") -> dict:
        """Cancel a job because something *outside* the service took its
        capacity (an AZ reclaim, a chaos storm striking its zone).

        Queued jobs go terminal immediately; running jobs observe the
        eviction at their next cooperative checkpoint as
        :class:`~repro.service.errors.JobEvicted`.  Either way the job
        lands in ``cancelled`` and — when ``requeue_on_eviction`` is set
        and the budget allows — a fresh incarnation of the request is
        admitted automatically.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id}", job_id=job_id)
        if job.terminal:
            raise NotCancellableError(
                f"job {job_id} is already {job.state.value}",
                job_id=job_id,
                state=job.state.value,
            )
        job.external_cancel = reason
        if job.state is JobState.QUEUED:
            job.transition(JobState.CANCELLED, self.clock())
            self._on_terminal(job)
        self.registry.counter("service.evictions").inc()
        return job.to_public_dict()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (requires a running event loop)."""
        self.pool.start()

    async def drain(self) -> None:
        """Stop admission, run the backlog dry, join all workers."""
        self.admission.draining = True
        await self.pool.drain()

    async def shutdown(self) -> List[Job]:
        """Stop admission, cancel the backlog, join all workers."""
        self.admission.draining = True
        return await self.pool.shutdown()

    async def join(self) -> None:
        """Wait until every admitted job is terminal (pool keeps running)."""
        await self._idle.wait()

    # -- introspection ----------------------------------------------------

    @property
    def all_terminal(self) -> bool:
        return all(job.terminal for job in self.jobs.values())

    def records(self, timestamp_utc: str) -> List[RunRecord]:
        """Run-store records: one per terminal job plus a session record.

        ``timestamp_utc`` is stamped by the caller (the CLI boundary) —
        the service itself never reads wall-clock time.  Under the
        deterministic configuration each job record also carries its
        exact latency attribution (``labels["attrib"]``), and the session
        record's metrics gain labeled latency/attribution histograms —
        computed into a *fresh* registry each call so ``records()`` stays
        idempotent.
        """
        attribs = {}
        if self.config.deterministic and self.tracer.enabled:
            attribs = {a.job_id: a for a in attribute_session(self)}
        out = [
            job_to_run(
                self.jobs[job_id],
                self.config.rev,
                timestamp_utc,
                attribution=(
                    attribs[job_id].to_dict() if job_id in attribs else None
                ),
            )
            for job_id in self.terminal_order
        ]
        labels: Dict[str, object] = {
            "admitted": self.admission.admitted,
            "rejected": {
                k: self.admission.rejected[k]
                for k in sorted(self.admission.rejected)
            },
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "completion_order": list(self.terminal_order),
            "states": {
                job_id: self.jobs[job_id].state.value
                for job_id in sorted(self.jobs)
            },
        }
        snapshot = self.registry.snapshot()
        if attribs:
            extra = MetricsRegistry()
            for job_id in self.terminal_order:
                a = attribs[job_id]
                request = self.jobs[job_id].request
                for bucket, value in a.buckets:
                    extra.histogram(
                        "service.attrib_ticks", bucket=bucket
                    ).observe(value)
                extra.histogram("service.latency_ticks").observe(a.total)
                extra.histogram(
                    "service.latency_ticks",
                    job_kind=request.kind,
                    priority=str(request.priority),
                ).observe(a.total)
            snapshot = merge_snapshots(snapshot, extra.snapshot())
        out.append(
            RunRecord(
                kind="service",
                rev=self.config.rev,
                seed=0,
                timestamp_utc=timestamp_utc,
                labels=labels,
                metrics=snapshot.to_dict(),
            )
        )
        return out

    # -- internals --------------------------------------------------------

    def _traced_runner(self, job: Job, ctx: JobContext) -> dict:
        # The pool has already bound job.trace_id on this thread, so this
        # span — and every descendant the runner/executor opens — stitches
        # into the job's end-to-end trace.
        with self.tracer.span(
            "service.job",
            job_id=job.job_id,
            kind=job.request.kind,
            priority=job.request.priority,
            client=job.request.client,
            trace_id=job.trace_id,
        ):
            return self.runner(job, ctx)

    def _on_terminal(self, job: Job) -> None:
        self.terminal_order.append(job.job_id)
        self.registry.counter(f"service.terminal.{job.state.value}").inc()
        self._maybe_requeue(job)
        self.registry.gauge("service.queue_depth").set(len(self.queue))
        if self.all_terminal:
            self._idle.set()

    def _maybe_requeue(self, job: Job) -> bool:
        """Resubmit an evicted job's request under a fresh job id.

        Only externally-evicted cancellations qualify; client cancels and
        natural terminal states never requeue.  A draining service, an
        exhausted requeue budget, or an admission rejection all end the
        line (each counted separately so sessions stay auditable).
        """
        if (
            job.external_cancel is None
            or job.state is not JobState.CANCELLED
            or not self.config.requeue_on_eviction
        ):
            return False
        if job.requeues >= self.config.max_requeues:
            self.registry.counter("service.requeue_exhausted").inc()
            return False
        if self.admission.draining:
            self.registry.counter("service.requeue_draining").inc()
            return False
        clone = Job(
            job_id=f"job-{self._seq:04d}",
            request=job.request,
            seq=self._seq,
            requeues=job.requeues + 1,
            requeue_of=job.job_id,
        )
        try:
            self.admission.admit(clone)
        except ServiceError as exc:
            self.registry.counter(f"service.rejected.{exc.code}").inc()
            return False
        self._seq += 1
        self.jobs[clone.job_id] = clone
        clone.trace_id = mint_trace_id(
            "service", clone.request.seed, clone.seq
        )
        clone.history.append((JobState.QUEUED.value, self.clock()))
        self.registry.counter("service.requeued").inc()
        self._idle.clear()
        self.pool.notify()
        return True


def _monotonic() -> Callable[[], float]:
    import time

    return time.monotonic


# -- session driver -------------------------------------------------------


@dataclass
class SessionResult:
    """Everything one driven session produced."""

    service: EDAService
    outcomes: List[dict] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return sum(1 for o in self.outcomes if o.get("accepted"))

    @property
    def rejected(self) -> int:
        return len(self.outcomes) - self.accepted

    @property
    def completion_order(self) -> List[str]:
        return list(self.service.terminal_order)

    def billing_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-job billed seconds/cost from the per-job registries."""
        out: Dict[str, Dict[str, float]] = {}
        for job_id in self.service.terminal_order:
            counters = self.service.jobs[job_id].metrics.get("counters", {})
            out[job_id] = {
                "billed_seconds": counters.get("executor.billed_seconds", 0.0),
                "billed_cost": counters.get("executor.billed_cost", 0.0),
            }
        return out


def run_session(
    requests: Sequence[JobRequest],
    config: Optional[ServiceConfig] = None,
    runner: Optional[Callable[[Job, JobContext], dict]] = None,
    cancel: Optional[Dict[int, int]] = None,
) -> SessionResult:
    """Drive one complete service session synchronously.

    Every request is submitted before the first worker step runs (the
    submit loop never awaits), so with ``deterministic=True`` the whole
    session is a pure function of ``requests`` and the request seeds.
    ``cancel`` maps *submission index -> number of completed jobs to
    wait for* before cancelling that job (0 = cancel while queued).
    """
    service = EDAService(config=config, runner=runner)

    async def _drive() -> List[dict]:
        service.start()
        outcomes: List[dict] = []
        job_ids: Dict[int, str] = {}
        for index, request in enumerate(requests):
            try:
                doc = service.submit(request)
                job_ids[index] = doc["job_id"]
                outcomes.append({"accepted": True, "job_id": doc["job_id"]})
            except ServiceError as exc:
                outcomes.append({"accepted": False, **exc.to_response()})
        for index, after in sorted((cancel or {}).items()):
            job_id = job_ids.get(index)
            if job_id is None:
                continue
            while len(service.pool.completed) < after:
                await asyncio.sleep(0)
            try:
                service.cancel(job_id)
            except (NotCancellableError, JobNotFoundError):
                pass
        await service.drain()
        return outcomes

    outcomes = asyncio.run(_drive())
    return SessionResult(service=service, outcomes=outcomes)


def session_log(service: EDAService) -> List[str]:
    """Byte-stable per-job log lines in completion order.

    One line per terminal job — id, priority, client, kind, state,
    worker slot, billed totals — exactly reproducible for one seed; the
    CI smoke job diffs two same-seed runs of this log.
    """
    lines: List[str] = []
    for job_id in service.terminal_order:
        job = service.jobs[job_id]
        counters = job.metrics.get("counters", {})
        lines.append(
            f"{job.job_id} priority={job.request.priority} "
            f"client={job.request.client} kind={job.request.kind} "
            f"state={job.state.value} worker={job.worker} "
            f"billed_seconds={counters.get('executor.billed_seconds', 0.0):.6f} "
            f"billed_cost={counters.get('executor.billed_cost', 0.0):.6f}"
        )
    return lines


def seeded_job_mix(
    seed: int,
    jobs: int,
    kinds: Sequence[str] = ("execute", "flow", "plan"),
    priorities: Sequence[int] = (0, 1),
    clients: Sequence[str] = ("alice", "bob"),
    design: str = "ctrl",
    scale: float = 0.2,
) -> List[JobRequest]:
    """A reproducible mixed-priority request batch for smoke/regression
    runs — same seed, same batch, byte for byte."""
    rng = random.Random(seed)
    out: List[JobRequest] = []
    for _ in range(jobs):
        out.append(
            JobRequest(
                kind=rng.choice(list(kinds)),
                design=design,
                scale=scale,
                seed=rng.randrange(1 << 16),
                flow_seed=rng.choice((0, 1)),
                priority=rng.choice(list(priorities)),
                client=rng.choice(list(clients)),
            )
        )
    return out
