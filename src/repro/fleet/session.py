"""Continuous fleet sessions: plan, tick, reprice, re-plan, execute.

Glues the three fleet pieces to the existing execution stack: a
:class:`~repro.fleet.planner.FleetPlanner` holds the amortized state, a
:class:`~repro.fleet.market.SpotMarketFeed` moves spot prices each tick,
and a :class:`~repro.cloud.executor.PlanExecutor` (the existing fault-
injecting engine, with its own mid-flight fallback/re-plan hooks fed the
*live* repriced menu) runs a slice of the fleet between ticks.  Flows
still pending when a tick lands are re-planned against the new prices —
the "preemption storm hits, the whole fleet re-plans" loop from the
ROADMAP.

Determinism: the session never reads a clock or unseeded RNG — per-flow
executor seeds derive from ``crc32(seed, flow_id)`` — so the same
``(fleet, seed, ticks)`` replays byte-for-byte (:meth:`SessionReport.dump`).

:func:`synthetic_fleet` mints the seeded menu/flow populations that the
bench, the CLI, the service runner, and the tests all share.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cloud.executor import ExecutionPolicy, PlanExecutor
from ..cloud.faults import FaultProfile
from ..cloud.instance import InstanceFamily, VMConfig
from ..cloud.spot import SpotMarket
from ..core.optimize import ConfigOption, StageOptions
from ..eda.job import EDAStage
from ..obs.spans import mint_trace_id
from .market import SpotMarketFeed
from .planner import FleetPlan, FleetPlanner, FlowSpec

__all__ = [
    "synthetic_fleet",
    "TickReport",
    "SessionReport",
    "ContinuousSession",
]


def synthetic_fleet(
    seed: int,
    flows: int,
    menus: int = 16,
    deadline_buckets: int = 8,
    max_stages: int = 4,
    spot: bool = True,
    discount: float = 0.3,
) -> Tuple[Dict[str, List[StageOptions]], List[FlowSpec]]:
    """A seeded synthetic fleet: shared menus plus a flow population.

    Menus model distinct (design, catalog) characterizations — up to
    ``max_stages`` stages with 2-4 sized options each, plus spot twins
    when ``spot`` — and flows draw a menu and one of
    ``deadline_buckets`` deadlines between just-infeasible and slack.
    Bucketing mirrors production (deadlines cluster on SLA tiers) and is
    what makes fleet planning amortizable at all.
    """
    if flows < 1 or menus < 1 or deadline_buckets < 1:
        raise ValueError("flows, menus, and deadline_buckets must be >= 1")
    rng = random.Random(zlib.crc32(f"fleet:{seed}".encode()))
    families = list(InstanceFamily)
    menu_map: Dict[str, List[StageOptions]] = {}
    menu_deadlines: Dict[str, List[int]] = {}
    market = SpotMarket(discount=discount, interrupt_rate_per_hour=0.05)
    for m in range(menus):
        menu_id = f"menu-{m:04d}"
        stages: List[StageOptions] = []
        for stage in EDAStage.ordered()[: rng.randint(1, max_stages)]:
            options: List[ConfigOption] = []
            for j in range(rng.randint(2, 4)):
                vcpus = 2 ** rng.randint(0, 4)
                vm = VMConfig(
                    name=f"{menu_id}.{stage.value}.{j}",
                    family=rng.choice(families),
                    vcpus=vcpus,
                    memory_gb=4.0 * vcpus,
                    price_per_hour=round(rng.uniform(0.05, 3.0), 4),
                )
                runtime = rng.randint(5, 240)
                options.append(
                    ConfigOption(
                        vm=vm, runtime_seconds=runtime, price=vm.cost(runtime)
                    )
                )
            stages.append(StageOptions(stage=stage, options=options))
        if spot:
            stages = market.augment_stage_options(stages)
        menu_map[menu_id] = stages
        fastest = sum(
            min(o.runtime_seconds for o in s.options) for s in stages
        )
        slowest = sum(
            max(o.runtime_seconds for o in s.options) for s in stages
        )
        lo, hi = max(1, fastest - 2), slowest + 20
        if deadline_buckets == 1:
            menu_deadlines[menu_id] = [hi]
        else:
            menu_deadlines[menu_id] = [
                lo + round(k * (hi - lo) / (deadline_buckets - 1))
                for k in range(deadline_buckets)
            ]
    menu_ids = sorted(menu_map)
    specs = [
        FlowSpec(
            flow_id=f"flow-{i:07d}",
            menu_id=(mid := menu_ids[rng.randrange(len(menu_ids))]),
            deadline_seconds=float(
                menu_deadlines[mid][rng.randrange(deadline_buckets)]
            ),
        )
        for i in range(flows)
    ]
    return menu_map, specs


@dataclass
class TickReport:
    """What one market tick did to the fleet."""

    tick: int
    discount: float
    invalidated: int
    replanned_flows: int
    feasible_flows: int
    total_cost: float
    executed: List[str] = field(default_factory=list)
    executed_cost: float = 0.0
    executed_completed: int = 0


@dataclass
class SessionReport:
    """Full session outcome with a byte-stable rendering."""

    seed: int
    mode: str
    ticks: List[TickReport] = field(default_factory=list)
    final_plan: Optional[FleetPlan] = None

    @property
    def executed_flows(self) -> int:
        return sum(len(t.executed) for t in self.ticks)

    @property
    def executed_cost(self) -> float:
        return sum(t.executed_cost for t in self.ticks)

    def dump(self) -> str:
        lines = [
            f"repro-fleet-session/1 seed={self.seed} mode={self.mode} "
            f"ticks={len(self.ticks)} executed={self.executed_flows} "
            f"executed_cost={self.executed_cost:.6f}"
        ]
        for t in self.ticks:
            lines.append(
                f"tick={t.tick} discount={t.discount:.6f} "
                f"invalidated={t.invalidated} replanned={t.replanned_flows} "
                f"feasible={t.feasible_flows} cost={t.total_cost:.6f} "
                f"executed={len(t.executed)} "
                f"executed_cost={t.executed_cost:.6f} "
                f"completed={t.executed_completed}"
            )
        return "\n".join(lines) + "\n"


class ContinuousSession:
    """Drive a fleet through market ticks with mid-flight re-planning.

    Each :meth:`step` advances one tick: reprice every menu to the
    tick's spot discount, re-register (invalidating only menus whose
    economics moved), re-plan all pending flows, then hand the first
    ``execute_per_tick`` of them to the fault-injecting executor with
    the *live* menu as ``stage_options`` — so preemption-driven
    fallback inside the executor re-plans on current prices too.
    """

    def __init__(
        self,
        menus: Dict[str, List[StageOptions]],
        flows: Sequence[FlowSpec],
        feed: Optional[SpotMarketFeed] = None,
        planner: Optional[FleetPlanner] = None,
        profile: Optional[FaultProfile] = None,
        policy: Optional[ExecutionPolicy] = None,
        seed: int = 0,
        execute_per_tick: int = 0,
    ):
        if execute_per_tick < 0:
            raise ValueError("execute_per_tick must be non-negative")
        self.raw_menus = dict(menus)
        self.pending: List[FlowSpec] = sorted(
            flows, key=lambda f: f.flow_id
        )
        self.feed = feed if feed is not None else SpotMarketFeed(seed=seed)
        self.planner = planner if planner is not None else FleetPlanner()
        self.executor = PlanExecutor(
            profile=profile if profile is not None else FaultProfile.calm(),
            policy=policy if policy is not None else ExecutionPolicy(),
        )
        self.seed = seed
        self.execute_per_tick = execute_per_tick
        self.live_menus: Dict[str, List[StageOptions]] = {}
        self.report = SessionReport(seed=seed, mode=self.planner.mode)
        self._tick = 0

    def _flow_seed(self, flow_id: str) -> int:
        return zlib.crc32(f"{self.seed}:exec:{flow_id}".encode())

    def _flow_trace_id(self, flow_id: str) -> str:
        """One deterministic trace per executed flow (seed + flow id)."""
        return mint_trace_id(f"fleet:{flow_id}", self.seed)

    def step(self) -> TickReport:
        """Advance one market tick; returns that tick's report."""
        tick = self._tick
        self._tick += 1
        invalidated = 0
        discount = self.feed.discount(tick)
        for menu_id in sorted(self.raw_menus):
            repriced, _ = self.feed.reprice_stage_options(
                self.raw_menus[menu_id], tick
            )
            if self.planner.register_menu(menu_id, repriced):
                invalidated += 1
            self.live_menus[menu_id] = self.planner.menu(menu_id)
        plan = self.planner.plan(self.pending)
        self.report.final_plan = plan
        tick_report = TickReport(
            tick=tick,
            discount=discount,
            invalidated=invalidated,
            replanned_flows=plan.stats.flows,
            feasible_flows=plan.stats.feasible_flows,
            total_cost=plan.total_cost,
        )

        # Executor hook: run the head of the pending queue on the live
        # (repriced) menus; the executor's own fallback re-planning sees
        # the same prices the fleet planner just used.
        if self.execute_per_tick:
            by_flow: Dict[str, Tuple[str, Optional[object]]] = {}
            for group in plan.groups:
                for flow_id in group.flow_ids:
                    by_flow[flow_id] = (group.menu_id, group.selection)
            batch = self.pending[: self.execute_per_tick]
            self.pending = self.pending[self.execute_per_tick :]
            for spec in batch:
                menu_id, selection = by_flow[spec.flow_id]
                if selection is None:
                    continue  # infeasible flows stay unexecuted
                deployment = selection.to_plan(spec.flow_id)
                outcome = self.executor.execute(
                    deployment,
                    deadline_seconds=spec.deadline_seconds,
                    seed=self._flow_seed(spec.flow_id),
                    stage_options=self.live_menus[menu_id],
                    record_events=False,
                    trace_context=self._flow_trace_id(spec.flow_id),
                )
                tick_report.executed.append(spec.flow_id)
                tick_report.executed_cost += outcome.total_cost
                tick_report.executed_completed += int(outcome.completed)
        self.report.ticks.append(tick_report)
        return tick_report

    def run(self, ticks: int) -> SessionReport:
        """Run ``ticks`` steps and return the full session report."""
        if ticks < 1:
            raise ValueError("ticks must be >= 1")
        for _ in range(ticks):
            self.step()
        return self.report
