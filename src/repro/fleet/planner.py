"""Fleet-scale batched MCKP planning with table reuse and pruning.

The paper's Problem 3 plans *one* flow; production means queues of
millions of flows competing for shared capacity.  Three amortizations
make that tractable:

* **Menu sharing** — flows that characterize the same design on the
  same catalog share a stage-option menu.  The planner groups flows by
  ``(menu, floor(deadline))`` so identical instances are solved once and
  answered from a dict hit.
* **DP-table reuse** — one :class:`~repro.core.optimize.MCKPTable`
  solved to the *largest* deadline in a menu's group answers every
  smaller deadline identically to a fresh ``solve_mckp_dp`` call (the
  DP state is indexed by exact runtime and never reads forward), so a
  thousand nearby deadlines cost one DP.
* **Dominance pruning** — IP-dominated options are removed from every
  menu before any solve; the optimum is provably unchanged and the DP's
  inner loop shrinks.

Two modes: ``exact`` (DP tables) and ``approx``
(:func:`~repro.core.optimize.solve_approx`, the greedy LP-frontier walk
whose per-instance ``certified_gap`` upper-bounds the true optimality
gap).  The ``fleet`` oracle in :mod:`repro.verify` fuzzes all three
amortizations against fresh exact solves.

Everything is deterministic: same menus + flows -> byte-identical
:meth:`FleetPlan.dump` (CI plans a 10k-flow fleet twice and ``cmp``'s
the dumps).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.optimize import (
    ApproxResult,
    MCKPTable,
    Selection,
    StageOptions,
    prune_stage_options,
    solve_approx,
)

__all__ = [
    "FlowSpec",
    "GroupPlan",
    "FleetStats",
    "FleetPlan",
    "FleetPlanner",
    "menu_signature",
]


def menu_signature(stages: Sequence[StageOptions]) -> int:
    """Stable 32-bit fingerprint of a menu's economics.

    Covers every option's stage, VM name, runtime, and price, so any
    price tick that actually moves a number changes the signature — the
    planner uses this to skip cache invalidation on no-op re-registers.
    """
    parts: List[str] = []
    for stage_opts in stages:
        for opt in stage_opts.options:
            parts.append(
                f"{stage_opts.stage.value}|{opt.vm.name}|"
                f"{opt.runtime_seconds}|{opt.price!r}"
            )
    return zlib.crc32(";".join(parts).encode())


@dataclass(frozen=True)
class FlowSpec:
    """One queued flow: which shared menu it prices, and its deadline."""

    flow_id: str
    menu_id: str
    deadline_seconds: float


@dataclass
class GroupPlan:
    """One solved ``(menu, deadline)`` cell and every flow it answers."""

    menu_id: str
    capacity: int
    feasible: bool
    selection: Optional[Selection]
    objective: float
    total_cost: float
    total_runtime: int
    certified_gap: Optional[float]
    flow_ids: List[str] = field(default_factory=list)

    def choice_labels(self) -> str:
        if self.selection is None:
            return "-"
        return ",".join(
            f"{stage.value}:{opt.vm.name}@{opt.runtime_seconds}s"
            for stage, opt in self.selection.choices.items()
        )


@dataclass
class FleetStats:
    """Amortization counters for one :meth:`FleetPlanner.plan` call."""

    flows: int = 0
    feasible_flows: int = 0
    infeasible_flows: int = 0
    groups: int = 0
    group_hits: int = 0
    tables_built: int = 0
    table_queries: int = 0
    approx_solves: int = 0
    pruned_options: int = 0
    invalidations: int = 0


@dataclass
class FleetPlan:
    """A whole fleet's plans, grouped by solved ``(menu, deadline)`` cell."""

    mode: str
    groups: List[GroupPlan]
    stats: FleetStats

    @property
    def total_cost(self) -> float:
        """Summed cost of every feasible flow's plan.

        Summed in sorted group order so the float total is independent
        of whether a group came from the solve path or the cell cache.
        """
        return sum(
            g.total_cost * len(g.flow_ids)
            for g in sorted(self.groups, key=lambda g: (g.menu_id, g.capacity))
            if g.feasible
        )

    @property
    def max_certified_gap(self) -> float:
        """Worst certified gap across groups (0.0 in exact mode)."""
        gaps = [g.certified_gap for g in self.groups if g.certified_gap]
        return max(gaps) if gaps else 0.0

    def group_for(self, flow_id: str) -> Optional[GroupPlan]:
        """The solved cell covering one flow (linear scan; debugging aid)."""
        for group in self.groups:
            if flow_id in group.flow_ids:
                return group
        return None

    def dump(self) -> str:
        """Byte-stable plan dump (same fleet -> identical bytes)."""
        lines = [
            f"repro-fleet/1 mode={self.mode} flows={self.stats.flows} "
            f"groups={self.stats.groups} feasible={self.stats.feasible_flows} "
            f"infeasible={self.stats.infeasible_flows} "
            f"pruned={self.stats.pruned_options} "
            f"tables={self.stats.tables_built} "
            f"total_cost={self.total_cost:.6f}"
        ]
        for group in sorted(self.groups, key=lambda g: (g.menu_id, g.capacity)):
            gap = (
                "-"
                if group.certified_gap is None
                else f"{group.certified_gap:.9f}"
            )
            lines.append(
                f"menu={group.menu_id} deadline={group.capacity} "
                f"flows={len(group.flow_ids)} "
                f"feasible={'yes' if group.feasible else 'no'} "
                f"runtime={group.total_runtime} cost={group.total_cost:.6f} "
                f"objective={group.objective:.9f} gap={gap} "
                f"choices={group.choice_labels()}"
            )
        return "\n".join(lines) + "\n"


class FleetPlanner:
    """Continuous batched planner over registered, mutable menus.

    Menus are registered once and re-registered whenever a price tick
    moves them (:class:`~repro.fleet.market.SpotMarketFeed` drives
    this); re-registration with a changed signature invalidates that
    menu's cached DP table and solved cells, so the next :meth:`plan`
    re-solves against live prices while untouched menus keep their
    amortized state across calls.
    """

    def __init__(self, mode: str = "exact", prune: bool = True):
        if mode not in ("exact", "approx"):
            raise ValueError(f"mode must be 'exact' or 'approx', got {mode!r}")
        self.mode = mode
        self.prune = prune
        self._menus: Dict[str, List[StageOptions]] = {}
        self._signatures: Dict[str, int] = {}
        self._pruned_counts: Dict[str, int] = {}
        self._tables: Dict[str, MCKPTable] = {}
        self._cells: Dict[Tuple[str, int], GroupPlan] = {}
        self._invalidations = 0

    # -- menu registry ----------------------------------------------------

    def register_menu(
        self, menu_id: str, stages: Sequence[StageOptions]
    ) -> bool:
        """(Re-)register a shared menu; returns True when caches dropped."""
        signature = menu_signature(stages)
        if self._signatures.get(menu_id) == signature:
            return False
        changed = menu_id in self._signatures
        if self.prune:
            pruned, removed = prune_stage_options(stages)
        else:
            pruned, removed = list(stages), 0
        self._menus[menu_id] = pruned
        self._signatures[menu_id] = signature
        self._pruned_counts[menu_id] = removed
        if changed:
            self.invalidate(menu_id)
        return changed

    def menu(self, menu_id: str) -> List[StageOptions]:
        """The (pruned) menu registered under ``menu_id``."""
        return self._menus[menu_id]

    @property
    def menu_ids(self) -> List[str]:
        return sorted(self._menus)

    def invalidate(self, menu_id: Optional[str] = None) -> int:
        """Drop cached tables/cells for one menu (or all); returns count."""
        victims = [menu_id] if menu_id is not None else list(self._menus)
        dropped = 0
        for victim in victims:
            if self._tables.pop(victim, None) is not None:
                dropped += 1
            stale = [key for key in self._cells if key[0] == victim]
            dropped += len(stale)
            for key in stale:
                del self._cells[key]
        self._invalidations += 1 if dropped else 0
        return dropped

    # -- planning ---------------------------------------------------------

    def plan(self, flows: Iterable[FlowSpec]) -> FleetPlan:
        """Plan every flow; amortized across shared menus and deadlines."""
        stats = FleetStats(
            invalidations=self._invalidations,
        )
        cells = self._cells
        # Group flows by solved cell.  This loop is the 10^5-flows/sec
        # hot path: one int floor, one tuple key, one dict hit per flow.
        fresh: Dict[Tuple[str, int], List[str]] = {}
        groups: List[GroupPlan] = []
        for spec in flows:
            stats.flows += 1
            if spec.deadline_seconds <= 0:
                raise ValueError(
                    f"flow {spec.flow_id}: deadline must be positive"
                )
            key = (spec.menu_id, int(spec.deadline_seconds))
            cell = cells.get(key)
            if cell is not None:
                if not cell.flow_ids:
                    groups.append(cell)
                else:
                    stats.group_hits += 1
                cell.flow_ids.append(spec.flow_id)
                continue
            pending = fresh.get(key)
            if pending is not None:
                stats.group_hits += 1
                pending.append(spec.flow_id)
                continue
            if spec.menu_id not in self._menus:
                raise KeyError(f"unregistered menu {spec.menu_id!r}")
            fresh[key] = [spec.flow_id]

        # Solve fresh cells menu-by-menu, largest deadline first, so the
        # first (largest) cell builds the table every smaller one reuses.
        for menu_id, capacity in sorted(
            fresh, key=lambda k: (k[0], -k[1])
        ):
            flow_ids = fresh[(menu_id, capacity)]
            cell = self._solve_cell(menu_id, capacity, stats)
            cell.flow_ids.extend(flow_ids)
            cells[(menu_id, capacity)] = cell
            groups.append(cell)

        for group in groups:
            count = len(group.flow_ids)
            if group.feasible:
                stats.feasible_flows += count
            else:
                stats.infeasible_flows += count
        stats.groups = len(groups)
        stats.pruned_options = sum(
            self._pruned_counts.get(mid, 0) for mid in self._menus
        )
        # Reset per-call flow lists lazily: cells persist for reuse, but
        # each plan() reports only its own flows.
        plan = FleetPlan(
            mode=self.mode,
            groups=[
                GroupPlan(
                    menu_id=g.menu_id,
                    capacity=g.capacity,
                    feasible=g.feasible,
                    selection=g.selection,
                    objective=g.objective,
                    total_cost=g.total_cost,
                    total_runtime=g.total_runtime,
                    certified_gap=g.certified_gap,
                    flow_ids=list(g.flow_ids),
                )
                for g in groups
            ],
            stats=stats,
        )
        for group in groups:
            group.flow_ids.clear()
        return plan

    def _solve_cell(
        self, menu_id: str, capacity: int, stats: FleetStats
    ) -> GroupPlan:
        stages = self._menus[menu_id]
        if self.mode == "approx":
            stats.approx_solves += 1
            return _cell_from_approx(
                menu_id, capacity, solve_approx(stages, capacity)
            )
        table = self._tables.get(menu_id)
        if table is None or table.capacity < capacity:
            table = MCKPTable(stages, capacity)
            self._tables[menu_id] = table
            stats.tables_built += 1
        stats.table_queries += 1
        return _cell_from_selection(menu_id, capacity, table.query(capacity))


def _cell_from_selection(
    menu_id: str, capacity: int, selection: Optional[Selection]
) -> GroupPlan:
    if selection is None:
        return GroupPlan(
            menu_id=menu_id,
            capacity=capacity,
            feasible=False,
            selection=None,
            objective=0.0,
            total_cost=0.0,
            total_runtime=0,
            certified_gap=None,
        )
    return GroupPlan(
        menu_id=menu_id,
        capacity=capacity,
        feasible=True,
        selection=selection,
        objective=selection.objective_inverse_price,
        total_cost=selection.total_cost,
        total_runtime=selection.total_runtime,
        certified_gap=None,
    )


def _cell_from_approx(
    menu_id: str, capacity: int, result: Optional[ApproxResult]
) -> GroupPlan:
    if result is None:
        return GroupPlan(
            menu_id=menu_id,
            capacity=capacity,
            feasible=False,
            selection=None,
            objective=0.0,
            total_cost=0.0,
            total_runtime=0,
            certified_gap=0.0,
        )
    return GroupPlan(
        menu_id=menu_id,
        capacity=capacity,
        feasible=True,
        selection=result.selection,
        objective=result.objective,
        total_cost=result.selection.total_cost,
        total_runtime=result.selection.total_runtime,
        certified_gap=result.certified_gap,
    )
