"""Fleet-scale continuous capacity planning (DESIGN.md §15).

The paper's Problem 3 plans one flow at a time; this package plans whole
fleets.  :mod:`~repro.fleet.planner` batches MCKP solves with DP-table
reuse and dominance pruning (plus a certified-gap greedy approximation),
:mod:`~repro.fleet.market` feeds deterministic spot-price ticks that
invalidate cached tables, and :mod:`~repro.fleet.session` loops
plan → tick → reprice → re-plan → execute through the existing
fault-injecting executor.  The ``fleet`` oracle in :mod:`repro.verify`
fuzzes every amortization against fresh exact solves.
"""

from .market import DEFAULT_POOL, PriceTick, SpotMarketFeed
from .planner import (
    FleetPlan,
    FleetPlanner,
    FleetStats,
    FlowSpec,
    GroupPlan,
    menu_signature,
)
from .session import ContinuousSession, SessionReport, TickReport, synthetic_fleet

__all__ = [
    "DEFAULT_POOL",
    "PriceTick",
    "SpotMarketFeed",
    "FlowSpec",
    "GroupPlan",
    "FleetStats",
    "FleetPlan",
    "FleetPlanner",
    "menu_signature",
    "synthetic_fleet",
    "TickReport",
    "SessionReport",
    "ContinuousSession",
]
