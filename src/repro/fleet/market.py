"""Seeded spot-price market feed driving fleet re-planning.

Real spot pools reprice continuously; a fleet planner that caches DP
tables must notice.  :class:`SpotMarketFeed` emits deterministic price
ticks — a clamped geometric random walk per pool, drawn from the same
crc32 ``(seed, purpose, key)`` stream construction as
:mod:`repro.chaos` — and reprices the spot twins in a stage menu to the
tick's discount.  The walk path is extended lazily but append-only, so
any query order observes the same prefix and the whole feed replays
byte-for-byte from its seed.

The repricing contract: every ``*.spot`` option's price scales by
``discount(tick) / base_discount`` relative to the menu it was quoted
into (runtimes are untouched — reclaim risk is the executor's job), and
on-demand options never move.  Re-registering the repriced menu with the
:class:`~repro.fleet.planner.FleetPlanner` invalidates exactly the
cached tables whose economics changed.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Sequence, Tuple

from ..cloud.executor import is_spot_vm
from ..core.optimize import ConfigOption, StageOptions

__all__ = ["PriceTick", "SpotMarketFeed"]

#: The single price pool the default feed quotes (all ``*.spot`` twins).
DEFAULT_POOL = "spot"


@dataclass(frozen=True)
class PriceTick:
    """One market tick: the discount of every pool at one instant."""

    index: int
    time_seconds: float
    discounts: Mapping[str, float]

    def discount(self, pool: str = DEFAULT_POOL) -> float:
        return self.discounts[pool]


class SpotMarketFeed:
    """Deterministic per-pool discount walks plus menu repricing.

    Parameters
    ----------
    seed:
        Stream seed; the same seed always yields the same price path.
    base_discount:
        The discount menus were originally quoted at (tick 0's value).
    volatility:
        Per-tick log-normal step scale.  0 freezes the market.
    floor / cap:
        Hard clamp of the walk, as spot markets clamp between "free"
        and on-demand parity.
    tick_interval_seconds:
        Wall time between ticks (stamps :attr:`PriceTick.time_seconds`).
    """

    def __init__(
        self,
        seed: int = 0,
        base_discount: float = 0.3,
        volatility: float = 0.2,
        floor: float = 0.05,
        cap: float = 0.95,
        tick_interval_seconds: float = 300.0,
        pools: Sequence[str] = (DEFAULT_POOL,),
    ):
        if not 0.0 < base_discount <= 1.0:
            raise ValueError("base_discount must be in (0, 1]")
        if volatility < 0:
            raise ValueError("volatility must be non-negative")
        if not 0.0 < floor <= cap:
            raise ValueError("need 0 < floor <= cap")
        if tick_interval_seconds <= 0:
            raise ValueError("tick interval must be positive")
        if not pools:
            raise ValueError("need at least one pool")
        self.seed = seed
        self.base_discount = base_discount
        self.volatility = volatility
        self.floor = floor
        self.cap = cap
        self.tick_interval_seconds = tick_interval_seconds
        self.pools = tuple(pools)
        self._paths: Dict[str, List[float]] = {
            pool: [base_discount] for pool in self.pools
        }
        self._streams: Dict[str, random.Random] = {}

    def _stream(self, pool: str) -> random.Random:
        rng = self._streams.get(pool)
        if rng is None:
            key = f"{self.seed}:spot-walk:{pool}"
            rng = random.Random(zlib.crc32(key.encode()))
            self._streams[pool] = rng
        return rng

    def _extend(self, pool: str, until_tick: int) -> None:
        path = self._paths[pool]
        rng = self._stream(pool)
        while len(path) <= until_tick:
            step = math.exp(self.volatility * rng.gauss(0.0, 1.0))
            path.append(min(self.cap, max(self.floor, path[-1] * step)))

    def discount(self, tick: int, pool: str = DEFAULT_POOL) -> float:
        """The pool's discount at one tick (tick 0 == base_discount)."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        if pool not in self._paths:
            raise KeyError(f"unknown pool {pool!r}")
        self._extend(pool, tick)
        return self._paths[pool][tick]

    def tick(self, index: int) -> PriceTick:
        """Materialize one tick across every pool."""
        return PriceTick(
            index=index,
            time_seconds=index * self.tick_interval_seconds,
            discounts={
                pool: self.discount(index, pool) for pool in self.pools
            },
        )

    def reprice_stage_options(
        self,
        stages: Sequence[StageOptions],
        tick: int,
        pool: str = DEFAULT_POOL,
    ) -> Tuple[List[StageOptions], float]:
        """Reprice a menu's spot twins to one tick's discount.

        Returns ``(new_stages, discount)``.  ``stages`` must be the
        originally-quoted menu (repricing is always relative to
        ``base_discount``, never compounded).  Tick 0 returns menus
        priced identically to the input.
        """
        discount = self.discount(tick, pool)
        factor = discount / self.base_discount
        out: List[StageOptions] = []
        for stage_opts in stages:
            options: List[ConfigOption] = []
            changed = False
            for opt in stage_opts.options:
                if not is_spot_vm(opt.vm):
                    options.append(opt)
                    continue
                changed = True
                options.append(
                    ConfigOption(
                        vm=replace(
                            opt.vm,
                            price_per_hour=opt.vm.price_per_hour * factor,
                        ),
                        runtime_seconds=opt.runtime_seconds,
                        price=opt.price * factor,
                    )
                )
            out.append(
                StageOptions(stage=stage_opts.stage, options=options)
                if changed
                else stage_opts
            )
        return out, discount
