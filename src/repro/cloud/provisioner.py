"""Deployment plans and provisioning policies.

Ties the characterization's recommendations (which family per stage) to
the pricing catalog, and represents the outcome the whole workflow exists
to produce: a per-stage VM assignment with its runtime and cost totals
(one row of the paper's Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..eda.job import EDAStage
from .instance import InstanceFamily, VMConfig
from .pricing import PricingTable, aws_like_catalog

__all__ = [
    "RECOMMENDED_FAMILY",
    "StageAssignment",
    "DeploymentPlan",
    "uniform_plan",
]

#: Per-application family recommendations — the paper's "Main Takeaways":
#: synthesis and STA perform well on general-purpose instances; placement
#: and routing want a higher memory-to-core ratio (memory-optimized).
RECOMMENDED_FAMILY: Dict[EDAStage, InstanceFamily] = {
    EDAStage.SYNTHESIS: InstanceFamily.GENERAL_PURPOSE,
    EDAStage.PLACEMENT: InstanceFamily.MEMORY_OPTIMIZED,
    EDAStage.ROUTING: InstanceFamily.MEMORY_OPTIMIZED,
    EDAStage.STA: InstanceFamily.GENERAL_PURPOSE,
}


@dataclass(frozen=True)
class StageAssignment:
    """One stage's chosen VM, with the resulting runtime and cost."""

    stage: EDAStage
    vm: VMConfig
    runtime_seconds: float

    @property
    def cost(self) -> float:
        return self.vm.cost(self.runtime_seconds)


@dataclass
class DeploymentPlan:
    """A complete per-stage VM assignment."""

    design: str
    assignments: List[StageAssignment] = field(default_factory=list)

    def add(self, stage: EDAStage, vm: VMConfig, runtime_seconds: float) -> None:
        self.assignments.append(
            StageAssignment(stage=stage, vm=vm, runtime_seconds=runtime_seconds)
        )

    @property
    def total_runtime(self) -> float:
        """Total runtime when stages run back-to-back (the flow is serial)."""
        return sum(a.runtime_seconds for a in self.assignments)

    @property
    def total_cost(self) -> float:
        return sum(a.cost for a in self.assignments)

    def meets_deadline(self, deadline_seconds: float) -> bool:
        """Deadline check with a relative float tolerance.

        Summing per-stage runtimes accumulates floating-point error; a
        plan whose total equals the deadline up to 1e-9 relative error is
        on-time, not late.
        """
        total = self.total_runtime
        return total <= deadline_seconds or math.isclose(
            total, deadline_seconds, rel_tol=1e-9
        )

    def summary(self) -> str:
        """Human-readable plan, one line per stage plus totals."""
        lines = [f"Deployment plan for {self.design}:"]
        for a in self.assignments:
            lines.append(
                f"  {a.stage.display_name:10s} -> {a.vm.name:8s} "
                f"({a.vm.vcpus} vCPU {a.vm.family.display_name}): "
                f"{a.runtime_seconds:10,.0f} s  ${a.cost:.4f}"
            )
        lines.append(
            f"  {'TOTAL':10s}    {self.total_runtime:>21,.0f} s  ${self.total_cost:.4f}"
        )
        return "\n".join(lines)


def uniform_plan(
    design: str,
    stage_runtimes: Mapping[EDAStage, Mapping[int, float]],
    vcpus: int,
    catalog: Optional[PricingTable] = None,
    families: Optional[Mapping[EDAStage, InstanceFamily]] = None,
) -> DeploymentPlan:
    """Assign every stage the same VM size (the paper's baselines).

    ``vcpus=8`` reproduces the *over-provisioning* baseline of Figure 6,
    ``vcpus=1`` the *under-provisioning* baseline.  Each stage still uses
    its recommended family.
    """
    catalog = catalog if catalog is not None else aws_like_catalog()
    families = families if families is not None else RECOMMENDED_FAMILY
    plan = DeploymentPlan(design=design)
    for stage in EDAStage.ordered():
        if stage not in stage_runtimes:
            continue
        runtimes = stage_runtimes[stage]
        if vcpus not in runtimes:
            raise KeyError(f"no runtime for {stage.value} at {vcpus} vCPUs")
        vm = catalog.config(families[stage], vcpus)
        plan.add(stage, vm, runtimes[vcpus])
    return plan
