"""On-demand pricing catalog.

The paper prices deployments with "the pricing table for the machine
configurations from AWS at the time of this writeup".  We freeze an
equivalent catalog: three families x {1, 2, 4, 8} vCPUs.  The effective
hourly rates for the general-purpose and memory-optimized tiers are fitted
to the per-stage rates implied by the paper's Table I (cost / runtime), so
the knapsack's selection structure — e.g. routing being *cheaper* on 4
vCPUs than on 1 — reproduces.  Note these rates are deliberately
sub-linear in vCPUs, as the implied AWS menu was.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional

from .instance import InstanceFamily, VMConfig

__all__ = ["PricingTable", "aws_like_catalog", "PAPER_VCPU_OPTIONS"]

#: The VM sizes the paper evaluates for every stage.
PAPER_VCPU_OPTIONS = (1, 2, 4, 8)

#: Hourly rates fitted to Table I's effective per-stage rates (USD/h).
_GENERAL_PURPOSE_RATES = {1: 0.0944, 2: 0.1244, 4: 0.1983, 8: 0.3973}
_MEMORY_OPTIMIZED_RATES = {1: 0.1150, 2: 0.1610, 4: 0.2700, 8: 0.5430}
#: Compute-optimized filler family (c5-like, near-linear pricing).
_COMPUTE_OPTIMIZED_RATES = {1: 0.0850, 2: 0.1620, 4: 0.3160, 8: 0.6240}

_SIZE_SUFFIX = {1: "1x", 2: "2x", 4: "4x", 8: "8x"}


class PricingTable:
    """A queryable catalog of VM configurations."""

    def __init__(self, configs: Iterable[VMConfig]):
        self._configs: List[VMConfig] = list(configs)
        if not self._configs:
            raise ValueError("pricing table cannot be empty")
        self._by_name: Dict[str, VMConfig] = {c.name: c for c in self._configs}
        if len(self._by_name) != len(self._configs):
            raise ValueError("duplicate VM names in catalog")

    def __iter__(self):
        return iter(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def by_name(self, name: str) -> VMConfig:
        return self._by_name[name]

    def options(
        self,
        family: Optional[InstanceFamily] = None,
        vcpus: Optional[Iterable[int]] = None,
    ) -> List[VMConfig]:
        """Configs filtered by family and/or vCPU menu, sorted by vCPUs."""
        wanted = set(vcpus) if vcpus is not None else None
        out = [
            c
            for c in self._configs
            if (family is None or c.family == family)
            and (wanted is None or c.vcpus in wanted)
        ]
        return sorted(out, key=lambda c: (c.vcpus, c.price_per_hour))

    def config(self, family: InstanceFamily, vcpus: int) -> VMConfig:
        """The unique config of a family at a vCPU count."""
        matches = self.options(family=family, vcpus=[vcpus])
        if not matches:
            raise KeyError(f"no {family.value} config with {vcpus} vCPUs")
        return matches[0]

    def cheapest(self, vcpus: int) -> VMConfig:
        """Cheapest config at a given vCPU count, any family."""
        matches = self.options(vcpus=[vcpus])
        if not matches:
            raise KeyError(f"no config with {vcpus} vCPUs")
        return min(matches, key=lambda c: c.price_per_hour)

    def repriced(self, factor: float, suffix: str = "") -> "PricingTable":
        """A copy of the catalog with every hourly rate scaled by ``factor``.

        Regional catalogs are minted this way: ``suffix`` (e.g.
        ``"@eu-central"``) keeps the minted names distinct from the
        reference region's so both menus can coexist in one plan.
        """
        if factor <= 0:
            raise ValueError(f"price factor must be positive, got {factor!r}")
        return PricingTable(
            replace(
                c,
                name=f"{c.name}{suffix}",
                price_per_hour=c.price_per_hour * factor,
            )
            for c in self._configs
        )


def aws_like_catalog() -> PricingTable:
    """Build the default frozen catalog (see module docstring)."""
    configs: List[VMConfig] = []
    for vcpus in PAPER_VCPU_OPTIONS:
        suffix = _SIZE_SUFFIX[vcpus]
        configs.append(
            VMConfig(
                name=f"gp.{suffix}",
                family=InstanceFamily.GENERAL_PURPOSE,
                vcpus=vcpus,
                memory_gb=4.0 * vcpus,
                price_per_hour=_GENERAL_PURPOSE_RATES[vcpus],
                avx=True,
            )
        )
        configs.append(
            VMConfig(
                name=f"mem.{suffix}",
                family=InstanceFamily.MEMORY_OPTIMIZED,
                vcpus=vcpus,
                memory_gb=8.0 * vcpus,
                price_per_hour=_MEMORY_OPTIMIZED_RATES[vcpus],
                avx=True,
            )
        )
        configs.append(
            VMConfig(
                name=f"cpu.{suffix}",
                family=InstanceFamily.COMPUTE_OPTIMIZED,
                vcpus=vcpus,
                memory_gb=2.0 * vcpus,
                price_per_hour=_COMPUTE_OPTIMIZED_RATES[vcpus],
                avx=True,
            )
        )
    return PricingTable(configs)
