"""Multi-tenancy interference model.

Section II: cloud vendors share physical hosts among tenants behind a
hypervisor.  The paper emulates VM sizes with cgroups on a dedicated
machine, i.e. *without* noisy neighbours; production clouds add
interference on shared resources (LLC, memory bandwidth).  This module
models that effect so deployments can be stress-tested: a job's slowdown
grows with neighbour load, weighted by how memory-intensive the job is
(its cache-miss rate), which is the well-documented first-order behaviour
of LLC/bandwidth contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["TenancyModel", "NeighborLoad"]


@dataclass(frozen=True)
class NeighborLoad:
    """Co-tenant pressure on one shared host.

    ``cpu`` and ``memory_bandwidth`` are utilizations in [0, 1] of the
    host resources not reserved by the tenant's own VM.
    """

    cpu: float = 0.0
    memory_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu <= 1.0:
            raise ValueError("cpu load must be in [0, 1]")
        if not 0.0 <= self.memory_bandwidth <= 1.0:
            raise ValueError("memory_bandwidth load must be in [0, 1]")


class TenancyModel:
    """Translates neighbour load into a job slowdown factor.

    Parameters
    ----------
    cpu_sensitivity:
        Max fractional slowdown from pure CPU contention (SMT siblings,
        power budgets).  Dedicated vCPUs keep this small.
    bandwidth_sensitivity:
        Max fractional slowdown for a *fully* memory-bound job under
        saturated neighbour bandwidth.
    """

    def __init__(
        self,
        cpu_sensitivity: float = 0.05,
        bandwidth_sensitivity: float = 0.45,
    ):
        if cpu_sensitivity < 0 or bandwidth_sensitivity < 0:
            raise ValueError("sensitivities must be non-negative")
        self.cpu_sensitivity = cpu_sensitivity
        self.bandwidth_sensitivity = bandwidth_sensitivity

    def slowdown(self, neighbor: NeighborLoad, cache_miss_rate: float) -> float:
        """Multiplicative slowdown (>= 1.0) for a job on a shared host.

        ``cache_miss_rate`` is the job's own LLC miss rate — the proxy for
        how much it depends on the contended memory system.
        """
        if not 0.0 <= cache_miss_rate <= 1.0:
            raise ValueError("cache_miss_rate must be in [0, 1]")
        cpu_term = self.cpu_sensitivity * neighbor.cpu
        mem_term = (
            self.bandwidth_sensitivity * neighbor.memory_bandwidth * cache_miss_rate
        )
        return 1.0 + cpu_term + mem_term

    def effective_runtime(
        self,
        runtime_seconds: float,
        neighbor: NeighborLoad,
        cache_miss_rate: float,
    ) -> float:
        """Runtime under interference."""
        return runtime_seconds * self.slowdown(neighbor, cache_miss_rate)

    def sample_neighbors(
        self, count: int, seed: int = 0, heavy_fraction: float = 0.2
    ) -> List[NeighborLoad]:
        """Draw a random co-tenant population.

        A ``heavy_fraction`` of hosts carry streaming/memory-heavy
        neighbours; the rest are lightly loaded web-style tenants.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = random.Random(seed)
        out: List[NeighborLoad] = []
        for _ in range(count):
            if rng.random() < heavy_fraction:
                out.append(
                    NeighborLoad(
                        cpu=rng.uniform(0.5, 0.95),
                        memory_bandwidth=rng.uniform(0.5, 0.95),
                    )
                )
            else:
                out.append(
                    NeighborLoad(
                        cpu=rng.uniform(0.05, 0.4),
                        memory_bandwidth=rng.uniform(0.0, 0.3),
                    )
                )
        return out
