"""Structured, replayable execution event traces.

Every decision the plan executor makes — provisioning attempts, fault
injections, backoff sleeps, checkpoint commits, spot preemptions,
on-demand fallbacks, mid-flight re-planning — is recorded as an
:class:`ExecutionEvent` in an :class:`ExecutionTrace`.  The trace is the
executor's ground truth: billing is reconstructed from its ``billed``
events, the verification oracles replay it to check causality (no stage
starts before its predecessor commits, retries stay within policy, cost
equals the sum of billed segments), and byte-reproducibility from a seed
is asserted event-for-event.

Events are frozen dataclasses with a total ordering of ``seq`` numbers,
so two traces compare equal iff every event matches exactly.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["EventKind", "ExecutionEvent", "ExecutionTrace"]


class EventKind(str, enum.Enum):
    """Everything that can happen while executing a deployment plan."""

    FLOW_START = "flow_start"
    STAGE_START = "stage_start"
    BOOT_FAILURE = "boot_failure"
    API_ERROR = "api_error"
    BACKOFF = "backoff"
    STRAGGLER = "straggler"
    CHECKPOINT = "checkpoint"
    PREEMPTION = "preemption"
    AZ_RECLAIM = "az_reclaim"
    REGIME_SHIFT = "regime_shift"
    REGION_FAILOVER = "region_failover"
    TRANSFER = "transfer"
    TIMEOUT = "timeout"
    FALLBACK = "fallback"
    REPLAN = "replan"
    BILLED = "billed"
    STAGE_COMMIT = "stage_commit"
    STAGE_ABORT = "stage_abort"
    FLOW_COMPLETE = "flow_complete"
    FLOW_FAIL = "flow_fail"


@dataclass(frozen=True)
class ExecutionEvent:
    """One timestamped executor decision.

    ``info`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    event is hashable and equality is exact — the determinism oracle
    compares traces event-for-event.
    """

    seq: int
    time: float
    kind: EventKind
    stage: Optional[str] = None
    vm: Optional[str] = None
    attempt: int = 0
    info: Tuple[Tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        """Look up one ``info`` entry."""
        for k, v in self.info:
            if k == key:
                return v
        return default

    def render(self) -> str:
        """One deterministic human-readable line."""
        parts = [f"[{self.seq:4d}] t={self.time:12.3f}s {self.kind.value:<13}"]
        if self.stage:
            parts.append(self.stage)
        if self.vm:
            parts.append(f"on {self.vm}")
        if self.attempt:
            parts.append(f"attempt {self.attempt}")
        for k, v in self.info:
            parts.append(f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}")
        return " ".join(parts)

    def to_json(self) -> str:
        """One JSON line (stable key order) for ``ExecutionTrace.to_jsonl``."""
        return json.dumps(
            {
                "seq": self.seq,
                "time": self.time,
                "kind": self.kind.value,
                "stage": self.stage,
                "vm": self.vm,
                "attempt": self.attempt,
                "info": dict(self.info),
            },
            sort_keys=True,
        )


@dataclass
class ExecutionTrace:
    """Ordered event log of one plan execution.

    ``enabled=False`` turns :meth:`record` into a no-op — the Monte-Carlo
    convergence harness runs hundreds of thousands of simulated stages and
    only needs the totals, not the event objects.
    """

    seed: int = 0
    enabled: bool = True
    events: List[ExecutionEvent] = field(default_factory=list)

    def record(
        self,
        time: float,
        kind: EventKind,
        stage: Optional[str] = None,
        vm: Optional[str] = None,
        attempt: int = 0,
        **info,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            ExecutionEvent(
                seq=len(self.events),
                time=time,
                kind=kind,
                stage=stage,
                vm=vm,
                attempt=attempt,
                info=tuple(sorted(info.items())),
            )
        )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> List[ExecutionEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: EventKind, stage: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.events
            if e.kind == kind and (stage is None or e.stage == stage)
        )

    def preemptions(self, stage: Optional[str] = None) -> int:
        """Number of spot preemptions recorded (optionally per stage)."""
        return self.count(EventKind.PREEMPTION, stage)

    @property
    def billed_cost(self) -> float:
        """Total cost reconstructed from the ``billed`` events."""
        return sum(e.get("cost", 0.0) for e in self.of_kind(EventKind.BILLED))

    @property
    def billed_seconds(self) -> float:
        return sum(e.get("seconds", 0.0) for e in self.of_kind(EventKind.BILLED))

    def billed_by_stage(self) -> Dict[str, float]:
        """Per-stage billed cost (the oracle sums these against totals)."""
        out: Dict[str, float] = {}
        for e in self.of_kind(EventKind.BILLED):
            out[e.stage] = out.get(e.stage, 0.0) + e.get("cost", 0.0)
        return out

    def render(self) -> str:
        """Deterministic multi-line rendering (same seed ⇒ same bytes)."""
        lines = [f"execution trace (seed={self.seed}, {len(self.events)} events)"]
        lines.extend(e.render() for e in self.events)
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """The replayable wire format: one JSON object per event."""
        return "\n".join(e.to_json() for e in self.events)
