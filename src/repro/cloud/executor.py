"""Fault-tolerant execution of deployment plans (discrete-event simulated).

The MCKP solver produces a cost-optimal :class:`DeploymentPlan`; this
module *runs* it, stage by stage, on a simulated cloud where things go
wrong the way they do in production EDA flows: spot instances get
reclaimed, VMs fail to boot, the control plane throws transient errors,
and some hosts straggle.  Robustness policy is first-class:

* **Retry with backoff** — provisioning/API failures retry up to
  ``RetryPolicy.max_retries`` times with exponential backoff and
  deterministic seeded jitter.
* **Checkpoint/resume** — spot preemptions lose only the work since the
  last checkpoint, with semantics identical to
  :func:`~repro.cloud.spot.spot_expected_runtime` (the chaos harness
  asserts the simulated mean converges to that closed form).
* **Graceful degradation** — after ``max_preemptions_per_stage``
  reclaims (or a blown per-stage timeout budget derived from the plan's
  deadline slack), a spot stage falls back to its on-demand twin and the
  *remaining* stages are re-planned with
  :func:`~repro.core.optimize.solve_mckp_dp` under the residual deadline.
* **Replayable traces** — every decision lands in an
  :class:`~repro.cloud.events.ExecutionTrace`; the same seed reproduces
  the run byte-for-byte, and the verification oracles audit causality,
  retry bounds, and billing against the trace.

Billing follows the cloud model: every VM lease segment (completed or
preempted) is billed per whole second on the VM it ran on, so the final
cost is exactly the sum of billed segments.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..eda.job import EDAStage
from ..obs import get_logger, get_metrics, get_tracer
from ..obs.log import crash_scope
from .events import EventKind, ExecutionTrace
from .faults import FaultInjector, FaultProfile
from .instance import InstanceFamily, VMConfig
from .provisioner import DeploymentPlan, StageAssignment

__all__ = [
    "RetryPolicy",
    "ExecutionPolicy",
    "BilledSegment",
    "StageRecord",
    "ExecutionResult",
    "PlanExecutor",
    "simulate_spot_completion_times",
]

#: Slop below which remaining work counts as done (floating-point guard).
_WORK_EPS = 1e-9

#: Name suffix marking spot-priced VM shapes (see ``SpotMarket``).
SPOT_SUFFIX = ".spot"


def is_spot_vm(vm: VMConfig) -> bool:
    """Spot shapes are the ``*.spot`` twins ``SpotMarket`` mints."""
    return vm.name.endswith(SPOT_SUFFIX)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    max_retries: int = 3
    backoff_base_seconds: float = 2.0
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 120.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_seconds <= 0 or self.backoff_max_seconds <= 0:
            raise ValueError("backoff durations must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter fraction must be in [0, 1]")

    def backoff_seconds(self, attempt: int, jitter_draw: float) -> float:
        """Sleep before retry ``attempt`` (0-based), with seeded jitter."""
        base = min(
            self.backoff_base_seconds * self.backoff_multiplier**attempt,
            self.backoff_max_seconds,
        )
        return base * (1.0 + self.jitter_fraction * jitter_draw)


@dataclass(frozen=True)
class ExecutionPolicy:
    """The executor's robustness policy, all knobs in one place.

    Attributes
    ----------
    retry:
        Provisioning/API retry policy.
    max_preemptions_per_stage:
        After this many spot reclaims on one stage, fall back to the
        on-demand twin.  ``None`` disables fallback (the convergence
        harness needs pure restart-forever semantics).
    timeout_stretch:
        A spot stage whose wall-clock exceeds
        ``stretch * nominal + its share of the deadline slack`` falls back
        early even below the preemption cap.  ``None`` disables timeouts.
    replan_on_fallback:
        Re-run the MCKP DP on the remaining stages under the residual
        deadline after a fallback (requires ``stage_options``).
    replan_excludes_spot:
        Degraded flows flee to reliability: drop spot options when
        re-planning.
    spot_discount:
        Spot-to-on-demand price ratio used to reconstruct the on-demand
        twin when no catalog option is available.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_preemptions_per_stage: Optional[int] = 3
    timeout_stretch: Optional[float] = 4.0
    replan_on_fallback: bool = True
    replan_excludes_spot: bool = True
    spot_discount: float = 0.3

    def __post_init__(self) -> None:
        if (
            self.max_preemptions_per_stage is not None
            and self.max_preemptions_per_stage < 1
        ):
            raise ValueError("max_preemptions_per_stage must be >= 1 or None")
        if self.timeout_stretch is not None and self.timeout_stretch < 1.0:
            raise ValueError("timeout_stretch must be >= 1 or None")
        if not 0.0 < self.spot_discount <= 1.0:
            raise ValueError("spot_discount must be in (0, 1]")

    @classmethod
    def unbounded(cls) -> "ExecutionPolicy":
        """No fallback, no timeouts — pure checkpoint/restart semantics.

        This is the regime :func:`~repro.cloud.spot.spot_expected_runtime`
        prices, so it is what the convergence oracle executes.
        """
        return cls(max_preemptions_per_stage=None, timeout_stretch=None)


@dataclass(frozen=True)
class BilledSegment:
    """One billed VM lease: a completed or preempted run interval."""

    stage: str
    vm: str
    seconds: float
    cost: float


@dataclass
class StageRecord:
    """Per-stage execution outcome."""

    stage: EDAStage
    vm: VMConfig
    attempts: int = 1
    preemptions: int = 0
    wall_seconds: float = 0.0
    cost: float = 0.0
    fell_back: bool = False
    committed: bool = False


@dataclass
class ExecutionResult:
    """Everything one execution produced, trace included."""

    plan: DeploymentPlan
    deadline_seconds: Optional[float]
    seed: int
    trace: ExecutionTrace
    segments: List[BilledSegment] = field(default_factory=list)
    stage_records: List[StageRecord] = field(default_factory=list)
    completed: bool = False
    replanned: bool = False
    replan_feasible: bool = True
    total_time: float = 0.0
    total_cost: float = 0.0

    @property
    def met_deadline(self) -> bool:
        if not self.completed:
            return False
        if self.deadline_seconds is None:
            return True
        return self.total_time <= self.deadline_seconds * (1.0 + 1e-9)

    def summary(self) -> str:
        status = "COMPLETE" if self.completed else "FAILED"
        lines = [
            f"execution of {self.plan.design} (seed={self.seed}): {status} "
            f"in {self.total_time:,.1f}s for ${self.total_cost:.4f}"
        ]
        if self.deadline_seconds is not None:
            verdict = "met" if self.met_deadline else "MISSED"
            lines[0] += f" — deadline {self.deadline_seconds:,.0f}s {verdict}"
        for rec in self.stage_records:
            notes = []
            if rec.preemptions:
                notes.append(f"{rec.preemptions} preemptions")
            if rec.attempts > 1:
                notes.append(f"{rec.attempts} boot attempts")
            if rec.fell_back:
                notes.append("fell back to on-demand")
            note = f" ({', '.join(notes)})" if notes else ""
            lines.append(
                f"  {rec.stage.display_name:10s} -> {rec.vm.name:12s} "
                f"{rec.wall_seconds:10,.1f}s  ${rec.cost:.4f}{note}"
            )
        if self.replanned:
            lines.append(
                "  re-planned remaining stages"
                + ("" if self.replan_feasible else " (INFEASIBLE residual deadline)")
            )
        return "\n".join(lines)


class _StageFailure(Exception):
    """Internal: a stage exhausted its retries; the flow aborts.

    Carries the simulated clock at abort time — backoff sleeps before the
    final failure are real elapsed time.
    """

    def __init__(self, stage: str, time: float):
        super().__init__(stage)
        self.stage = stage
        self.time = time


class PlanExecutor:
    """Deterministic discrete-event executor for deployment plans."""

    def __init__(
        self,
        profile: Optional[FaultProfile] = None,
        policy: Optional[ExecutionPolicy] = None,
    ):
        self.profile = profile if profile is not None else FaultProfile.none()
        self.policy = policy if policy is not None else ExecutionPolicy()

    # -- public API -------------------------------------------------------
    def execute(
        self,
        plan: DeploymentPlan,
        deadline_seconds: Optional[float] = None,
        seed: int = 0,
        stage_options: Optional[Sequence] = None,
        record_events: bool = True,
        trace_context: Optional[str] = None,
    ) -> ExecutionResult:
        """Run ``plan`` under the configured fault profile and policy.

        ``stage_options`` (a list of
        :class:`~repro.core.optimize.StageOptions`) enables mid-flight
        re-planning and catalog-accurate on-demand fallback; without it
        the on-demand twin is reconstructed from the spot discount.

        ``trace_context`` stitches every span this run opens into an
        end-to-end trace id (see :meth:`repro.obs.Tracer.trace`); when
        omitted, spans inherit whatever binding the caller already holds
        — the service layer binds one trace per job around the runner.

        Runs inside a flight-recorder :func:`crash_scope`: when an
        enabled logger is installed, any unhandled exception dumps the
        recent record tail, the open-span stack, and a metric snapshot
        to a replayable crash report before propagating.
        """
        with crash_scope("executor", seed), get_tracer().trace(trace_context):
            return self._execute(
                plan, deadline_seconds, seed, stage_options, record_events
            )

    def _execute(
        self,
        plan: DeploymentPlan,
        deadline_seconds: Optional[float],
        seed: int,
        stage_options: Optional[Sequence],
        record_events: bool,
    ) -> ExecutionResult:
        injector = self._make_injector(seed)
        trace = ExecutionTrace(seed=seed, enabled=record_events)
        result = ExecutionResult(
            plan=plan, deadline_seconds=deadline_seconds, seed=seed, trace=trace
        )
        assignments = list(plan.assignments)
        budgets = self._timeout_budgets(assignments, deadline_seconds)
        trace.record(
            0.0,
            EventKind.FLOW_START,
            design=plan.design,
            stages=len(assignments),
            deadline=deadline_seconds if deadline_seconds is not None else "none",
        )
        tracer = get_tracer()
        log = get_logger()
        log.info(
            "executor.flow_start",
            design=plan.design,
            seed=seed,
            stages=len(assignments),
        )
        with tracer.span(
            "execute", design=plan.design, seed=seed, stages=len(assignments)
        ) as span:
            t = 0.0
            i = 0
            while i < len(assignments):
                a = assignments[i]
                try:
                    t, fell_back = self._run_stage(
                        a, t, budgets.get(a.stage), injector, trace, result,
                        stage_options,
                    )
                except _StageFailure as failure:
                    t = failure.time
                    trace.record(t, EventKind.FLOW_FAIL, stage=failure.stage)
                    tracer.event("flow_fail", stage=failure.stage, sim_time=t)
                    log.error(
                        "executor.flow_fail", stage=failure.stage, sim_time=t
                    )
                    result.completed = False
                    result.total_time = t
                    span.set_tags(completed=False, sim_seconds=t)
                    return result
                if (
                    fell_back
                    and self.policy.replan_on_fallback
                    and stage_options is not None
                    and deadline_seconds is not None
                    and i + 1 < len(assignments)
                ):
                    assignments = self._replan(
                        assignments, i, t, deadline_seconds, stage_options,
                        trace, result,
                    )
                i += 1
            result.completed = True
            result.total_time = t
            trace.record(
                t,
                EventKind.FLOW_COMPLETE,
                cost=result.total_cost,
                met_deadline=result.met_deadline,
            )
            log.info(
                "executor.flow_complete",
                sim_seconds=t,
                cost=result.total_cost,
                met_deadline=result.met_deadline,
            )
            span.set_tags(
                completed=True, sim_seconds=t, cost=result.total_cost
            )
        return result

    # -- internals --------------------------------------------------------
    def _make_injector(self, seed: int) -> FaultInjector:
        """Build the fault source for one execution.

        Called exactly once per ``execute``, so subclasses can both swap
        in a richer injector (the chaos engine's correlated processes)
        and reset any per-run state here.
        """
        return FaultInjector(self.profile, seed)

    def _timeout_budgets(
        self,
        assignments: Sequence[StageAssignment],
        deadline_seconds: Optional[float],
    ) -> Dict[EDAStage, float]:
        """Per-stage wall-clock budgets from the plan's deadline slack.

        Each stage may stretch to ``timeout_stretch x`` its nominal
        runtime plus its proportional share of whatever slack the plan
        left under the deadline.
        """
        stretch = self.policy.timeout_stretch
        if stretch is None or deadline_seconds is None:
            return {}
        nominal_total = sum(a.runtime_seconds for a in assignments)
        if nominal_total <= 0:
            return {}
        slack = max(0.0, deadline_seconds - nominal_total)
        return {
            a.stage: stretch * a.runtime_seconds
            + slack * (a.runtime_seconds / nominal_total)
            for a in assignments
        }

    def _provision(
        self,
        a: StageAssignment,
        t: float,
        injector: FaultInjector,
        trace: ExecutionTrace,
        rec: StageRecord,
    ) -> float:
        """Boot the stage's VM, retrying transient failures with backoff."""
        stage_key = a.stage.value
        retry = self.policy.retry
        attempt = 0
        while True:
            failure: Optional[EventKind] = None
            if injector.boot_fails(stage_key, attempt, now=t):
                failure = EventKind.BOOT_FAILURE
            elif injector.api_errors(stage_key, attempt, now=t):
                failure = EventKind.API_ERROR
            if failure is None:
                rec.attempts = attempt + 1
                return t
            trace.record(t, failure, stage=stage_key, vm=a.vm.name, attempt=attempt)
            get_tracer().event(
                failure.value, stage=stage_key, attempt=attempt, sim_time=t
            )
            get_logger().warn(
                f"executor.{failure.value}",
                stage=stage_key,
                vm=a.vm.name,
                attempt=attempt,
                sim_time=t,
            )
            if attempt >= retry.max_retries:
                trace.record(
                    t,
                    EventKind.STAGE_ABORT,
                    stage=stage_key,
                    vm=a.vm.name,
                    attempt=attempt,
                    reason="retries_exhausted",
                )
                get_tracer().event(
                    EventKind.STAGE_ABORT.value, stage=stage_key, sim_time=t
                )
                get_logger().error(
                    "executor.stage_abort",
                    stage=stage_key,
                    vm=a.vm.name,
                    attempt=attempt,
                    reason="retries_exhausted",
                    sim_time=t,
                )
                raise _StageFailure(stage_key, t)
            delay = retry.backoff_seconds(attempt, injector.jitter(stage_key, attempt))
            t += delay
            trace.record(
                t,
                EventKind.BACKOFF,
                stage=stage_key,
                vm=a.vm.name,
                attempt=attempt,
                seconds=delay,
            )
            get_tracer().event(
                EventKind.BACKOFF.value, stage=stage_key, attempt=attempt,
                seconds=delay, sim_time=t,
            )
            get_logger().debug(
                "executor.backoff",
                stage=stage_key,
                attempt=attempt,
                seconds=delay,
                sim_time=t,
            )
            attempt += 1

    def _bill(
        self,
        result: ExecutionResult,
        trace: ExecutionTrace,
        t: float,
        stage_key: str,
        vm: VMConfig,
        seconds: float,
        rec: StageRecord,
    ) -> None:
        cost = vm.cost(seconds)
        result.total_cost += cost
        rec.cost += cost
        metrics = get_metrics()
        metrics.counter("executor.billed_seconds").inc(seconds)
        metrics.counter("executor.billed_cost").inc(cost)
        if trace.enabled:
            result.segments.append(
                BilledSegment(stage=stage_key, vm=vm.name, seconds=seconds, cost=cost)
            )
            trace.record(
                t, EventKind.BILLED, stage=stage_key, vm=vm.name,
                seconds=seconds, cost=cost,
            )

    def _on_demand_twin(
        self, vm: VMConfig, stage: EDAStage, stage_options: Optional[Sequence]
    ) -> VMConfig:
        """The on-demand shape a preempted spot stage falls back to."""
        base_name = vm.name[: -len(SPOT_SUFFIX)] if is_spot_vm(vm) else vm.name
        if stage_options is not None:
            for so in stage_options:
                if so.stage != stage:
                    continue
                for opt in so.options:
                    if opt.vm.name == base_name:
                        return opt.vm
        return replace(
            vm,
            name=base_name,
            price_per_hour=vm.price_per_hour / self.policy.spot_discount,
        )

    def _note_preemption(
        self,
        a: StageAssignment,
        t: float,
        rec: StageRecord,
        injector: FaultInjector,
        trace: ExecutionTrace,
        result: ExecutionResult,
    ) -> None:
        """Hook invoked right after each PREEMPTION event is recorded.

        The base executor's preemptions carry no extra structure; the
        chaos engine attributes them (AZ-wide reclaim vs regime storm)
        by recording follow-up events here.
        """

    def _fallback_target(
        self,
        a: StageAssignment,
        t: float,
        rec: StageRecord,
        injector: FaultInjector,
        trace: ExecutionTrace,
        result: ExecutionResult,
        stage_options: Optional[Sequence],
    ) -> VMConfig:
        """Pick the VM a degraded spot stage finishes on.

        The base policy is the same-region on-demand twin; the chaos
        engine overrides this to fail over across regions (with transfer
        billing) when the home region is inside a storm.
        """
        return self._on_demand_twin(a.vm, a.stage, stage_options)

    def _run_stage(
        self,
        a: StageAssignment,
        t: float,
        budget: Optional[float],
        injector: FaultInjector,
        trace: ExecutionTrace,
        result: ExecutionResult,
        stage_options: Optional[Sequence],
    ):
        """Execute one stage; returns ``(new_time, fell_back)``."""
        stage_key = a.stage.value
        rec = StageRecord(stage=a.stage, vm=a.vm)
        result.stage_records.append(rec)
        stage_t0 = t
        trace.record(t, EventKind.STAGE_START, stage=stage_key, vm=a.vm.name,
                     nominal=a.runtime_seconds)
        with get_tracer().span(
            f"stage.{stage_key}", stage=stage_key, vm=a.vm.name,
            nominal=a.runtime_seconds,
        ) as span:
            t = self._provision(a, t, injector, trace, rec)
            attempt = rec.attempts - 1

            factor = injector.straggler_factor(stage_key, attempt, now=t)
            effective = a.runtime_seconds * factor
            if factor > 1.0:
                trace.record(
                    t, EventKind.STRAGGLER, stage=stage_key, vm=a.vm.name,
                    attempt=attempt, factor=factor,
                )
                get_tracer().event(
                    EventKind.STRAGGLER.value, stage=stage_key, factor=factor,
                    sim_time=t,
                )

            spot = (
                is_spot_vm(a.vm)
                and self.profile.spot_interrupt_rate_per_hour > 0
            )
            fell_back = False
            if not spot:
                t += effective
                self._bill(result, trace, t, stage_key, a.vm, effective, rec)
            else:
                t, fell_back = self._run_spot(
                    a, t, stage_t0, budget, effective, attempt, injector,
                    trace, result, rec, stage_options,
                )
            rec.wall_seconds = t - stage_t0
            rec.committed = True
            trace.record(
                t, EventKind.STAGE_COMMIT, stage=stage_key, vm=rec.vm.name,
                wall=rec.wall_seconds, cost=rec.cost,
            )
            get_logger().debug(
                "executor.stage_commit",
                stage=stage_key,
                vm=rec.vm.name,
                wall=rec.wall_seconds,
                cost=rec.cost,
                sim_time=t,
            )
            span.set_tags(
                attempts=rec.attempts,
                preemptions=rec.preemptions,
                fell_back=rec.fell_back,
                sim_seconds=rec.wall_seconds,
                cost=rec.cost,
            )
        return t, fell_back

    def _run_spot(
        self,
        a: StageAssignment,
        t: float,
        stage_t0: float,
        budget: Optional[float],
        effective: float,
        attempt: int,
        injector: FaultInjector,
        trace: ExecutionTrace,
        result: ExecutionResult,
        rec: StageRecord,
        stage_options: Optional[Sequence],
    ):
        """Checkpoint/restart loop on a spot VM, with fallback degradation.

        Work advances segment by segment (segment length = checkpoint
        interval, or the whole job without checkpointing).  A preemption
        mid-segment loses that segment's progress and restarts it — the
        exact process :func:`spot_expected_runtime` takes the expectation
        of.  Re-provisioning after a reclaim is instant; provisioning
        latency is considered folded into the reclaim-rate model.
        """
        stage_key = a.stage.value
        interval = self.profile.checkpoint_interval_seconds
        cap = self.policy.max_preemptions_per_stage
        remaining = effective
        while remaining > _WORK_EPS:
            segment = remaining if interval is None else min(interval, remaining)
            draw = injector.time_to_preemption(stage_key, attempt, now=t)
            if draw >= segment:
                t += segment
                self._bill(result, trace, t, stage_key, a.vm, segment, rec)
                remaining -= segment
                if remaining > _WORK_EPS:
                    trace.record(
                        t, EventKind.CHECKPOINT, stage=stage_key, vm=a.vm.name,
                        done=effective - remaining, remaining=remaining,
                    )
                continue
            t += draw
            self._bill(result, trace, t, stage_key, a.vm, draw, rec)
            rec.preemptions += 1
            trace.record(
                t, EventKind.PREEMPTION, stage=stage_key, vm=a.vm.name,
                lost=draw, count=rec.preemptions,
            )
            get_tracer().event(
                EventKind.PREEMPTION.value, stage=stage_key, lost=draw,
                count=rec.preemptions, sim_time=t,
            )
            get_logger().warn(
                "executor.preemption",
                stage=stage_key,
                vm=a.vm.name,
                lost=draw,
                count=rec.preemptions,
                sim_time=t,
            )
            self._note_preemption(a, t, rec, injector, trace, result)
            timed_out = budget is not None and (t - stage_t0) > budget
            if timed_out:
                trace.record(
                    t, EventKind.TIMEOUT, stage=stage_key, vm=a.vm.name,
                    budget=budget, elapsed=t - stage_t0,
                )
                get_tracer().event(
                    EventKind.TIMEOUT.value, stage=stage_key, sim_time=t
                )
            if timed_out or (cap is not None and rec.preemptions >= cap):
                od = self._fallback_target(
                    a, t, rec, injector, trace, result, stage_options
                )
                trace.record(
                    t, EventKind.FALLBACK, stage=stage_key, vm=od.name,
                    reason="timeout" if timed_out else "preemptions",
                    preemptions=rec.preemptions,
                )
                get_tracer().event(
                    EventKind.FALLBACK.value, stage=stage_key, vm=od.name,
                    reason="timeout" if timed_out else "preemptions",
                    sim_time=t,
                )
                get_logger().warn(
                    "executor.fallback",
                    stage=stage_key,
                    vm=od.name,
                    reason="timeout" if timed_out else "preemptions",
                    preemptions=rec.preemptions,
                    sim_time=t,
                )
                t += remaining
                self._bill(result, trace, t, stage_key, od, remaining, rec)
                rec.vm = od
                rec.fell_back = True
                return t, True
        return t, False

    def _replan(
        self,
        assignments: List[StageAssignment],
        i: int,
        t: float,
        deadline_seconds: float,
        stage_options: Sequence,
        trace: ExecutionTrace,
        result: ExecutionResult,
    ) -> List[StageAssignment]:
        """Re-optimize the not-yet-started stages under the residual deadline."""
        from ..core.optimize import StageOptions, solve_mckp_dp

        remaining_stages = {a.stage for a in assignments[i + 1 :]}
        menu: List[StageOptions] = []
        for so in stage_options:
            if so.stage not in remaining_stages:
                continue
            options = (
                [o for o in so.options if not is_spot_vm(o.vm)]
                if self.policy.replan_excludes_spot
                else list(so.options)
            )
            if options:
                menu.append(StageOptions(stage=so.stage, options=options))
        residual = deadline_seconds - t
        selection = (
            solve_mckp_dp(menu, residual)
            if residual >= 1.0 and len(menu) == len(remaining_stages)
            else None
        )
        result.replanned = True
        get_tracer().event(
            EventKind.REPLAN.value,
            feasible=selection is not None,
            residual=residual,
            sim_time=t,
        )
        if selection is None:
            result.replan_feasible = False
            trace.record(
                t, EventKind.REPLAN, feasible=False, residual=residual,
                stages=len(remaining_stages),
            )
            return assignments
        new_tail = [
            StageAssignment(
                stage=stage,
                vm=selection.choices[stage].vm,
                runtime_seconds=selection.choices[stage].runtime_seconds,
            )
            for stage in EDAStage.ordered()
            if stage in selection.choices
        ]
        trace.record(
            t, EventKind.REPLAN, feasible=True, residual=residual,
            stages=len(new_tail),
        )
        return assignments[: i + 1] + new_tail


def simulate_spot_completion_times(
    runtime_seconds: float,
    interrupt_rate_per_hour: float,
    checkpoint_interval_seconds: Optional[float] = None,
    trials: int = 500,
    seed: int = 0,
) -> List[float]:
    """Monte-Carlo completion times of one spot stage under the executor.

    Runs ``trials`` independent seeded executions of a single-stage spot
    plan with unbounded policy (no fallback, no timeout) and returns each
    run's wall-clock — the chaos harness compares their mean against
    :func:`~repro.cloud.spot.spot_expected_runtime`.  Lean mode: traces
    and billed-segment objects are not materialized.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    vm = VMConfig(
        name=f"sim{SPOT_SUFFIX}",
        family=InstanceFamily.GENERAL_PURPOSE,
        vcpus=4,
        memory_gb=16.0,
        price_per_hour=1.0,
    )
    plan = DeploymentPlan(design="spot-sim")
    plan.add(EDAStage.SYNTHESIS, vm, runtime_seconds)
    profile = FaultProfile(
        spot_interrupt_rate_per_hour=interrupt_rate_per_hour,
        checkpoint_interval_seconds=checkpoint_interval_seconds,
    )
    executor = PlanExecutor(profile=profile, policy=ExecutionPolicy.unbounded())
    times: List[float] = []
    for trial in range(trials):
        trial_seed = zlib.crc32(f"spot-sim:{seed}:{trial}".encode())
        outcome = executor.execute(plan, seed=trial_seed, record_events=False)
        times.append(outcome.total_time)
    return times
