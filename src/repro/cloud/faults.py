"""Deterministic fault injection for the plan executor.

A :class:`FaultProfile` declares *what* can go wrong — Poisson spot
preemptions (the same rate model :func:`~repro.cloud.spot.spot_expected_runtime`
prices), VM boot/provisioning failures, transient control-plane API
errors, and straggler slowdowns.  A :class:`FaultInjector` decides *when*
it goes wrong, drawing every fault from its own ``random.Random`` stream
keyed by ``crc32(f"{seed}:{purpose}:{stage}:{attempt}")`` — the same
stable-seed construction :mod:`repro.verify.fuzz` uses — so an execution
is byte-reproducible from its seed and two seeds diverge immediately.

Keeping the streams independent per (purpose, stage, attempt) means the
preemption schedule of stage 2 does not shift when stage 1 happens to
retry one more time: fault draws are a pure function of where in the plan
they are consumed, which is what makes traces stable under re-planning.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FaultProfile", "FaultInjector"]


@dataclass(frozen=True)
class FaultProfile:
    """Rates and knobs for every injectable fault class.

    Attributes
    ----------
    spot_interrupt_rate_per_hour:
        Poisson reclaim rate applied to spot stages (on-demand stages are
        never preempted).  Matches the rate parameter of
        :func:`~repro.cloud.spot.spot_expected_runtime`.
    boot_failure_prob:
        Probability that one VM provisioning attempt fails outright.
    api_error_prob:
        Probability that one job submission hits a transient API error.
    straggler_prob:
        Probability that a stage lands on a slow host.
    straggler_slowdown:
        Runtime multiplier (> 1) applied when a stage straggles.
    checkpoint_interval_seconds:
        Checkpointing period of the EDA tool, or ``None`` for
        restart-from-scratch — identical semantics to the spot model.
    """

    spot_interrupt_rate_per_hour: float = 0.0
    boot_failure_prob: float = 0.0
    api_error_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 1.5
    checkpoint_interval_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.spot_interrupt_rate_per_hour < 0:
            raise ValueError(
                "spot_interrupt_rate_per_hour must be non-negative, got "
                f"{self.spot_interrupt_rate_per_hour!r}"
            )
        for name in ("boot_failure_prob", "api_error_prob", "straggler_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        if self.straggler_slowdown <= 1.0:
            raise ValueError(
                "straggler_slowdown must be > 1 (a multiplier of 1 is a "
                f"no-op straggler), got {self.straggler_slowdown!r}"
            )
        if (
            self.checkpoint_interval_seconds is not None
            and self.checkpoint_interval_seconds <= 0
        ):
            raise ValueError(
                "checkpoint_interval_seconds must be positive, got "
                f"{self.checkpoint_interval_seconds!r}"
            )

    @property
    def fault_free(self) -> bool:
        """True when nothing can go wrong (the nominal-execution baseline)."""
        return (
            self.spot_interrupt_rate_per_hour == 0
            and self.boot_failure_prob == 0
            and self.api_error_prob == 0
            and self.straggler_prob == 0
        )

    # -- canned profiles --------------------------------------------------
    @classmethod
    def none(cls) -> "FaultProfile":
        """Nothing fails: execution reproduces the plan exactly."""
        return cls()

    @classmethod
    def calm(cls) -> "FaultProfile":
        """A quiet spot pool with rare control-plane hiccups."""
        return cls(
            spot_interrupt_rate_per_hour=0.05,
            boot_failure_prob=0.01,
            api_error_prob=0.02,
            straggler_prob=0.05,
            straggler_slowdown=1.3,
            checkpoint_interval_seconds=600.0,
        )

    @classmethod
    def preemption_heavy(cls) -> "FaultProfile":
        """A volatile spot pool — the chaos-harness default."""
        return cls(
            spot_interrupt_rate_per_hour=2.0,
            boot_failure_prob=0.05,
            api_error_prob=0.05,
            straggler_prob=0.10,
            straggler_slowdown=1.5,
            checkpoint_interval_seconds=300.0,
        )

    @classmethod
    def storm(cls) -> "FaultProfile":
        """A full-blown capacity storm: reclaim rates an order of magnitude
        past ``preemption_heavy`` with aggressive checkpointing — the
        full-severity anchor of the correlated chaos scenarios."""
        return cls(
            spot_interrupt_rate_per_hour=12.0,
            boot_failure_prob=0.15,
            api_error_prob=0.10,
            straggler_prob=0.25,
            straggler_slowdown=2.0,
            checkpoint_interval_seconds=120.0,
        )


#: Profiles addressable from the CLI (``repro execute --profile calm``).
PROFILES = {
    "none": FaultProfile.none,
    "calm": FaultProfile.calm,
    "heavy": FaultProfile.preemption_heavy,
    "storm": FaultProfile.storm,
}


class FaultInjector:
    """Seeded source of all fault decisions for one execution.

    Every query draws from a dedicated :class:`random.Random` stream keyed
    by ``(seed, purpose, stage, attempt)`` via ``zlib.crc32`` — stable
    across processes and Python versions.  Repeated calls with the same
    key draw successive values from the same stream (the preemption
    sampler consumes one draw per attempted segment).
    """

    def __init__(self, profile: FaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, purpose: str, stage: str, attempt: int = 0) -> random.Random:
        key = f"{self.seed}:{purpose}:{stage}:{attempt}"
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(zlib.crc32(key.encode()))
            self._streams[key] = rng
        return rng

    def boot_fails(self, stage: str, attempt: int, now: float = 0.0) -> bool:
        """``now`` is the simulation clock — unused by the base Poisson
        model, but time-correlated subclasses (boot-failure waves, regime
        switching) key their hazards on it."""
        p = self.profile.boot_failure_prob
        return p > 0 and self.stream("boot", stage, attempt).random() < p

    def api_errors(self, stage: str, attempt: int, now: float = 0.0) -> bool:
        p = self.profile.api_error_prob
        return p > 0 and self.stream("api", stage, attempt).random() < p

    def straggler_factor(
        self, stage: str, attempt: int, now: float = 0.0
    ) -> float:
        """Runtime multiplier for this stage attempt (1.0 = healthy host)."""
        p = self.profile.straggler_prob
        if p > 0 and self.stream("straggler", stage, attempt).random() < p:
            return self.profile.straggler_slowdown
        return 1.0

    def time_to_preemption(
        self, stage: str, attempt: int, now: float = 0.0
    ) -> float:
        """Seconds from segment start to the next spot reclaim (may be inf).

        Exponential with the profile's hourly rate; by memorylessness a
        fresh draw per (re)started segment is a faithful Poisson process.
        """
        lam = self.profile.spot_interrupt_rate_per_hour / 3600.0
        if lam <= 0:
            return math.inf
        return self.stream("preempt", stage, attempt).expovariate(lam)

    def jitter(self, stage: str, attempt: int) -> float:
        """Uniform [0, 1) draw for deterministic backoff jitter."""
        return self.stream("jitter", stage, attempt).random()
