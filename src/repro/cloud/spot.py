"""Spot-market extension: deeper savings with interruptible instances.

The paper optimizes over on-demand instances only; clouds also sell the
same VM shapes at a 60-90% discount as *spot* capacity that can be
reclaimed at any time.  This extension models the standard trade:

* a spot instance costs ``discount x`` the on-demand rate,
* it is interrupted by a Poisson process with a per-hour reclaim rate,
* an interrupted EDA stage restarts from its last checkpoint (or from
  scratch for tools without checkpointing), so the *expected* runtime and
  therefore the expected cost and deadline risk grow with job length.

:func:`spot_expected_runtime` gives the closed-form expected completion
time under restart-on-interrupt, and :class:`SpotMarket` augments a
pricing catalog with per-stage expected-cost spot options so the MCKP
optimizer can mix spot and on-demand per stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .instance import VMConfig
from .pricing import PricingTable, aws_like_catalog

__all__ = ["SpotQuote", "SpotMarket", "spot_expected_runtime"]


def spot_expected_runtime(
    runtime_seconds: float,
    interrupt_rate_per_hour: float,
    checkpoint_interval_seconds: Optional[float] = None,
) -> float:
    """Expected wall-clock completion time on an interruptible instance.

    With restarts from scratch, a job needing ``T`` uninterrupted seconds
    under Poisson interruptions of rate ``lambda`` has expected completion
    time ``(e^{lambda T} - 1) / lambda`` — the classic preemptive-restart
    result.  With checkpointing every ``C`` seconds, each segment of
    length ``C`` pays that penalty independently.
    """
    if runtime_seconds < 0:
        raise ValueError("runtime must be non-negative")
    if interrupt_rate_per_hour < 0:
        raise ValueError("interrupt rate must be non-negative")
    if runtime_seconds == 0:
        return 0.0
    lam = interrupt_rate_per_hour / 3600.0
    if lam == 0:
        return runtime_seconds
    if checkpoint_interval_seconds is None:
        return math.expm1(lam * runtime_seconds) / lam
    if checkpoint_interval_seconds <= 0:
        raise ValueError("checkpoint interval must be positive")
    c = min(checkpoint_interval_seconds, runtime_seconds)
    full_segments = int(runtime_seconds // c)
    tail = runtime_seconds - full_segments * c
    per_segment = math.expm1(lam * c) / lam
    tail_time = math.expm1(lam * tail) / lam if tail > 0 else 0.0
    return full_segments * per_segment + tail_time


@dataclass(frozen=True)
class SpotQuote:
    """One spot option for a stage: expected runtime and expected cost."""

    vm: VMConfig
    nominal_runtime: float
    expected_runtime: float
    expected_cost: float
    discount: float
    interrupt_rate_per_hour: float

    @property
    def risk_stretch(self) -> float:
        """Expected-over-nominal runtime ratio (1.0 = no risk)."""
        return self.expected_runtime / self.nominal_runtime if self.nominal_runtime else 1.0


class SpotMarket:
    """Spot quotes layered on an on-demand catalog.

    Parameters
    ----------
    catalog:
        The on-demand pricing table quotes are derived from.
    discount:
        Spot price as a fraction of on-demand (AWS spot averages ~0.3).
    interrupt_rate_per_hour:
        Poisson reclaim rate.  ~0.05/h is a calm pool; >0.5/h is volatile.
    checkpoint_interval_seconds:
        Checkpointing period of the EDA tool, or ``None`` for
        restart-from-scratch (most synthesis/STA runs).
    """

    def __init__(
        self,
        catalog: Optional[PricingTable] = None,
        discount: float = 0.3,
        interrupt_rate_per_hour: float = 0.1,
        checkpoint_interval_seconds: Optional[float] = None,
    ):
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        if interrupt_rate_per_hour < 0:
            raise ValueError("interrupt rate must be non-negative")
        self.catalog = catalog if catalog is not None else aws_like_catalog()
        self.discount = discount
        self.interrupt_rate_per_hour = interrupt_rate_per_hour
        self.checkpoint_interval_seconds = checkpoint_interval_seconds

    def quote(self, vm: VMConfig, runtime_seconds: float) -> SpotQuote:
        """Spot quote for running one job on one VM shape."""
        expected = spot_expected_runtime(
            runtime_seconds,
            self.interrupt_rate_per_hour,
            self.checkpoint_interval_seconds,
        )
        cost = self.discount * vm.cost(expected)
        return SpotQuote(
            vm=vm,
            nominal_runtime=runtime_seconds,
            expected_runtime=expected,
            expected_cost=cost,
            discount=self.discount,
            interrupt_rate_per_hour=self.interrupt_rate_per_hour,
        )

    def breakeven_runtime(self, vm: VMConfig) -> float:
        """Runtime above which on-demand is *expected* to be cheaper.

        Solves ``discount * E[T_spot(T)] = T`` for restart-from-scratch
        jobs; below the returned ``T`` spot wins in expectation, above it
        the exponential restart penalty dominates the discount.  Returns
        ``inf`` when spot always wins (e.g. with tight checkpointing).
        """
        lam = self.interrupt_rate_per_hour / 3600.0
        if lam == 0:
            return math.inf
        if self.checkpoint_interval_seconds is not None:
            # With checkpointing the stretch is bounded; spot wins iff
            # discount * stretch(C) < 1, independent of T.
            c = self.checkpoint_interval_seconds
            stretch = math.expm1(lam * c) / (lam * c)
            return math.inf if self.discount * stretch < 1.0 else 0.0
        # Solve discount * (e^{lam T} - 1) / (lam T) = 1 by bisection.
        lo, hi = 1.0, 3600.0 * 24 * 30
        f = lambda t: self.discount * math.expm1(lam * t) / (lam * t) - 1.0
        if f(lo) > 0:
            return 0.0
        if f(hi) < 0:
            return math.inf
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if f(mid) > 0:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    def augment_stage_options(self, stages: List) -> List:
        """Add spot variants to every stage's option list.

        Returns new :class:`~repro.core.optimize.StageOptions` whose
        options include, for every on-demand option, a spot twin priced at
        the expected cost with the expected runtime — so the MCKP DP can
        choose spot where the risk-adjusted economics win.
        """
        from ..core.optimize import ConfigOption, StageOptions

        out = []
        for stage_opts in stages:
            options = list(stage_opts.options)
            for opt in stage_opts.options:
                q = self.quote(opt.vm, opt.runtime_seconds)
                spot_vm = VMConfig(
                    name=f"{opt.vm.name}.spot",
                    family=opt.vm.family,
                    vcpus=opt.vm.vcpus,
                    memory_gb=opt.vm.memory_gb,
                    price_per_hour=opt.vm.price_per_hour * self.discount,
                    avx=opt.vm.avx,
                )
                options.append(
                    ConfigOption(
                        vm=spot_vm,
                        runtime_seconds=max(1, int(round(q.expected_runtime))),
                        price=q.expected_cost,
                    )
                )
            out.append(StageOptions(stage=stage_opts.stage, options=options))
        return out
