"""Cloud substrate: VM shapes, pricing, multi-tenancy, deployment plans.

Substitutes the paper's AWS environment: a frozen on-demand catalog with
general-purpose / memory-optimized / compute-optimized families at
1/2/4/8 vCPUs, per-second billing, and an interference model for shared
hosts.
"""

from .instance import InstanceFamily, VMConfig
from .pricing import PAPER_VCPU_OPTIONS, PricingTable, aws_like_catalog
from .provisioner import (
    DeploymentPlan,
    RECOMMENDED_FAMILY,
    StageAssignment,
    uniform_plan,
)
from .spot import SpotMarket, SpotQuote, spot_expected_runtime
from .tenancy import NeighborLoad, TenancyModel
from .events import EventKind, ExecutionEvent, ExecutionTrace
from .faults import FaultInjector, FaultProfile

# The executor re-plans through repro.core.optimize, which itself imports
# the modules above — keep this import last so the partially-initialized
# package already exposes them.
from .executor import (
    BilledSegment,
    ExecutionPolicy,
    ExecutionResult,
    PlanExecutor,
    RetryPolicy,
    StageRecord,
    simulate_spot_completion_times,
)

__all__ = [
    "InstanceFamily",
    "VMConfig",
    "PAPER_VCPU_OPTIONS",
    "PricingTable",
    "aws_like_catalog",
    "DeploymentPlan",
    "RECOMMENDED_FAMILY",
    "StageAssignment",
    "uniform_plan",
    "SpotMarket",
    "SpotQuote",
    "spot_expected_runtime",
    "NeighborLoad",
    "TenancyModel",
    "EventKind",
    "ExecutionEvent",
    "ExecutionTrace",
    "FaultInjector",
    "FaultProfile",
    "BilledSegment",
    "ExecutionPolicy",
    "ExecutionResult",
    "PlanExecutor",
    "RetryPolicy",
    "StageRecord",
    "simulate_spot_completion_times",
]
