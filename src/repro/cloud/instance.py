"""Virtual machine configurations.

Models the unit of cloud provisioning exactly as Section II of the paper
describes it: VMs are sold as bundles of vCPUs, memory and storage, carved
out of physical hosts by the hypervisor.  A :class:`VMConfig` carries the
attributes the optimization needs — vCPU count, family, AVX capability and
the hourly price — and implements AWS-style *per-second billing*, the
assumption that lets the paper round runtimes to whole seconds in the
knapsack DP.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["InstanceFamily", "VMConfig"]


class InstanceFamily(str, enum.Enum):
    """Instance families, mirroring the two the paper provisions."""

    GENERAL_PURPOSE = "general_purpose"  # m5-like: balanced compute/memory
    MEMORY_OPTIMIZED = "memory_optimized"  # r5-like: high memory-to-core ratio
    COMPUTE_OPTIMIZED = "compute_optimized"  # c5-like: high clock, AVX-512

    @property
    def display_name(self) -> str:
        return {
            InstanceFamily.GENERAL_PURPOSE: "general-purpose",
            InstanceFamily.MEMORY_OPTIMIZED: "memory-optimized",
            InstanceFamily.COMPUTE_OPTIMIZED: "compute-optimized",
        }[self]


@dataclass(frozen=True)
class VMConfig:
    """One provisionable VM shape.

    Attributes
    ----------
    name:
        Catalog name, e.g. ``"gp.2x"``.
    family:
        Instance family.
    vcpus:
        Virtual CPU count (one hardware thread each).
    memory_gb:
        Memory reservation in GiB.
    price_per_hour:
        On-demand price in USD per hour.
    avx:
        Whether the underlying processor exposes AVX units (the paper
        recommends AVX hosts for placement and STA).
    """

    name: str
    family: InstanceFamily
    vcpus: int
    memory_gb: float
    price_per_hour: float
    avx: bool = True

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.price_per_hour <= 0:
            raise ValueError("price_per_hour must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")

    @property
    def price_per_second(self) -> float:
        """Per-second rate (cloud VMs bill per second, no fractions)."""
        return self.price_per_hour / 3600.0

    @property
    def memory_per_vcpu(self) -> float:
        """Memory-to-core ratio in GiB per vCPU."""
        return self.memory_gb / self.vcpus

    def cost(self, runtime_seconds: float) -> float:
        """Cost in USD of running for ``runtime_seconds``.

        Billing is per whole second (rounded up), matching the assumption
        that makes the knapsack DP exact.
        """
        if runtime_seconds < 0:
            raise ValueError("runtime must be non-negative")
        billed_seconds = math.ceil(runtime_seconds)
        return billed_seconds * self.price_per_second

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.name} ({self.family.display_name}, {self.vcpus} vCPU, "
            f"{self.memory_gb:g} GiB, ${self.price_per_hour:.4f}/h)"
        )
