"""The paper's runtime-prediction model (Figure 4).

Architecture, from Section III-B "Model Design":

* 2 GCN layers with 256 and 128 hidden units,
* 1 fully connected layer with 128 units,
* a linear head producing the four runtimes (1, 2, 4, 8 vCPUs) jointly,
* trained with MSE over all four outputs, Adam, lr = 1e-4, 200 epochs.

One model instance is trained **per application** (synthesis model on
AIGs, placement/routing/STA models on star-model netlist graphs).

Targets are log-runtimes: runtimes span orders of magnitude across the
dataset and the paper's accuracy metric is relative error, for which a
log-domain MSE is the natural surrogate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .graph import PreparedGraph
from .layers import DenseLayer, GCNLayer, Parameter, Readout

__all__ = ["RuntimeGCN"]

#: vCPU levels whose runtimes the model predicts, in output order.
OUTPUT_VCPUS = (1, 2, 4, 8)


class RuntimeGCN:
    """GCN + FC runtime predictor.

    Parameters
    ----------
    feature_dim:
        Node feature width (8 for AIG graphs, 12 for netlist graphs).
    hidden1, hidden2, fc_units:
        Layer widths; defaults follow the paper (256, 128, 128).
    pool:
        Readout mode; ``"mean"`` (default) is size-stable, ``"sum"`` is the
        paper's literal example (kept for the ablation).
    seed:
        Initialization seed.
    """

    def __init__(
        self,
        feature_dim: int,
        hidden1: int = 256,
        hidden2: int = 128,
        fc_units: int = 128,
        outputs: int = len(OUTPUT_VCPUS),
        pool: str = "mean",
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.gcn1 = GCNLayer(feature_dim, hidden1, rng)
        self.gcn2 = GCNLayer(hidden1, hidden2, rng)
        self.readout = Readout(pool)
        # The pooled embedding is augmented with global graph statistics
        # (log nodes/edges/depth, fanout stats): total work scales with size, and
        # mean-pooling alone discards it.
        self.meta_dim = 5
        self.fc = DenseLayer(hidden2 + self.meta_dim, fc_units, rng)
        self.head = DenseLayer(fc_units, outputs, rng, activation="linear")
        self._cache_nodes = 0

    @property
    def parameters(self) -> List[Parameter]:
        return (
            self.gcn1.parameters
            + self.gcn2.parameters
            + self.fc.parameters
            + self.head.parameters
        )

    def forward(self, graph: PreparedGraph) -> np.ndarray:
        """Predict log-runtimes; returns a vector of ``outputs`` values."""
        h1 = self.gcn1.forward(graph.features, graph.a_hat)
        h2 = self.gcn2.forward(h1, graph.a_hat)
        pooled = self.readout.forward(h2)
        x = np.concatenate([pooled, graph.meta_vector])
        z = self.fc.forward(x)
        return self.head.forward(z)

    def backward(self, grad_out: np.ndarray) -> None:
        """Backpropagate a gradient w.r.t. the model output."""
        dz = self.head.backward(grad_out)
        dx = self.fc.backward(dz)
        dpooled = dx[: -self.meta_dim]  # drop the global-statistics slots
        dh2 = self.readout.backward(dpooled)
        dh1 = self.gcn2.backward(dh2)
        self.gcn1.backward(dh1)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(int(np.prod(p.shape)) for p in self.parameters)

    def state_dict(self) -> List[np.ndarray]:
        """Copy of all parameter arrays (for snapshots in tests)."""
        return [p.value.copy() for p in self.parameters]

    def load_state_dict(self, state: List[np.ndarray]) -> None:
        if len(state) != len(self.parameters):
            raise ValueError("state size mismatch")
        for p, s in zip(self.parameters, state):
            if p.value.shape != s.shape:
                raise ValueError("parameter shape mismatch")
            p.value[:] = s
