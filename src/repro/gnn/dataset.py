"""Dataset containers and design-level splitting.

Mirrors the paper's dataset protocol (Section IV): netlist variants are
generated per *design*, and the train/test split is **by design** — "netlists
of the test set belong to unseen designs in the training set" — so the model
is evaluated on generalization to new circuits, not memorization of seen
ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..netlist.stargraph import GraphSample
from .graph import PreparedGraph

__all__ = ["RuntimeSample", "split_by_design", "log_targets", "unlog_targets"]


@dataclass
class RuntimeSample:
    """One (graph, measured runtimes) pair for a single application."""

    graph: GraphSample
    runtimes: np.ndarray  # seconds at (1, 2, 4, 8) vCPUs
    design: str
    variant: int = 0
    prepared: PreparedGraph = field(init=False)

    def __post_init__(self) -> None:
        self.runtimes = np.asarray(self.runtimes, dtype=np.float64)
        if self.runtimes.shape != (4,):
            raise ValueError("runtimes must have shape (4,)")
        if np.any(self.runtimes <= 0):
            raise ValueError("runtimes must be positive")
        self.prepared = PreparedGraph(self.graph)

    @property
    def log_runtimes(self) -> np.ndarray:
        return np.log(self.runtimes)

    @property
    def speedups(self) -> np.ndarray:
        """Speedups at 2/4/8 vCPUs implied by the runtimes."""
        return self.runtimes[0] / self.runtimes


def log_targets(samples: Sequence[RuntimeSample]) -> np.ndarray:
    """Stack log-runtime targets into an ``(n, 4)`` matrix."""
    return np.stack([s.log_runtimes for s in samples])


def unlog_targets(log_values: np.ndarray) -> np.ndarray:
    """Invert :func:`log_targets`."""
    return np.exp(log_values)


def split_by_design(
    samples: Sequence[RuntimeSample],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> Tuple[List[RuntimeSample], List[RuntimeSample]]:
    """80/20 train/test split with whole designs held out.

    All variants of a design land on the same side of the split, so test
    designs are unseen during training (the paper's protocol).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    designs = sorted({s.design for s in samples})
    if len(designs) < 2:
        raise ValueError("need at least two designs to split by design")
    rng = random.Random(seed)
    rng.shuffle(designs)
    num_test = max(1, int(round(test_fraction * len(designs))))
    test_designs = set(designs[:num_test])
    train = [s for s in samples if s.design not in test_designs]
    test = [s for s in samples if s.design in test_designs]
    return train, test
