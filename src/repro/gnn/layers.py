"""Neural layers with exact manual backward passes (numpy only).

Implements the paper's GCN building blocks (Equation 2):

.. math::

    h_v^k = \\sigma\\Big( W_k \\sum_{u \\in N(v)} \\frac{h_u^{k-1}}{|N(v)|}
            + B_k\\, h_v^{k-1} \\Big)

as ``relu(A_hat @ H @ W + H @ B + bias)`` where ``A_hat`` is the
row-normalized adjacency, plus dense layers and sum/mean pooling readouts.
Every layer caches its forward activations and returns exact gradients —
no autograd framework is available offline, and none is needed at this
model size.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["Parameter", "GCNLayer", "DenseLayer", "Readout"]


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = value
        self.grad = np.zeros_like(value)

    def zero_grad(self) -> None:
        self.grad[:] = 0.0

    @property
    def shape(self):
        return self.value.shape


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class GCNLayer:
    """One graph-convolution layer with neighbour (W) and self (B) paths."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: str = "relu"):
        if activation not in ("relu", "linear"):
            raise ValueError("activation must be 'relu' or 'linear'")
        self.weight = Parameter(_glorot(rng, in_dim, out_dim))
        self.self_weight = Parameter(_glorot(rng, in_dim, out_dim))
        self.bias = Parameter(np.zeros(out_dim))
        self.activation = activation
        self._cache: Dict[str, object] = {}

    @property
    def parameters(self) -> List[Parameter]:
        return [self.weight, self.self_weight, self.bias]

    def forward(self, h: np.ndarray, a_hat: sp.csr_matrix) -> np.ndarray:
        """``relu(A_hat @ H @ W + H @ B + bias)``."""
        agg = a_hat @ h
        z = agg @ self.weight.value + h @ self.self_weight.value + self.bias.value
        out = np.maximum(z, 0.0) if self.activation == "relu" else z
        self._cache = {"h": h, "agg": agg, "z": z, "a_hat": a_hat}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        h = self._cache["h"]
        agg = self._cache["agg"]
        z = self._cache["z"]
        a_hat = self._cache["a_hat"]
        dz = grad_out * (z > 0.0) if self.activation == "relu" else grad_out
        self.weight.grad += agg.T @ dz
        self.self_weight.grad += h.T @ dz
        self.bias.grad += dz.sum(axis=0)
        dagg = dz @ self.weight.value.T
        dh = a_hat.T @ dagg + dz @ self.self_weight.value.T
        return dh


class DenseLayer:
    """Fully connected layer over a single vector (the pooled embedding)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: str = "relu"):
        if activation not in ("relu", "linear"):
            raise ValueError("activation must be 'relu' or 'linear'")
        self.weight = Parameter(_glorot(rng, in_dim, out_dim))
        self.bias = Parameter(np.zeros(out_dim))
        self.activation = activation
        self._cache: Dict[str, np.ndarray] = {}

    @property
    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        z = x @ self.weight.value + self.bias.value
        out = np.maximum(z, 0.0) if self.activation == "relu" else z
        self._cache = {"x": x, "z": z}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache["x"]
        z = self._cache["z"]
        dz = grad_out * (z > 0.0) if self.activation == "relu" else grad_out
        self.weight.grad += np.outer(x, dz)
        self.bias.grad += dz
        return dz @ self.weight.value.T


class Readout:
    """Graph-level pooling: ``sum`` (paper's example) or size-stable ``mean``."""

    def __init__(self, mode: str = "mean"):
        if mode not in ("sum", "mean"):
            raise ValueError("mode must be 'sum' or 'mean'")
        self.mode = mode
        self._num_nodes = 0

    def forward(self, h: np.ndarray) -> np.ndarray:
        self._num_nodes = h.shape[0]
        if self.mode == "sum":
            return h.sum(axis=0)
        return h.mean(axis=0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n = self._num_nodes
        if self.mode == "sum":
            return np.tile(grad_out, (n, 1))
        return np.tile(grad_out / n, (n, 1))
