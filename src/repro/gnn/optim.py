"""Optimizers (Adam, plus plain SGD for comparisons)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Adam", "SGD"]


class Adam:
    """Adam optimizer (Kingma & Ba), the paper's choice (lr = 1e-4)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.parameters, self._m, self._v):
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * (p.grad ** 2)
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD:
    """Vanilla SGD, kept for optimizer ablations."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def step(self) -> None:
        for p in self.parameters:
            p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
