"""Numpy GCN: the paper's runtime-prediction model with manual backprop.

* :mod:`repro.gnn.graph` — normalized-adjacency preprocessing.
* :mod:`repro.gnn.layers` — GCN/dense layers with exact gradients.
* :mod:`repro.gnn.model` — the 2xGCN + FC architecture of Figure 4.
* :mod:`repro.gnn.optim` — Adam / SGD.
* :mod:`repro.gnn.dataset` — runtime samples and design-level splits.
* :mod:`repro.gnn.training` — MSE training loop and accuracy metrics.
"""

from .dataset import RuntimeSample, log_targets, split_by_design, unlog_targets
from .graph import PreparedGraph, normalized_adjacency, prepare
from .layers import DenseLayer, GCNLayer, Parameter, Readout
from .model import OUTPUT_VCPUS, RuntimeGCN
from .optim import Adam, SGD
from .training import EvalResult, TrainConfig, TrainResult, evaluate, train

__all__ = [
    "RuntimeSample",
    "log_targets",
    "split_by_design",
    "unlog_targets",
    "PreparedGraph",
    "normalized_adjacency",
    "prepare",
    "DenseLayer",
    "GCNLayer",
    "Parameter",
    "Readout",
    "OUTPUT_VCPUS",
    "RuntimeGCN",
    "Adam",
    "SGD",
    "EvalResult",
    "TrainConfig",
    "TrainResult",
    "evaluate",
    "train",
]
