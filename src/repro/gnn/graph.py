"""Graph preprocessing for the GCN.

Implements the aggregation operator of the paper's Equation (2): each node
averages its in-neighbours' embeddings, i.e. multiplication by the
row-normalized adjacency matrix ``D_in^-1 A``.  Edge *directions are
preserved* (the paper stresses that the AIG/star graphs are DAGs), so the
matrix is not symmetrized.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..netlist.stargraph import GraphSample

__all__ = ["normalized_adjacency", "PreparedGraph", "prepare"]


def normalized_adjacency(sample: GraphSample) -> sp.csr_matrix:
    """Row-normalized directed adjacency ``D_in^-1 A`` of a sample.

    Row ``v`` holds ``1/|N(v)|`` at each in-neighbour ``u``, so
    ``A_hat @ H`` computes the mean over in-neighbour embeddings.  Nodes
    without in-edges get an all-zero row (their update comes entirely from
    the self term ``B_k h_v``).
    """
    n = sample.num_nodes
    if sample.num_edges == 0:
        return sp.csr_matrix((n, n))
    src = sample.edges[:, 0]
    dst = sample.edges[:, 1]
    indegree = np.bincount(dst, minlength=n).astype(np.float64)
    weights = 1.0 / indegree[dst]
    mat = sp.coo_matrix((weights, (dst, src)), shape=(n, n))
    return mat.tocsr()


class PreparedGraph:
    """A sample with its normalized adjacency cached.

    Building the sparse matrix once per sample (instead of per epoch)
    dominates training throughput.
    """

    def __init__(self, sample: GraphSample):
        self.sample = sample
        self.a_hat = normalized_adjacency(sample)
        self.features = sample.features
        depth = float(sample.meta.get("depth", 1.0))
        if sample.num_edges:
            out_degree = np.bincount(sample.edges[:, 0], minlength=sample.num_nodes)
            max_fanout = float(out_degree.max())
            mean_degree = float(out_degree.mean())
        else:
            max_fanout = 0.0
            mean_degree = 0.0
        self.meta_vector = np.array(
            [
                np.log(max(sample.num_nodes, 1)),
                np.log1p(sample.num_edges),
                np.log1p(depth),
                np.log1p(max_fanout),
                mean_degree,
            ]
        )

    @property
    def name(self) -> str:
        return self.sample.name

    @property
    def num_nodes(self) -> int:
        return self.sample.num_nodes


def prepare(samples) -> list:
    """Prepare a list of :class:`GraphSample` objects for training."""
    return [PreparedGraph(s) for s in samples]
