"""Training loop and evaluation metrics for the runtime predictor.

Follows the paper's setup: MSE loss over the four runtime outputs jointly,
Adam with lr = 1e-4, 200 epochs (configurable — scaled-down runs use
fewer).  Targets are log-runtimes; evaluation reports *relative* runtime
error, matching the paper's "87% accuracy / 13% average error" metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import get_logger, get_metrics, get_tracer
from ..obs.log import crash_scope
from .dataset import RuntimeSample
from .model import RuntimeGCN
from .optim import Adam

__all__ = ["TrainConfig", "TrainResult", "train", "evaluate", "EvalResult"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters (paper defaults)."""

    epochs: int = 200
    lr: float = 1e-4
    shuffle_seed: int = 0
    log_every: int = 0  # 0 disables progress lines
    target_center: bool = True  # subtract the train-set mean log-runtime
    target_scale: bool = True  # divide by the train-set log-runtime std


@dataclass
class TrainResult:
    """Loss history and the target normalization used."""

    losses: List[float] = field(default_factory=list)
    target_offset: np.ndarray = field(default_factory=lambda: np.zeros(4))
    target_std: np.ndarray = field(default_factory=lambda: np.ones(4))

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train(
    model: RuntimeGCN,
    samples: Sequence[RuntimeSample],
    config: TrainConfig = TrainConfig(),
) -> TrainResult:
    """Train the model in place; returns the loss history.

    Per-sample (stochastic) updates: graphs have different node counts, so
    batching would require padding for no gain at this scale.
    """
    if not samples:
        raise ValueError("no training samples")
    optimizer = Adam(model.parameters, lr=config.lr)
    rng = np.random.default_rng(config.shuffle_seed)
    result = TrainResult()
    targets = np.stack([s.log_runtimes for s in samples])
    if config.target_center:
        result.target_offset = targets.mean(axis=0)
    if config.target_scale:
        result.target_std = np.maximum(targets.std(axis=0), 1e-3)
    order = np.arange(len(samples))
    tracer = get_tracer()
    log = get_logger()
    loss_gauge = get_metrics().gauge("gnn.train.loss")
    epoch_counter = get_metrics().counter("gnn.train.epochs")
    with crash_scope("gnn.train", config.shuffle_seed):
        with tracer.span(
            "gnn.train", epochs=config.epochs, samples=len(samples)
        ):
            for epoch in range(config.epochs):
                with tracer.span("gnn.epoch", epoch=epoch) as span:
                    rng.shuffle(order)
                    epoch_loss = 0.0
                    for idx in order:
                        sample = samples[idx]
                        target = (
                            sample.log_runtimes - result.target_offset
                        ) / result.target_std
                        # Profiler hooks: the GCN message-passing forward
                        # pass and the gradient/optimizer step, separately
                        # attributable in profiles.
                        with tracer.span("gnn.forward", nodes=sample.prepared.num_nodes):
                            pred = model.forward(sample.prepared)
                        err = pred - target
                        loss = float(np.mean(err ** 2))
                        epoch_loss += loss
                        with tracer.span("gnn.backward"):
                            # d(MSE)/d(pred) = 2 * err / n_outputs
                            model.zero_grad()
                            model.backward(2.0 * err / err.size)
                            optimizer.step()
                    mean_loss = epoch_loss / len(samples)
                    result.losses.append(mean_loss)
                    span.set_tag("loss", mean_loss)
                loss_gauge.set(mean_loss)
                epoch_counter.inc()
                log.debug("gnn.epoch", epoch=epoch, loss=mean_loss)
                if config.log_every and (epoch + 1) % config.log_every == 0:
                    print(f"epoch {epoch + 1:4d}  loss {mean_loss:.5f}")
    return result


@dataclass
class EvalResult:
    """Per-sample relative errors and aggregate accuracy."""

    per_sample_error: np.ndarray  # mean relative error over the 4 outputs
    per_output_error: np.ndarray  # (n, 4) relative errors
    predictions: np.ndarray  # (n, 4) predicted runtimes in seconds

    @property
    def mean_error(self) -> float:
        """Average relative runtime error (the paper reports 13% / 5%)."""
        return float(self.per_sample_error.mean())

    @property
    def accuracy(self) -> float:
        """``100% - mean error`` (the paper's 87% headline)."""
        return 100.0 * (1.0 - self.mean_error)

    def error_histogram(self, bins: Sequence[float]) -> Dict[str, int]:
        """Histogram of per-sample errors (Figure 5's presentation)."""
        edges = list(bins)
        counts, _ = np.histogram(self.per_sample_error, bins=edges)
        labels = [
            f"{100 * lo:.0f}-{100 * hi:.0f}%" for lo, hi in zip(edges, edges[1:])
        ]
        return dict(zip(labels, counts.tolist()))


def evaluate(
    model: RuntimeGCN,
    samples: Sequence[RuntimeSample],
    target_offset: Optional[np.ndarray] = None,
    target_std: Optional[np.ndarray] = None,
) -> EvalResult:
    """Relative-error evaluation on linear-scale runtimes."""
    if not samples:
        raise ValueError("no evaluation samples")
    offset = target_offset if target_offset is not None else np.zeros(4)
    std = target_std if target_std is not None else np.ones(4)
    preds = []
    errors = []
    for sample in samples:
        pred_log = model.forward(sample.prepared) * std + offset
        pred = np.exp(pred_log)
        rel = np.abs(pred - sample.runtimes) / sample.runtimes
        preds.append(pred)
        errors.append(rel)
    per_output = np.stack(errors)
    return EvalResult(
        per_sample_error=per_output.mean(axis=1),
        per_output_error=per_output,
        predictions=np.stack(preds),
    )
