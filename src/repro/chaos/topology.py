"""Region/AZ topology: per-region pricing, spot markets, transfer costs.

The paper prices a single implicit region; multi-service EDA deployments
span several.  A :class:`CloudTopology` arranges named :class:`Region`\\ s
(each with availability zones, a price multiplier over the reference
catalog, its own spot discount and reclaim-rate multiplier, and an egress
rate for data leaving it) and answers the three questions the chaos
engine asks:

* what does VM shape ``X`` cost *in region R*?  (``price_in`` /
  ``catalog_in`` — the home region keeps the reference catalog's plain
  names so a zero-severity chaos run is byte-identical to the base
  executor's trace);
* what does moving a checkpoint from ``R`` to ``R'`` cost?
  (``transfer_cost`` — intra-region moves are free, cross-region moves
  bill the source region's egress rate per GB);
* where does a storm-struck flow flee to?  (``failover_target`` — the
  next region in declaration order, a deterministic ring).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from ..cloud.instance import VMConfig
from ..cloud.pricing import PricingTable, aws_like_catalog
from ..cloud.spot import SpotMarket

__all__ = ["Region", "CloudTopology", "default_topology"]


@dataclass(frozen=True)
class Region:
    """One cloud region: a name, its AZs, and its pricing personality.

    Attributes
    ----------
    name:
        Region identifier (``us-east``).
    zones:
        Availability-zone names, globally unique across the topology.
    price_multiplier:
        On-demand rate relative to the reference catalog (1.0 = same).
    spot_discount:
        Spot-to-on-demand price ratio inside this region.
    interrupt_rate_multiplier:
        Scales the profile's spot reclaim rate for capacity sold here.
    egress_per_gb:
        USD per GB for data *leaving* this region (ingress is free, as
        on the big clouds).
    """

    name: str
    zones: Tuple[str, ...]
    price_multiplier: float = 1.0
    spot_discount: float = 0.3
    interrupt_rate_multiplier: float = 1.0
    egress_per_gb: float = 0.02

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name cannot be empty")
        if not self.zones:
            raise ValueError(f"region {self.name!r} must have at least one zone")
        if self.price_multiplier <= 0:
            raise ValueError(
                f"price_multiplier must be positive, got {self.price_multiplier!r}"
            )
        if not 0.0 < self.spot_discount <= 1.0:
            raise ValueError(
                f"spot_discount must be in (0, 1], got {self.spot_discount!r}"
            )
        if self.interrupt_rate_multiplier < 0:
            raise ValueError(
                "interrupt_rate_multiplier must be non-negative, got "
                f"{self.interrupt_rate_multiplier!r}"
            )
        if self.egress_per_gb < 0:
            raise ValueError(
                f"egress_per_gb must be non-negative, got {self.egress_per_gb!r}"
            )


class CloudTopology:
    """A ring of regions over one reference pricing catalog.

    The first region (or ``home``) is the *reference*: its catalog is the
    plain one, unsuffixed, so plans built against it are indistinguishable
    from single-region plans.  Every other region mints ``name@region``
    twins at its multiplier via :meth:`PricingTable.repriced`.
    """

    def __init__(
        self,
        regions: Sequence[Region],
        catalog: Optional[PricingTable] = None,
        home: Optional[str] = None,
    ):
        self.regions: Tuple[Region, ...] = tuple(regions)
        if not self.regions:
            raise ValueError("topology needs at least one region")
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate region names in topology")
        self._by_name: Dict[str, Region] = {r.name: r for r in self.regions}
        self._zone_region: Dict[str, Region] = {}
        for r in self.regions:
            for az in r.zones:
                if az in self._zone_region:
                    raise ValueError(f"zone {az!r} appears in two regions")
                self._zone_region[az] = r
        self.catalog = catalog if catalog is not None else aws_like_catalog()
        self.home = home if home is not None else self.regions[0].name
        if self.home not in self._by_name:
            raise KeyError(f"home region {self.home!r} not in topology")

    # -- lookups ----------------------------------------------------------

    @property
    def region_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.regions)

    @property
    def zones(self) -> Tuple[str, ...]:
        return tuple(az for r in self.regions for az in r.zones)

    def region(self, name: str) -> Region:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown region {name!r}") from None

    def region_of(self, az: str) -> Region:
        try:
            return self._zone_region[az]
        except KeyError:
            raise KeyError(f"unknown availability zone {az!r}") from None

    # -- pricing ----------------------------------------------------------

    def price_in(self, vm: VMConfig, region_name: str) -> VMConfig:
        """Reprice a home-region VM shape into ``region_name``.

        The home region returns ``vm`` unchanged (plain name, reference
        rate); other regions mint a ``name@region`` twin at the region's
        multiplier.
        """
        region = self.region(region_name)
        if region.name == self.home:
            return vm
        return replace(
            vm,
            name=f"{vm.name}@{region.name}",
            price_per_hour=vm.price_per_hour * region.price_multiplier,
        )

    def catalog_in(self, region_name: str) -> PricingTable:
        """The full catalog as priced inside ``region_name``."""
        region = self.region(region_name)
        if region.name == self.home:
            return self.catalog
        return self.catalog.repriced(
            region.price_multiplier, suffix=f"@{region.name}"
        )

    def spot_market(
        self,
        region_name: str,
        interrupt_rate_per_hour: float,
        checkpoint_interval_seconds: Optional[float] = None,
    ) -> SpotMarket:
        """A region-tuned spot market over the region's catalog."""
        region = self.region(region_name)
        return SpotMarket(
            catalog=self.catalog_in(region_name),
            discount=region.spot_discount,
            interrupt_rate_per_hour=(
                interrupt_rate_per_hour * region.interrupt_rate_multiplier
            ),
            checkpoint_interval_seconds=checkpoint_interval_seconds,
        )

    # -- movement ---------------------------------------------------------

    def transfer_cost(self, src: str, dst: str, gb: float) -> float:
        """USD to move ``gb`` of checkpoint data from ``src`` to ``dst``."""
        if gb < 0:
            raise ValueError(f"transfer size must be non-negative, got {gb!r}")
        src_region = self.region(src)
        self.region(dst)  # validate
        if src == dst:
            return 0.0
        return src_region.egress_per_gb * gb

    def max_egress_per_gb(self) -> float:
        return max(r.egress_per_gb for r in self.regions)

    def max_price_multiplier(self) -> float:
        return max(r.price_multiplier for r in self.regions)

    def failover_target(self, region_name: str) -> str:
        """The next region in the declaration ring (deterministic)."""
        names = self.region_names
        if len(names) == 1:
            return region_name
        i = names.index(self.region(region_name).name)
        return names[(i + 1) % len(names)]


def default_topology(catalog: Optional[PricingTable] = None) -> CloudTopology:
    """Three regions, two AZs each — the scenario suites' world map."""
    return CloudTopology(
        regions=(
            Region(
                name="us-east",
                zones=("us-east-1a", "us-east-1b"),
                price_multiplier=1.0,
                spot_discount=0.30,
                interrupt_rate_multiplier=1.0,
                egress_per_gb=0.02,
            ),
            Region(
                name="us-west",
                zones=("us-west-2a", "us-west-2b"),
                price_multiplier=1.04,
                spot_discount=0.32,
                interrupt_rate_multiplier=0.8,
                egress_per_gb=0.02,
            ),
            Region(
                name="eu-central",
                zones=("eu-central-1a", "eu-central-1b"),
                price_multiplier=1.12,
                spot_discount=0.35,
                interrupt_rate_multiplier=0.6,
                egress_per_gb=0.05,
            ),
        ),
        catalog=catalog,
    )
