"""Driving the service layer through a correlated-fault storm.

Jobs are deterministically placed into availability zones (crc32 of the
submission index), the scenario's :class:`ChaosInjector` is asked which
zones its AZ-reclaim process strikes inside the session window, and
every job placed in a struck zone is *evicted mid-run*: the runner
wrapper sets ``Job.external_cancel`` so the next cooperative checkpoint
raises :class:`~repro.service.errors.JobEvicted` — the pool lands the
job in ``cancelled``, writes its crash dump, releases the slot, and the
service requeues a fresh incarnation (which, having a new job id, rides
out the rest of the storm).

At severity zero the reclaim process is empty, no job is evicted, and
the session is byte-identical to a plain
:func:`repro.service.api.run_session` over the same requests — the
service half of the zero-severity anchor.

Unlike ``run_session`` the driver waits for the service to go *idle*
before draining: requeues are refused while draining, and an eviction
storm is exactly when requeues must be admitted.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..service.api import EDAService, ServiceConfig, session_log
from ..service.errors import ServiceError
from ..service.jobs import Job, JobContext, JobRequest
from ..service.runners import PipelineRunner
from .processes import ChaosInjector, ChaosSpec
from .topology import CloudTopology

__all__ = ["StormSessionResult", "plan_evictions", "run_storm_session"]


def job_zone(topology: CloudTopology, seed: int, index: int) -> str:
    """Deterministic AZ placement of the ``index``-th submitted job."""
    zones = topology.zones
    return zones[zlib.crc32(f"{seed}:job-az:{index}".encode()) % len(zones)]


def plan_evictions(
    requests: Sequence[JobRequest],
    spec: ChaosSpec,
    severity: float,
    topology: CloudTopology,
    seed: int,
    window_seconds: float = 4 * 3600.0,
) -> Dict[int, str]:
    """Map submission index -> eviction reason for storm-struck jobs.

    A job is struck when its deterministic zone placement suffers an
    AZ-wide reclaim inside the session window.  All co-located jobs go
    down together — that is the correlated part.  Empty at severity 0.
    """
    injector = ChaosInjector(spec, severity, topology, seed=seed)
    struck = {az for _, az in injector.az_reclaims_until(window_seconds)}
    out: Dict[int, str] = {}
    if not struck:
        return out
    for index in range(len(requests)):
        az = job_zone(topology, seed, index)
        if az in struck:
            out[index] = f"az_reclaim:{az}"
    return out


@dataclass
class StormSessionResult:
    """Everything one storm-driven service session produced."""

    service: EDAService
    outcomes: List[dict] = field(default_factory=list)
    evictions: Dict[str, str] = field(default_factory=dict)

    @property
    def accepted(self) -> int:
        return sum(1 for o in self.outcomes if o.get("accepted"))

    def log_lines(self) -> List[str]:
        """Byte-stable session log: per-job lines plus eviction records."""
        lines = session_log(self.service)
        requeued_by: Dict[str, str] = {
            job.requeue_of: job.job_id
            for job in self.service.jobs.values()
            if job.requeue_of is not None
        }
        for job_id in sorted(self.evictions):
            lines.append(
                f"evicted {job_id} reason={self.evictions[job_id]} "
                f"requeued_as={requeued_by.get(job_id, 'none')}"
            )
        return lines


def run_storm_session(
    requests: Sequence[JobRequest],
    evictions: Dict[int, str],
    config: Optional[ServiceConfig] = None,
    runner: Optional[Callable[[Job, JobContext], dict]] = None,
) -> StormSessionResult:
    """Drive one service session with mid-run external evictions.

    ``evictions`` maps submission index -> reason.  The eviction fires
    at the struck job's first in-run checkpoint (requeued incarnations
    have fresh job ids and are never re-struck).  The whole batch is
    submitted before any worker step, so with ``deterministic=True`` the
    session — including evictions, crash dumps and requeues — is a pure
    function of ``(requests, evictions)``.
    """
    base_runner = runner if runner is not None else PipelineRunner()
    evicted_ids: Dict[str, str] = {}

    def storm_runner(job: Job, ctx: JobContext) -> dict:
        reason = evicted_ids.get(job.job_id)
        if reason is not None:
            job.external_cancel = reason
        ctx.checkpoint()
        return base_runner(job, ctx)

    service = EDAService(config=config, runner=storm_runner)

    async def _drive() -> List[dict]:
        service.start()
        outcomes: List[dict] = []
        for index, request in enumerate(requests):
            try:
                doc = service.submit(request)
                reason = evictions.get(index)
                if reason is not None:
                    evicted_ids[doc["job_id"]] = reason
                outcomes.append({"accepted": True, "job_id": doc["job_id"]})
            except ServiceError as exc:
                outcomes.append({"accepted": False, **exc.to_response()})
        # Idle first, *then* drain: requeues are refused while draining,
        # and storm evictions must be able to requeue.
        await service.join()
        await service.drain()
        return outcomes

    outcomes = asyncio.run(_drive())
    return StormSessionResult(
        service=service, outcomes=outcomes, evictions=dict(evicted_ids)
    )
