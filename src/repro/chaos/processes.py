"""Correlated fault processes: regimes, AZ reclaims, waves, noisy regions.

The base :class:`~repro.cloud.faults.FaultInjector` draws every fault
independently; real clouds fail in *bursts*.  :class:`ChaosInjector`
layers four correlated processes on top of it, all drawn from the same
crc32 ``(seed, purpose, stage, attempt)`` stream construction so chaos
traces stay byte-reproducible and per-stage draws stay independent:

* **Regime switching** — the world alternates calm/storm with
  exponential dwell times (streams keyed ``("regime", "global", 0)``);
  storms multiply the spot reclaim hazard, and preemption times are
  drawn by inverting the piecewise-constant hazard over the regime
  schedule from a single unit-exponential draw.
* **AZ-wide reclaims** — a Poisson stream of ``(time, az)`` events
  (``("az", "global", 0)``); capacity in the struck zone is reclaimed at
  that instant, preempting whatever runs there regardless of the
  idiosyncratic draw.
* **Boot-failure waves** — windows (``("bootwave", "global", 0)``)
  during which provisioning attempts suffer an *extra* correlated
  failure probability on their own per-stage streams.
* **Noisy regions** — a deterministic
  :class:`~repro.cloud.tenancy.TenancyModel` slowdown from per-region
  neighbour load, scaled by severity, multiplying the base straggler
  factor.

Everything is modulated by one ``severity`` knob in [0, 1].  At severity
zero every rate and probability is exactly zero, no stream is ever
consulted, and a chaos execution is bit-identical to the fault-free base
executor — the anchor the graceful-degradation oracle holds on to.

The global schedules (regime flips, AZ events, wave starts) are built
lazily but append-only from their dedicated streams, so any query order
observes the same schedule prefix.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..cloud.faults import FaultInjector, FaultProfile
from ..cloud.tenancy import NeighborLoad, TenancyModel
from .topology import CloudTopology

__all__ = ["ChaosSpec", "ChaosInjector"]

#: Scan cap when searching the AZ event stream for a matching zone.
_MAX_AZ_SCAN = 10_000


@dataclass(frozen=True)
class ChaosSpec:
    """Full-severity knobs for every correlated fault process.

    All rates and probabilities here describe severity **1.0**; the
    injector scales them linearly down to zero.  ``profile`` is the
    full-severity base :class:`FaultProfile` (idiosyncratic faults).
    """

    profile: FaultProfile = field(default_factory=FaultProfile.storm)
    storm_rate_multiplier: float = 6.0
    mean_calm_seconds: float = 3600.0
    mean_storm_seconds: float = 900.0
    az_reclaim_rate_per_hour: float = 0.5
    boot_wave_rate_per_hour: float = 0.2
    boot_wave_duration_seconds: float = 300.0
    boot_wave_prob: float = 0.3
    region_loads: Mapping[str, NeighborLoad] = field(default_factory=dict)
    cache_miss_rate: float = 0.3
    checkpoint_gb: float = 2.0

    def __post_init__(self) -> None:
        if self.storm_rate_multiplier < 1.0:
            raise ValueError(
                "storm_rate_multiplier must be >= 1, got "
                f"{self.storm_rate_multiplier!r}"
            )
        if self.mean_calm_seconds <= 0 or self.mean_storm_seconds <= 0:
            raise ValueError("regime dwell means must be positive")
        if self.az_reclaim_rate_per_hour < 0:
            raise ValueError("az_reclaim_rate_per_hour must be non-negative")
        if self.boot_wave_rate_per_hour < 0:
            raise ValueError("boot_wave_rate_per_hour must be non-negative")
        if self.boot_wave_duration_seconds <= 0:
            raise ValueError("boot_wave_duration_seconds must be positive")
        if not 0.0 <= self.boot_wave_prob <= 1.0:
            raise ValueError(
                f"boot_wave_prob must be a probability, got {self.boot_wave_prob!r}"
            )
        if not 0.0 <= self.cache_miss_rate <= 1.0:
            raise ValueError("cache_miss_rate must be in [0, 1]")
        if self.checkpoint_gb < 0:
            raise ValueError("checkpoint_gb must be non-negative")

    def effective_profile(self, severity: float) -> FaultProfile:
        """The idiosyncratic fault profile at ``severity``.

        Rates and probabilities scale linearly; the straggler multiplier
        keeps its full-severity value (its *frequency* scales, and at
        severity zero it can never fire).
        """
        if not 0.0 <= severity <= 1.0:
            raise ValueError(f"severity must be in [0, 1], got {severity!r}")
        p = self.profile
        return replace(
            p,
            spot_interrupt_rate_per_hour=(
                p.spot_interrupt_rate_per_hour * severity
            ),
            boot_failure_prob=p.boot_failure_prob * severity,
            api_error_prob=p.api_error_prob * severity,
            straggler_prob=p.straggler_prob * severity,
        )


class ChaosInjector(FaultInjector):
    """Severity-scaled correlated faults over one region/AZ topology.

    ``placement`` maps executor stage keys to availability zones; stages
    not listed run in the home region's first zone.
    """

    def __init__(
        self,
        spec: ChaosSpec,
        severity: float,
        topology: CloudTopology,
        placement: Optional[Mapping[str, str]] = None,
        seed: int = 0,
        tenancy: Optional[TenancyModel] = None,
    ):
        super().__init__(spec.effective_profile(severity), seed)
        self.spec = spec
        self.severity = severity
        self.topology = topology
        self.placement: Dict[str, str] = dict(placement or {})
        for az in self.placement.values():
            topology.region_of(az)  # validate early
        self.tenancy = tenancy if tenancy is not None else TenancyModel()
        self._default_az = topology.region(topology.home).zones[0]
        # Lazily-extended global schedules (append-only, order-stable).
        self._regime_flips: List[float] = []
        self._regime_horizon = 0.0
        self._az_events: List[Tuple[float, str]] = []
        self._az_horizon = 0.0
        self._az_exhausted = False
        self._wave_starts: List[float] = []
        self._wave_horizon = 0.0
        # Attribution of the most recent preemption draw.
        self.last_preemption_cause: Optional[str] = None
        self.last_reclaim_az: Optional[str] = None

    # -- placement --------------------------------------------------------

    def zone_of(self, stage: str) -> str:
        return self.placement.get(stage, self._default_az)

    def region_of(self, stage: str) -> str:
        return self.topology.region_of(self.zone_of(stage)).name

    # -- regime schedule --------------------------------------------------

    def _extend_regime(self, until: float) -> None:
        """Grow the calm/storm flip schedule past ``until``."""
        if self.severity <= 0:
            return
        mean_calm = self.spec.mean_calm_seconds / self.severity
        mean_storm = self.spec.mean_storm_seconds
        rng = self.stream("regime", "global", 0)
        while self._regime_horizon <= until:
            in_storm = len(self._regime_flips) % 2 == 1
            dwell = rng.expovariate(
                1.0 / (mean_storm if in_storm else mean_calm)
            )
            self._regime_horizon += dwell
            self._regime_flips.append(self._regime_horizon)

    def regime_at(self, t: float) -> str:
        """``"calm"`` or ``"storm"`` at simulated time ``t``."""
        if self.severity <= 0:
            return "calm"
        self._extend_regime(t)
        flips = bisect.bisect_right(self._regime_flips, t)
        return "storm" if flips % 2 == 1 else "calm"

    def _hazard_multiplier(self, in_storm: bool) -> float:
        return self.spec.storm_rate_multiplier if in_storm else 1.0

    # -- AZ reclaim events ------------------------------------------------

    def _extend_az(self, until: float) -> None:
        lam = self.severity * self.spec.az_reclaim_rate_per_hour / 3600.0
        if lam <= 0:
            return
        rng = self.stream("az", "global", 0)
        zones = self.topology.zones
        while self._az_horizon <= until and len(self._az_events) < _MAX_AZ_SCAN:
            self._az_horizon += rng.expovariate(lam)
            az = zones[rng.randrange(len(zones))]
            self._az_events.append((self._az_horizon, az))
        if len(self._az_events) >= _MAX_AZ_SCAN:
            self._az_exhausted = True

    def az_reclaims_until(self, t: float) -> List[Tuple[float, str]]:
        """All ``(time, az)`` reclaim events in ``[0, t]`` (may be empty)."""
        self._extend_az(t)
        return [(when, az) for when, az in self._az_events if when <= t]

    def next_az_reclaim(self, az: str, now: float) -> float:
        """Time of the first AZ-wide reclaim of ``az`` strictly after ``now``."""
        lam = self.severity * self.spec.az_reclaim_rate_per_hour / 3600.0
        if lam <= 0:
            return math.inf
        horizon = now
        while True:
            self._extend_az(horizon)
            i = bisect.bisect_right([t for t, _ in self._az_events], now)
            for t, event_az in self._az_events[i:]:
                if event_az == az:
                    return t
            if self._az_exhausted:
                return math.inf
            horizon = self._az_horizon + 1.0

    # -- boot-failure waves -----------------------------------------------

    def _extend_waves(self, until: float) -> None:
        lam = self.severity * self.spec.boot_wave_rate_per_hour / 3600.0
        if lam <= 0:
            return
        rng = self.stream("bootwave", "global", 0)
        while self._wave_horizon <= until:
            self._wave_horizon += rng.expovariate(lam)
            self._wave_starts.append(self._wave_horizon)

    def in_boot_wave(self, now: float) -> bool:
        if self.severity <= 0 or self.spec.boot_wave_rate_per_hour <= 0:
            return False
        self._extend_waves(now)
        i = bisect.bisect_right(self._wave_starts, now)
        if i == 0:
            return False
        return now < self._wave_starts[i - 1] + self.spec.boot_wave_duration_seconds

    # -- FaultInjector overrides ------------------------------------------

    def boot_fails(self, stage: str, attempt: int, now: float = 0.0) -> bool:
        if super().boot_fails(stage, attempt, now):
            return True
        if not self.in_boot_wave(now):
            return False
        p = self.severity * self.spec.boot_wave_prob
        return p > 0 and self.stream("bootwave", stage, attempt).random() < p

    def straggler_factor(
        self, stage: str, attempt: int, now: float = 0.0
    ) -> float:
        base = super().straggler_factor(stage, attempt, now)
        load = self.spec.region_loads.get(self.region_of(stage))
        if load is None or self.severity <= 0:
            return base
        scaled = NeighborLoad(
            cpu=self.severity * load.cpu,
            memory_bandwidth=self.severity * load.memory_bandwidth,
        )
        return base * self.tenancy.slowdown(scaled, self.spec.cache_miss_rate)

    def time_to_preemption(
        self, stage: str, attempt: int, now: float = 0.0
    ) -> float:
        """Min of the regime-modulated idiosyncratic draw and the next
        AZ-wide reclaim of the stage's zone; sets ``last_preemption_cause``
        (``"idiosyncratic"`` / ``"az_reclaim"``) for event attribution."""
        self.last_preemption_cause = None
        self.last_reclaim_az = None
        idio = self._idiosyncratic_preemption(stage, attempt, now)
        az = self.zone_of(stage)
        reclaim_at = self.next_az_reclaim(az, now)
        az_delta = reclaim_at - now
        if az_delta < idio:
            self.last_preemption_cause = "az_reclaim"
            self.last_reclaim_az = az
            return az_delta
        if math.isfinite(idio):
            self.last_preemption_cause = "idiosyncratic"
        return idio

    def _idiosyncratic_preemption(
        self, stage: str, attempt: int, now: float
    ) -> float:
        """Invert the piecewise-constant regime hazard from one draw."""
        lam = self.profile.spot_interrupt_rate_per_hour / 3600.0
        if lam <= 0:
            return math.inf
        budget = self.stream("preempt", stage, attempt).expovariate(1.0)
        t = now
        while True:
            self._extend_regime(t)
            flips = self._regime_flips
            i = bisect.bisect_right(flips, t)
            in_storm = i % 2 == 1
            rate = lam * self._hazard_multiplier(in_storm)
            segment_end = flips[i] if i < len(flips) else self._regime_horizon
            if segment_end <= t:
                # Severity > 0 always extends the schedule; this is a
                # pure numerical guard against a zero-length segment.
                segment_end = t + 1.0
            span = segment_end - t
            if budget <= rate * span:
                return (t - now) + budget / rate
            budget -= rate * span
            t = segment_end
