"""Chaos-aware plan execution: failover, transfer billing, hard bounds.

:class:`ChaosPlanExecutor` runs a plan under a :class:`ChaosInjector`
instead of the base Poisson injector, and extends the executor's
degradation policy across regions:

* preemptions are *attributed* — an AZ-wide reclaim records an
  ``AZ_RECLAIM`` event, and observed calm/storm transitions record
  ``REGIME_SHIFT`` events;
* when a spot stage degrades (preemption cap or timeout) **while the
  world is inside a storm, or because its whole AZ was reclaimed**, the
  fallback flees the region entirely: the checkpoint is transferred to
  the next region in the topology ring (billed as a zero-second
  ``TRANSFER`` segment at the source region's egress rate), the stage
  finishes on the target region's repriced on-demand twin, and
  subsequent re-planning prices the menu in the new region (spot
  excluded — degraded flows flee to reliability);
* a calm-regime idiosyncratic degrade keeps the base same-region
  on-demand fallback.

:func:`degradation_bound` computes the *hard* worst-case overrun a
scenario execution may show versus its severity-zero baseline, from the
plan, the menu, the policy, and the topology alone — no sampling.  The
bound is zero at severity zero and constant above it, hence monotone,
which is exactly the shape the graceful-degradation oracle asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..cloud.events import EventKind, ExecutionTrace
from ..cloud.executor import (
    BilledSegment,
    ExecutionPolicy,
    ExecutionResult,
    FaultInjector,
    PlanExecutor,
    StageRecord,
    is_spot_vm,
)
from ..cloud.instance import VMConfig
from ..cloud.provisioner import DeploymentPlan, StageAssignment
from ..cloud.tenancy import TenancyModel
from ..obs import get_metrics, get_tracer
from .processes import ChaosInjector, ChaosSpec
from .topology import CloudTopology, default_topology

__all__ = ["ChaosPlanExecutor", "DegradationBound", "degradation_bound"]


class ChaosPlanExecutor(PlanExecutor):
    """A :class:`PlanExecutor` whose world has regions, regimes and storms.

    ``placement`` maps stage keys to availability zones (defaults to the
    home region's first zone).  At ``severity == 0`` the injector draws
    nothing and every hook reduces to the base behaviour, so the trace is
    byte-identical to ``PlanExecutor(FaultProfile.none(), policy)``.
    """

    def __init__(
        self,
        spec: ChaosSpec,
        severity: float,
        topology: Optional[CloudTopology] = None,
        placement: Optional[Mapping[str, str]] = None,
        policy: Optional[ExecutionPolicy] = None,
        tenancy: Optional[TenancyModel] = None,
    ):
        self.topology = topology if topology is not None else default_topology()
        super().__init__(
            profile=spec.effective_profile(severity), policy=policy
        )
        self.spec = spec
        self.severity = severity
        self.placement = dict(placement or {})
        self.tenancy = tenancy if tenancy is not None else TenancyModel()
        self._current_region = self.topology.home
        self._last_regime = "calm"

    # -- hook overrides ---------------------------------------------------

    def _make_injector(self, seed: int) -> FaultInjector:
        # Called once per execute(): also the per-run state reset point.
        self._current_region = self.topology.home
        self._last_regime = "calm"
        return ChaosInjector(
            self.spec,
            self.severity,
            self.topology,
            placement=self.placement,
            seed=seed,
            tenancy=self.tenancy,
        )

    def _note_preemption(
        self,
        a: StageAssignment,
        t: float,
        rec: StageRecord,
        injector: FaultInjector,
        trace: ExecutionTrace,
        result: ExecutionResult,
    ) -> None:
        if not isinstance(injector, ChaosInjector):
            return
        stage_key = a.stage.value
        regime = injector.regime_at(t)
        if regime != self._last_regime:
            trace.record(
                t, EventKind.REGIME_SHIFT, stage=stage_key, regime=regime
            )
            self._last_regime = regime
        if injector.last_preemption_cause == "az_reclaim":
            az = injector.last_reclaim_az
            trace.record(
                t,
                EventKind.AZ_RECLAIM,
                stage=stage_key,
                vm=a.vm.name,
                az=az,
                region=injector.topology.region_of(az).name,
            )
            get_metrics().counter("chaos.az_reclaims").inc()
            get_metrics().counter(
                "chaos.az_reclaims_by_region",
                region=injector.topology.region_of(az).name,
            ).inc()
            get_tracer().event(
                EventKind.AZ_RECLAIM.value, stage=stage_key, az=az, sim_time=t
            )

    def _fallback_target(
        self,
        a: StageAssignment,
        t: float,
        rec: StageRecord,
        injector: FaultInjector,
        trace: ExecutionTrace,
        result: ExecutionResult,
        stage_options: Optional[Sequence],
    ) -> VMConfig:
        od = self._on_demand_twin(a.vm, a.stage, stage_options)
        if not isinstance(injector, ChaosInjector):
            return od
        az_struck = injector.last_preemption_cause == "az_reclaim"
        stormy = injector.regime_at(t) == "storm"
        if not (az_struck or stormy):
            return od
        src = self._current_region
        dst = self.topology.failover_target(src)
        if dst == src:
            return od
        stage_key = a.stage.value
        gb = self.spec.checkpoint_gb
        cost = self.topology.transfer_cost(src, dst, gb)
        trace.record(
            t,
            EventKind.REGION_FAILOVER,
            stage=stage_key,
            vm=od.name,
            src=src,
            dst=dst,
            reason="az_reclaim" if az_struck else "storm",
        )
        get_tracer().event(
            EventKind.REGION_FAILOVER.value,
            stage=stage_key,
            src=src,
            dst=dst,
            reason="az_reclaim" if az_struck else "storm",
            sim_time=t,
        )
        self._bill_transfer(result, trace, t, stage_key, rec, src, dst, gb, cost)
        get_metrics().counter("chaos.failovers").inc()
        get_metrics().counter("chaos.failovers_by_region", region=dst).inc()
        self._current_region = dst
        return self.topology.price_in(od, dst)

    def _replan(
        self,
        assignments: List[StageAssignment],
        i: int,
        t: float,
        deadline_seconds: float,
        stage_options: Sequence,
        trace: ExecutionTrace,
        result: ExecutionResult,
    ) -> List[StageAssignment]:
        if self._current_region != self.topology.home:
            stage_options = self._repriced_menu(
                stage_options, self._current_region
            )
        return super()._replan(
            assignments, i, t, deadline_seconds, stage_options, trace, result
        )

    # -- chaos internals --------------------------------------------------

    def _bill_transfer(
        self,
        result: ExecutionResult,
        trace: ExecutionTrace,
        t: float,
        stage_key: str,
        rec: StageRecord,
        src: str,
        dst: str,
        gb: float,
        cost: float,
    ) -> None:
        """Bill a checkpoint move as a zero-second segment.

        Mirrors ``_bill`` so the three billing views (result total,
        segment sum, trace ``billed`` events) stay exactly equal.
        """
        result.total_cost += cost
        rec.cost += cost
        metrics = get_metrics()
        metrics.counter("executor.billed_cost").inc(cost)
        metrics.counter("chaos.transfer_cost").inc(cost)
        get_tracer().event(
            EventKind.TRANSFER.value, stage=stage_key, src=src, dst=dst,
            gb=gb, cost=cost, sim_time=t,
        )
        vm_label = f"transfer:{src}->{dst}"
        if trace.enabled:
            result.segments.append(
                BilledSegment(
                    stage=stage_key, vm=vm_label, seconds=0.0, cost=cost
                )
            )
            trace.record(
                t, EventKind.TRANSFER, stage=stage_key, vm=vm_label,
                src=src, dst=dst, gb=gb, cost=cost,
            )
            trace.record(
                t, EventKind.BILLED, stage=stage_key, vm=vm_label,
                seconds=0.0, cost=cost,
            )

    def _repriced_menu(self, stage_options: Sequence, region: str) -> List:
        """The planning menu as priced in ``region``, spot excluded."""
        from ..core.optimize import ConfigOption, StageOptions

        mult = self.topology.region(region).price_multiplier
        out: List[StageOptions] = []
        for so in stage_options:
            options = [
                ConfigOption(
                    vm=self.topology.price_in(o.vm, region),
                    runtime_seconds=o.runtime_seconds,
                    price=o.price * mult,
                )
                for o in so.options
                if not is_spot_vm(o.vm)
            ]
            if options:
                out.append(StageOptions(stage=so.stage, options=options))
        return out


@dataclass(frozen=True)
class DegradationBound:
    """Hard worst-case overrun versus the severity-zero baseline."""

    time_overrun: float
    cost_overrun: float

    def dominates(self, time_overrun: float, cost_overrun: float) -> bool:
        """True when an observed overrun sits inside the bound."""
        slop = 1e-6
        return (
            time_overrun <= self.time_overrun + slop
            and cost_overrun <= self.cost_overrun + slop
        )


def degradation_bound(
    plan: DeploymentPlan,
    policy: ExecutionPolicy,
    spec: ChaosSpec,
    topology: CloudTopology,
    severity: float,
    stage_options: Optional[Sequence] = None,
    tenancy: Optional[TenancyModel] = None,
) -> DegradationBound:
    """Worst-case time/cost overrun of a completed chaos execution.

    Derived purely from the plan, the menu, the policy and the topology:

    * every stage may retry provisioning ``max_retries`` times with
      maximum-jitter backoff;
    * its runtime may be the *longest* option on its menu (re-planning
      can reassign it), stretched by the worst straggler × noisy-region
      multiplier;
    * a spot stage may lose up to ``max_preemptions_per_stage`` segments
      of at most the checkpoint interval before falling back;
    * the fallback may land in the most expensive region, moving the
      checkpoint at the worst egress rate, and per-second ceil billing
      may round every lease segment up.

    Zero at zero severity, constant above — monotone in severity by
    construction.  Requires a bounded policy (a finite preemption cap).
    """
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity!r}")
    if severity == 0.0:
        return DegradationBound(time_overrun=0.0, cost_overrun=0.0)
    cap = policy.max_preemptions_per_stage
    if cap is None:
        raise ValueError(
            "degradation_bound requires a bounded policy "
            "(max_preemptions_per_stage must not be None)"
        )
    tenancy = tenancy if tenancy is not None else TenancyModel()
    retry = policy.retry
    backoff_total = sum(
        retry.backoff_seconds(k, 1.0) for k in range(retry.max_retries)
    )
    noisy_max = 1.0
    for load in spec.region_loads.values():
        noisy_max = max(
            noisy_max, tenancy.slowdown(load, spec.cache_miss_rate)
        )
    slow_max = spec.profile.straggler_slowdown * noisy_max
    interval = spec.profile.checkpoint_interval_seconds
    mult_max = topology.max_price_multiplier()
    transfer_max = topology.max_egress_per_gb() * spec.checkpoint_gb

    menu_by_stage = {}
    if stage_options is not None:
        menu_by_stage = {so.stage: list(so.options) for so in stage_options}

    worst_time = 0.0
    worst_cost = 0.0
    baseline_time = 0.0
    baseline_cost = 0.0
    for a in plan.assignments:
        baseline_time += a.runtime_seconds
        baseline_cost += a.vm.cost(a.runtime_seconds)
        options = menu_by_stage.get(a.stage, [])
        runtimes = [a.runtime_seconds] + [o.runtime_seconds for o in options]
        worst_rt = max(runtimes) * slow_max
        rates = [a.vm.price_per_hour] + [o.vm.price_per_hour for o in options]
        # A spot twin outside the menu falls back to a reconstructed
        # on-demand shape at price / spot_discount.
        rates.extend(
            o.vm.price_per_hour / policy.spot_discount
            for o in options
            if is_spot_vm(o.vm)
        )
        if is_spot_vm(a.vm):
            rates.append(a.vm.price_per_hour / policy.spot_discount)
        rate_max = max(rates) * mult_max / 3600.0
        seg_max = worst_rt if interval is None else min(interval, worst_rt)
        worst_time += backoff_total + cap * seg_max + worst_rt
        n_bills = cap + 1 + (
            1 if interval is None else int(math.ceil(worst_rt / interval))
        )
        worst_cost += (
            rate_max * (cap * seg_max + worst_rt + n_bills) + transfer_max
        )
    return DegradationBound(
        time_overrun=max(0.0, worst_time - baseline_time),
        cost_overrun=max(0.0, worst_cost - baseline_cost),
    )
