"""Named chaos suites: plan, execute, storm the service, check the bound.

Each :class:`ChaosScenario` fixes one correlated-failure shape at full
severity — which knob of :class:`~repro.chaos.processes.ChaosSpec` it
turns up is the scenario's personality:

* ``az_reclaim_storm`` — frequent AZ-wide reclaims; co-located flows and
  service jobs go down together and must fail over / requeue.
* ``regime_flap`` — the calm/storm regime oscillates quickly with a
  vicious storm multiplier; preemption hazard whipsaws mid-stage.
* ``noisy_region`` — the home region is packed with loud neighbours;
  stragglers stretch runtimes without killing anything.
* ``transfer_partition`` — huge checkpoints make every cross-region
  failover pay a painful egress bill.

:func:`run_scenario` is the one entry point: it builds the MCKP plan
once (severity-independent, so every severity of one scenario executes
the *same* plan), runs it under the scenario's
:class:`~repro.chaos.engine.ChaosPlanExecutor`, re-runs it at severity
zero for the baseline, prices the
:func:`~repro.chaos.engine.degradation_bound`, and drives a storm
session through the service layer.  The result's :meth:`trace_dump`
is the byte-stable artifact CI ``cmp``\\ s across repeat runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..cloud.events import EventKind
from ..cloud.executor import ExecutionPolicy, ExecutionResult
from ..cloud.faults import FaultProfile
from ..cloud.tenancy import NeighborLoad
from ..eda.job import EDAStage
from ..obs.store import RunRecord
from ..service.api import ServiceConfig, seeded_job_mix
from .engine import ChaosPlanExecutor, DegradationBound, degradation_bound
from .processes import ChaosSpec
from .session import StormSessionResult, plan_evictions, run_storm_session
from .topology import CloudTopology, default_topology

__all__ = [
    "ChaosScenario",
    "SCENARIOS",
    "ScenarioResult",
    "scenario_names",
    "run_scenario",
    "scenario_to_run",
]

#: Nominal stage runtimes (seconds) at the paper's 4/8-vCPU points —
#: the fixed workload every scenario plans against.
_STAGE_RUNTIMES: Dict[EDAStage, Dict[int, float]] = {
    EDAStage.SYNTHESIS: {4: 1800.0, 8: 1200.0},
    EDAStage.PLACEMENT: {4: 3600.0, 8: 2400.0},
    EDAStage.ROUTING: {4: 5400.0, 8: 3600.0},
    EDAStage.STA: {4: 900.0, 8: 600.0},
}

#: Spot reclaim rate the *planner* prices (deliberately severity-blind:
#: the plan must be identical across a scenario's severity sweep).
_PLANNING_INTERRUPT_RATE = 3.0


@dataclass(frozen=True)
class ChaosScenario:
    """One named correlated-failure suite at full severity."""

    name: str
    description: str
    spec: ChaosSpec
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    #: Deadline as a multiple of the all-fastest on-demand critical path.
    deadline_factor: float = 1.8
    #: Service-session size for the storm half of the scenario.
    jobs: int = 8

    def __post_init__(self) -> None:
        if self.deadline_factor < 1.0:
            raise ValueError(
                f"deadline_factor must be >= 1, got {self.deadline_factor!r}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.policy.max_preemptions_per_stage is None:
            raise ValueError(
                "scenario policies must be bounded "
                "(max_preemptions_per_stage is None)"
            )


def _scenario_specs() -> Dict[str, ChaosScenario]:
    storm = FaultProfile.storm()
    return {
        "az_reclaim_storm": ChaosScenario(
            name="az_reclaim_storm",
            description=(
                "AZ-wide reclaims every ~10 simulated minutes dominate a "
                "tame idiosyncratic hazard: co-located capacity vanishes "
                "together, forcing failover and requeues"
            ),
            spec=ChaosSpec(
                profile=replace(storm, spot_interrupt_rate_per_hour=1.5),
                az_reclaim_rate_per_hour=6.0,
            ),
        ),
        "regime_flap": ChaosScenario(
            name="regime_flap",
            description=(
                "calm/storm regime flapping on ~10/5 minute dwells with a "
                "10x storm hazard multiplier; no AZ events"
            ),
            spec=ChaosSpec(
                profile=storm,
                storm_rate_multiplier=10.0,
                mean_calm_seconds=600.0,
                mean_storm_seconds=300.0,
                az_reclaim_rate_per_hour=0.0,
            ),
        ),
        "noisy_region": ChaosScenario(
            name="noisy_region",
            description=(
                "home region saturated by loud neighbours: stragglers "
                "stretch runtimes; little outright capacity loss"
            ),
            spec=ChaosSpec(
                profile=replace(
                    storm,
                    spot_interrupt_rate_per_hour=4.0,
                    straggler_prob=0.6,
                ),
                az_reclaim_rate_per_hour=0.1,
                region_loads={
                    "us-east": NeighborLoad(cpu=0.9, memory_bandwidth=0.9),
                    "us-west": NeighborLoad(cpu=0.4, memory_bandwidth=0.3),
                },
            ),
        ),
        "transfer_partition": ChaosScenario(
            name="transfer_partition",
            description=(
                "50 GB checkpoints: every cross-region failover pays a "
                "heavy egress bill, stressing the transfer accounting"
            ),
            spec=ChaosSpec(
                profile=storm,
                az_reclaim_rate_per_hour=1.0,
                checkpoint_gb=50.0,
            ),
        ),
    }


#: The named suites ``repro chaos --scenario`` exposes.
SCENARIOS: Dict[str, ChaosScenario] = _scenario_specs()


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def _build_workload(scenario: ChaosScenario, topology: CloudTopology):
    """The scenario's fixed (menu, plan, deadline) — severity-blind."""
    from ..core.optimize import build_stage_options, solve_mckp_dp

    base = build_stage_options(_STAGE_RUNTIMES, catalog=topology.catalog)
    market = topology.spot_market(
        topology.home,
        interrupt_rate_per_hour=_PLANNING_INTERRUPT_RATE,
        checkpoint_interval_seconds=(
            scenario.spec.profile.checkpoint_interval_seconds
        ),
    )
    menu = market.augment_stage_options(base)
    fastest = sum(
        min(o.runtime_seconds for o in so.options) for so in base
    )
    deadline = scenario.deadline_factor * fastest
    selection = solve_mckp_dp(menu, deadline)
    if selection is None:  # deadline_factor >= 1 makes this unreachable
        raise RuntimeError(
            f"scenario {scenario.name!r}: planning deadline infeasible"
        )
    plan = selection.to_plan(design=scenario.name)
    return menu, plan, deadline


def _placement(
    scenario: ChaosScenario, topology: CloudTopology, seed: int
) -> Dict[str, str]:
    """Deterministic stage -> AZ placement from the crc32 seed stream."""
    zones = topology.zones
    out: Dict[str, str] = {}
    for stage in EDAStage.ordered():
        key = f"{seed}:stage-az:{scenario.name}:{stage.value}"
        out[stage.value] = zones[zlib.crc32(key.encode()) % len(zones)]
    return out


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, oracle-checkable."""

    scenario: ChaosScenario
    severity: float
    seed: int
    execution: ExecutionResult
    baseline: ExecutionResult
    bound: DegradationBound
    storm: StormSessionResult
    deadline_seconds: float

    @property
    def time_overrun(self) -> float:
        return self.execution.total_time - self.baseline.total_time

    @property
    def cost_overrun(self) -> float:
        return self.execution.total_cost - self.baseline.total_cost

    @property
    def within_bounds(self) -> bool:
        """Completed runs must sit inside the degradation bound.

        An aborted run (retries exhausted) has no meaningful overrun;
        the oracle audits abort legitimacy from the trace instead.
        """
        if not self.execution.completed:
            return True
        return self.bound.dominates(self.time_overrun, self.cost_overrun)

    @property
    def failovers(self) -> int:
        return self.execution.trace.count(EventKind.REGION_FAILOVER)

    @property
    def az_reclaims(self) -> int:
        return self.execution.trace.count(EventKind.AZ_RECLAIM)

    def trace_dump(self) -> str:
        """Byte-stable replay artifact: traces, service log, verdict.

        Same (scenario, severity, seed) ⇒ same bytes; CI runs every
        scenario twice and ``cmp``\\ s the dumps.
        """
        lines = [
            f"# scenario={self.scenario.name} severity={self.severity!r} "
            f"seed={self.seed} deadline={self.deadline_seconds!r}",
            "# execution",
            self.execution.trace.to_jsonl(),
            "# baseline",
            self.baseline.trace.to_jsonl(),
            "# service",
        ]
        lines.extend(self.storm.log_lines())
        lines.append(
            f"# verdict completed={self.execution.completed} "
            f"time_overrun={self.time_overrun!r} "
            f"cost_overrun={self.cost_overrun!r} "
            f"bound_time={self.bound.time_overrun!r} "
            f"bound_cost={self.bound.cost_overrun!r} "
            f"within_bounds={self.within_bounds}"
        )
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        status = "COMPLETE" if self.execution.completed else "FAILED"
        verdict = "within bound" if self.within_bounds else "BOUND VIOLATED"
        return (
            f"{self.scenario.name} severity={self.severity:g} "
            f"seed={self.seed}: {status}, "
            f"overrun +{self.time_overrun:,.1f}s / "
            f"+${self.cost_overrun:.4f} vs bound "
            f"{self.bound.time_overrun:,.1f}s / "
            f"${self.bound.cost_overrun:.4f} ({verdict}); "
            f"{self.execution.trace.preemptions()} preemptions, "
            f"{self.az_reclaims} az reclaims, {self.failovers} failovers, "
            f"{len(self.storm.evictions)} service evictions"
        )


def run_scenario(
    name: str,
    severity: float = 1.0,
    seed: int = 0,
    topology: Optional[CloudTopology] = None,
) -> ScenarioResult:
    """Run one named suite end to end at ``severity``.

    The plan, menu, deadline and placement depend only on
    ``(scenario, seed)`` — never on severity — so a severity sweep
    degrades one fixed workload rather than re-planning around the
    chaos.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(
            f"unknown chaos scenario {name!r}; known: {known}"
        ) from None
    topology = topology if topology is not None else default_topology()
    menu, plan, deadline = _build_workload(scenario, topology)
    placement = _placement(scenario, topology, seed)

    def _execute(sev: float) -> ExecutionResult:
        executor = ChaosPlanExecutor(
            scenario.spec,
            sev,
            topology=topology,
            placement=placement,
            policy=scenario.policy,
        )
        return executor.execute(
            plan, deadline_seconds=deadline, seed=seed, stage_options=menu
        )

    execution = _execute(severity)
    baseline = _execute(0.0)
    bound = degradation_bound(
        plan,
        scenario.policy,
        scenario.spec,
        topology,
        severity,
        stage_options=menu,
    )

    requests = seeded_job_mix(
        seed, scenario.jobs, kinds=("sleep",), design=scenario.name
    )
    evictions = plan_evictions(
        requests, scenario.spec, severity, topology, seed
    )
    storm = run_storm_session(
        requests, evictions, config=ServiceConfig(workers=2)
    )
    return ScenarioResult(
        scenario=scenario,
        severity=severity,
        seed=seed,
        execution=execution,
        baseline=baseline,
        bound=bound,
        storm=storm,
        deadline_seconds=deadline,
    )


def scenario_to_run(
    result: ScenarioResult, rev: str, timestamp_utc: str
) -> RunRecord:
    """Convert one scenario run into a ``repro-runs/1`` store record.

    ``kind="chaos.scenario"``, ``scale`` carries the severity and
    ``labels["design"]`` the scenario name, so the dashboard's
    deterministic-drift grouping — (kind, seed, scale, design) — pins
    each (scenario, seed, severity) cell to bit-stable gauges.
    """
    gauges = {
        "chaos.scenario.total_cost": result.execution.total_cost,
        "chaos.scenario.sim_seconds": result.execution.total_time,
        "chaos.scenario.overrun_time": result.time_overrun,
        "chaos.scenario.overrun_cost": result.cost_overrun,
        "chaos.scenario.bound_time": result.bound.time_overrun,
        "chaos.scenario.bound_cost": result.bound.cost_overrun,
        "chaos.scenario.preemptions": float(
            result.execution.trace.preemptions()
        ),
        "chaos.scenario.az_reclaims": float(result.az_reclaims),
        "chaos.scenario.failovers": float(result.failovers),
        "chaos.scenario.evictions": float(len(result.storm.evictions)),
    }
    labels: Dict[str, object] = {
        "design": result.scenario.name,
        "scenario": result.scenario.name,
        "completed": result.execution.completed,
        "within_bounds": result.within_bounds,
        "deadline_seconds": result.deadline_seconds,
    }
    return RunRecord(
        kind="chaos.scenario",
        rev=rev,
        seed=result.seed,
        timestamp_utc=timestamp_utc,
        scale=result.severity,
        labels=labels,
        metrics={"counters": {}, "gauges": gauges, "histograms": {}},
    )
