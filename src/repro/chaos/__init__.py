"""Correlated chaos engine: multi-region faults with bounded degradation.

The :mod:`repro.cloud` executor injects *independent* faults; this
package makes them conspire.  A :class:`CloudTopology` arranges regions
and availability zones over the pricing catalog, a
:class:`ChaosInjector` drives correlated fault processes (calm/storm
regimes, AZ-wide reclaims, boot-failure waves, noisy regions) from the
same crc32 seed streams as the base injector, and a
:class:`ChaosPlanExecutor` reacts with cross-region failover, transfer
billing, and off-home re-planning.  Severity is one knob in [0, 1]:
zero is bit-identical to the fault-free executor, and
:func:`degradation_bound` prices the hard worst case anywhere above it.

Named suites (:data:`SCENARIOS`) package workload + spec + service
storm; ``repro chaos --scenario`` runs them and ``repro verify
--oracle scenario`` fuzzes the graceful-degradation guarantees.
"""

from .engine import ChaosPlanExecutor, DegradationBound, degradation_bound
from .processes import ChaosInjector, ChaosSpec
from .scenarios import (
    SCENARIOS,
    ChaosScenario,
    ScenarioResult,
    run_scenario,
    scenario_names,
    scenario_to_run,
)
from .session import StormSessionResult, plan_evictions, run_storm_session
from .topology import CloudTopology, Region, default_topology

__all__ = [
    "Region",
    "CloudTopology",
    "default_topology",
    "ChaosSpec",
    "ChaosInjector",
    "ChaosPlanExecutor",
    "DegradationBound",
    "degradation_bound",
    "ChaosScenario",
    "SCENARIOS",
    "ScenarioResult",
    "scenario_names",
    "run_scenario",
    "scenario_to_run",
    "StormSessionResult",
    "plan_evictions",
    "run_storm_session",
]
