"""vCPU execution model: work profiles, task graphs, scheduling, speedups.

Substitutes the paper's cgroups-based VM-size emulation: engines describe
the work they performed, and this package converts that description into
wall-clock runtimes at any vCPU count.
"""

from .scheduler import ScheduleResult, TaskGraphWorkload, list_schedule
from .speedup import (
    PAPER_VCPU_LEVELS,
    SpeedupCurve,
    amdahl_speedup,
    fit_amdahl_fraction,
    gustafson_speedup,
    speedup_curve,
)
from .taskgraph import DEFAULT_SYNC_OVERHEAD, Section, Task, TaskGraph, WorkProfile

__all__ = [
    "ScheduleResult",
    "TaskGraphWorkload",
    "list_schedule",
    "PAPER_VCPU_LEVELS",
    "SpeedupCurve",
    "amdahl_speedup",
    "fit_amdahl_fraction",
    "gustafson_speedup",
    "speedup_curve",
    "DEFAULT_SYNC_OVERHEAD",
    "Section",
    "Task",
    "TaskGraph",
    "WorkProfile",
]
