"""Speedup curves and scaling-law fits.

Utilities behind Figure 2-d and Figure 3: turning runtime-vs-vCPU samples
into speedup curves, fitting Amdahl's law to estimate the parallel
fraction, and computing parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = [
    "SpeedupCurve",
    "speedup_curve",
    "amdahl_speedup",
    "fit_amdahl_fraction",
    "gustafson_speedup",
]

#: The vCPU counts the paper evaluates everywhere.
PAPER_VCPU_LEVELS = (1, 2, 4, 8)


@dataclass
class SpeedupCurve:
    """Runtime and speedup at each vCPU level."""

    vcpus: List[int]
    runtimes: List[float]

    def __post_init__(self) -> None:
        if len(self.vcpus) != len(self.runtimes):
            raise ValueError("vcpus and runtimes must align")
        if not self.vcpus or self.vcpus[0] != min(self.vcpus):
            raise ValueError("curves must start at the smallest vCPU count")

    @property
    def speedups(self) -> List[float]:
        """Speedup relative to the smallest vCPU count."""
        base = self.runtimes[0]
        return [base / t if t > 0 else 1.0 for t in self.runtimes]

    @property
    def efficiencies(self) -> List[float]:
        """Speedup divided by the worker ratio."""
        base_k = self.vcpus[0]
        return [s / (k / base_k) for s, k in zip(self.speedups, self.vcpus)]

    def as_dict(self) -> Dict[int, float]:
        return dict(zip(self.vcpus, self.runtimes))

    def parallel_fraction(self) -> float:
        """Amdahl parallel-fraction fit over this curve."""
        return fit_amdahl_fraction(self.vcpus, self.speedups)


def speedup_curve(
    runtime_fn: Callable[[int], float], vcpus: Sequence[int] = PAPER_VCPU_LEVELS
) -> SpeedupCurve:
    """Evaluate a runtime function over vCPU levels."""
    ks = sorted(int(k) for k in vcpus)
    return SpeedupCurve(vcpus=ks, runtimes=[float(runtime_fn(k)) for k in ks])


def amdahl_speedup(parallel_fraction: float, workers: float) -> float:
    """Amdahl's law: ``1 / ((1 - f) + f / k)``."""
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel_fraction must be in [0, 1]")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / workers)


def gustafson_speedup(parallel_fraction: float, workers: float) -> float:
    """Gustafson's law: ``(1 - f) + f * k`` (scaled-workload speedup)."""
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel_fraction must be in [0, 1]")
    return (1.0 - parallel_fraction) + parallel_fraction * workers


def fit_amdahl_fraction(vcpus: Sequence[int], speedups: Sequence[float]) -> float:
    """Least-squares fit of the Amdahl parallel fraction ``f``.

    Amdahl's law linearizes as ``1/S = (1 - f) + f * (1/k)``; regressing
    ``1/S`` on ``1/k`` yields ``f`` from the slope.  The result is clipped
    to [0, 1].
    """
    ks = np.asarray(vcpus, dtype=float)
    ss = np.asarray(speedups, dtype=float)
    if ks.shape != ss.shape or ks.size < 2:
        raise ValueError("need at least two (vcpus, speedup) samples")
    if np.any(ks < 1) or np.any(ss <= 0):
        raise ValueError("vcpus must be >= 1 and speedups positive")
    x = 1.0 / ks
    y = 1.0 / ss
    # y = (1 - f) + f * x  ->  slope = f, intercept = 1 - f; fit jointly by
    # minimizing ||a + b x - y|| then projecting onto the constraint a+b=1.
    A = np.stack([np.ones_like(x), x], axis=1)
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    intercept, slope = float(coef[0]), float(coef[1])
    # Blend toward the constraint a + b = 1 implied by S(1) = 1.
    f = 0.5 * (slope + (1.0 - intercept))
    return float(min(1.0, max(0.0, f)))
