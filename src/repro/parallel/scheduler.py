"""List scheduling of task graphs onto k workers.

Implements the classic HLFET (highest level first with estimated times)
list scheduler: ready tasks are dispatched by descending bottom level onto
the earliest-available worker.  Greedy list scheduling is a 2-approximation
of the optimal makespan, which is more than accurate enough for deriving
runtime-vs-vCPU curves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .taskgraph import DEFAULT_SYNC_OVERHEAD, Section, TaskGraph

__all__ = ["ScheduleResult", "list_schedule", "TaskGraphWorkload"]


@dataclass
class ScheduleResult:
    """Outcome of scheduling a task graph on a fixed worker count."""

    makespan: float
    workers: int
    start_times: Dict[int, float] = field(default_factory=dict)
    finish_times: Dict[int, float] = field(default_factory=dict)
    worker_of: Dict[int, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Busy time / (makespan * workers)."""
        busy = sum(
            self.finish_times[t] - self.start_times[t] for t in self.start_times
        )
        denom = self.makespan * self.workers
        return busy / denom if denom > 0 else 0.0


def list_schedule(graph: TaskGraph, workers: int) -> ScheduleResult:
    """Schedule ``graph`` on ``workers`` identical workers (HLFET order)."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    tasks = graph.tasks
    if not tasks:
        return ScheduleResult(makespan=0.0, workers=workers)

    levels = graph.bottom_levels()
    children: Dict[int, List[int]] = {t.task_id: [] for t in tasks}
    remaining_deps: Dict[int, int] = {}
    dep_finish: Dict[int, float] = {t.task_id: 0.0 for t in tasks}
    for task in tasks:
        remaining_deps[task.task_id] = len(task.deps)
        for d in task.deps:
            children[d].append(task.task_id)

    # Ready queue ordered by (-bottom_level, task_id) for determinism.
    ready: List[Tuple[float, int]] = [
        (-levels[t.task_id], t.task_id) for t in tasks if not t.deps
    ]
    heapq.heapify(ready)
    # Workers as a min-heap of (available_time, worker_id).
    worker_heap: List[Tuple[float, int]] = [(0.0, w) for w in range(workers)]

    result = ScheduleResult(makespan=0.0, workers=workers)
    task_by_id = {t.task_id: t for t in tasks}
    scheduled = 0
    # Tasks whose dependencies are done but whose data isn't ready until
    # dep_finish — model by starting no earlier than that time.
    while ready:
        _neg_level, task_id = heapq.heappop(ready)
        task = task_by_id[task_id]
        avail, worker = heapq.heappop(worker_heap)
        start = max(avail, dep_finish[task_id])
        finish = start + task.work
        result.start_times[task_id] = start
        result.finish_times[task_id] = finish
        result.worker_of[task_id] = worker
        heapq.heappush(worker_heap, (finish, worker))
        scheduled += 1
        for child in children[task_id]:
            dep_finish[child] = max(dep_finish[child], finish)
            remaining_deps[child] -= 1
            if remaining_deps[child] == 0:
                heapq.heappush(ready, (-levels[child], child))

    if scheduled != len(tasks):
        raise ValueError("task graph contains a cycle or unreachable tasks")
    result.makespan = max(result.finish_times.values())
    return result


class TaskGraphWorkload:
    """A workload combining serial sections with a scheduled task graph.

    Drop-in alternative to :class:`~repro.parallel.taskgraph.WorkProfile`
    for engines with irregular parallelism (the router's net-level waves):
    ``runtime(k)`` = serial sections + list-scheduled makespan of the task
    graph on ``k`` workers, with the same per-worker sync overhead model.
    """

    def __init__(
        self,
        graph: TaskGraph,
        name: str = "",
        sync_overhead: float = DEFAULT_SYNC_OVERHEAD,
    ):
        self.graph = graph
        self.name = name
        self.sync_overhead = sync_overhead
        self.sections: List[Section] = []
        self._makespan_cache: Dict[int, float] = {}

    def add(self, work: float, parallelism: float = 1.0, name: str = "") -> None:
        """Append a fork-join section executed outside the task graph."""
        if work > 0:
            self.sections.append(Section(work=work, parallelism=parallelism, name=name))

    @property
    def total_work(self) -> float:
        return self.graph.total_work + sum(s.work for s in self.sections)

    def makespan(self, workers: int) -> float:
        """Scheduled makespan of the task-graph part (cached per k)."""
        if workers not in self._makespan_cache:
            self._makespan_cache[workers] = list_schedule(self.graph, workers).makespan
        return self._makespan_cache[workers]

    def runtime(self, workers: int, sync_overhead: Optional[float] = None) -> float:
        """Wall-clock runtime on ``workers`` vCPUs."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        overhead = self.sync_overhead if sync_overhead is None else sync_overhead
        serial = sum(s.runtime(workers, overhead) for s in self.sections)
        graph_time = self.makespan(workers) * (1.0 + overhead * (workers - 1.0))
        return serial + graph_time

    def speedup(self, workers: int, sync_overhead: Optional[float] = None) -> float:
        """Speedup relative to a single worker."""
        base = self.runtime(1, sync_overhead)
        t = self.runtime(workers, sync_overhead)
        return base / t if t > 0 else 1.0

    def parallel_fraction(self) -> float:
        """Fraction of total work inside the task graph."""
        total = self.total_work
        return self.graph.total_work / total if total else 0.0
