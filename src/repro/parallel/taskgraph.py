"""Work profiles and task graphs: the vCPU execution model.

The paper emulates VM sizes with Linux cgroups and measures wall-clock
runtime under 1/2/4/8 vCPUs.  Our substitute: every EDA engine describes
the work it *actually performed* as either

* a :class:`WorkProfile` — an ordered list of :class:`Section` objects,
  each with an amount of work (in seconds of single-core compute) and a
  maximum useful parallelism; or
* a :class:`TaskGraph` — an explicit DAG of tasks that the list scheduler
  in :mod:`repro.parallel.scheduler` maps onto k workers.

``runtime(k)`` then follows from the profile.  Sections model the classic
fork-join phases of synthesis/placement/STA; the task graph captures
routing's irregular net-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Section", "WorkProfile", "Task", "TaskGraph", "DEFAULT_SYNC_OVERHEAD"]

#: Per-extra-worker synchronization overhead (fraction of section time).
#: Nonzero overhead is what keeps measured speedups strictly below ideal,
#: as in the paper's Figure 2-d.
DEFAULT_SYNC_OVERHEAD = 0.03


@dataclass(frozen=True)
class Section:
    """One fork-join phase of an engine run.

    Attributes
    ----------
    work:
        Total single-core compute in seconds.
    parallelism:
        Maximum number of workers that can usefully cooperate (1 = serial).
    name:
        Phase label for reports (e.g. ``"gradient"``, ``"legalize"``).
    """

    work: float
    parallelism: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("section work must be non-negative")
        if self.parallelism < 1:
            raise ValueError("section parallelism must be >= 1")

    def runtime(self, workers: int, sync_overhead: float = DEFAULT_SYNC_OVERHEAD) -> float:
        """Wall-clock time of this section on ``workers`` vCPUs."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        effective = min(float(workers), self.parallelism)
        base = self.work / effective
        return base * (1.0 + sync_overhead * (effective - 1.0))


@dataclass
class WorkProfile:
    """An ordered list of sections describing one engine execution."""

    sections: List[Section] = field(default_factory=list)
    name: str = ""

    def add(self, work: float, parallelism: float = 1.0, name: str = "") -> None:
        """Append a section (zero-work sections are dropped)."""
        if work > 0:
            self.sections.append(Section(work=work, parallelism=parallelism, name=name))

    def extend(self, other: "WorkProfile") -> None:
        self.sections.extend(other.sections)

    @property
    def total_work(self) -> float:
        """Total single-core compute across all sections."""
        return sum(s.work for s in self.sections)

    @property
    def span(self) -> float:
        """Critical-path time: runtime with unlimited workers (no overhead)."""
        return sum(s.work / s.parallelism for s in self.sections)

    def runtime(self, workers: int, sync_overhead: float = DEFAULT_SYNC_OVERHEAD) -> float:
        """Wall-clock runtime on ``workers`` vCPUs."""
        return sum(s.runtime(workers, sync_overhead) for s in self.sections)

    def speedup(self, workers: int, sync_overhead: float = DEFAULT_SYNC_OVERHEAD) -> float:
        """Speedup relative to a single worker."""
        base = self.runtime(1, sync_overhead)
        t = self.runtime(workers, sync_overhead)
        return base / t if t > 0 else 1.0

    def parallel_fraction(self) -> float:
        """Fraction of total work that sits in parallelizable sections."""
        total = self.total_work
        if total == 0:
            return 0.0
        parallel = sum(s.work for s in self.sections if s.parallelism > 1)
        return parallel / total

    def scaled(self, factor: float) -> "WorkProfile":
        """Return a copy with all section works multiplied by ``factor``."""
        out = WorkProfile(name=self.name)
        out.sections = [
            Section(work=s.work * factor, parallelism=s.parallelism, name=s.name)
            for s in self.sections
        ]
        return out


@dataclass
class Task:
    """One schedulable unit in a :class:`TaskGraph`."""

    task_id: int
    work: float
    deps: Tuple[int, ...] = ()
    name: str = ""


class TaskGraph:
    """A DAG of tasks for irregular parallelism (routing waves, etc.)."""

    def __init__(self, name: str = ""):
        self.name = name
        self._tasks: Dict[int, Task] = {}

    def add_task(self, work: float, deps: Iterable[int] = (), name: str = "") -> int:
        """Add a task; returns its id."""
        if work < 0:
            raise ValueError("task work must be non-negative")
        deps = tuple(deps)
        for d in deps:
            if d not in self._tasks:
                raise ValueError(f"dependency {d} does not exist")
        task_id = len(self._tasks)
        self._tasks[task_id] = Task(task_id=task_id, work=work, deps=deps, name=name)
        return task_id

    @property
    def tasks(self) -> List[Task]:
        return [self._tasks[i] for i in sorted(self._tasks)]

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def total_work(self) -> float:
        return sum(t.work for t in self._tasks.values())

    def critical_path(self) -> float:
        """Length of the longest dependency chain (= runtime with infinite workers)."""
        finish: Dict[int, float] = {}
        for task in self.tasks:  # ids are topological by construction
            start = max((finish[d] for d in task.deps), default=0.0)
            finish[task.task_id] = start + task.work
        return max(finish.values(), default=0.0)

    def bottom_levels(self) -> Dict[int, float]:
        """Bottom level (critical path to any sink) per task, for scheduling."""
        children: Dict[int, List[int]] = {i: [] for i in self._tasks}
        for task in self._tasks.values():
            for d in task.deps:
                children[d].append(task.task_id)
        levels: Dict[int, float] = {}
        for task in reversed(self.tasks):
            below = max((levels[c] for c in children[task.task_id]), default=0.0)
            levels[task.task_id] = task.work + below
        return levels
