"""Common EDA job abstractions.

Every engine (synthesis, placement, routing, STA) produces a
:class:`JobResult` bundling:

* the engine's *artifact* (netlist, placement, routing tables, timing),
* the :class:`~repro.parallel.taskgraph.WorkProfile` describing the compute
  it performed (from which ``runtime(vcpus)`` follows),
* the :class:`~repro.perf.counters.PerfCounters` observed during the run,
* free-form quality metrics.

This is the unit the characterization, prediction and optimization layers
operate on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..parallel import WorkProfile
from ..perf import PerfCounters

__all__ = ["EDAStage", "JobResult"]


class EDAStage(str, enum.Enum):
    """The four applications characterized by the paper."""

    SYNTHESIS = "synthesis"
    PLACEMENT = "placement"
    ROUTING = "routing"
    STA = "sta"

    @property
    def display_name(self) -> str:
        return {
            EDAStage.SYNTHESIS: "Synthesis",
            EDAStage.PLACEMENT: "Placement",
            EDAStage.ROUTING: "Routing",
            EDAStage.STA: "STA",
        }[self]

    @classmethod
    def ordered(cls) -> list:
        """Stages in flow order (the order Table I lists them)."""
        return [cls.SYNTHESIS, cls.PLACEMENT, cls.ROUTING, cls.STA]


@dataclass
class JobResult:
    """Outcome of running one EDA application on one design."""

    stage: EDAStage
    design: str
    profile: WorkProfile
    counters: PerfCounters
    artifact: Any = None
    metrics: Dict[str, float] = field(default_factory=dict)

    def runtime(self, vcpus: int) -> float:
        """Modelled wall-clock runtime in seconds on a ``vcpus``-wide VM."""
        return self.profile.runtime(vcpus)

    def runtimes(self, vcpu_levels=(1, 2, 4, 8)) -> Dict[int, float]:
        """Runtime at each vCPU level (the paper's 1/2/4/8 grid)."""
        return {k: self.runtime(k) for k in vcpu_levels}

    def speedup(self, vcpus: int) -> float:
        """Speedup at ``vcpus`` relative to one vCPU."""
        return self.profile.speedup(vcpus)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        times = self.runtimes()
        time_str = ", ".join(f"{k}v: {t:,.0f}s" for k, t in times.items())
        return (
            f"{self.stage.display_name} on {self.design}: {time_str}; "
            f"branch-miss {100 * self.counters.branch_miss_rate:.1f}%, "
            f"cache-miss {100 * self.counters.cache_miss_rate:.1f}%, "
            f"AVX {100 * self.counters.avx_share:.1f}%"
        )
