"""Static timing analysis engine.

The "STA" application of the characterization.  The paper attributes STA's
signature to levelized graph traversal from inputs to outputs with
floating-point delay arithmetic against the technology library — giving it
the second-highest AVX utilization (Figure 2-c), a balanced memory profile
(general-purpose VMs suffice), and modest multi-core scaling limited by
level-to-level dependencies (Figure 2-d).

Pipeline:

1. Build the timing graph from the mapped netlist: one timing arc per
   (input pin -> output pin) of every cell, plus a net arc from each driver
   to each sink with an Elmore-style wire delay from placement wirelength.
2. Forward propagation of arrival times in level order (vectorized per
   level — the AVX-heavy part).
3. Backward propagation of required times from a derived clock period;
   slack = required - arrival; WNS/TNS and the critical path fall out.

The artifact is a :class:`TimingReport`.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.netlist import PORT, Netlist
from ..obs import get_tracer
from ..parallel import WorkProfile
from ..perf.instrument import NullInstrument
from .calibration import Calibration, DEFAULT_CALIBRATION
from .job import EDAStage, JobResult
from .placement import Placement

__all__ = ["TimingReport", "STAEngine"]

#: Wire delay per micron of estimated net length (picoseconds).
WIRE_DELAY_PER_UM = 0.8


@dataclass
class TimingReport:
    """Artifact of one STA run."""

    clock_period: float
    wns: float
    tns: float
    max_arrival: float
    arrival: Dict[str, float]
    slack: Dict[str, float]
    critical_path: List[str] = field(default_factory=list)
    num_arcs: int = 0
    #: Earliest (min-delay) arrival per node, for hold analysis.
    min_arrival: Dict[str, float] = field(default_factory=dict)
    #: Worst hold slack: min over outputs of (earliest arrival - hold time).
    hold_wns: float = 0.0

    @property
    def met(self) -> bool:
        """Whether all paths meet the derived clock period."""
        return self.wns >= 0.0

    @property
    def hold_met(self) -> bool:
        """Whether the fastest paths clear the hold requirement."""
        return self.hold_wns >= 0.0


class STAEngine:
    """Levelized static timing analyzer.

    Parameters
    ----------
    clock_margin:
        The derived clock period is ``(1 + clock_margin) * max_arrival`` —
        nonzero margin yields positive slacks; a negative margin creates
        violations (useful in tests).
    hold_time:
        Hold requirement in picoseconds at the capture boundary: the
        *earliest* output arrival (min-delay analysis) must exceed it.
    """

    def __init__(
        self,
        clock_margin: float = 0.1,
        hold_time: float = 0.0,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        self.clock_margin = clock_margin
        self.hold_time = hold_time
        self.calibration = calibration

    # ------------------------------------------------------------------
    def run(self, placement: Placement, instrument=None) -> JobResult:
        """Analyze timing of a placed netlist; artifact is a :class:`TimingReport`."""
        inst = instrument if instrument is not None else NullInstrument()
        netlist = placement.netlist
        library = netlist.library

        # Net loads: sink pin caps + wire cap from placement HPWL.
        net_load: Dict[str, float] = {}
        net_wire_delay: Dict[str, float] = {}
        for net_name, net in netlist.nets.items():
            cap = 0.0
            for owner, pin in net.sinks:
                if owner != PORT:
                    cap += netlist.instances[owner].cell.input_cap
            hpwl = placement.net_hpwl(net_name)
            cap += library.wire_cap_per_um * hpwl
            net_load[net_name] = cap
            net_wire_delay[net_name] = WIRE_DELAY_PER_UM * hpwl

        # Forward propagation in level order.
        order = netlist.topological_order()
        levels = netlist.levels()
        by_level: Dict[int, List[str]] = {}
        for name in order:
            by_level.setdefault(levels[name], []).append(name)

        arrival: Dict[str, float] = {p: 0.0 for p in netlist.input_ports}
        min_arrival: Dict[str, float] = {p: 0.0 for p in netlist.input_ports}
        node_index: Dict[str, int] = {
            name: i for i, name in enumerate(netlist.input_ports)
        }
        arcs = 0
        max_branches: List[bool] = []
        addresses: List[int] = []
        tracer = get_tracer()
        counters_before = inst.snapshot()
        # Profiler hook: one span over the whole forward level sweep (the
        # AVX-heavy kernel); per-level spans would scale with logic depth.
        with tracer.span("sta.levels", levels=len(by_level)) as sweep_span:
            for level in sorted(by_level):
                batch = by_level[level]
                batch_delays = 0
                for inst_name in batch:
                    cell_inst = netlist.instances[inst_name]
                    cell = cell_inst.cell
                    load = net_load[cell_inst.output_net]
                    cell_delay = cell.delay(load)
                    best = 0.0
                    earliest = math.inf
                    for in_net in cell_inst.input_nets:
                        driver = netlist.driver_instance(in_net)
                        key = in_net if driver is None else driver
                        src_arrival = arrival[key]
                        src_min = min_arrival[key]
                        earliest = min(
                            earliest, src_min + net_wire_delay[in_net] + cell_delay
                        )
                        # Arrival reads reach back arbitrarily many levels:
                        # they miss L1 but sit in the LLC-resident arrival
                        # array.
                        addresses.append(
                            (2 << 24) + (node_index.get(key, 0) & 0x7FF) * 8
                        )
                        t = src_arrival + net_wire_delay[in_net] + cell_delay
                        arcs += 1
                        batch_delays += 1
                        is_new_max = t > best
                        max_branches.append(is_new_max)
                        if is_new_max:
                            best = t
                    arrival[inst_name] = best
                    min_arrival[inst_name] = (
                        earliest if math.isfinite(earliest) else best
                    )
                    node_index[inst_name] = len(node_index)
                    addresses.append((len(arrival) & 0x3FF) * 8)
                    # Library NLDM table lookup: a small, hot region.
                    addresses.append(
                        (1 << 23) + (zlib.crc32(cell.name.encode()) & 0x1F) * 64
                    )
                if inst.enabled and batch:
                    # Per-level vectorized delay evaluation (interpolating the
                    # library tables) is the AVX-heavy kernel.
                    inst.flops(avx=8 * batch_delays, scalar=2 * len(batch))
            sweep_span.set_tags(arcs=arcs, **inst.span_delta(counters_before))

        max_arrival = 0.0
        po_arrival: Dict[str, float] = {}
        min_po_arrival = math.inf
        for port in netlist.output_ports:
            net_name = netlist.output_port_nets[port]
            driver = netlist.driver_instance(net_name)
            key = net_name if driver is None else driver
            t = arrival[key] + net_wire_delay[net_name]
            po_arrival[port] = t
            max_arrival = max(max_arrival, t)
            min_po_arrival = min(
                min_po_arrival, min_arrival[key] + net_wire_delay[net_name]
            )
        if not math.isfinite(min_po_arrival):
            min_po_arrival = 0.0

        clock_period = (1.0 + self.clock_margin) * max_arrival

        # Backward propagation of required times.
        required: Dict[str, float] = {}
        forward_arcs = arcs
        counters_before = inst.snapshot()
        with tracer.span("sta.required") as req_span:
            for port in netlist.output_ports:
                net_name = netlist.output_port_nets[port]
                driver = netlist.driver_instance(net_name)
                key = net_name if driver is None else driver
                req = clock_period - net_wire_delay[net_name]
                required[key] = min(required.get(key, math.inf), req)
            for inst_name in reversed(order):
                cell_inst = netlist.instances[inst_name]
                cell = cell_inst.cell
                load = net_load[cell_inst.output_net]
                cell_delay = cell.delay(load)
                own_req = required.get(inst_name, math.inf)
                for in_net in cell_inst.input_nets:
                    driver = netlist.driver_instance(in_net)
                    key = in_net if driver is None else driver
                    req = own_req - net_wire_delay[in_net] - cell_delay
                    arcs += 1
                    required[key] = min(required.get(key, math.inf), req)
                addresses.append((1 << 24) + (len(required) & 0x3FF) * 8)
            req_span.set_tags(
                arcs=arcs - forward_arcs, **inst.span_delta(counters_before)
            )

        slack: Dict[str, float] = {}
        for key, arr in arrival.items():
            req = required.get(key, math.inf)
            slack[key] = req - arr if math.isfinite(req) else math.inf
        finite_slacks = [s for s in slack.values() if math.isfinite(s)]
        wns = min(finite_slacks) if finite_slacks else 0.0
        tns = sum(s for s in finite_slacks if s < 0.0)

        critical = self._critical_path(netlist, arrival, po_arrival, net_wire_delay)

        if inst.enabled:
            inst.branch(0xC00, max_branches)
            # Multi-corner analysis re-traverses the same arrays.
            for _corner in range(3):
                inst.mem(addresses, reads_per_element=1)
            # Predictable levelized loop control.
            inst.branch(0xC10, [True] * 63 + [False], weight=max(1, arcs // 64))
            inst.instructions(3 * arcs)

        cal = self.calibration
        profile = WorkProfile(name=f"sta:{netlist.name}")
        level_parallel = cal.sta_parallel_fraction
        profile.add(
            arcs * cal.sta_sec_per_arc * level_parallel,
            parallelism=cal.sta_parallel_limit,
            name="arc-propagation",
        )
        profile.add(
            arcs * cal.sta_sec_per_arc * (1.0 - level_parallel),
            parallelism=1,
            name="levelize+report",
        )

        report = TimingReport(
            clock_period=clock_period,
            wns=wns,
            tns=tns,
            max_arrival=max_arrival,
            arrival=arrival,
            slack=slack,
            critical_path=critical,
            num_arcs=arcs,
            min_arrival=min_arrival,
            hold_wns=min_po_arrival - self.hold_time,
        )
        return JobResult(
            stage=EDAStage.STA,
            design=netlist.name,
            profile=profile,
            counters=inst.counters,
            artifact=report,
            metrics={
                "arcs": float(arcs),
                "max_arrival": max_arrival,
                "wns": wns,
                "tns": tns,
                "clock_period": clock_period,
                "hold_wns": min_po_arrival - self.hold_time,
            },
        )

    @staticmethod
    def _critical_path(
        netlist: Netlist,
        arrival: Dict[str, float],
        po_arrival: Dict[str, float],
        net_wire_delay: Dict[str, float],
    ) -> List[str]:
        """Walk the max-arrival chain backwards from the latest output."""
        if not po_arrival:
            return []
        end_port = max(po_arrival, key=lambda p: po_arrival[p])
        path: List[str] = [end_port]
        net_name = netlist.output_port_nets[end_port]
        current = netlist.driver_instance(net_name)
        while current is not None:
            path.append(current)
            cell_inst = netlist.instances[current]
            best_key: Optional[str] = None
            best_t = -math.inf
            for in_net in cell_inst.input_nets:
                driver = netlist.driver_instance(in_net)
                key = in_net if driver is None else driver
                t = arrival[key] + net_wire_delay[in_net]
                if t > best_t:
                    best_t = t
                    best_key = None if driver is None else driver
                    best_net = in_net
            if best_key is None:
                path.append(best_net)
                break
            current = best_key
        path.reverse()
        return path
