"""Logic synthesis engine: AIG optimization passes + technology mapping.

This is the "synthesis" application of the paper's characterization.  It
performs the real algorithms a synthesis tool runs:

* **balance** — AND-tree rebalancing for depth reduction,
* **rewrite / refactor** — cut-based restructuring: enumerate k-feasible
  cuts, compute cut functions, re-express them as factored irredundant
  sums-of-products (Minato-Morreale ISOP),
* **technology mapping** — priority-cut enumeration, NPN-lite boolean
  matching against the cell library, area-flow dynamic programming, and
  cover extraction into a gate-level :class:`~repro.netlist.netlist.Netlist`.

Different *recipes* (pass sequences with seeds) generate the structurally
distinct netlist variants the paper's dataset is built from (330 netlists
from 18 designs).

The engine reports its primitive operations to the perf instrument and
returns a :class:`~repro.eda.job.JobResult` whose work profile follows the
paper's synthesis scaling shape: cut enumeration and matching parallelize
across nodes, while graph rebuilds and cover extraction are serial — which
caps the speedup well below linear (Figure 2-d).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.aig import AIG, CONST_FALSE, CONST_TRUE, lit_is_complemented, lit_node, lit_not
from ..netlist.cells import Library, nangate_lite
from ..netlist.netlist import Netlist
from ..parallel import WorkProfile
from ..perf.instrument import NullInstrument
from .calibration import Calibration, DEFAULT_CALIBRATION
from .cuts import Cut, enumerate_cuts
from .job import EDAStage, JobResult
from .truthtables import flip_var, full_mask, isop

__all__ = [
    "balance",
    "restructure",
    "apply_recipe",
    "recipe_variants",
    "TechnologyMapper",
    "MappingStats",
    "SynthesisEngine",
    "DEFAULT_RECIPE",
]

#: The default synthesis script (an ABC ``resyn``-style recipe).
DEFAULT_RECIPE: Tuple[str, ...] = ("balance", "rewrite", "balance", "refactor", "balance")


# ----------------------------------------------------------------------
# Optimization passes
# ----------------------------------------------------------------------
def _collect_and_leaves(
    aig: AIG, literal: int, leaves: List[int], fanout: List[int], root: int
) -> None:
    """Gather the leaf literals of the maximal same-polarity AND tree.

    Stops at complemented edges, primary inputs, and shared (multi-fanout)
    nodes — inlining a shared node would duplicate logic.
    """
    node = lit_node(literal)
    if (
        lit_is_complemented(literal)
        or not aig.is_and(node)
        or (node != root and fanout[node] > 1)
    ):
        leaves.append(literal)
        return
    a, b = aig.fanins(node)
    _collect_and_leaves(aig, a, leaves, fanout, root)
    _collect_and_leaves(aig, b, leaves, fanout, root)


def balance(aig: AIG) -> AIG:
    """Depth-oriented AND-tree balancing.

    Rebuilds every AND node as a balanced tree over the leaves of its
    maximal single-polarity AND cone, pairing shallowest leaves first
    (Huffman-style), which minimizes tree depth.
    """
    new = AIG(aig.name)
    mapping: Dict[int, int] = {0: CONST_FALSE}
    for node, name in zip(aig.inputs, aig.input_names):
        mapping[node] = new.add_input(name)
    level = [0] * max(1, new.size)
    fanout = aig.fanout_counts()

    def new_level(literal: int) -> int:
        node = lit_node(literal)
        return level[node] if node < len(level) else 0

    for node in aig.and_nodes():
        leaves: List[int] = []
        _collect_and_leaves(aig, 2 * node, leaves, fanout, node)
        mapped = []
        for leaf in leaves:
            base = mapping[lit_node(leaf)]
            mapped.append(base ^ (1 if lit_is_complemented(leaf) else 0))
        # Deduplicate identical leaves (x & x); detect complements (x & ~x).
        unique = sorted(set(mapped))
        result: Optional[int] = None
        if any(lit_not(m) in set(unique) for m in unique):
            result = CONST_FALSE
        else:
            # Pair shallowest first.
            heap = sorted(unique, key=lambda m: (new_level(m), m))
            while len(heap) > 1:
                a = heap.pop(0)
                b = heap.pop(0)
                combined = new.add_and(a, b)
                while len(level) < new.size:
                    level.append(0)
                level[lit_node(combined)] = 1 + max(new_level(a), new_level(b))
                # Insert by level to keep the tree balanced.
                lvl = new_level(combined)
                pos = 0
                while pos < len(heap) and new_level(heap[pos]) <= lvl:
                    pos += 1
                heap.insert(pos, combined)
            result = heap[0] if heap else CONST_TRUE
        mapping[node] = result
        while len(level) < new.size:
            level.append(0)
    for out, name in zip(aig.outputs, aig.output_names):
        mapped = mapping[lit_node(out)] ^ (1 if lit_is_complemented(out) else 0)
        new.add_output(mapped, name)
    return new.cleanup()


@dataclass
class RestructureStats:
    """Operation counts from one restructuring pass (for the work model)."""

    cut_merges: int = 0
    isop_calls: int = 0
    cubes_built: int = 0
    nodes_rebuilt: int = 0


def _build_sop(
    aig: AIG, cubes: Sequence[Tuple[int, int]], leaf_lits: Sequence[int]
) -> int:
    """Construct a factored SOP over mapped leaf literals inside ``aig``."""
    or_terms: List[int] = []
    for care, value in cubes:
        lits: List[int] = []
        for j, leaf in enumerate(leaf_lits):
            if (care >> j) & 1:
                lits.append(leaf if (value >> j) & 1 else lit_not(leaf))
        if not lits:
            return CONST_TRUE
        term = lits[0]
        for l in lits[1:]:
            term = aig.add_and(term, l)
        or_terms.append(term)
    if not or_terms:
        return CONST_FALSE
    result = or_terms[0]
    for term in or_terms[1:]:
        result = aig.add_or(result, term)
    return result


def restructure(
    aig: AIG,
    seed: int = 0,
    cut_size: int = 4,
    rewrite_probability: float = 0.5,
    keep_only_improved: bool = False,
    instrument=None,
    stats: Optional[RestructureStats] = None,
) -> AIG:
    """Cut-based restructuring (the ``rewrite``/``refactor`` pass).

    For a seeded random subset of nodes, re-expresses the node's best cut
    function as a factored ISOP over the cut leaves; structural hashing
    then shares whatever it can.  With ``keep_only_improved`` the original
    graph is returned unless the rewrite reduced the AND count — that is
    the area-recovery mode; without it the pass is a *structural variant
    generator* (same function, different structure), which is how the
    paper's dataset challenges the GCN.
    """
    inst = instrument if instrument is not None else NullInstrument()
    rng = random.Random(seed)
    st = stats if stats is not None else RestructureStats()
    cuts, enum_stats = enumerate_cuts(aig, k=cut_size, cap=6, instrument=inst)
    st.cut_merges += enum_stats.merges

    new = AIG(aig.name)
    mapping: Dict[int, int] = {0: CONST_FALSE}
    for node, name in zip(aig.inputs, aig.input_names):
        mapping[node] = new.add_input(name)
    for node in aig.and_nodes():
        rebuilt = False
        if rng.random() < rewrite_probability:
            # Choose the largest non-trivial cut (most room to restructure).
            candidates = [c for c in cuts[node] if c.size > 1]
            if candidates:
                cut = max(candidates, key=lambda c: (c.size, c.leaves))
                st.isop_calls += 1
                cubes = isop(cut.table, cut.table, cut.size)
                st.cubes_built += len(cubes)
                if inst.enabled:
                    inst.branch(0x700 + (node & 0xFF), [True] * len(cubes))
                leaf_lits = [mapping[leaf] for leaf in cut.leaves]
                mapping[node] = _build_sop(new, cubes, leaf_lits)
                rebuilt = True
                st.nodes_rebuilt += 1
        if not rebuilt:
            a, b = aig.fanins(node)
            na = mapping[lit_node(a)] ^ (1 if lit_is_complemented(a) else 0)
            nb = mapping[lit_node(b)] ^ (1 if lit_is_complemented(b) else 0)
            mapping[node] = new.add_and(na, nb)
    for out, name in zip(aig.outputs, aig.output_names):
        mapped = mapping[lit_node(out)] ^ (1 if lit_is_complemented(out) else 0)
        new.add_output(mapped, name)
    new = new.cleanup()
    if keep_only_improved and new.num_ands > aig.num_ands:
        return aig
    return new


def apply_recipe(
    aig: AIG,
    recipe: Sequence[str] = DEFAULT_RECIPE,
    seed: int = 0,
    instrument=None,
    stats: Optional[RestructureStats] = None,
) -> AIG:
    """Apply a sequence of named passes.

    Recognized pass names: ``balance``/``b``, ``rewrite``/``rw`` (4-cut
    restructuring, area-recovering), ``refactor``/``rf`` (6-cut
    restructuring, area-recovering), ``shuffle`` (variant-generating
    restructuring that may grow the graph).
    """
    current = aig
    for i, token in enumerate(recipe):
        pass_seed = seed * 1000003 + i
        if token in ("balance", "b"):
            current = balance(current)
        elif token in ("rewrite", "rw"):
            current = restructure(
                current, seed=pass_seed, cut_size=4, rewrite_probability=0.6,
                keep_only_improved=True, instrument=instrument, stats=stats,
            )
        elif token in ("refactor", "rf"):
            current = restructure(
                current, seed=pass_seed, cut_size=6, rewrite_probability=0.3,
                keep_only_improved=True, instrument=instrument, stats=stats,
            )
        elif token == "shuffle":
            current = restructure(
                current, seed=pass_seed, cut_size=4, rewrite_probability=0.5,
                keep_only_improved=False, instrument=instrument, stats=stats,
            )
        else:
            raise ValueError(f"unknown synthesis pass {token!r}")
    return current


def recipe_variants(count: int, seed: int = 0) -> List[Tuple[Tuple[str, ...], int]]:
    """Generate ``count`` distinct (recipe, seed) pairs for dataset building.

    Mirrors the paper's "applying different logic optimizations to generate
    different netlists ... that have different physical structures but
    perform the same logic function".
    """
    rng = random.Random(seed)
    pool = ["balance", "rewrite", "refactor", "shuffle"]
    variants: List[Tuple[Tuple[str, ...], int]] = []
    seen = set()
    while len(variants) < count:
        length = rng.randint(1, 4)
        recipe = tuple(rng.choice(pool) for _ in range(length))
        recipe_seed = rng.randrange(1 << 30)
        key = (recipe, recipe_seed)
        if key in seen:
            continue
        seen.add(key)
        variants.append(key)
    return variants


# ----------------------------------------------------------------------
# Technology mapping
# ----------------------------------------------------------------------
@dataclass
class MappingStats:
    """Operation counts from technology mapping (for the work model)."""

    cut_merges: int = 0
    match_lookups: int = 0
    covered_nodes: int = 0
    inverters_added: int = 0


@dataclass
class _Choice:
    cut: Cut
    cell_name: str
    perm: Tuple[int, ...]
    output_inverted: bool
    input_negations: int  # bitmask over cut leaf positions
    area_flow: float


class TechnologyMapper:
    """Area-oriented cut-based mapper onto a :class:`Library`."""

    def __init__(self, library: Optional[Library] = None):
        self.library = library if library is not None else nangate_lite()
        self._inv_area = self.library.cell("INV_X1").area

    # -- boolean matching ------------------------------------------------
    def _match(self, table: int, nvars: int, stats: MappingStats):
        """NPN-lite match: try all input-negation subsets, pick cheapest."""
        best = None
        for neg in range(1 << nvars):
            t = table
            for j in range(nvars):
                if (neg >> j) & 1:
                    t = flip_var(t, j, nvars)
            stats.match_lookups += 1
            m = self.library.best_match(t, nvars)
            if m is None:
                continue
            cell, perm, inverted = m
            cost = (
                cell.area
                + self._inv_area * bin(neg).count("1")
                + (self._inv_area if inverted else 0.0)
            )
            if best is None or cost < best[0]:
                best = (cost, cell, perm, inverted, neg)
        return best

    # -- main entry -------------------------------------------------------
    def map(
        self, aig: AIG, instrument=None
    ) -> Tuple[Netlist, MappingStats]:
        """Map an AIG to a netlist; returns the netlist and op counts."""
        inst = instrument if instrument is not None else NullInstrument()
        stats = MappingStats()
        cuts, enum_stats = enumerate_cuts(aig, k=4, cap=6, instrument=inst)
        stats.cut_merges = enum_stats.merges
        fanout = aig.fanout_counts()

        best: Dict[int, _Choice] = {}
        area_flow: Dict[int, float] = {0: 0.0}
        for node in aig.inputs:
            area_flow[node] = 0.0
        for node in aig.and_nodes():
            chosen: Optional[_Choice] = None
            for cut in cuts[node]:
                if cut.size == 1:
                    continue  # trivial cut cannot implement the node
                if cut.table in (0, full_mask(cut.size)):
                    continue
                match = self._match(cut.table, cut.size, stats)
                if match is None:
                    continue
                cost, cell, perm, inverted, neg = match
                flow = cost + sum(
                    area_flow[leaf] / max(1, fanout[leaf]) for leaf in cut.leaves
                )
                if chosen is None or flow < chosen.area_flow:
                    chosen = _Choice(
                        cut=cut,
                        cell_name=cell.name,
                        perm=perm,
                        output_inverted=inverted,
                        input_negations=neg,
                        area_flow=flow,
                    )
            if chosen is None:
                raise RuntimeError(
                    f"no library match for node {node}; library incomplete"
                )
            best[node] = chosen
            area_flow[node] = chosen.area_flow

        netlist = self._cover(aig, best, stats, inst)
        return netlist, stats

    # -- cover extraction --------------------------------------------------
    def _cover(
        self,
        aig: AIG,
        best: Dict[int, _Choice],
        stats: MappingStats,
        inst,
    ) -> Netlist:
        netlist = Netlist(aig.name, self.library)
        net_of: Dict[int, str] = {}
        for node, name in zip(aig.inputs, aig.input_names):
            netlist.add_input_port(name)
            net_of[node] = name

        inverted_nets: Dict[str, str] = {}

        def inverted(net: str) -> str:
            if net not in inverted_nets:
                bar = f"{net}__bar"
                netlist.add_instance(
                    f"inv_{len(inverted_nets)}",
                    "INV_X1",
                    {"A": net, "Y": bar},
                )
                inverted_nets[net] = bar
                stats.inverters_added += 1
            return inverted_nets[net]

        # Select required nodes from the outputs down through chosen cuts.
        required: List[int] = []
        seen = set()
        stack = [lit_node(out) for out in aig.outputs if lit_node(out) != 0]
        while stack:
            node = stack.pop()
            if node in seen or aig.is_input(node) or node == 0:
                continue
            seen.add(node)
            required.append(node)
            stack.extend(best[node].cut.leaves)
        required.sort()  # node ids are topological

        cover_branches = []
        addresses = []
        for node in required:
            choice = best[node]
            cell = self.library.cell(choice.cell_name)
            out_net = f"n{node}"
            leaf_nets: List[str] = []
            for j, leaf in enumerate(choice.cut.leaves):
                if leaf == 0:
                    raise RuntimeError("constant leaves should have been pruned")
                net = net_of.get(leaf)
                if net is None:
                    raise RuntimeError(f"leaf {leaf} not yet covered")
                if (choice.input_negations >> j) & 1:
                    net = inverted(net)
                leaf_nets.append(net)
            pins = {cell.output: out_net if not choice.output_inverted else f"n{node}__pre"}
            # matches() semantics: cell input pin j reads cut leaf perm[j].
            for j in range(cell.num_inputs):
                pins[cell.inputs[j]] = leaf_nets[choice.perm[j]]
            netlist.add_instance(f"g{node}", cell.name, pins)
            if choice.output_inverted:
                netlist.add_instance(
                    f"g{node}_fix", "INV_X1", {"A": f"n{node}__pre", "Y": out_net}
                )
                stats.inverters_added += 1
            net_of[node] = out_net
            stats.covered_nodes += 1
            cover_branches.append(choice.output_inverted)
            addresses.append((node & 0x7FF) * 8)
            addresses.extend((leaf & 0x7FF) * 8 for leaf in choice.cut.leaves[:2])

        if inst.enabled:
            inst.mem(addresses)
            inst.branch(0x900, cover_branches)

        const0_net: Optional[str] = None

        def constant_net(value: bool) -> str:
            """Tie net built as ``a & ~a`` (plus INV for constant one)."""
            nonlocal const0_net
            if const0_net is None:
                if not aig.inputs:
                    raise RuntimeError("cannot build tie cells without inputs")
                base = net_of[aig.inputs[0]]
                const0_net = "tie_lo"
                netlist.add_instance(
                    "tie_lo_cell",
                    "AND2_X1",
                    {"A": base, "B": inverted(base), "Y": const0_net},
                )
            return inverted(const0_net) if value else const0_net

        for out, name in zip(aig.outputs, aig.output_names):
            node = lit_node(out)
            if node == 0:
                net = constant_net(lit_is_complemented(out))
            else:
                net = net_of[node]
                if lit_is_complemented(out):
                    net = inverted(net)
            netlist.add_output_port(name, net)
        netlist.validate()
        return netlist


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class SynthesisEngine:
    """Runs optimization + mapping and reports work/counters.

    Parameters
    ----------
    library:
        Target cell library (defaults to ``nangate_lite``).
    calibration:
        Op-count-to-seconds constants.
    """

    def __init__(
        self,
        library: Optional[Library] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        self.library = library if library is not None else nangate_lite()
        self.calibration = calibration
        self.mapper = TechnologyMapper(self.library)

    def run(
        self,
        aig: AIG,
        recipe: Sequence[str] = DEFAULT_RECIPE,
        seed: int = 0,
        instrument=None,
    ) -> JobResult:
        """Synthesize ``aig`` into a netlist.

        The returned :class:`JobResult`'s artifact is the mapped netlist.
        """
        inst = instrument if instrument is not None else NullInstrument()
        opt_stats = RestructureStats()
        optimized = apply_recipe(aig, recipe, seed=seed, instrument=inst, stats=opt_stats)
        netlist, map_stats = self.mapper.map(optimized, instrument=inst)

        cal = self.calibration
        profile = WorkProfile(name=f"synthesis:{aig.name}")
        # Parallel part: cut enumeration + boolean matching (per-node).
        profile.add(
            (opt_stats.cut_merges + map_stats.cut_merges) * cal.synth_sec_per_cut_merge,
            parallelism=cal.synth_parallel_limit,
            name="cut-enumeration",
        )
        profile.add(
            map_stats.match_lookups * cal.synth_sec_per_cut_merge * 0.25,
            parallelism=cal.synth_parallel_limit,
            name="matching",
        )
        # Serial part: graph rebuilds, ISOP, covering.
        profile.add(
            (opt_stats.isop_calls + opt_stats.cubes_built) * cal.synth_sec_per_rewrite,
            parallelism=1,
            name="restructure",
        )
        profile.add(
            (map_stats.covered_nodes + map_stats.inverters_added)
            * cal.synth_sec_per_cover
            + aig.num_ands * cal.synth_sec_per_cover * 0.5,
            parallelism=1,
            name="cover",
        )

        return JobResult(
            stage=EDAStage.SYNTHESIS,
            design=aig.name,
            profile=profile,
            counters=inst.counters,
            artifact=netlist,
            metrics={
                "input_ands": float(aig.num_ands),
                "optimized_ands": float(optimized.num_ands),
                "instances": float(netlist.num_instances),
                "area": float(netlist.total_area()),
                "depth": float(netlist.depth()),
            },
        )
