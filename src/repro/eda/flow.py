"""Four-stage EDA flow runner: synthesis -> placement -> routing -> STA.

Chains the engines with their natural artifact hand-offs (AIG -> netlist ->
placement -> routing/timing) and returns the per-stage
:class:`~repro.eda.job.JobResult` objects — which is exactly the unit the
paper's Table I operates on (one runtime/cost row per stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..netlist.aig import AIG
from ..netlist.cells import Library, nangate_lite
from ..obs import get_logger, get_tracer
from .calibration import Calibration, DEFAULT_CALIBRATION
from .job import EDAStage, JobResult
from .placement import PlacementEngine
from .routing import GlobalRouter
from .sta import STAEngine
from .synthesis import DEFAULT_RECIPE, SynthesisEngine

__all__ = ["FlowResult", "FlowRunner"]


@dataclass
class FlowResult:
    """All four stage results for one design."""

    design: str
    stages: Dict[EDAStage, JobResult] = field(default_factory=dict)

    def __getitem__(self, stage: EDAStage) -> JobResult:
        return self.stages[stage]

    def runtimes(self, vcpus: int) -> Dict[EDAStage, float]:
        """Per-stage runtime at one vCPU level."""
        return {stage: res.runtime(vcpus) for stage, res in self.stages.items()}

    def total_runtime(self, vcpus: int) -> float:
        """Flow runtime when every stage uses the same VM size."""
        return sum(self.runtimes(vcpus).values())

    def summary(self) -> str:
        return "\n".join(res.summary() for res in self.stages.values())


class FlowRunner:
    """Runs the full flow with shared library and calibration.

    Parameters
    ----------
    library:
        Cell library used by synthesis and downstream stages.
    calibration:
        Op-count-to-seconds constants shared by all engines.
    seed:
        Seed forwarded to the seeded engines (placement, routing).
    """

    def __init__(
        self,
        library: Optional[Library] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        seed: int = 0,
    ):
        self.library = library if library is not None else nangate_lite()
        self.calibration = calibration
        self.synthesis = SynthesisEngine(self.library, calibration)
        self.placement = PlacementEngine(calibration=calibration, seed=seed)
        self.routing = GlobalRouter(calibration=calibration, seed=seed)
        self.sta = STAEngine(calibration=calibration)

    def run(
        self,
        aig: AIG,
        recipe: Sequence[str] = DEFAULT_RECIPE,
        seed: int = 0,
        instruments: Optional[Mapping[EDAStage, object]] = None,
    ) -> FlowResult:
        """Run all four stages on a design.

        Parameters
        ----------
        aig:
            The input design.
        recipe:
            Synthesis pass sequence.
        seed:
            Synthesis recipe seed (structural-variant control).
        instruments:
            Optional per-stage perf instruments; stages without an entry run
            uninstrumented (fast path).
        """
        instruments = instruments or {}
        result = FlowResult(design=aig.name)
        tracer = get_tracer()

        with tracer.span("flow", design=aig.name):
            synth = self._traced_stage(
                tracer, result, EDAStage.SYNTHESIS,
                lambda: self.synthesis.run(
                    aig, recipe=recipe, seed=seed,
                    instrument=instruments.get(EDAStage.SYNTHESIS),
                ),
            )
            place = self._traced_stage(
                tracer, result, EDAStage.PLACEMENT,
                lambda: self.placement.run(
                    synth.artifact,
                    instrument=instruments.get(EDAStage.PLACEMENT),
                ),
            )
            self._traced_stage(
                tracer, result, EDAStage.ROUTING,
                lambda: self.routing.run(
                    place.artifact,
                    instrument=instruments.get(EDAStage.ROUTING),
                ),
            )
            self._traced_stage(
                tracer, result, EDAStage.STA,
                lambda: self.sta.run(
                    place.artifact, instrument=instruments.get(EDAStage.STA)
                ),
            )
        return result

    @staticmethod
    def _traced_stage(tracer, result: FlowResult, stage: EDAStage, thunk):
        """Run one stage in a span tagged with design, modelled runtimes
        at the paper's vCPU grid, and the stage's perf-counter summary."""
        with tracer.span(
            f"stage.{stage.value}", design=result.design, stage=stage.value
        ) as span:
            job = thunk()
            result.stages[stage] = job
            for vcpus, runtime in job.runtimes().items():
                span.set_tag(f"runtime_{vcpus}v", runtime)
            span.set_tags(
                instructions=job.counters.instructions,
                branch_miss_rate=job.counters.branch_miss_rate,
                cache_miss_rate=job.counters.cache_miss_rate,
                avx_share=job.counters.avx_share,
            )
            get_logger().debug(
                "flow.stage",
                design=result.design,
                stage=stage.value,
                instructions=job.counters.instructions,
            )
        return job
