"""The four EDA applications, built from scratch.

* :mod:`repro.eda.synthesis` — AIG optimization + technology mapping.
* :mod:`repro.eda.placement` — analytical gradient-descent placement.
* :mod:`repro.eda.routing` — negotiated-congestion grid routing.
* :mod:`repro.eda.sta` — levelized static timing analysis.
* :mod:`repro.eda.flow` — the chained four-stage flow.

Shared infrastructure: :mod:`repro.eda.job` (results),
:mod:`repro.eda.cuts` / :mod:`repro.eda.truthtables` (synthesis kernels),
:mod:`repro.eda.calibration` (op-count-to-seconds constants).
"""

from .calibration import Calibration, DEFAULT_CALIBRATION
from .flow import FlowResult, FlowRunner
from .job import EDAStage, JobResult
from .placement import Placement, PlacementEngine
from .routing import GlobalRouter, RouteSegment, RoutingResult
from .sta import STAEngine, TimingReport
from .synthesis import (
    DEFAULT_RECIPE,
    MappingStats,
    SynthesisEngine,
    TechnologyMapper,
    apply_recipe,
    balance,
    recipe_variants,
    restructure,
)

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "FlowResult",
    "FlowRunner",
    "EDAStage",
    "JobResult",
    "Placement",
    "PlacementEngine",
    "GlobalRouter",
    "RouteSegment",
    "RoutingResult",
    "STAEngine",
    "TimingReport",
    "DEFAULT_RECIPE",
    "MappingStats",
    "SynthesisEngine",
    "TechnologyMapper",
    "apply_recipe",
    "balance",
    "recipe_variants",
    "restructure",
]
