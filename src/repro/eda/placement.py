"""Analytical placement engine.

Implements the algorithm family the paper attributes placement's perf
signature to: an *analytical* engine that "tries to optimize the wirelength
across all the chip instances using convex optimization methods", i.e.
gradient descent over large coordinate vectors — floating-point heavy
(AVX), with gather/scatter memory access over net endpoint arrays (high
cache miss rates that fall as more cache arrives with bigger VMs).

Pipeline:

1. Build the star-model connectivity (driver -> sinks per net) with I/O
   ports as fixed perimeter pads.
2. Quadratic wirelength minimization by gradient descent, with a bin-based
   density penalty that spreads cells (a small ePlace/SimPL-style loop).
3. Tetris-style row legalization.

The artifact is a :class:`Placement` carrying legal cell positions, the die
outline and wirelength metrics — consumed downstream by routing and STA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.netlist import PORT, Netlist
from ..obs import get_tracer
from ..parallel import WorkProfile
from ..perf.instrument import NullInstrument
from .calibration import Calibration, DEFAULT_CALIBRATION
from .job import EDAStage, JobResult

__all__ = ["Placement", "PlacementEngine"]


@dataclass
class Placement:
    """Result of placing a netlist.

    Attributes
    ----------
    netlist:
        The placed design.
    positions:
        Cell centre coordinates per instance name (microns).
    port_positions:
        Fixed pad coordinates per port name.
    die_width, die_height:
        Die outline (microns).
    row_height:
        Legalization row pitch.
    """

    netlist: Netlist
    positions: Dict[str, Tuple[float, float]]
    port_positions: Dict[str, Tuple[float, float]]
    die_width: float
    die_height: float
    row_height: float = 1.0

    def pin_position(self, owner: str, is_port: bool) -> Tuple[float, float]:
        """Position of an instance or port endpoint."""
        if is_port:
            return self.port_positions[owner]
        return self.positions[owner]

    def net_endpoints(self, net_name: str) -> List[Tuple[float, float]]:
        """All endpoint coordinates of a net (driver first)."""
        net = self.netlist.nets[net_name]
        pts: List[Tuple[float, float]] = []
        owner, pin = net.driver  # type: ignore[misc]
        pts.append(self.pin_position(pin if owner == PORT else owner, owner == PORT))
        for owner, pin in net.sinks:
            pts.append(self.pin_position(pin if owner == PORT else owner, owner == PORT))
        return pts

    def net_hpwl(self, net_name: str) -> float:
        """Half-perimeter wirelength of one net."""
        pts = self.net_endpoints(net_name)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total_hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets."""
        return sum(self.net_hpwl(n) for n in self.netlist.nets)


class PlacementEngine:
    """Gradient-descent analytical placer with density spreading.

    Parameters
    ----------
    target_density:
        Fraction of die area occupied by cells.
    iterations:
        Gradient iterations (scaled internally with design size).
    bins:
        Density grid resolution per axis.
    """

    def __init__(
        self,
        target_density: float = 0.7,
        iterations: int = 120,
        bins: int = 16,
        calibration: Calibration = DEFAULT_CALIBRATION,
        seed: int = 0,
    ):
        if not 0.1 <= target_density <= 1.0:
            raise ValueError("target_density must be in [0.1, 1.0]")
        self.target_density = target_density
        self.iterations = iterations
        self.bins = bins
        self.calibration = calibration
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, netlist: Netlist, instrument=None) -> JobResult:
        """Place the netlist; artifact is a :class:`Placement`."""
        inst = instrument if instrument is not None else NullInstrument()
        names = list(netlist.instances)
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        if n == 0:
            raise ValueError("cannot place an empty netlist")
        areas = np.array(
            [netlist.instances[name].cell.area for name in names], dtype=np.float64
        )
        total_area = float(areas.sum())
        die = math.sqrt(total_area / self.target_density)
        die = max(die, 4.0)

        # Fixed pads: inputs on the left/top edge, outputs on the right/bottom.
        port_positions: Dict[str, Tuple[float, float]] = {}
        for i, p in enumerate(netlist.input_ports):
            frac = (i + 0.5) / max(1, len(netlist.input_ports))
            port_positions[p] = (0.0, frac * die)
        for i, p in enumerate(netlist.output_ports):
            frac = (i + 0.5) / max(1, len(netlist.output_ports))
            port_positions[p] = (die, frac * die)

        # Star-model edges: driver endpoint -> each sink endpoint.  Fixed
        # endpoints (pads) are encoded with index >= n.
        fixed_xy: List[Tuple[float, float]] = []
        fixed_index: Dict[str, int] = {}

        def endpoint(owner: str, pin: str) -> int:
            if owner == PORT:
                if pin not in fixed_index:
                    fixed_index[pin] = n + len(fixed_xy)
                    fixed_xy.append(port_positions[pin])
                return fixed_index[pin]
            return index[owner]

        src_list: List[int] = []
        dst_list: List[int] = []
        weight_list: List[float] = []
        for net in netlist.nets.values():
            if net.driver is None or not net.sinks:
                continue
            d_owner, d_pin = net.driver
            src = endpoint(d_owner, d_pin)
            w = 1.0 / math.sqrt(len(net.sinks))
            for s_owner, s_pin in net.sinks:
                dst = endpoint(s_owner, s_pin)
                src_list.append(src)
                dst_list.append(dst)
                weight_list.append(w)

        src = np.asarray(src_list, dtype=np.int64)
        dst = np.asarray(dst_list, dtype=np.int64)
        weight = np.asarray(weight_list, dtype=np.float64)
        num_fixed = len(fixed_xy)
        total_pts = n + num_fixed

        rng = np.random.default_rng(self.seed)
        x = np.empty(total_pts, dtype=np.float64)
        y = np.empty(total_pts, dtype=np.float64)
        x[:n] = die * (0.35 + 0.3 * rng.random(n))
        y[:n] = die * (0.35 + 0.3 * rng.random(n))
        if num_fixed:
            fx = np.asarray(fixed_xy, dtype=np.float64)
            x[n:] = fx[:, 0]
            y[n:] = fx[:, 1]

        iterations = max(20, int(self.iterations * min(2.0, math.sqrt(n / 500.0 + 0.25))))
        bins = self.bins
        bin_size = die / bins
        target_bin_area = self.target_density * bin_size * bin_size
        step = 0.12 * die / math.sqrt(max(n, 1))
        density_weight = 0.0

        fp_per_iter_avx = 10 * len(src) + 6 * n + 4 * bins * bins
        gradient_work = 0
        # Instrumentation geometry: coordinate/gradient vectors live in four
        # separate arrays (32 B per entry with padding); netlist pin data is
        # streamed once per iteration and never reused.
        mem_stride = max(1, len(src) // 2048)
        edge_sample = np.arange(0, len(src), mem_stride, dtype=np.int64)
        scan_len = max(8, int(1.45 * len(edge_sample)))
        tracer = get_tracer()
        counters_before = inst.snapshot()
        # Profiler hook: one span over the whole descent (not per step —
        # the step count scales with design size and would bloat traces);
        # the fused counter delta attributes the FP/gather work to it.
        with tracer.span(
            "placement.gradient", iterations=iterations, edges=len(src)
        ) as g_span:
            for it in range(iterations):
                dx = x[src] - x[dst]
                dy = y[src] - y[dst]
                gx = np.zeros(total_pts)
                gy = np.zeros(total_pts)
                np.add.at(gx, src, 2.0 * weight * dx)
                np.add.at(gx, dst, -2.0 * weight * dx)
                np.add.at(gy, src, 2.0 * weight * dy)
                np.add.at(gy, dst, -2.0 * weight * dy)

                # Density: per-bin utilization and a push-out-of-overflow
                # force.
                bx = np.clip((x[:n] / bin_size).astype(np.int64), 0, bins - 1)
                by = np.clip((y[:n] / bin_size).astype(np.int64), 0, bins - 1)
                util = np.zeros((bins, bins))
                np.add.at(util, (bx, by), areas)
                overflow = np.maximum(0.0, util - target_bin_area)
                # Finite-difference force field from the overflow potential.
                fx_field = np.zeros_like(overflow)
                fy_field = np.zeros_like(overflow)
                fx_field[1:-1, :] = overflow[:-2, :] - overflow[2:, :]
                fy_field[:, 1:-1] = overflow[:, :-2] - overflow[:, 2:]
                density_weight = (
                    2.0 * ((it + 1) / iterations) / max(target_bin_area, 1e-9)
                )
                gx[:n] -= density_weight * fx_field[bx, by] * areas
                gy[:n] -= density_weight * fy_field[bx, by] * areas

                # Descend with per-cell gradient clipping to stabilize early
                # steps.
                norm = np.sqrt(gx[:n] ** 2 + gy[:n] ** 2) + 1e-12
                scale = np.minimum(1.0, (3.0 * step) / norm)
                x[:n] = np.clip(x[:n] - step * gx[:n] * scale, 0.0, die)
                y[:n] = np.clip(y[:n] - step * gy[:n] * scale, 0.0, die)

                gradient_work += len(src) + n
                if inst.enabled:
                    inst.flops(avx=fp_per_iter_avx)
                    inst.instructions(2 * len(src))
                    # Vectorized loop control: long runs of taken branches.
                    inst.branch(
                        0xA10,
                        [True] * 63 + [False],
                        weight=max(1, len(src) // 64),
                    )
                    if it % 4 == 0:
                        # Gather/scatter addresses over the four coordinate
                        # and gradient arrays (net order — the pattern behind
                        # placement's high cache-miss signature), plus a
                        # streaming scan of per-iteration pin data.
                        e = rng.permutation(edge_sample)
                        ax = (0 << 26) + dst[e] * 6
                        ay = (1 << 26) + dst[e] * 6
                        agx = (2 << 26) + src[e] * 6
                        agy = (3 << 26) + src[e] * 6
                        resident = np.stack([ax, ay, agx, agy], axis=1).ravel()
                        scan = ((64 + (it & 31)) << 26) + np.arange(scan_len) * 64
                        stream = np.concatenate([resident, scan])
                        inst.mem(stream.tolist(), reads_per_element=4 * mem_stride)
            g_span.set_tags(
                gradient_work=gradient_work, **inst.span_delta(counters_before)
            )

        # Legalization: tetris-style row packing by x-order.
        rows = max(1, int(die / 1.0))
        row_y = (np.arange(rows) + 0.5) * (die / rows)
        order = np.argsort(x[:n] + 1e-6 * rng.random(n))
        row_fill = np.zeros(rows)
        legal_branches: List[bool] = []
        positions: Dict[str, Tuple[float, float]] = {}
        widths = areas / 1.0  # unit row height -> width = area
        counters_before = inst.snapshot()
        with tracer.span("placement.legalize", instances=n) as l_span:
            for cell_idx in order:
                w_cell = widths[cell_idx]
                desired_row = int(np.clip(y[cell_idx] / (die / rows), 0, rows - 1))
                best_row, best_cost = desired_row, float("inf")
                for r in range(max(0, desired_row - 8), min(rows, desired_row + 9)):
                    # Penalize displacement plus any spill past the die edge.
                    spill = max(0.0, row_fill[r] + w_cell - die)
                    cost = (
                        abs(row_fill[r] - x[cell_idx])
                        + 1.5 * abs(r - desired_row)
                        + 50.0 * spill
                    )
                    took = cost < best_cost
                    legal_branches.append(took)
                    if took:
                        best_row, best_cost = r, cost
                # Keep the analytical x unless the row is already filled past
                # it, clamped so cells stay on the die whenever the row has
                # space.
                left_edge = max(
                    row_fill[best_row],
                    min(x[cell_idx] - w_cell / 2.0, die - w_cell),
                )
                positions[names[cell_idx]] = (
                    float(left_edge + w_cell / 2.0),
                    float(row_y[best_row]),
                )
                row_fill[best_row] = left_edge + w_cell
            if inst.enabled:
                inst.branch(0xA00, legal_branches)
                inst.instructions(4 * n)
            l_span.set_tags(**inst.span_delta(counters_before))

        placement = Placement(
            netlist=netlist,
            positions=positions,
            port_positions=port_positions,
            die_width=die,
            die_height=die,
        )

        cal = self.calibration
        profile = WorkProfile(name=f"placement:{netlist.name}")
        profile.add(
            gradient_work * cal.place_sec_per_gradient_term,
            parallelism=16,
            name="gradient",
        )
        profile.add(
            iterations * bins * bins * cal.place_sec_per_bin,
            parallelism=8,
            name="density",
        )
        profile.add(
            n * cal.place_sec_per_legalize
            + iterations * n * cal.place_sec_per_gradient_term * cal.place_update_factor,
            parallelism=1,
            name="legalize+update",
        )

        return JobResult(
            stage=EDAStage.PLACEMENT,
            design=netlist.name,
            profile=profile,
            counters=inst.counters,
            artifact=placement,
            metrics={
                "hpwl": placement.total_hpwl(),
                "die": die,
                "iterations": float(iterations),
                "instances": float(n),
                "overflow": float(np.sum(np.maximum(0.0, row_fill - die))),
            },
        )
