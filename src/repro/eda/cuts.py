"""Priority k-feasible cut enumeration over AIGs.

Cut enumeration is the workhorse shared by the rewriting pass and the
technology mapper: for every AND node it computes a bounded set of
*k-feasible cuts* (leaf sets of at most ``k`` nodes whose values determine
the node) together with each cut's truth table over its leaves.

The enumeration is the classic bottom-up merge: a node's cuts are products
of its fanins' cuts, pruned by leaf-count, deduplicated, dominance-filtered
and capped to the ``cap`` best (smallest) cuts — i.e. "priority cuts".

Instrumentation: cut merging is pointer-chasing over per-node cut lists —
the engine reports those accesses and the keep/prune decision branches,
which is what gives synthesis its moderate, mostly-predictable perf
signature in the characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.aig import AIG, lit_is_complemented, lit_node
from ..obs import get_tracer
from ..perf.instrument import NullInstrument
from .truthtables import expand_table, full_mask

__all__ = ["Cut", "CutSet", "enumerate_cuts", "CutEnumStats"]


@dataclass(frozen=True)
class Cut:
    """A k-feasible cut: sorted leaf node ids plus the function over them.

    ``table`` is a truth table over ``len(leaves)`` variables where variable
    ``j`` is the value of leaf ``leaves[j]`` (leaves sorted ascending).
    """

    leaves: Tuple[int, ...]
    table: int

    @property
    def size(self) -> int:
        return len(self.leaves)


@dataclass
class CutEnumStats:
    """Operation counts for the work model."""

    merges: int = 0
    kept: int = 0
    pruned: int = 0


CutSet = Dict[int, List[Cut]]


def _lift(cut: Cut, union: Tuple[int, ...]) -> int:
    """Express a cut's table over a superset leaf tuple."""
    positions = [union.index(leaf) for leaf in cut.leaves]
    return expand_table(cut.table, positions, len(union))


def enumerate_cuts(
    aig: AIG,
    k: int = 4,
    cap: int = 6,
    instrument=None,
) -> Tuple[CutSet, CutEnumStats]:
    """Enumerate priority cuts for every node of ``aig``.

    Parameters
    ----------
    aig:
        Input graph.
    k:
        Maximum leaves per cut (4 matches the mapper's cell inputs).
    cap:
        Maximum cuts kept per node.
    instrument:
        Optional perf instrument receiving memory/branch events.

    Returns
    -------
    (cuts, stats):
        ``cuts[node]`` lists the node's cuts, always including the trivial
        cut ``({node}, x0)``; ``stats`` carries op counts for the work model.
    """
    if k < 2 or k > 6:
        raise ValueError("k must be in [2, 6] (truth tables support <= 6 vars)")
    inst = instrument if instrument is not None else NullInstrument()
    stats = CutEnumStats()
    cuts: CutSet = {}
    trivial_table = 0b10  # identity over one variable
    counters_before = inst.snapshot()
    # Profiler hook: one span per enumeration call (the rewriter and the
    # mapper each call once per pass, so this stays bounded) with the
    # merge/prune totals and fused counter delta as tags.
    with get_tracer().span("cuts.enumerate", k=k, cap=cap) as enum_span:
        for node in range(aig.size):
            if node == 0:
                cuts[0] = [Cut(leaves=(0,), table=trivial_table)]
                continue
            if aig.is_input(node):
                cuts[node] = [Cut(leaves=(node,), table=trivial_table)]
                continue
            fan_a, fan_b = aig.fanins(node)
            list_a = cuts[lit_node(fan_a)]
            list_b = cuts[lit_node(fan_b)]
            compl_a = lit_is_complemented(fan_a)
            compl_b = lit_is_complemented(fan_b)
            merged: List[Cut] = []
            seen_leaves = set()
            keep_branches = []
            addresses = []
            if inst.enabled:
                # Node record plus both fanin records: fanins are recent
                # nodes, so the stream has strong temporal locality
                # (synthesis's low cache-miss signature).
                # Node records are allocated in a recycled hot window (the
                # allocator keeps recently-touched nodes resident), so the
                # stream mostly hits cache at any VM size.
                addresses.extend(
                    (
                        (node & 0x7FF) * 8,
                        (lit_node(fan_a) & 0x7FF) * 8,
                        (lit_node(fan_b) & 0x7FF) * 8,
                    )
                )
            for ca in list_a:
                for cb in list_b:
                    stats.merges += 1
                    union = tuple(sorted(set(ca.leaves) | set(cb.leaves)))
                    if len(union) > k:
                        stats.pruned += 1
                        keep_branches.append(False)
                        continue
                    if union in seen_leaves:
                        stats.pruned += 1
                        keep_branches.append(False)
                        continue
                    nvars = len(union)
                    ta = _lift(ca, union)
                    tb = _lift(cb, union)
                    if compl_a:
                        ta = ~ta & full_mask(nvars)
                    if compl_b:
                        tb = ~tb & full_mask(nvars)
                    merged.append(Cut(leaves=union, table=ta & tb))
                    seen_leaves.add(union)
                    keep_branches.append(True)
                    stats.kept += 1
            # Dominance filter: drop any cut whose leaves are a strict
            # superset of another kept cut's leaves.
            merged.sort(key=lambda c: (c.size, c.leaves))
            filtered: List[Cut] = []
            for cut in merged:
                leaf_set = set(cut.leaves)
                dominated = any(set(f.leaves) < leaf_set for f in filtered)
                keep_branches.append(not dominated)
                if dominated:
                    stats.pruned += 1
                    continue
                filtered.append(cut)
            filtered = filtered[:cap]
            filtered.append(Cut(leaves=(node,), table=trivial_table))
            cuts[node] = filtered
            if inst.enabled:
                inst.mem(addresses, reads_per_element=4)
                inst.branch(node & 0x3FF, keep_branches)
                # Predictable cut-list loop control dominates dynamic
                # branches.
                inst.branch(0x500, [True] * len(keep_branches) * 2 + [False])
        enum_span.set_tags(
            merges=stats.merges,
            kept=stats.kept,
            pruned=stats.pruned,
            **inst.span_delta(counters_before),
        )
    return cuts, stats
