"""Truth-table algebra over small supports (up to 6 variables).

Truth tables are plain Python integers: bit ``m`` is the function value on
minterm ``m`` where bit ``j`` of ``m`` is the value of variable ``j``.  The
synthesis engine uses these for cut functions, NPN-lite matching and the
Minato-Morreale irredundant sum-of-products (ISOP) used by the rewriting
pass.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "full_mask",
    "var_table",
    "cofactor0",
    "cofactor1",
    "depends_on",
    "support",
    "expand_table",
    "flip_var",
    "isop",
    "cube_cover",
    "Cube",
]

#: Per-variable positive-cofactor masks for up to 6 variables: bit m set
#: iff bit j of m is 1.
_VAR_MASKS = [
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
]

MAX_VARS = 6


def full_mask(nvars: int) -> int:
    """All-ones truth table over ``nvars`` variables."""
    if not 0 <= nvars <= MAX_VARS:
        raise ValueError(f"nvars must be in [0, {MAX_VARS}]")
    return (1 << (1 << nvars)) - 1


def var_table(var: int, nvars: int) -> int:
    """Truth table of the projection function ``x_var``."""
    if not 0 <= var < nvars:
        raise ValueError("var out of range")
    return _VAR_MASKS[var] & full_mask(nvars)


def cofactor1(table: int, var: int, nvars: int) -> int:
    """Positive cofactor: substitute ``x_var = 1`` (result over same vars)."""
    mask = var_table(var, nvars)
    shift = 1 << var
    high = table & mask
    return high | (high >> shift)


def cofactor0(table: int, var: int, nvars: int) -> int:
    """Negative cofactor: substitute ``x_var = 0``."""
    mask = var_table(var, nvars)
    shift = 1 << var
    low = table & ~mask & full_mask(nvars)
    return low | (low << shift)


def flip_var(table: int, var: int, nvars: int) -> int:
    """Substitute ``x_var -> ~x_var``: swap the two cofactor halves."""
    mask = var_table(var, nvars)
    shift = 1 << var
    high = table & mask
    low = table & ~mask & full_mask(nvars)
    return (high >> shift) | (low << shift)


def depends_on(table: int, var: int, nvars: int) -> bool:
    """Whether the function actually depends on ``x_var``."""
    return cofactor0(table, var, nvars) != cofactor1(table, var, nvars)


def support(table: int, nvars: int) -> List[int]:
    """Variables the function depends on."""
    return [v for v in range(nvars) if depends_on(table, v, nvars)]


def expand_table(
    table: int, old_vars: Sequence[int], new_nvars: int
) -> int:
    """Re-express a table over a larger variable set.

    ``old_vars[j]`` gives the position, in the new variable order, of the
    function's original variable ``j``.  Used when merging cuts: each fanin
    cut's function is lifted onto the union leaf set.
    """
    old_n = len(old_vars)
    out = 0
    for new_minterm in range(1 << new_nvars):
        old_minterm = 0
        for j, pos in enumerate(old_vars):
            if (new_minterm >> pos) & 1:
                old_minterm |= 1 << j
        if (table >> old_minterm) & 1:
            out |= 1 << new_minterm
    return out


#: A product term: (care_mask, value_mask).  Variable ``j`` appears in the
#: cube iff bit j of care_mask is set; its required polarity is bit j of
#: value_mask.  The empty cube (0, 0) is the constant-one product.
Cube = Tuple[int, int]


def _cube_table(cube: Cube, nvars: int) -> int:
    """Truth table of a single cube."""
    care, value = cube
    table = full_mask(nvars)
    for v in range(nvars):
        if (care >> v) & 1:
            vmask = var_table(v, nvars)
            table &= vmask if (value >> v) & 1 else ~vmask & full_mask(nvars)
    return table


def cube_cover(cubes: Sequence[Cube], nvars: int) -> int:
    """Truth table of the OR of a list of cubes."""
    out = 0
    for cube in cubes:
        out |= _cube_table(cube, nvars)
    return out


def isop(lower: int, upper: int, nvars: int) -> List[Cube]:
    """Minato-Morreale irredundant sum-of-products.

    Returns cubes whose union ``F`` satisfies ``lower <= F <= upper``
    (as sets of minterms).  For plain SOP synthesis call
    ``isop(f, f, nvars)``.
    """
    mask = full_mask(nvars)
    lower &= mask
    upper &= mask
    if lower & ~upper & mask:
        raise ValueError("lower set is not contained in upper set")
    return _isop_rec(lower, upper, nvars, nvars - 1)


def _isop_rec(lower: int, upper: int, nvars: int, var: int) -> List[Cube]:
    if lower == 0:
        return []
    if upper == full_mask(nvars):
        return [(0, 0)]
    # Find the top variable either set depends on.
    while var >= 0 and not (
        depends_on(lower, var, nvars) or depends_on(upper, var, nvars)
    ):
        var -= 1
    if var < 0:
        # Constant non-zero lower with non-tautology upper cannot happen:
        # lower != 0 and independent of all vars means lower is all-ones,
        # hence upper is all-ones too and we returned above.
        return [(0, 0)]
    l0 = cofactor0(lower, var, nvars)
    l1 = cofactor1(lower, var, nvars)
    u0 = cofactor0(upper, var, nvars)
    u1 = cofactor1(upper, var, nvars)
    mask = full_mask(nvars)
    # Cubes that must contain literal ~x_var / x_var.
    p0 = _isop_rec(l0 & ~u1 & mask, u0, nvars, var - 1)
    p1 = _isop_rec(l1 & ~u0 & mask, u1, nvars, var - 1)
    cover0 = cube_cover(p0, nvars)
    cover1 = cube_cover(p1, nvars)
    # Remaining minterms handled by cubes independent of x_var.
    l0_rest = l0 & ~cover0 & mask
    l1_rest = l1 & ~cover1 & mask
    p2 = _isop_rec(l0_rest | l1_rest, u0 & u1, nvars, var - 1)
    bit = 1 << var
    out: List[Cube] = []
    out.extend((care | bit, value) for care, value in p0)  # literal ~x_var
    out.extend((care | bit, value | bit) for care, value in p1)  # literal x_var
    out.extend(p2)
    return out
