"""Global routing engine: grid maze search with rip-up and reroute.

This is the "routing" application of the characterization — the one the
paper singles out for (a) the *highest branch-miss rate*, attributed to
data-dependent graph-search control flow and rip-up-and-reroute retries,
and (b) the *best multi-core scaling*, because "nets in independent grid
cells can be routed in parallel with no conflict" — capped on small
designs (Figure 3).

Algorithm (PathFinder-style negotiated congestion):

1. Overlay a gcell grid on the placed die; each grid edge has a capacity.
2. Decompose every net into two-pin segments (star model from the driver).
3. Route each segment with A* maze search under a congestion-aware cost
   (base + history + overflow penalty), bounded to an inflatable bbox.
4. Rip up nets crossing overflowed edges, bump edge history, reroute.
   Repeat until no overflow or the iteration cap.

The parallel structure is exported as a real task graph: nets whose
(inflated) bounding boxes do not overlap route concurrently within a wave;
waves are separated by commit barriers.  List scheduling of that graph on
k workers yields runtime(k) — large designs have wide waves and scale to
8 vCPUs, small ones plateau, which is exactly Figure 3.
"""

from __future__ import annotations

import heapq
import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.netlist import PORT, Netlist
from ..obs import get_tracer
from ..parallel import TaskGraph, TaskGraphWorkload
from ..perf.instrument import NullInstrument
from .calibration import Calibration, DEFAULT_CALIBRATION
from .job import EDAStage, JobResult
from .placement import Placement

__all__ = ["RoutingResult", "GlobalRouter", "RouteSegment"]


@dataclass
class RouteSegment:
    """One routed two-pin connection."""

    net: str
    source: Tuple[int, int]
    target: Tuple[int, int]
    path: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def wirelength(self) -> int:
        """Routed length in gcell steps."""
        return max(0, len(self.path) - 1)


@dataclass
class RoutingResult:
    """Artifact of global routing."""

    grid_width: int
    grid_height: int
    segments: List[RouteSegment]
    overflow: int
    iterations: int
    total_wirelength: int

    @property
    def num_segments(self) -> int:
        return len(self.segments)


class GlobalRouter:
    """Congestion-negotiating grid router.

    Parameters
    ----------
    gcell_size:
        Edge length of one grid cell in microns.
    capacity:
        Routing tracks per grid edge.
    max_iterations:
        Rip-up-and-reroute iteration cap.
    bbox_margin:
        Initial search-window inflation around each segment's bbox.
    """

    def __init__(
        self,
        gcell_size: float = 1.5,
        capacity: Optional[int] = None,
        max_iterations: int = 5,
        bbox_margin: int = 2,
        calibration: Calibration = DEFAULT_CALIBRATION,
        seed: int = 0,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.gcell_size = gcell_size
        self.capacity = capacity
        self.max_iterations = max_iterations
        self.bbox_margin = bbox_margin
        self.calibration = calibration
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, placement: Placement, instrument=None) -> JobResult:
        """Route a placed design; artifact is a :class:`RoutingResult`."""
        inst = instrument if instrument is not None else NullInstrument()
        netlist = placement.netlist
        width = max(4, int(math.ceil(placement.die_width / self.gcell_size)))
        height = max(4, int(math.ceil(placement.die_height / self.gcell_size)))

        def to_cell(pos: Tuple[float, float]) -> Tuple[int, int]:
            cx = min(width - 1, max(0, int(pos[0] / self.gcell_size)))
            cy = min(height - 1, max(0, int(pos[1] / self.gcell_size)))
            return cx, cy

        # Two-pin segments via the star model (driver -> each sink).
        # I/O-port connections are excluded: pad nets are assigned to
        # dedicated upper-layer routing resources (as production flows do),
        # so the congestion-negotiating grid router works on cell-to-cell
        # nets only.
        segments: List[RouteSegment] = []
        for net in netlist.nets.values():
            if net.driver is None or not net.sinks:
                continue
            d_owner, d_pin = net.driver
            if d_owner == PORT:
                continue
            src_cell = to_cell(placement.pin_position(d_owner, False))
            for s_owner, s_pin in net.sinks:
                if s_owner == PORT:
                    continue
                dst_cell = to_cell(placement.pin_position(s_owner, False))
                if dst_cell != src_cell:
                    segments.append(
                        RouteSegment(net=net.name, source=src_cell, target=dst_cell)
                    )

        # Auto-size edge capacity to the design's routing demand: total
        # Manhattan demand spread over the available edges, with ~25%
        # headroom.  This keeps every design in the same regime the paper
        # operates in — mostly routable, with localized congestion that
        # rip-up-and-reroute must negotiate.
        if self.capacity is None:
            demand = sum(
                abs(s_.source[0] - s_.target[0]) + abs(s_.source[1] - s_.target[1])
                for s_ in segments
            )
            num_edges = max(1, (width - 1) * height + width * (height - 1))
            capacity = max(3, int(math.ceil(3.0 * demand / num_edges)))
        else:
            capacity = self.capacity

        # Edge usage/history: horizontal edges (x,y)->(x+1,y), vertical
        # (x,y)->(x,y+1), stored as flat numpy arrays.
        h_usage = np.zeros((width - 1) * height, dtype=np.int32)
        v_usage = np.zeros(width * (height - 1), dtype=np.int32)
        h_hist = np.zeros_like(h_usage, dtype=np.float64)
        v_hist = np.zeros_like(v_usage, dtype=np.float64)

        def h_index(x: int, y: int) -> int:
            return y * (width - 1) + x

        def v_index(x: int, y: int) -> int:
            return y * width + x

        def edge_of(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[str, int]:
            if a[1] == b[1]:
                return "h", h_index(min(a[0], b[0]), a[1])
            return "v", v_index(a[0], min(a[1], b[1]))

        # ---- per-segment A* maze search --------------------------------
        rng = random.Random(self.seed)
        overflow_penalty = 8.0  # grows with iteration (pres-fac)
        heuristic_weight = 1.6

        pres_fac = overflow_penalty

        def edge_cost(kind: str, idx: int) -> float:
            if kind == "h":
                usage, hist = h_usage[idx], h_hist[idx]
            else:
                usage, hist = v_usage[idx], v_hist[idx]
            over = max(0, usage + 1 - capacity)
            return 1.0 + hist + pres_fac * over

        def route_segment(
            seg: RouteSegment, margin: int, collect_events: bool
        ) -> Tuple[int, List[bool], List[int]]:
            """A* from source to target; returns (expansions, branches, addrs)."""
            sx, sy = seg.source
            tx, ty = seg.target
            x_lo = max(0, min(sx, tx) - margin)
            x_hi = min(width - 1, max(sx, tx) + margin)
            y_lo = max(0, min(sy, ty) - margin)
            y_hi = min(height - 1, max(sy, ty) + margin)
            best_cost: Dict[Tuple[int, int], float] = {(sx, sy): 0.0}
            parent: Dict[Tuple[int, int], Tuple[int, int]] = {}
            heap: List[Tuple[float, int, Tuple[int, int]]] = [
                (heuristic_weight * (abs(sx - tx) + abs(sy - ty)), 0, (sx, sy))
            ]
            counter = 0
            expansions = 0
            branches: List[bool] = []
            addrs: List[int] = []
            # Per-net scratch structures (visited map, parents, heap) live
            # in a cold region cycled across nets.
            scratch = (2 << 26) + ((zlib.crc32(seg.net.encode()) & 63) << 19)
            found = False
            while heap:
                _f, _tie, cell = heapq.heappop(heap)
                expansions += 1
                if collect_events:
                    addrs.append((cell[1] * width + cell[0]) * 16)
                    addrs.append(scratch + expansions * 16)
                if cell == (tx, ty):
                    found = True
                    break
                cx, cy = cell
                base = best_cost[cell]
                for nx, ny in ((cx + 1, cy), (cx - 1, cy), (cx, cy + 1), (cx, cy - 1)):
                    in_window = x_lo <= nx <= x_hi and y_lo <= ny <= y_hi
                    if collect_events:
                        branches.append(in_window)
                    if not in_window:
                        continue
                    kind, idx = edge_of((cx, cy), (nx, ny))
                    cost = base + edge_cost(kind, idx)
                    better = cost < best_cost.get((nx, ny), float("inf"))
                    if collect_events:
                        branches.append(better)
                        addrs.append(
                            (1 << 26) + idx * 4 + (0 if kind == "h" else (1 << 25))
                        )
                    if better:
                        best_cost[(nx, ny)] = cost
                        parent[(nx, ny)] = (cx, cy)
                        counter += 1
                        heapq.heappush(
                            heap,
                            (
                                cost
                                + heuristic_weight * (abs(nx - tx) + abs(ny - ty)),
                                counter,
                                (nx, ny),
                            ),
                        )
            if collect_events:
                # The heap-drain loop branch: taken until the search ends.
                branches.extend([True] * min(expansions, 4096))
                branches.append(False)
            if not found:
                return expansions, branches, addrs
            path = [(tx, ty)]
            while path[-1] != (sx, sy):
                path.append(parent[path[-1]])
            path.reverse()
            seg.path = path
            return expansions, branches, addrs

        def commit(seg: RouteSegment, sign: int) -> None:
            for a, b in zip(seg.path, seg.path[1:]):
                kind, idx = edge_of(a, b)
                if kind == "h":
                    h_usage[idx] += sign
                else:
                    v_usage[idx] += sign

        # ---- wave batching over disjoint search windows -------------------
        # Nets whose inflated search windows do not overlap route
        # concurrently within a wave ("nets in independent grid cells can be
        # routed in parallel with no conflict"); a serial commit barrier
        # separates waves.  Large nets additionally split into parallel
        # wavefront-expansion subtasks, as parallel maze routers do.
        coarse = 1
        cw = max(1, (width + coarse - 1) // coarse)
        # Routing-region tiling for the parallelism model: ~8 gcells per
        # region side, so the region count grows with design area.
        region_size = 5
        region_cols = max(1, (width + region_size - 1) // region_size)

        def window_cells(seg: RouteSegment, margin: int) -> frozenset:
            # Conflict tracking uses the tight bbox: concurrent maze
            # searches only clash where paths can actually meet.
            del margin
            x_lo = max(0, min(seg.source[0], seg.target[0])) // coarse
            x_hi = min(width - 1, max(seg.source[0], seg.target[0])) // coarse
            y_lo = max(0, min(seg.source[1], seg.target[1])) // coarse
            y_hi = min(height - 1, max(seg.source[1], seg.target[1])) // coarse
            return frozenset(
                yy * cw + xx
                for xx in range(x_lo, x_hi + 1)
                for yy in range(y_lo, y_hi + 1)
            )

        def build_waves(
            segs: Sequence[RouteSegment], margin: int
        ) -> List[List[RouteSegment]]:
            waves: List[List[RouteSegment]] = []
            occupancy: List[set] = []
            # Shortest segments first: they pack densely into early waves;
            # the few long (pad) nets get the tail waves.
            ordered = sorted(
                segs,
                key=lambda s_: (
                    abs(s_.source[0] - s_.target[0])
                    + abs(s_.source[1] - s_.target[1])
                ),
            )
            for seg in ordered:
                cells = window_cells(seg, margin)
                for wave_idx in range(len(waves)):
                    if not (occupancy[wave_idx] & cells):
                        waves[wave_idx].append(seg)
                        occupancy[wave_idx] |= cells
                        break
                else:
                    waves.append([seg])
                    occupancy.append(set(cells))
            return waves

        # Per-edge committed users, for targeted rip-up.
        edge_users: Dict[Tuple[str, int], List[RouteSegment]] = {}

        def commit(seg: RouteSegment, sign: int) -> None:
            for a, b in zip(seg.path, seg.path[1:]):
                key = edge_of(a, b)
                kind, idx = key
                if kind == "h":
                    h_usage[idx] += sign
                else:
                    v_usage[idx] += sign
                if sign > 0:
                    edge_users.setdefault(key, []).append(seg)
                else:
                    users = edge_users.get(key)
                    if users and seg in users:
                        users.remove(seg)

        # ---- main negotiated-congestion loop -----------------------------
        cal = self.calibration
        graph = TaskGraph(name=f"routing:{netlist.name}")
        # Router workers are almost fully decoupled (each owns its
        # region queue), so per-worker sync overhead is far below the
        # fork-join engines'.
        workload = TaskGraphWorkload(
            graph, name=f"routing:{netlist.name}", sync_overhead=0.008
        )
        total_expansions = 0
        ripups = 0
        iteration = 0
        event_stride = max(1, len(segments) // 160)
        to_route: List[RouteSegment] = list(segments)
        prev_barrier: Optional[int] = None
        # Work quantum for splitting big maze searches into parallel
        # subtasks (seconds of modelled single-core time).
        subtask_quantum = 220 * cal.route_sec_per_expansion

        last_task: Dict[int, int] = {}
        iteration_barrier: Optional[int] = None
        prev_overflow = float("inf")
        tracer = get_tracer()
        for iteration in range(1, self.max_iterations + 1):
            margin = self.bbox_margin + min(2, iteration - 1)
            pres_fac = overflow_penalty * iteration
            waves = build_waves(to_route, margin)
            commit_work = 0.0
            counters_before = inst.snapshot()
            expansions_before = total_expansions
            # Profiler hook: one cheap span per negotiation iteration
            # covering the wavefront expansion (at most max_iterations
            # spans per route).  The counter delta fused into the tags is
            # what lets the profile differ blame routing regressions on a
            # specific iteration's search rather than the stage total.
            with tracer.span("routing.iteration", iteration=iteration) as it_span:
                for wave in waves:
                    wave_streams: List[List[int]] = []
                    wave_updates: List[Tuple[frozenset, int]] = []
                    for si, seg in enumerate(wave):
                        collect = inst.enabled and (si % event_stride == 0)
                        expansions, branches, addrs = route_segment(
                            seg, margin, collect
                        )
                        total_expansions += expansions
                        # Parallelism model straight from the paper: "nets in
                        # independent grid cells can be routed in parallel with
                        # no conflict".  The die is tiled into routing regions;
                        # segments in the same region serialize on its worker
                        # queue, different regions proceed concurrently.  (Our
                        # scaled-down dies are ~30x smaller per side than the
                        # paper's 200k-instance design, so literal path-overlap
                        # conflicts would over-serialize; see DESIGN.md.)
                        mid_x = (seg.source[0] + seg.target[0]) // 2
                        mid_y = (seg.source[1] + seg.target[1]) // 2
                        region = (mid_y // region_size) * region_cols + (
                            mid_x // region_size
                        )
                        deps = set()
                        if region in last_task:
                            deps.add(last_task[region])
                        if iteration_barrier is not None:
                            deps.add(iteration_barrier)
                        work = (
                            expansions + 2 * len(seg.path)
                        ) * cal.route_sec_per_expansion
                        pieces = max(1, min(8, int(work / subtask_quantum)))
                        if pieces == 1:
                            owner = graph.add_task(
                                work=work, deps=sorted(deps), name=f"net:{seg.net}"
                            )
                        else:
                            # Parallel wavefront expansion: split the search
                            # into concurrent pieces joined by a zero-cost
                            # merge.
                            piece_ids = [
                                graph.add_task(
                                    work=work / pieces,
                                    deps=sorted(deps),
                                    name=f"net:{seg.net}",
                                )
                                for _ in range(pieces)
                            ]
                            owner = graph.add_task(
                                work=0.0, deps=piece_ids, name=f"merge:{seg.net}"
                            )
                        wave_updates.append((frozenset([region]), owner))
                        if seg.path:
                            commit(seg, +1)
                        if collect:
                            inst.branch(
                                0xB00 + (zlib.crc32(seg.net.encode()) & 0xFF),
                                branches,
                                weight=event_stride,
                            )
                            wave_streams.append(addrs)
                    # Cell ownership updates happen at wave granularity, so
                    # same-wave (disjoint) segments never order each other.
                    for cells, owner in wave_updates:
                        for c in cells:
                            last_task[c] = owner
                    commit_work += len(wave) * cal.route_sec_per_net_order
                    if inst.enabled and wave_streams:
                        stream = _interleave(wave_streams, max(1, inst.concurrency))
                        if inst.concurrency > 1:
                            # Coherence traffic: concurrent workers invalidate
                            # each other's cached usage entries; grows with the
                            # worker count.
                            extra = (
                                (len(stream) // 12) * (inst.concurrency - 1) // 7
                            )
                            pool = len(h_usage) + len(v_usage)
                            coh = rng.sample(range(pool), min(extra, pool))
                            stream.extend((3 << 26) + i * 64 for i in coh)
                        inst.mem(stream, reads_per_element=event_stride)
                it_span.set_tags(
                    waves=len(waves),
                    segments=len(to_route),
                    expansions=total_expansions - expansions_before,
                    **inst.span_delta(counters_before),
                )
            # One global sync per negotiation iteration (PathFinder's
            # overflow scan), plus the accumulated commit bookkeeping.
            iteration_barrier = graph.add_task(
                work=commit_work,
                deps=sorted(set(last_task.values())),
                name="overflow-scan",
            )

            # Overflow accounting and targeted rip-up: per overflowed edge,
            # rip exactly the excess users (shortest detours first).
            over_h = h_usage > capacity
            over_v = v_usage > capacity
            overflow = int(
                np.sum(np.maximum(0, h_usage - capacity))
                + np.sum(np.maximum(0, v_usage - capacity))
            )
            it_span.set_tag("overflow", overflow)
            if overflow == 0 or iteration == self.max_iterations:
                break
            if overflow > 0.9 * prev_overflow:
                # Negotiation has stagnated (hub-dominated congestion);
                # further rip-up would thrash without converging.
                break
            prev_overflow = overflow
            h_hist[over_h] += 2.0
            v_hist[over_v] += 2.0
            victims: List[RouteSegment] = []
            victim_ids = set()
            ripup_branches: List[bool] = []
            over_edges = [("h", int(i)) for i in np.nonzero(over_h)[0]]
            over_edges += [("v", int(i)) for i in np.nonzero(over_v)[0]]
            for key in over_edges:
                kind, idx = key
                usage = int(h_usage[idx] if kind == "h" else v_usage[idx])
                excess = usage - capacity
                users = [
                    u for u in edge_users.get(key, []) if id(u) not in victim_ids
                ]
                users.sort(key=lambda s_: s_.wirelength)
                for u in users:
                    take = excess > 0
                    ripup_branches.append(take)
                    if not take:
                        break
                    victims.append(u)
                    victim_ids.add(id(u))
                    excess -= 1
            if inst.enabled:
                inst.branch(0xB50, ripup_branches)
            if not victims:
                break
            for seg in victims:
                commit(seg, -1)
                seg.path = []
                ripups += 1
            to_route = victims

        overflow = int(
            np.sum(np.maximum(0, h_usage - capacity))
            + np.sum(np.maximum(0, v_usage - capacity))
        )
        total_wl = sum(seg.wirelength for seg in segments)
        result = RoutingResult(
            grid_width=width,
            grid_height=height,
            segments=segments,
            overflow=overflow,
            iterations=iteration,
            total_wirelength=total_wl,
        )

        # Serial sections: net ordering, wave construction, rip-up commits.
        workload.add(
            len(segments) * cal.route_sec_per_net_order * 1.5,
            parallelism=1,
            name="ordering",
        )
        workload.add(ripups * cal.route_sec_per_ripup, parallelism=1, name="ripup")
        if inst.enabled:
            inst.instructions(total_expansions * 2)

        return JobResult(
            stage=EDAStage.ROUTING,
            design=netlist.name,
            profile=workload,
            counters=inst.counters,
            artifact=result,
            metrics={
                "segments": float(len(segments)),
                "expansions": float(total_expansions),
                "overflow": float(overflow),
                "wirelength": float(total_wl),
                "ripups": float(ripups),
                "iterations": float(iteration),
                "grid": float(width * height),
            },
        )


def _interleave(streams: List[List[int]], ways: int) -> List[int]:
    """Interleave address streams in chunks, modelling ``ways`` workers.

    With one worker the streams replay back-to-back (full per-net
    locality); with more workers, chunks from ``ways`` different nets
    alternate in the shared cache — the locality loss responsible for
    routing's slight miss-rate increase on wider VMs.
    """
    if ways <= 1 or len(streams) <= 1:
        return [a for s in streams for a in s]
    chunk = 32
    out: List[int] = []
    # Round-robin over groups of `ways` streams.
    for g in range(0, len(streams), ways):
        group = [list(s) for s in streams[g : g + ways]]
        offsets = [0] * len(group)
        while True:
            progressed = False
            for i, s in enumerate(group):
                lo = offsets[i]
                if lo < len(s):
                    out.extend(s[lo : lo + chunk])
                    offsets[i] = lo + chunk
                    progressed = True
            if not progressed:
                break
    return out
