"""Calibration of engine op counts to modelled wall-clock seconds.

Our engines count the primitive operations they actually perform (cut
merges, gradient evaluations, maze-node expansions, timing-arc updates).
These constants convert op counts to the modelled seconds reported by
``JobResult.runtime``.  They were tuned once so that the ``sparc_core``
proxy at characterization scale lands in the same runtime regime as the
paper's Table I measurements of the commercial flow (synthesis ≈ 6,100 s,
placement ≈ 1,200 s, routing ≈ 10,500 s, STA ≈ 180 s on 1 vCPU) — absolute
agreement is *not* claimed, only comparable magnitude and, crucially, the
same relative ordering and scaling shape.

Parallel-fraction shaping: each engine splits its work into sections whose
parallelism reflects the algorithm (e.g. cut enumeration is per-node
parallel; net ordering is serial).  The fractions below control that split
and reproduce Figure 2-d's ordering (routing scales best, synthesis worst).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Seconds-per-operation constants and parallelism shape parameters."""

    # --- synthesis ----------------------------------------------------
    #: Seconds per cut-pair merge during cut enumeration.
    synth_sec_per_cut_merge: float = 1.0e-2
    #: Seconds per ISOP/rewrite evaluation.
    synth_sec_per_rewrite: float = 1.8e-1
    #: Seconds per node visited during covering/netlist construction.
    synth_sec_per_cover: float = 6.0e-2
    #: Maximum useful workers for per-node enumeration/matching work.
    synth_parallel_limit: int = 12

    # --- placement ----------------------------------------------------
    #: Seconds per cell-coordinate gradient term per iteration.
    place_sec_per_gradient_term: float = 3.16e-4
    #: Seconds per cell during legalization.
    place_sec_per_legalize: float = 1.4e-3
    #: Seconds per bin during density accumulation.
    place_sec_per_bin: float = 9.4e-5
    #: Serial solver-update work per cell-iteration, as a multiple of
    #: ``place_sec_per_gradient_term``.
    place_update_factor: float = 1.73

    # --- routing ------------------------------------------------------
    #: Seconds per maze-search node expansion.
    route_sec_per_expansion: float = 7.3e-3
    #: Seconds per net for ordering/queueing (serial).
    route_sec_per_net_order: float = 1.5e-2
    #: Seconds per rip-up operation (serial commit phase).
    route_sec_per_ripup: float = 1.8e-2

    # --- STA ------------------------------------------------------------
    #: Seconds per timing-arc propagation.
    sta_sec_per_arc: float = 1.46e-2
    #: Fraction of arc work that is level-parallel.
    sta_parallel_fraction: float = 0.66
    #: Maximum useful workers for level-parallel STA work.
    sta_parallel_limit: int = 16


DEFAULT_CALIBRATION = Calibration()
