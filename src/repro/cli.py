"""Command-line interface: ``python -m repro <command>``.

Exposes the paper's workflow as terminal commands:

* ``repro characterize`` — Problem 1: run the four applications on a
  design across VM sizes and print the Figure 2 panels.
* ``repro flow``         — run the 4-stage flow on a design and print
  per-stage runtimes/QoR.
* ``repro optimize``     — Problem 3: price a characterization and pick
  VM configurations under a deadline (Table I rows).
* ``repro predict``      — Problem 2: build the dataset, train the GCN
  predictors, report accuracy, optionally save the models.
* ``repro benchmarks``   — list the designs shipped with the package.
* ``repro verify``       — differential verification: fuzz the MCKP DP,
  the list scheduler, the AIG transforms, the spot model, and the plan
  executor against brute-force / closed-form oracles; exits non-zero on
  any violation.
* ``repro execute``      — optimize a deployment, then *run* the plan on
  the fault-injecting executor (spot preemptions, boot failures, retry
  with backoff, on-demand fallback, mid-flight re-planning) and print
  the replayable execution trace.
* ``repro chaos``        — chaos harness: seeded executor fuzz plus the
  Monte-Carlo convergence check against the closed-form spot model;
  exits non-zero on any oracle violation.
* ``repro trace``        — run a workload (flow or plan execution) under
  the observability tracer and print/export the hierarchical span tree
  (text, JSON, or Chrome ``chrome://tracing`` format) plus metrics.
* ``repro bench``        — run the fixed-seed bench workload matrix,
  write ``benchmarks/BENCH_<rev>.json``, append the run to the telemetry
  store, and optionally compare against a baseline file (non-zero exit
  on regression beyond the tolerance).
* ``repro profile``      — run a workload under the tracer and print the
  per-frame *self-time* profile; export folded stacks (flamegraph
  input), a self-contained HTML flame view, or the profile JSON; or
  diff two saved profiles (``--diff A B``, non-zero exit on
  regression).
* ``repro report``       — regression dashboard over the run store:
  terminal sparklines, MAD outlier warnings, deterministic-metric drift
  checks (non-zero exit on drift), optional self-contained HTML.
* ``repro slo``          — evaluate a declarative ``repro-slo/1`` spec
  (deadline hit rate, percentile latency, cost budgets) over the run
  store; exit 1 when any error budget is burned, with a byte-stable
  evaluation document for CI to diff.
* ``repro serve``        — boot the in-process EDA-flow service, drive a
  seeded mixed-priority job batch through admission control and the
  worker pool, print the byte-stable per-job completion log, and
  persist per-job records to the telemetry store.
* ``repro submit``       — one-shot request against a fresh service
  instance; prints the structured job (or typed error) document as
  JSON, mirroring what a network client of the service would receive.
* ``repro fleet``        — fleet-scale capacity planning: batch-plan a
  seeded synthetic fleet (exact DP with table reuse, or the certified
  greedy approximation), optionally drive spot-market ticks with
  mid-flight re-planning, print amortization stats and throughput, and
  write a byte-stable plan dump (CI plans twice and ``cmp``'s).

Each command prints through :mod:`repro.core.report`, so outputs have the
same rows/series as the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cloud.faults import PROFILES as FAULT_PROFILES
from .core.characterize import characterize
from .core.optimize import (
    build_stage_options,
    cost_saving_percent,
    over_provisioning,
    solve_mckp_dp,
    under_provisioning,
)
from .core.report import render_figure2, render_table1
from .eda import EDAStage, FlowRunner
from .netlist import benchmarks

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Characterizing and Optimizing EDA Flows for the Cloud "
        "(DATE 2021) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_char = sub.add_parser(
        "characterize", help="run the Figure 2 characterization on a design"
    )
    p_char.add_argument("--design", default="sparc_core", help="benchmark name")
    p_char.add_argument("--scale", type=float, default=1.0, help="design scale")
    p_char.add_argument(
        "--sample-rate", type=int, default=4, help="PMU sampling stride"
    )
    p_char.add_argument(
        "--vcpus",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="VM sizes to emulate",
    )

    p_flow = sub.add_parser("flow", help="run the 4-stage flow on a design")
    p_flow.add_argument("--design", default="fpu")
    p_flow.add_argument("--scale", type=float, default=1.0)
    p_flow.add_argument(
        "--recipe",
        nargs="*",
        default=None,
        help="synthesis passes (default: balance rewrite balance refactor balance)",
    )
    p_flow.add_argument(
        "--verilog-out", default=None, help="write the mapped netlist here"
    )

    p_opt = sub.add_parser(
        "optimize", help="characterize then optimize deployment under deadlines"
    )
    p_opt.add_argument("--design", default="sparc_core")
    p_opt.add_argument("--scale", type=float, default=1.0)
    p_opt.add_argument("--sample-rate", type=int, default=4)
    p_opt.add_argument(
        "--deadlines",
        type=float,
        nargs="+",
        default=None,
        help="total-runtime constraints in seconds (default: auto sweep)",
    )

    p_pred = sub.add_parser(
        "predict", help="build the dataset and train the GCN runtime predictors"
    )
    p_pred.add_argument("--variants", type=int, default=4, help="netlists per design")
    p_pred.add_argument("--epochs", type=int, default=60)
    p_pred.add_argument("--lr", type=float, default=1e-3)
    p_pred.add_argument("--dataset-scale", type=float, default=0.45)
    p_pred.add_argument(
        "--save", default=None, help="save trained models to this .npz file"
    )

    sub.add_parser("benchmarks", help="list the shipped benchmark designs")

    p_ver = sub.add_parser(
        "verify",
        help="fuzz the solvers against brute-force/closed-form oracles",
    )
    p_ver.add_argument(
        "--trials", type=int, default=200, help="fuzz trials per oracle"
    )
    p_ver.add_argument(
        "--seed", type=int, default=0, help="base seed (same seed = same report)"
    )
    p_ver.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this oracle (repeatable; default: all)",
    )
    p_ver.add_argument(
        "--replay-seed",
        type=int,
        default=None,
        help="replay one trial from a printed seed (requires one --oracle)",
    )
    p_ver.add_argument(
        "--list", action="store_true", help="list the registered oracles"
    )
    p_ver.add_argument(
        "--dump-dir", default=None, metavar="DIR",
        help="where failing trials write flight-recorder dumps "
        "(default: $REPRO_CRASH_DIR or benchmarks/runs/crashes)",
    )
    p_ver.add_argument(
        "--corpus", default=None, metavar="FILE",
        help="replay every recorded (oracle, seed) entry in this corpus "
        "file instead of fuzzing; non-zero exit if any regresses",
    )
    p_ver.add_argument(
        "--record-corpus", default=None, metavar="FILE",
        help="append failing trials' (oracle, seed) pairs to this replay "
        "corpus (tests/verify/corpus.txt replays in tier-1)",
    )

    p_exec = sub.add_parser(
        "execute",
        help="optimize a deployment plan, then run it with fault injection",
    )
    p_exec.add_argument("--design", default="sparc_core")
    p_exec.add_argument("--scale", type=float, default=1.0)
    p_exec.add_argument("--sample-rate", type=int, default=4)
    p_exec.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="total-runtime constraint in seconds (default: midpoint of the "
        "fastest/slowest plans)",
    )
    p_exec.add_argument("--seed", type=int, default=0, help="execution seed")
    p_exec.add_argument(
        "--profile",
        choices=sorted(FAULT_PROFILES),
        default="calm",
        help="fault profile to inject (default: calm)",
    )
    p_exec.add_argument(
        "--spot",
        action="store_true",
        help="let the optimizer mix in spot instances (enables preemptions)",
    )
    p_exec.add_argument(
        "--discount", type=float, default=0.3, help="spot price fraction"
    )
    p_exec.add_argument(
        "--max-preemptions",
        type=int,
        default=3,
        help="spot preemptions per stage before on-demand fallback",
    )
    p_exec.add_argument(
        "--trace", action="store_true", help="print the full event trace"
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos harness: executor fuzz + convergence to the spot model",
    )
    p_chaos.add_argument(
        "--trials", type=int, default=50, help="fuzz trials per chaos oracle"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="base seed (same seed = same report)"
    )
    p_chaos.add_argument(
        "--convergence-trials",
        type=int,
        default=500,
        help="Monte-Carlo trials for the headline convergence check",
    )
    p_chaos.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run a named correlated-fault suite instead of the fuzz "
        "harness: az_reclaim_storm, noisy_region, regime_flap, "
        "transfer_partition, or 'all'",
    )
    p_chaos.add_argument(
        "--severity", type=float, action="append", default=None,
        metavar="S",
        help="severity level(s) in [0, 1] for --scenario (repeatable; "
        "default: 0 0.5 1.0)",
    )
    p_chaos.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the byte-stable scenario trace dump here (CI runs "
        "each scenario twice and cmp's the dumps)",
    )
    p_chaos.add_argument(
        "--store", default=None, metavar="FILE",
        help="append chaos.scenario records to this run store "
        "(only with --scenario)",
    )
    p_chaos.add_argument(
        "--timestamp", default=None, metavar="ISO8601",
        help="UTC timestamp stamped on persisted records (default: now)",
    )
    p_chaos.add_argument(
        "--rev", default=None,
        help="revision label for persisted records (default: git rev)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run a workload under the tracer and print the span tree",
    )
    p_trace.add_argument(
        "--workload",
        choices=["flow", "execute"],
        default="flow",
        help="what to trace (default: flow)",
    )
    p_trace.add_argument("--design", default="ctrl")
    p_trace.add_argument("--scale", type=float, default=0.5)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "--profile",
        choices=sorted(FAULT_PROFILES),
        default="calm",
        help="fault profile for --workload execute",
    )
    p_trace.add_argument(
        "--deterministic",
        action="store_true",
        help="tick clock + counter IDs: byte-stable trace output",
    )
    p_trace.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the repro-trace/1 JSON document here",
    )
    p_trace.add_argument(
        "--chrome", default=None, metavar="FILE",
        help="write a chrome://tracing trace-event file here",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the fixed-seed bench matrix and write BENCH_<rev>.json",
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--design", default="ctrl")
    p_bench.add_argument("--scale", type=float, default=0.3)
    p_bench.add_argument("--epochs", type=int, default=3)
    p_bench.add_argument(
        "--out", default="benchmarks", metavar="DIR",
        help="directory to write BENCH_<rev>.json into (default: benchmarks)",
    )
    p_bench.add_argument(
        "--rev", default=None, help="revision label (default: git short rev)"
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare timings against this bench file",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=25.0, metavar="PCT",
        help="allowed slowdown vs the baseline in percent (default: 25)",
    )
    p_bench.add_argument(
        "--store", default=None, metavar="FILE",
        help="telemetry store to append the run to "
        "(default: benchmarks/runs/runs.jsonl)",
    )
    p_bench.add_argument(
        "--no-store", action="store_true",
        help="do not append the run to the telemetry store",
    )
    p_bench.add_argument(
        "--timestamp", default=None, metavar="ISO8601",
        help="UTC timestamp recorded with the run (default: now; library "
        "code never reads the clock)",
    )
    p_bench.add_argument(
        "--sweep", action="store_true",
        help="also run the service concurrency sweep and record the "
        "throughput knee in the bench document",
    )
    p_bench.add_argument(
        "--sweep-jobs", type=int, default=8, metavar="N",
        help="jobs offered per sweep level (default: 8)",
    )
    p_bench.add_argument(
        "--sweep-levels", type=int, nargs="+", default=None, metavar="W",
        help="worker counts to sweep (default: 1 2 4 8 16)",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run a workload under the tracer and print the self-time "
        "profile (folded stacks / flame HTML / JSON), or diff two "
        "saved profiles",
    )
    p_prof.add_argument(
        "--workload",
        choices=["flow", "execute"],
        default="flow",
        help="what to profile (default: flow)",
    )
    p_prof.add_argument("--design", default="ctrl")
    p_prof.add_argument("--scale", type=float, default=0.5)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument(
        "--profile",
        dest="fault_profile",
        choices=sorted(FAULT_PROFILES),
        default="calm",
        help="fault profile for --workload execute",
    )
    p_prof.add_argument(
        "--deterministic",
        action="store_true",
        help="tick clock: byte-stable folded/JSON output for one seed",
    )
    p_prof.add_argument(
        "--sampling",
        action="store_true",
        help="also run the sys.setprofile sampling profiler and print "
        "its hottest Python frames (wall-clock, non-deterministic)",
    )
    p_prof.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows to print in the frame table (default: 15)",
    )
    p_prof.add_argument(
        "--folded", default=None, metavar="FILE",
        help="write Brendan-Gregg collapsed/folded stacks here",
    )
    p_prof.add_argument(
        "--html", default=None, metavar="FILE",
        help="write a self-contained HTML flame view here",
    )
    p_prof.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the repro-profile/1 JSON document here",
    )
    p_prof.add_argument(
        "--diff", nargs=2, default=None, metavar=("BASELINE", "CURRENT"),
        help="diff two saved profiles (folded or JSON) instead of "
        "running a workload; exits 1 when anything regressed",
    )
    p_prof.add_argument(
        "--tolerance", type=float, default=0.0, metavar="PCT",
        help="--diff: ignore self-time deltas within this percent of "
        "the baseline frame (default: 0)",
    )
    p_prof.add_argument(
        "--abs-guard", type=float, default=0.0, metavar="SECONDS",
        help="--diff: ignore self-time deltas below this many seconds "
        "(default: 0)",
    )

    p_report = sub.add_parser(
        "report",
        help="regression dashboard over the run store (sparklines, MAD "
        "outliers, deterministic-drift checks, optional HTML)",
    )
    p_report.add_argument(
        "--store", default=None, metavar="FILE",
        help="telemetry store to read (default: benchmarks/runs/runs.jsonl)",
    )
    p_report.add_argument(
        "--window", type=int, default=8,
        help="trailing-window size for the MAD outlier check (default: 8)",
    )
    p_report.add_argument(
        "--metric", action="append", default=None, metavar="SUBSTR",
        help="only report metrics containing this substring (repeatable)",
    )
    p_report.add_argument(
        "--html", default=None, metavar="FILE",
        help="also write a self-contained HTML dashboard here",
    )
    p_report.add_argument(
        "--kind", action="append", default=None, metavar="KIND",
        help="only report runs of this kind; matches exactly or by "
        "dotted prefix, e.g. 'service' also selects service.job "
        "(repeatable; default: all kinds)",
    )
    p_report.add_argument(
        "--slo-spec", default=None, metavar="FILE",
        help="also evaluate this repro-slo/1 spec over the reported runs; "
        "a violated SLO makes the report exit non-zero",
    )
    p_report.add_argument(
        "--slo-window", type=int, default=0, metavar="N",
        help="with --slo-spec: error-budget burn per window of N records "
        "(default: 0 = whole-set burn only)",
    )

    p_slo = sub.add_parser(
        "slo",
        help="evaluate a declarative SLO spec over the run store "
        "(deadline hit rate, percentile latency, cost budgets); exits 1 "
        "when any objective's error budget is burned",
    )
    p_slo.add_argument(
        "--spec", required=True, metavar="FILE",
        help="repro-slo/1 JSON spec to evaluate",
    )
    p_slo.add_argument(
        "--store", default=None, metavar="FILE",
        help="telemetry store to read (default: benchmarks/runs/runs.jsonl)",
    )
    p_slo.add_argument(
        "--rev", default=None,
        help="only evaluate records of this revision (default: all)",
    )
    p_slo.add_argument(
        "--window", type=int, default=0, metavar="N",
        help="error-budget burn per window of N records "
        "(default: 0 = whole-set burn only)",
    )
    p_slo.add_argument(
        "--dump", default=None, metavar="FILE",
        help="write the full evaluation document as JSON (timestamp-free: "
        "same records, same bytes — CI cmp's two same-seed runs)",
    )
    p_slo.add_argument(
        "--openmetrics", default=None, metavar="FILE",
        help="write the evaluated records' merged metrics as OpenMetrics "
        "text (labeled series, cumulative histogram buckets, # EOF)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="boot the EDA-flow service and drive a seeded job batch "
        "through it (deterministic: same seed, same completion log)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--jobs", type=int, default=20, help="batch size")
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--queue-depth", type=int, default=64)
    p_serve.add_argument(
        "--priorities", type=int, nargs="+", default=[0, 1],
        help="priority levels mixed into the batch (default: 0 1)",
    )
    p_serve.add_argument(
        "--kinds", nargs="+", default=["execute", "flow", "plan"],
        help="job kinds mixed into the batch",
    )
    p_serve.add_argument("--design", default="ctrl")
    p_serve.add_argument("--scale", type=float, default=0.2)
    p_serve.add_argument(
        "--rate-capacity", type=float, default=None, metavar="TOKENS",
        help="per-client token-bucket burst size (default: no rate limit)",
    )
    p_serve.add_argument(
        "--rate-refill", type=float, default=1.0, metavar="PER_SEC",
        help="token refill rate on the service clock (default: 1.0)",
    )
    p_serve.add_argument(
        "--log", default=None, metavar="FILE",
        help="also write the byte-stable completion log here (CI diffs "
        "two same-seed runs of this file)",
    )
    p_serve.add_argument(
        "--crash-dir", default=None, metavar="DIR",
        help="write per-job flight-recorder dumps here on unexpected "
        "job failures",
    )
    p_serve.add_argument(
        "--store", default=None, metavar="FILE",
        help="telemetry store to append per-job records to "
        "(default: benchmarks/runs/runs.jsonl)",
    )
    p_serve.add_argument(
        "--no-store", action="store_true",
        help="do not persist job records to the telemetry store",
    )
    p_serve.add_argument(
        "--timestamp", default=None, metavar="ISO8601",
        help="UTC timestamp stamped on persisted records (default: now)",
    )
    p_serve.add_argument(
        "--rev", default=None, help="revision label (default: git short rev)"
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit one job to a fresh service instance and print the "
        "structured response document as JSON",
    )
    p_submit.add_argument(
        "--kind", default="execute",
        help="job kind: flow, plan, execute, pipeline, sleep, fleet",
    )
    p_submit.add_argument("--design", default="ctrl")
    p_submit.add_argument("--scale", type=float, default=0.3)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--flow-seed", type=int, default=0)
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--client", default="cli")
    p_submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job timeout on the service clock (cooperative)",
    )
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="MCKP deadline for plan/execute/pipeline kinds",
    )

    p_fleet = sub.add_parser(
        "fleet",
        help="batch-plan a seeded synthetic fleet (table-reuse DP or "
        "certified approximation), optionally under spot-market ticks",
    )
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument(
        "--flows", type=int, default=10000, help="fleet size (default: 10000)"
    )
    p_fleet.add_argument(
        "--menus", type=int, default=16,
        help="distinct shared stage menus (default: 16)",
    )
    p_fleet.add_argument(
        "--deadline-buckets", type=int, default=8,
        help="deadline SLA tiers per menu (default: 8)",
    )
    p_fleet.add_argument(
        "--mode", choices=["exact", "approx"], default="exact",
        help="exact DP with table reuse, or the certified-gap greedy "
        "approximation (default: exact)",
    )
    p_fleet.add_argument(
        "--no-prune", action="store_true",
        help="disable dominance pruning of stage options",
    )
    p_fleet.add_argument(
        "--ticks", type=int, default=0, metavar="N",
        help="drive N spot-market ticks with re-planning between them "
        "(default: 0 = a single static plan)",
    )
    p_fleet.add_argument(
        "--execute-per-tick", type=int, default=0, metavar="N",
        help="with --ticks: run N pending flows per tick through the "
        "fault-injecting executor",
    )
    p_fleet.add_argument(
        "--dump", default=None, metavar="FILE",
        help="write the byte-stable plan (or session) dump here — the "
        "same seed always produces identical bytes (CI cmp's two runs)",
    )
    p_fleet.add_argument(
        "--min-throughput", type=float, default=None, metavar="FLOWS_PER_S",
        help="exit non-zero when planning throughput falls below this",
    )
    return parser


def _cmd_characterize(args) -> int:
    report = characterize(
        args.design,
        scale=args.scale,
        vcpu_levels=tuple(args.vcpus),
        sample_rate=args.sample_rate,
    )
    print(render_figure2(report))
    return 0


def _cmd_flow(args) -> int:
    runner = FlowRunner()
    aig = benchmarks.build(args.design, args.scale)
    recipe = tuple(args.recipe) if args.recipe else None
    flow = (
        runner.run(aig, recipe=recipe) if recipe is not None else runner.run(aig)
    )
    print(f"design {aig.name}: {aig.num_ands} ANDs, depth {aig.depth()}")
    for stage, result in flow.stages.items():
        print(f"  {result.summary()}")
    sta = flow[EDAStage.STA].artifact
    print(
        f"  timing: critical path {sta.max_arrival:.0f} ps through "
        f"{len(sta.critical_path)} nodes; WNS {sta.wns:.1f} ps"
    )
    if args.verilog_out:
        from .netlist.verilog import write_verilog

        write_verilog(flow[EDAStage.SYNTHESIS].artifact, args.verilog_out)
        print(f"  netlist written to {args.verilog_out}")
    return 0


def _cmd_optimize(args) -> int:
    report = characterize(
        args.design, scale=args.scale, sample_rate=args.sample_rate
    )
    stages = build_stage_options(
        report.stage_runtimes(), families=report.recommended_families()
    )
    fastest = sum(s.fastest.runtime_seconds for s in stages)
    slowest = sum(s.options[0].runtime_seconds for s in stages)
    deadlines = args.deadlines or [
        slowest,
        (fastest + slowest) // 2,
        fastest,
        int(0.9 * fastest),
    ]
    selections = {c: solve_mckp_dp(stages, c) for c in deadlines}
    print(render_table1(stages, deadlines, selections))
    over = over_provisioning(stages)
    under = under_provisioning(stages)
    for c in deadlines:
        sel = selections[c]
        if sel is None:
            continue
        print(
            f"deadline {c:,.0f}s: ${sel.total_cost:.4f} "
            f"(saves {cost_saving_percent(sel.total_cost, over.total_cost):.1f}% "
            f"vs over-, {cost_saving_percent(sel.total_cost, under.total_cost):.1f}% "
            f"vs under-provisioning)"
        )
    return 0


def _cmd_predict(args) -> int:
    from .core.predict import DatasetSpec, build_datasets, train_predictors

    spec = DatasetSpec(
        variants_per_design=args.variants, scale=args.dataset_scale
    )
    datasets = build_datasets(spec, verbose=True)
    suite = train_predictors(
        datasets, epochs=args.epochs, lr=args.lr, verbose=True
    )
    for stage, predictor in suite.predictors.items():
        print(
            f"{stage.value:10s} accuracy {predictor.accuracy:5.1f}% "
            f"(test error {100 * predictor.test_eval.mean_error:.1f}%)"
        )
    if args.save:
        from .core.persistence import save_suite

        save_suite(suite, args.save)
        print(f"models saved to {args.save}")
    return 0


def _cmd_verify(args) -> int:
    from .obs.log import default_crash_dir
    from .verify import ORACLES, run_fuzz, run_trial
    from .verify.fuzz import dump_trial_forensics

    if args.list:
        for name in ORACLES:
            print(name)
        return 0
    dump_dir = args.dump_dir if args.dump_dir else default_crash_dir()
    if args.corpus is not None:
        from .verify import load_corpus, replay_entry

        try:
            entries = load_corpus(args.corpus)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        failed = 0
        for entry in entries:
            messages = replay_entry(entry)
            status = "ok" if not messages else "FAIL"
            print(f"corpus {entry.oracle}@{entry.seed}: {status}")
            for message in messages:
                print(f"  {message}")
            failed += 1 if messages else 0
        print(
            f"{'FAIL' if failed else 'PASS'}: {len(entries)} corpus "
            f"entries, {failed} regressed"
        )
        return 1 if failed else 0
    if args.replay_seed is not None:
        if not args.oracle or len(args.oracle) != 1:
            print("--replay-seed requires exactly one --oracle", file=sys.stderr)
            return 2
        messages = run_trial(args.oracle[0], args.replay_seed)
        if messages:
            # Re-emit the flight-recorder dump from an isolated
            # deterministic scope — byte-identical to the original
            # fuzz run's dump for this seed.
            path = dump_trial_forensics(
                args.oracle[0], args.replay_seed, dump_dir
            )
            print(
                f"replay {args.oracle[0]}@{args.replay_seed}: FAIL "
                f"(dump: {path})"
            )
            for message in messages:
                print(f"  {message}")
            return 1
        print(f"replay {args.oracle[0]}@{args.replay_seed}: ok")
        return 0
    try:
        report = run_fuzz(
            oracle_names=args.oracle,
            trials=args.trials,
            seed=args.seed,
            dump_dir=dump_dir,
            corpus_path=args.record_corpus,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _cmd_execute(args) -> int:
    from .cloud.executor import ExecutionPolicy, PlanExecutor
    from .cloud.spot import SpotMarket

    report = characterize(
        args.design, scale=args.scale, sample_rate=args.sample_rate
    )
    stages = build_stage_options(
        report.stage_runtimes(), families=report.recommended_families()
    )
    profile = FAULT_PROFILES[args.profile]()
    if args.spot:
        market = SpotMarket(
            discount=args.discount,
            interrupt_rate_per_hour=profile.spot_interrupt_rate_per_hour,
            checkpoint_interval_seconds=profile.checkpoint_interval_seconds,
        )
        stages = market.augment_stage_options(stages)
    fastest = sum(s.fastest.runtime_seconds for s in stages)
    slowest = sum(s.options[0].runtime_seconds for s in stages)
    deadline = args.deadline if args.deadline else (fastest + slowest) // 2
    selection = solve_mckp_dp(stages, deadline)
    if selection is None:
        print(f"deadline {deadline:,.0f}s is not achievable (NA)")
        return 1
    plan = selection.to_plan(args.design)
    print(plan.summary())
    policy = ExecutionPolicy(
        max_preemptions_per_stage=args.max_preemptions,
        spot_discount=args.discount,
    )
    result = PlanExecutor(profile=profile, policy=policy).execute(
        plan, deadline_seconds=deadline, seed=args.seed, stage_options=stages
    )
    print(result.summary())
    if args.trace:
        print(result.trace.render())
    return 0 if result.completed else 1


def _cmd_chaos_scenario(args) -> int:
    from .chaos import (
        SCENARIOS,
        run_scenario,
        scenario_names,
        scenario_to_run,
    )

    names = scenario_names() if args.scenario == "all" else (args.scenario,)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"unknown scenario(s): {', '.join(unknown)}; known: "
            f"{', '.join(scenario_names())} (or 'all')",
            file=sys.stderr,
        )
        return 2
    severities = args.severity if args.severity else [0.0, 0.5, 1.0]
    bad = [s for s in severities if not 0.0 <= s <= 1.0]
    if bad:
        print(f"--severity must be in [0, 1], got {bad}", file=sys.stderr)
        return 2

    results = []
    for name in names:
        print(f"{name}: {SCENARIOS[name].description}")
        for severity in severities:
            result = run_scenario(name, severity=severity, seed=args.seed)
            print(f"  {result.summary()}")
            results.append(result)
    violated = [r for r in results if not r.within_bounds]

    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            for result in results:
                handle.write(result.trace_dump())
        print(f"trace dump written to {args.trace_out}")
    if args.store:
        from datetime import datetime, timezone

        from .obs.bench import git_rev
        from .obs.store import RunStore

        timestamp = args.timestamp or datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        )
        rev = args.rev or git_rev()
        store = RunStore(args.store)
        for result in results:
            store.append(scenario_to_run(result, rev, timestamp))
        print(
            f"{len(results)} chaos.scenario records appended to {store.path}"
        )

    if violated:
        print(
            f"FAIL: {len(violated)} scenario run(s) exceeded the "
            f"degradation bound"
        )
        return 1
    print(
        f"PASS: {len(results)} scenario runs within their degradation bounds"
    )
    return 0


def _cmd_chaos(args) -> int:
    from .cloud.spot import spot_expected_runtime
    from .verify import convergence_violations, run_fuzz

    if args.scenario is not None:
        return _cmd_chaos_scenario(args)
    report = run_fuzz(
        oracle_names=["executor", "chaos"],
        trials=args.trials,
        seed=args.seed,
        progress=print,
    )
    print(report.render())
    # Headline convergence check at the preemption-heavy profile: the
    # executor's mean completion time must match the closed form.
    heavy = FAULT_PROFILES["heavy"]()
    runtime = 900.0
    violations = convergence_violations(
        runtime,
        heavy.spot_interrupt_rate_per_hour,
        heavy.checkpoint_interval_seconds,
        trials=args.convergence_trials,
        seed=args.seed,
    )
    expected = spot_expected_runtime(
        runtime,
        heavy.spot_interrupt_rate_per_hour,
        heavy.checkpoint_interval_seconds,
    )
    if violations:
        print(f"convergence (heavy profile, E[T]={expected:.1f}s): FAIL")
        for message in violations:
            print(f"  {message}")
    else:
        print(
            f"convergence (heavy profile, {args.convergence_trials} trials): "
            f"mean matches E[T]={expected:.1f}s within 5%"
        )
    return 0 if report.ok and not violations else 1


def _run_traced_workload(
    workload: str,
    design: str,
    scale: float,
    seed: int,
    fault_profile: str = "calm",
) -> None:
    """Run one seeded workload under the already-scoped obs globals.

    Shared by ``repro trace`` and ``repro profile`` so both commands
    measure exactly the same code paths.
    """
    if workload == "flow":
        from .perf import make_instrument

        runner = FlowRunner(seed=seed)
        aig = benchmarks.build(design, scale)
        instruments = {
            stage: make_instrument(4, sample_rate=4)
            for stage in EDAStage.ordered()
        }
        runner.run(aig, seed=seed, instruments=instruments)
    else:
        from .cloud.executor import ExecutionPolicy, PlanExecutor
        from .obs.bench import _bench_plan

        runner = FlowRunner(seed=seed)
        aig = benchmarks.build(design, scale)
        flow = runner.run(aig, seed=seed)
        plan = _bench_plan({s: r.runtime(4) for s, r in flow.stages.items()})
        PlanExecutor(
            profile=FAULT_PROFILES[fault_profile](),
            policy=ExecutionPolicy(),
        ).execute(
            plan,
            deadline_seconds=plan.total_runtime * 4,
            seed=seed,
        )


def _cmd_trace(args) -> int:
    import json as _json

    from .obs import MetricsRegistry, Tracer, scoped
    from .obs.export import (
        render_metrics,
        render_tree,
        to_chrome_trace,
        to_json_doc,
    )

    tracer = Tracer(deterministic=args.deterministic)
    registry = MetricsRegistry()
    with scoped(tracer=tracer, metrics=registry):
        _run_traced_workload(
            args.workload,
            args.design,
            args.scale,
            args.seed,
            fault_profile=args.profile,
        )
    snapshot = registry.snapshot()
    print(render_tree(tracer.spans, unit="ms"))
    rendered = render_metrics(snapshot)
    if rendered:
        print(rendered)
    if args.json:
        with open(args.json, "w") as handle:
            _json.dump(
                to_json_doc(tracer.spans, snapshot), handle,
                sort_keys=True, indent=2,
            )
        print(f"trace JSON written to {args.json}")
    if args.chrome:
        with open(args.chrome, "w") as handle:
            _json.dump(to_chrome_trace(tracer.spans), handle, sort_keys=True)
        print(f"chrome trace written to {args.chrome}")
    return 0


def _cmd_bench(args) -> int:
    import json as _json

    from .obs.bench import (
        compare_bench,
        run_bench,
        validate_bench,
        write_bench,
    )

    doc = run_bench(
        seed=args.seed,
        design=args.design,
        scale=args.scale,
        epochs=args.epochs,
        rev=args.rev,
    )
    if args.sweep:
        import time as _time

        from .service.sweep import DEFAULT_LEVELS, run_sweep

        levels = tuple(args.sweep_levels) if args.sweep_levels else DEFAULT_LEVELS
        started = _time.perf_counter()
        sweep_doc = run_sweep(
            seed=args.seed, jobs=args.sweep_jobs, levels=levels
        )
        doc["sweep"] = sweep_doc
        doc["workloads"]["service"] = _time.perf_counter() - started
        gauges = doc["metrics"]["gauges"]
        for level, throughput in sweep_doc["throughput"].items():
            gauges[f"service.sweep.throughput.{level}w"] = throughput
        knee = sweep_doc["knee"]
        if knee is not None:
            gauges["service.sweep.knee_workers"] = knee["x"]
            print(
                f"  service sweep: knee at {knee['x']:.0f} workers "
                f"({knee['y']:.4f} jobs/s simulated)"
            )
        else:
            print("  service sweep: no knee detected")
    problems = validate_bench(doc)
    if problems:
        for problem in problems:
            print(f"invalid bench document: {problem}", file=sys.stderr)
        return 2
    path = write_bench(doc, args.out)
    for name, wall in doc["workloads"].items():
        print(f"  {name:<10} {wall:8.3f}s wall")
    print(f"bench written to {path}")
    if not args.no_store:
        from datetime import datetime, timezone

        from .obs.store import DEFAULT_STORE_PATH, RunStore, bench_to_run

        # The timestamp is taken exactly once, at the CLI boundary —
        # store and bench internals never read the wall clock.
        timestamp = args.timestamp or datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        )
        store = RunStore(args.store or DEFAULT_STORE_PATH)
        store.append(bench_to_run(doc, timestamp))
        print(f"run appended to {store.path}")
    if args.baseline is None:
        return 0
    try:
        with open(args.baseline) as handle:
            baseline = _json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    regressions, notes = compare_bench(
        doc, baseline, tolerance_pct=args.tolerance
    )
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        print(
            f"REGRESSION vs {args.baseline} "
            f"(tolerance {args.tolerance:.0f}%):"
        )
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print(
        f"no regression vs {args.baseline} (tolerance {args.tolerance:.0f}%)"
    )
    return 0


def _cmd_profile(args) -> int:
    import json as _json

    from .obs import MetricsRegistry, Tracer, scoped
    from .obs.profile import (
        SamplingProfiler,
        build_profile,
        diff_profiles,
        load_profile,
        render_diff,
        render_flame_html,
        render_profile,
    )

    if args.diff is not None:
        baseline_path, current_path = args.diff
        try:
            baseline = load_profile(baseline_path)
            current = load_profile(current_path)
        except (OSError, ValueError) as exc:
            print(f"cannot load profile: {exc}", file=sys.stderr)
            return 2
        diff = diff_profiles(
            baseline,
            current,
            tolerance_pct=args.tolerance,
            abs_guard_seconds=args.abs_guard,
        )
        print(render_diff(diff, top=args.top))
        return 1 if diff.regressions else 0

    tracer = Tracer(deterministic=args.deterministic)
    registry = MetricsRegistry()
    sampler = SamplingProfiler() if args.sampling else None
    with scoped(tracer=tracer, metrics=registry):
        if sampler is not None:
            with sampler:
                _run_traced_workload(
                    args.workload,
                    args.design,
                    args.scale,
                    args.seed,
                    fault_profile=args.fault_profile,
                )
        else:
            _run_traced_workload(
                args.workload,
                args.design,
                args.scale,
                args.seed,
                fault_profile=args.fault_profile,
            )
    meta = {
        "workload": args.workload,
        "design": args.design,
        "scale": args.scale,
        "seed": args.seed,
    }
    profile = build_profile(
        tracer.spans, deterministic=args.deterministic, meta=meta
    )
    print(render_profile(profile, top=args.top))
    if sampler is not None:
        print()
        print("sampling profiler (python frames, wall-clock):")
        for frame in sampler.profile.top(args.top):
            print(
                f"  {1e3 * frame.self_time:>10.3f}ms "
                f"{frame.calls:>7} calls  {frame.name}"
            )
    if args.folded:
        with open(args.folded, "w") as handle:
            handle.write(profile.to_folded())
        print(f"folded stacks written to {args.folded}")
    if args.html:
        title = f"repro profile — {args.workload} {args.design}"
        with open(args.html, "w") as handle:
            handle.write(render_flame_html(profile, title=title))
            handle.write("\n")
        print(f"flame view written to {args.html}")
    if args.json:
        with open(args.json, "w") as handle:
            _json.dump(profile.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"profile JSON written to {args.json}")
    return 0


def _cmd_report(args) -> int:
    from .obs.report import build_report, render_html, render_text
    from .obs.store import (
        DEFAULT_STORE_PATH,
        RunStore,
        StoreError,
        filter_runs,
    )

    store = RunStore(args.store or DEFAULT_STORE_PATH)
    try:
        runs = store.load()
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.kind:
        runs = filter_runs(runs, kinds=args.kind)
    if args.window < 1:
        print("--window must be >= 1", file=sys.stderr)
        return 2
    slo_spec = None
    if args.slo_spec:
        from .obs.slo import SLOSpecError, load_slo_spec

        try:
            slo_spec = load_slo_spec(args.slo_spec)
        except SLOSpecError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    report = build_report(
        runs,
        window=args.window,
        metric_filter=args.metric,
        slo_spec=slo_spec,
        slo_window=max(0, args.slo_window),
    )
    print(render_text(report, store_path=store.path))
    if args.html:
        with open(args.html, "w") as handle:
            handle.write(render_html(report, store_path=store.path))
            handle.write("\n")
        print(f"HTML dashboard written to {args.html}")
    if not runs:
        return 0
    return 0 if report.ok else 1


def _cmd_slo(args) -> int:
    from .obs.export import to_openmetrics
    from .obs.metrics import MetricsSnapshot, merge_snapshots
    from .obs.slo import SLOError, evaluate_slo, load_slo_spec
    from .obs.store import (
        DEFAULT_STORE_PATH,
        RunStore,
        StoreError,
        filter_runs,
    )

    try:
        spec = load_slo_spec(args.spec)
    except SLOError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store = RunStore(args.store or DEFAULT_STORE_PATH)
    try:
        runs = store.load()
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.window < 0:
        print("--window must be >= 0", file=sys.stderr)
        return 2
    report = evaluate_slo(spec, runs, rev=args.rev, window=args.window)
    for line in report.render():
        print(line)
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(report.to_json())
        print(f"evaluation document written to {args.dump}")
    if args.openmetrics:
        merged = MetricsSnapshot()
        for record in filter_runs(runs, kinds=[spec.kind], rev=args.rev):
            merged = merge_snapshots(merged, record.snapshot)
        with open(args.openmetrics, "w") as handle:
            handle.write(to_openmetrics(merged))
        print(f"OpenMetrics exposition written to {args.openmetrics}")
    return 1 if report.violated else 0


def _cmd_serve(args) -> int:
    from .obs.bench import git_rev
    from .service import (
        ServiceConfig,
        run_session,
        seeded_job_mix,
        session_log,
    )

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    requests = seeded_job_mix(
        args.seed,
        args.jobs,
        kinds=tuple(args.kinds),
        priorities=tuple(args.priorities),
        design=args.design,
        scale=args.scale,
    )
    config = ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate_capacity=args.rate_capacity,
        rate_refill_per_second=args.rate_refill,
        crash_dir=args.crash_dir,
        rev=args.rev or git_rev(),
    )
    result = run_session(requests, config)
    service = result.service
    states = sorted(
        {job.state.value for job in service.jobs.values()}
    )
    print(
        f"service session seed={args.seed}: {result.accepted} admitted, "
        f"{result.rejected} rejected "
        f"({args.workers} workers, queue depth {args.queue_depth})"
    )
    for code in sorted(service.admission.rejected):
        print(
            f"  rejected [{code}]: {service.admission.rejected[code]} "
            f"request(s)"
        )
    lines = session_log(service)
    for line in lines:
        print(line)
    if args.log:
        with open(args.log, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        print(f"completion log written to {args.log}")
    if not args.no_store:
        from datetime import datetime, timezone

        from .obs.store import DEFAULT_STORE_PATH, RunStore

        # One wall-clock read at the CLI boundary; the service itself
        # never touches real time.
        timestamp = args.timestamp or datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        )
        store = RunStore(args.store or DEFAULT_STORE_PATH)
        for record in service.records(timestamp):
            store.append(record)
        print(
            f"{len(service.terminal_order) + 1} records appended to "
            f"{store.path}"
        )
    if not service.all_terminal:
        print("ERROR: non-terminal jobs after drain", file=sys.stderr)
        return 1
    failed = [
        job.job_id
        for job in service.jobs.values()
        if job.state.value == "failed"
    ]
    if failed:
        print(f"ERROR: {len(failed)} job(s) failed: {failed}", file=sys.stderr)
        return 1
    print(f"all {result.accepted} jobs terminal ({', '.join(states)})")
    return 0


def _cmd_submit(args) -> int:
    import json as _json

    from .service import (
        JobRequest,
        ServiceConfig,
        ServiceError,
        run_session,
    )

    params = {}
    if args.deadline is not None:
        params["deadline_seconds"] = args.deadline
    request = JobRequest(
        kind=args.kind,
        design=args.design,
        scale=args.scale,
        seed=args.seed,
        flow_seed=args.flow_seed,
        priority=args.priority,
        client=args.client,
        timeout_seconds=args.timeout,
        params=params,
    )
    try:
        request.validate()
    except ServiceError as exc:
        print(_json.dumps(exc.to_response(), sort_keys=True, indent=2))
        return 1
    result = run_session([request], ServiceConfig(workers=1))
    outcome = result.outcomes[0]
    if not outcome.get("accepted"):
        print(
            _json.dumps(
                {"error": outcome["error"]}, sort_keys=True, indent=2
            )
        )
        return 1
    job = result.service.jobs[outcome["job_id"]]
    print(_json.dumps(job.to_public_dict(), sort_keys=True, indent=2))
    return 0 if job.state.value == "done" else 1


def _cmd_fleet(args) -> int:
    import time as _time

    from .fleet import (
        ContinuousSession,
        FleetPlanner,
        SpotMarketFeed,
        synthetic_fleet,
    )

    if args.flows < 1 or args.menus < 1 or args.deadline_buckets < 1:
        print(
            "--flows, --menus, and --deadline-buckets must be >= 1",
            file=sys.stderr,
        )
        return 2
    if args.ticks < 0 or args.execute_per_tick < 0:
        print(
            "--ticks and --execute-per-tick must be >= 0", file=sys.stderr
        )
        return 2
    menus, flows = synthetic_fleet(
        seed=args.seed,
        flows=args.flows,
        menus=args.menus,
        deadline_buckets=args.deadline_buckets,
    )
    planner = FleetPlanner(mode=args.mode, prune=not args.no_prune)

    if args.ticks:
        session = ContinuousSession(
            menus,
            flows,
            feed=SpotMarketFeed(seed=args.seed),
            planner=planner,
            seed=args.seed,
            execute_per_tick=args.execute_per_tick,
        )
        report = session.run(args.ticks)
        dump = report.dump()
        print(dump, end="")
        plan = report.final_plan
        stats = plan.stats
        throughput = None
    else:
        for menu_id in sorted(menus):
            planner.register_menu(menu_id, menus[menu_id])
        started = _time.perf_counter()
        plan = planner.plan(flows)
        elapsed = _time.perf_counter() - started
        stats = plan.stats
        throughput = stats.flows / elapsed if elapsed > 0 else 0.0
        dump = plan.dump()
        print(dump.splitlines()[0])

    print(
        f"fleet seed={args.seed} mode={args.mode}: {stats.flows} flows in "
        f"{stats.groups} groups ({stats.group_hits} amortized hits, "
        f"{stats.tables_built} tables built, {stats.approx_solves} approx "
        f"solves, {stats.pruned_options} options pruned)"
    )
    print(
        f"  feasible {stats.feasible_flows} / infeasible "
        f"{stats.infeasible_flows}; total cost ${plan.total_cost:.4f}; "
        f"max certified gap {plan.max_certified_gap:.6f}"
    )
    if throughput is not None:
        print(f"  planned {throughput:,.0f} flows/sec")
    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(dump)
        print(f"plan dump written to {args.dump}")
    if (
        args.min_throughput is not None
        and throughput is not None
        and throughput < args.min_throughput
    ):
        print(
            f"FAIL: throughput {throughput:,.0f} flows/sec below "
            f"--min-throughput {args.min_throughput:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_benchmarks(_args) -> int:
    print(f"{'name':<14} {'kind':<12} note")
    for name in benchmarks.all_names():
        info = benchmarks.info(name)
        print(f"{name:<14} {info.kind:<12} {info.note}")
    return 0


_COMMANDS = {
    "characterize": _cmd_characterize,
    "flow": _cmd_flow,
    "optimize": _cmd_optimize,
    "predict": _cmd_predict,
    "benchmarks": _cmd_benchmarks,
    "verify": _cmd_verify,
    "execute": _cmd_execute,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "report": _cmd_report,
    "slo": _cmd_slo,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "fleet": _cmd_fleet,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
