"""repro — reproduction of "Characterizing and Optimizing EDA Flows for the Cloud".

Hosny & Reda, DATE 2021.  The package builds every system the paper uses
or depends on, from scratch:

* :mod:`repro.netlist` — AIGs, cell library, netlists, graphs, benchmarks.
* :mod:`repro.eda` — synthesis, placement, routing and STA engines.
* :mod:`repro.perf` — simulated hardware performance counters.
* :mod:`repro.parallel` — the vCPU execution model.
* :mod:`repro.cloud` — VM catalog, pricing, tenancy, deployment plans.
* :mod:`repro.gnn` — the numpy GCN runtime predictor.
* :mod:`repro.core` — the paper's pipeline: characterize / predict /
  optimize / end-to-end workflow.

Quickstart::

    from repro.core import characterize, solve_mckp_dp, build_stage_options

    report = characterize("sparc_core", scale=1.0)          # Problem 1
    options = build_stage_options(report.stage_runtimes())
    plan = solve_mckp_dp(options, deadline_seconds=10_000)   # Problem 3
"""

__version__ = "1.0.0"

from . import cloud, core, eda, gnn, netlist, parallel, perf

__all__ = ["cloud", "core", "eda", "gnn", "netlist", "parallel", "perf", "__version__"]
