"""EDA flow characterization (Problem 1).

Runs the four applications on a design under each VM size (1/2/4/8 vCPUs)
with the perf simulators attached, and aggregates the quantities plotted in
Figure 2: branch-miss rate, cache-miss rate, AVX utilization and speedup.
From the measured counters it derives the paper's "Main Takeaways" —
which instance family to provision per application — as *data-driven
rules* rather than hard-coded conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cloud.instance import InstanceFamily
from ..eda.flow import FlowRunner
from ..eda.job import EDAStage, JobResult
from ..netlist import benchmarks
from ..netlist.aig import AIG
from ..perf import PerfCounters, make_instrument

__all__ = [
    "StageCharacterization",
    "CharacterizationReport",
    "characterize",
    "recommend_family",
    "DEFAULT_VCPU_LEVELS",
]

DEFAULT_VCPU_LEVELS = (1, 2, 4, 8)

#: Counter thresholds for the provisioning rules (fractions).
CACHE_MISS_THRESHOLD = 0.20  # above this, the job is memory-hungry
AVX_SHARE_THRESHOLD = 0.05  # above this, the job benefits from AVX hosts
SCALING_THRESHOLD = 3.0  # speedup@8 above this means "scales well"


@dataclass
class StageCharacterization:
    """One application's measurements across VM sizes."""

    stage: EDAStage
    counters: Dict[int, PerfCounters] = field(default_factory=dict)
    runtimes: Dict[int, float] = field(default_factory=dict)

    @property
    def vcpu_levels(self) -> List[int]:
        return sorted(self.runtimes)

    def speedup(self, vcpus: int) -> float:
        base = self.runtimes[min(self.runtimes)]
        return base / self.runtimes[vcpus]

    @property
    def speedups(self) -> Dict[int, float]:
        return {v: self.speedup(v) for v in self.vcpu_levels}

    def branch_miss_rates(self) -> Dict[int, float]:
        """Figure 2-a series."""
        return {v: c.branch_miss_rate for v, c in sorted(self.counters.items())}

    def cache_miss_rates(self) -> Dict[int, float]:
        """Figure 2-b series."""
        return {v: c.cache_miss_rate for v, c in sorted(self.counters.items())}

    def avx_shares(self) -> Dict[int, float]:
        """Figure 2-c series."""
        return {v: c.avx_share for v, c in sorted(self.counters.items())}


def recommend_family(
    char: StageCharacterization, reference_rate: Optional[float] = None
) -> InstanceFamily:
    """Instance-family rule derived from measured counters.

    High cache-miss jobs want the memory-optimized tier's higher
    memory-to-core ratio; everything else runs well on general-purpose
    instances — the paper's takeaway, reproduced as a measurement-driven
    rule.  When ``reference_rate`` is given (a report passes the mean miss
    rate across all four applications), the rule is relative — a stage is
    memory-hungry when it misses more than the flow's average — which is
    robust across design scales; standalone calls fall back to the
    absolute :data:`CACHE_MISS_THRESHOLD`.
    """
    rates = char.cache_miss_rates()
    if not rates:
        raise ValueError("no counters recorded")
    mean_miss = sum(rates.values()) / len(rates)
    threshold = reference_rate if reference_rate is not None else CACHE_MISS_THRESHOLD
    if mean_miss > threshold:
        return InstanceFamily.MEMORY_OPTIMIZED
    return InstanceFamily.GENERAL_PURPOSE


@dataclass
class CharacterizationReport:
    """Everything Figure 2 plots plus the derived recommendations."""

    design: str
    stages: Dict[EDAStage, StageCharacterization] = field(default_factory=dict)

    def __getitem__(self, stage: EDAStage) -> StageCharacterization:
        return self.stages[stage]

    def recommended_families(self) -> Dict[EDAStage, InstanceFamily]:
        """Per-stage family choices, relative to the flow-wide miss rate."""
        per_stage_mean = {}
        for stage, char in self.stages.items():
            rates = char.cache_miss_rates()
            per_stage_mean[stage] = sum(rates.values()) / max(1, len(rates))
        overall = sum(per_stage_mean.values()) / max(1, len(per_stage_mean))
        return {
            stage: recommend_family(c, reference_rate=overall)
            for stage, c in self.stages.items()
        }

    def wants_avx(self) -> Dict[EDAStage, bool]:
        """Stages whose AVX utilization justifies AVX-capable hosts."""
        out = {}
        for stage, char in self.stages.items():
            shares = char.avx_shares()
            out[stage] = (sum(shares.values()) / len(shares)) > AVX_SHARE_THRESHOLD
        return out

    def scales_well(self) -> Dict[EDAStage, bool]:
        """Stages whose speedup at the largest VM clears the threshold."""
        out = {}
        for stage, char in self.stages.items():
            top = max(char.vcpu_levels)
            out[stage] = char.speedup(top) >= SCALING_THRESHOLD
        return out

    def stage_runtimes(self) -> Dict[EDAStage, Dict[int, float]]:
        """Runtimes in the shape the optimizer consumes."""
        return {stage: dict(c.runtimes) for stage, c in self.stages.items()}

    def recommendations_text(self) -> List[str]:
        """The 'Main Takeaways' as sentences, derived from measurements."""
        fams = self.recommended_families()
        avx = self.wants_avx()
        scaling = self.scales_well()
        lines = []
        gp = [s.display_name for s, f in fams.items() if f == InstanceFamily.GENERAL_PURPOSE]
        mem = [s.display_name for s, f in fams.items() if f == InstanceFamily.MEMORY_OPTIMIZED]
        if gp:
            lines.append(
                f"{' and '.join(gp)} perform well on general-purpose VM instances "
                "with a balance between computations and memory access."
            )
        if mem:
            lines.append(
                f"{' and '.join(mem)} require VM instances with a higher "
                "memory-to-core ratio (memory-optimized)."
            )
        avx_stages = [s.display_name for s, flag in avx.items() if flag]
        if avx_stages:
            lines.append(
                f"{' and '.join(avx_stages)} should run on instances whose "
                "processors support Advanced Vector Extensions (AVX)."
            )
        scale_stages = [s.display_name for s, flag in scaling.items() if flag]
        if scale_stages:
            lines.append(
                f"{' and '.join(scale_stages)} scale well with the number of "
                "vCPUs allocated; the other stages cap early."
            )
        return lines


def characterize(
    design: str | AIG = "sparc_core",
    scale: float = 1.5,
    vcpu_levels: Sequence[int] = DEFAULT_VCPU_LEVELS,
    sample_rate: int = 2,
    runner: Optional[FlowRunner] = None,
) -> CharacterizationReport:
    """Characterize the four applications on one design (Figure 2).

    Parameters
    ----------
    design:
        Benchmark name or a prebuilt AIG.  The default is the SPARC-core
        proxy at characterization scale, matching the paper's use of the
        OpenPiton SPARC core.
    vcpu_levels:
        VM sizes to emulate (cgroups substitute).
    sample_rate:
        PMU-style event sampling stride (higher = faster, coarser).
    """
    aig = benchmarks.build(design, scale) if isinstance(design, str) else design
    runner = runner if runner is not None else FlowRunner()
    report = CharacterizationReport(design=aig.name)
    for stage in EDAStage.ordered():
        report.stages[stage] = StageCharacterization(stage=stage)
    for vcpus in vcpu_levels:
        instruments = {
            stage: make_instrument(vcpus, sample_rate=sample_rate)
            for stage in EDAStage.ordered()
        }
        flow = runner.run(aig, instruments=instruments)
        for stage, result in flow.stages.items():
            char = report.stages[stage]
            char.counters[vcpus] = result.counters
            char.runtimes[vcpus] = result.runtime(vcpus)
    return report
