"""Save/load trained predictor suites.

Training the per-application GCNs is the expensive step of the workflow
(minutes); deployment decisions are milliseconds.  Teams therefore train
once and reuse — this module serializes a
:class:`~repro.core.predict.PredictorSuite` to a single ``.npz`` archive
(weights, target normalization, and architecture metadata) and restores it
bit-exactly.
"""

from __future__ import annotations

import zipfile
import zlib
from typing import Dict

import numpy as np

from ..eda.job import EDAStage
from ..gnn import RuntimeGCN
from ..gnn.training import EvalResult, TrainResult
from .predict import PredictorSuite, StagePredictor

__all__ = ["save_suite", "load_suite"]

_FORMAT_VERSION = 1


def save_suite(suite: PredictorSuite, path: str) -> None:
    """Serialize a trained suite to a ``.npz`` archive."""
    arrays: Dict[str, np.ndarray] = {
        "__version__": np.array([_FORMAT_VERSION]),
        "__stages__": np.array(
            [stage.value for stage in suite.predictors], dtype="U16"
        ),
    }
    for stage, predictor in suite.predictors.items():
        prefix = f"{stage.value}/"
        model = predictor.model
        arrays[prefix + "arch"] = np.array(
            [
                model.gcn1.weight.shape[0],  # feature dim
                model.gcn1.weight.shape[1],  # hidden1
                model.gcn2.weight.shape[1],  # hidden2
                model.fc.weight.shape[1],  # fc units
                model.head.weight.shape[1],  # outputs
            ]
        )
        arrays[prefix + "pool"] = np.array([model.readout.mode], dtype="U8")
        arrays[prefix + "offset"] = predictor.target_offset
        arrays[prefix + "std"] = predictor.target_std
        for i, param in enumerate(model.state_dict()):
            arrays[prefix + f"param{i}"] = param
    np.savez_compressed(path, **arrays)


def load_suite(path: str) -> PredictorSuite:
    """Restore a suite saved by :func:`save_suite`.

    Evaluation results are not persisted (they describe the training run,
    not the model); the restored predictors carry empty placeholders.

    Truncated or otherwise corrupted archives raise a ``ValueError``
    naming the archive path and, where applicable, the missing key —
    never a bare ``KeyError`` from deep inside numpy.
    """
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, zlib.error, ValueError) as exc:
        raise ValueError(
            f"corrupted predictor archive {path!r}: {exc}"
        ) from exc
    with archive_cm as archive:

        def require(key: str) -> np.ndarray:
            if key not in archive:
                raise ValueError(
                    f"corrupted predictor archive {path!r}: missing key {key!r}"
                )
            return archive[key]

        version = int(require("__version__")[0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported archive version {version}")
        stage_names = require("__stages__")
        if len(stage_names) == 0:
            raise ValueError(
                f"corrupted predictor archive {path!r}: '__stages__' is empty"
            )
        suite = PredictorSuite()
        for stage_name in stage_names:
            stage = EDAStage(str(stage_name))
            prefix = f"{stage.value}/"
            feature_dim, hidden1, hidden2, fc_units, outputs = (
                int(x) for x in require(prefix + "arch")
            )
            model = RuntimeGCN(
                feature_dim=feature_dim,
                hidden1=hidden1,
                hidden2=hidden2,
                fc_units=fc_units,
                outputs=outputs,
                pool=str(require(prefix + "pool")[0]),
            )
            state = []
            i = 0
            while prefix + f"param{i}" in archive:
                state.append(archive[prefix + f"param{i}"])
                i += 1
            if not state:
                raise ValueError(
                    f"corrupted predictor archive {path!r}: missing key "
                    f"{prefix + 'param0'!r}"
                )
            model.load_state_dict(state)
            placeholder_eval = EvalResult(
                per_sample_error=np.zeros(0),
                per_output_error=np.zeros((0, outputs)),
                predictions=np.zeros((0, outputs)),
            )
            suite.predictors[stage] = StagePredictor(
                stage=stage,
                model=model,
                target_offset=require(prefix + "offset"),
                target_std=require(prefix + "std"),
                train_result=TrainResult(),
                train_eval=placeholder_eval,
                test_eval=placeholder_eval,
            )
    return suite
