"""Text renderers for the paper's tables and figures.

Every experiment's bench prints through these, so the console output has
the same rows/series the paper reports: Figure 2's four panels, Figure 3's
speedup-vs-design table, Figure 5's error histogram, Table I, and Figure
6's savings bars.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..eda.job import EDAStage
from .characterize import CharacterizationReport
from .optimize import Selection, StageOptions

__all__ = [
    "render_figure2",
    "render_figure3",
    "render_figure5",
    "render_table1",
    "render_figure6",
    "format_table",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Minimal fixed-width table renderer."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_figure2(report: CharacterizationReport) -> str:
    """Figure 2: the four characterization panels as tables."""
    sections = []
    stages = [s for s in EDAStage.ordered() if s in report.stages]
    levels = report.stages[stages[0]].vcpu_levels

    def panel(title: str, getter) -> str:
        headers = ["vCPUs"] + [s.display_name for s in stages]
        rows = []
        for v in levels:
            row = [str(v)]
            for s in stages:
                row.append(f"{100 * getter(report.stages[s])[v]:.2f}%")
            rows.append(row)
        return f"{title}\n{format_table(headers, rows)}"

    sections.append(
        panel("(a) Branch misses (% of all branches)", lambda c: c.branch_miss_rates())
    )
    sections.append(
        panel("(b) Cache misses (% of cache references)", lambda c: c.cache_miss_rates())
    )
    sections.append(
        panel("(c) AVX utilization (% of instructions)", lambda c: c.avx_shares())
    )
    headers = ["vCPUs"] + [s.display_name for s in stages]
    rows = []
    for v in levels:
        rows.append([str(v)] + [f"{report.stages[s].speedup(v):.2f}x" for s in stages])
    sections.append(f"(d) Speedup vs. 1 vCPU\n{format_table(headers, rows)}")
    sections.append("Main takeaways:")
    sections.extend(f"  - {line}" for line in report.recommendations_text())
    return "\n\n".join(sections)


def render_figure3(speedups_by_design: Mapping[str, Mapping[int, float]]) -> str:
    """Figure 3: routing speedup per design (smallest to largest)."""
    designs = list(speedups_by_design)
    levels = sorted(next(iter(speedups_by_design.values())))
    headers = ["design"] + [f"{v} vCPU" for v in levels]
    rows = [
        [name] + [f"{speedups_by_design[name][v]:.2f}x" for v in levels]
        for name in designs
    ]
    return "Routing speedup for different designs\n" + format_table(headers, rows)


def render_figure5(
    histograms: Mapping[str, Mapping[str, int]],
    mean_errors: Mapping[str, float],
) -> str:
    """Figure 5: prediction error histograms plus the average errors."""
    parts = []
    for name, hist in histograms.items():
        total = sum(hist.values()) or 1
        lines = [f"Prediction error histogram — {name}"]
        for label, count in hist.items():
            bar = "#" * int(round(40 * count / total))
            lines.append(f"  {label:>9s} | {bar} {count}")
        parts.append("\n".join(lines))
    parts.append(
        "Average errors: "
        + ", ".join(f"{k}: {100 * v:.1f}%" for k, v in mean_errors.items())
    )
    return "\n\n".join(parts)


def render_table1(
    stages: Sequence[StageOptions],
    constraints: Sequence[float],
    selections: Mapping[float, Optional[Selection]],
) -> str:
    """Table I: per-stage runtime/cost menu plus selections per deadline."""
    headers = ["stage", "family"] + [
        f"{opt.vm.vcpus}v" for opt in stages[0].options
    ]
    rt_rows = []
    cost_rows = []
    for s in stages:
        rt_rows.append(
            [s.stage.display_name, s.options[0].vm.family.display_name]
            + [f"{o.runtime_seconds:,}" for o in s.options]
        )
        cost_rows.append(
            [s.stage.display_name, ""]
            + [f"${o.price:.2f}" for o in s.options]
        )
    parts = [
        "Runtime (sec) per configuration\n" + format_table(headers, rt_rows),
        "Cost ($) per configuration\n" + format_table(headers, cost_rows),
    ]
    sel_headers = ["constraint"] + [
        s.stage.display_name for s in stages
    ] + ["total runtime", "min cost ($)"]
    sel_rows = []
    for c in constraints:
        selection = selections[c]
        if selection is None:
            sel_rows.append([f"{c:,.0f}"] + ["NA"] * (len(stages) + 2))
            continue
        row = [f"{c:,.0f}"]
        for s in stages:
            opt = selection.choices[s.stage]
            row.append(f"{opt.vm.vcpus}v")
        row.append(f"{selection.total_runtime:,}")
        row.append(f"{selection.total_cost:.2f}")
        sel_rows.append(row)
    parts.append(
        "Recommended configuration per total-runtime constraint\n"
        + format_table(sel_headers, sel_rows)
    )
    return "\n\n".join(parts)


def render_figure6(
    rows: Sequence[Mapping[str, float]],
) -> str:
    """Figure 6: cost savings vs over-/under-provisioning per deadline.

    Each row needs keys ``constraint``, ``optimized``, ``over``, ``under``,
    ``saving_over`` and ``saving_under`` (percentages).
    """
    headers = [
        "constraint",
        "optimized $",
        "over-prov $",
        "under-prov $",
        "saving vs over",
        "saving vs under",
    ]
    table_rows = []
    savings = []
    for r in rows:
        table_rows.append(
            [
                f"{r['constraint']:,.0f}",
                f"{r['optimized']:.2f}",
                f"{r['over']:.2f}",
                f"{r['under']:.2f}",
                f"{r['saving_over']:.1f}%",
                f"{r['saving_under']:.1f}%",
            ]
        )
        savings.extend([r["saving_over"], r["saving_under"]])
    avg = sum(savings) / len(savings) if savings else 0.0
    return (
        "Cost savings from the multi-choice knapsack optimization\n"
        + format_table(headers, table_rows)
        + f"\nAverage cost saving: {avg:.2f}%"
    )
