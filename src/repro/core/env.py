"""Environment-variable parsing with actionable error messages.

The bench/benchmark scale knobs (``REPRO_BENCH_*``, ``REPRO_FIG5_*``)
come from the environment; a bare ``float(os.environ[...])`` turns a
typo'd value into a context-free ``ValueError: could not convert string
to float: 'fast'`` with no hint of *which* variable was malformed.
These helpers raise errors that name the variable and the offending
value, and treat an empty string the same as unset.
"""

from __future__ import annotations

import os

__all__ = ["env_float", "env_int"]


def env_float(name: str, default: float) -> float:
    """``float(os.environ[name])`` with a clear error naming ``name``."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return float(default)
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not a valid float "
            f"(unset it or use e.g. {name}={float(default)!r})"
        ) from None


def env_int(name: str, default: int) -> int:
    """``int(os.environ[name])`` with a clear error naming ``name``."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return int(default)
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not a valid integer "
            f"(unset it or use e.g. {name}={int(default)!r})"
        ) from None
