"""Structured experiment runner: regenerate every result as JSON.

`pytest benchmarks/` prints the paper's tables; this module produces the
same content as machine-readable dictionaries so downstream tooling
(dashboards, regression tracking, EXPERIMENTS.md updates) can consume it.

Usage::

    from repro.core.experiments import run_all
    results = run_all(scale=1.0, quick=True)
    json.dump(results, open("results.json", "w"), indent=2)
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

from ..eda.flow import FlowRunner
from ..eda.job import EDAStage
from ..netlist import benchmarks
from .characterize import CharacterizationReport, characterize
from .optimize import (
    build_stage_options,
    cost_saving_percent,
    over_provisioning,
    solve_mckp_dp,
    under_provisioning,
)

__all__ = ["run_figure2", "run_figure3", "run_table1_figure6", "run_all"]


def _stage_map(d: Dict[EDAStage, Any]) -> Dict[str, Any]:
    return {stage.value: value for stage, value in d.items()}


def run_figure2(
    design: str = "sparc_core",
    scale: float = 1.5,
    sample_rate: int = 2,
    report: Optional[CharacterizationReport] = None,
) -> Dict[str, Any]:
    """Figure 2's four panels as nested dictionaries."""
    if report is None:
        report = characterize(design, scale=scale, sample_rate=sample_rate)
    return {
        "design": report.design,
        "branch_miss_rates": _stage_map(
            {s: c.branch_miss_rates() for s, c in report.stages.items()}
        ),
        "cache_miss_rates": _stage_map(
            {s: c.cache_miss_rates() for s, c in report.stages.items()}
        ),
        "avx_shares": _stage_map(
            {s: c.avx_shares() for s, c in report.stages.items()}
        ),
        "speedups": _stage_map({s: c.speedups for s, c in report.stages.items()}),
        "recommended_families": _stage_map(
            {s: f.value for s, f in report.recommended_families().items()}
        ),
        "wants_avx": _stage_map(report.wants_avx()),
        "scales_well": _stage_map(report.scales_well()),
        "runtimes": _stage_map(report.stage_runtimes()),
    }


def run_figure3(
    designs: Sequence = (
        ("dynamic_node", 1.0),
        ("aes", 0.8),
        ("fpu", 1.0),
        ("sparc_core", 1.5),
    ),
    vcpus: Sequence[int] = (1, 2, 4, 8),
) -> Dict[str, Any]:
    """Routing speedups per design (smallest to largest)."""
    runner = FlowRunner()
    speedups: Dict[str, Dict[int, float]] = {}
    sizes: Dict[str, int] = {}
    for name, scale in designs:
        flow = runner.run(benchmarks.build(name, scale))
        routing = flow[EDAStage.ROUTING]
        speedups[name] = {v: routing.profile.speedup(v) for v in vcpus}
        sizes[name] = flow[EDAStage.SYNTHESIS].artifact.num_instances
    return {"speedups": speedups, "instances": sizes}


def run_table1_figure6(
    report: Optional[CharacterizationReport] = None,
    design: str = "sparc_core",
    scale: float = 1.5,
    sample_rate: int = 2,
    num_deadlines: int = 6,
) -> Dict[str, Any]:
    """Table I's menu + selections and Figure 6's savings sweep."""
    if report is None:
        report = characterize(design, scale=scale, sample_rate=sample_rate)
    stages = build_stage_options(
        report.stage_runtimes(), families=report.recommended_families()
    )
    menu = {
        s.stage.value: {
            o.vm.vcpus: {"runtime_s": o.runtime_seconds, "cost_usd": o.price}
            for o in s.options
        }
        for s in stages
    }
    fastest = sum(s.fastest.runtime_seconds for s in stages)
    slowest = sum(s.options[0].runtime_seconds for s in stages)
    step = max(1, (slowest - fastest) // max(1, num_deadlines - 1))
    deadlines = [fastest + i * step for i in range(num_deadlines)]
    deadlines.append(int(0.9 * fastest))  # the NA row

    over = over_provisioning(stages)
    under = under_provisioning(stages)
    rows = []
    savings = []
    for deadline in deadlines:
        selection = solve_mckp_dp(stages, deadline)
        if selection is None:
            rows.append({"deadline_s": deadline, "feasible": False})
            continue
        saving_over = cost_saving_percent(selection.total_cost, over.total_cost)
        saving_under = cost_saving_percent(selection.total_cost, under.total_cost)
        savings.extend([saving_over, saving_under])
        rows.append(
            {
                "deadline_s": deadline,
                "feasible": True,
                "vcpus": {
                    s.value: o.vm.vcpus for s, o in selection.choices.items()
                },
                "total_runtime_s": selection.total_runtime,
                "total_cost_usd": selection.total_cost,
                "saving_vs_over_pct": saving_over,
                "saving_vs_under_pct": saving_under,
            }
        )
    return {
        "menu": menu,
        "selections": rows,
        "over_provisioning_cost": over.total_cost,
        "under_provisioning_cost": under.total_cost,
        "average_saving_pct": sum(savings) / len(savings) if savings else 0.0,
    }


def run_all(
    scale: float = 1.5, sample_rate: int = 2, quick: bool = False
) -> Dict[str, Any]:
    """Regenerate Figure 2/3, Table I and Figure 6 (Figure 5 is separate
    because GCN training is minutes; see ``repro.core.predict``).

    ``quick=True`` shrinks designs for smoke runs.
    """
    if quick:
        scale = min(scale, 0.8)
        sample_rate = max(sample_rate, 6)
    started = time.time()
    report = characterize("sparc_core", scale=scale, sample_rate=sample_rate)
    fig3_designs = (
        (("dynamic_node", 0.8), ("fpu", 0.8), ("sparc_core", 1.0))
        if quick
        else (("dynamic_node", 1.0), ("aes", 0.8), ("fpu", 1.0), ("sparc_core", 1.5))
    )
    results = {
        "figure2": run_figure2(report=report),
        "figure3": run_figure3(designs=fig3_designs),
        "table1_figure6": run_table1_figure6(report=report),
        "meta": {
            "scale": scale,
            "sample_rate": sample_rate,
            "quick": quick,
            "wall_seconds": None,
        },
    }
    results["meta"]["wall_seconds"] = round(time.time() - started, 1)
    return results
