"""The end-to-end workflow of Figure 1.

Chains the three contributions: characterize the applications once to get
per-stage VM-family recommendations, train runtime predictors, then for
any new design predict per-stage runtimes and pick the cost-minimal VM
configuration per stage under a deadline via the MCKP solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..cloud.instance import InstanceFamily
from ..cloud.pricing import PricingTable, aws_like_catalog
from ..cloud.provisioner import RECOMMENDED_FAMILY, DeploymentPlan
from ..eda.flow import FlowRunner
from ..eda.job import EDAStage
from ..netlist import aig_to_graph, benchmarks, netlist_to_star_graph
from ..netlist.aig import AIG
from .characterize import CharacterizationReport, characterize
from .optimize import (
    Selection,
    StageOptions,
    build_stage_options,
    solve_mckp_dp,
)
from .predict import DatasetSpec, PredictorSuite, build_datasets, train_predictors

__all__ = ["CloudDeploymentWorkflow", "WorkflowOutcome"]


@dataclass
class WorkflowOutcome:
    """The workflow's answer for one design and deadline."""

    design: str
    deadline_seconds: float
    predicted_runtimes: Dict[EDAStage, Dict[int, float]]
    selection: Optional[Selection]
    stage_options: Optional[List[StageOptions]] = None

    @property
    def feasible(self) -> bool:
        return self.selection is not None

    def plan(self) -> DeploymentPlan:
        if self.selection is None:
            raise ValueError(
                f"deadline {self.deadline_seconds}s is not achievable (NA)"
            )
        return self.selection.to_plan(self.design)

    def execute(
        self,
        seed: int = 0,
        profile=None,
        policy=None,
        record_events: bool = True,
    ):
        """Run the optimized plan on the fault-injecting executor.

        The outcome's own option menus power mid-flight re-planning, so a
        degraded run re-optimizes its remaining stages under the residual
        deadline.  Returns an
        :class:`~repro.cloud.executor.ExecutionResult`.
        """
        from ..cloud.executor import PlanExecutor

        return PlanExecutor(profile=profile, policy=policy).execute(
            self.plan(),
            deadline_seconds=self.deadline_seconds,
            seed=seed,
            stage_options=self.stage_options,
            record_events=record_events,
        )


class CloudDeploymentWorkflow:
    """Characterize -> predict -> optimize (Figure 1).

    Parameters
    ----------
    catalog:
        Cloud pricing table.
    runner:
        Flow runner used for characterization and dataset generation.
    """

    def __init__(
        self,
        catalog: Optional[PricingTable] = None,
        runner: Optional[FlowRunner] = None,
    ):
        self.catalog = catalog if catalog is not None else aws_like_catalog()
        self.runner = runner if runner is not None else FlowRunner()
        self.characterization: Optional[CharacterizationReport] = None
        self.families: Mapping[EDAStage, InstanceFamily] = RECOMMENDED_FAMILY
        self.predictors: Optional[PredictorSuite] = None

    # -- step 1 ----------------------------------------------------------
    def run_characterization(
        self, design: str = "sparc_core", scale: float = 1.5, sample_rate: int = 2
    ) -> CharacterizationReport:
        """Problem 1: measure counters, derive per-stage family choices."""
        self.characterization = characterize(
            design, scale=scale, sample_rate=sample_rate, runner=self.runner
        )
        self.families = self.characterization.recommended_families()
        return self.characterization

    # -- step 2 ----------------------------------------------------------
    def train_runtime_models(
        self,
        spec: DatasetSpec = DatasetSpec(),
        epochs: int = 60,
        verbose: bool = False,
    ) -> PredictorSuite:
        """Problem 2: build the dataset and train per-application GCNs."""
        datasets = build_datasets(spec, runner=self.runner, verbose=verbose)
        self.predictors = train_predictors(datasets, epochs=epochs, verbose=verbose)
        return self.predictors

    # -- step 3 ----------------------------------------------------------
    def predict_runtimes(self, aig: AIG) -> Dict[EDAStage, Dict[int, float]]:
        """Predict per-stage runtimes for a new design from its graphs."""
        if self.predictors is None:
            raise ValueError("call train_runtime_models() first")
        # The back-end models need the mapped netlist's star graph; run
        # synthesis once to obtain it (in production this is the handoff
        # point between front-end and back-end teams).
        synth = self.runner.synthesis.run(aig)
        return self.predictors.predict_stage_runtimes(
            aig_to_graph(aig), netlist_to_star_graph(synth.artifact)
        )

    def optimize_deployment(
        self,
        stage_runtimes: Mapping[EDAStage, Mapping[int, float]],
        deadline_seconds: float,
        design: str = "design",
    ) -> WorkflowOutcome:
        """Problem 3: pick the per-stage VM sizes under the deadline."""
        stages = build_stage_options(
            stage_runtimes, catalog=self.catalog, families=self.families
        )
        selection = solve_mckp_dp(stages, deadline_seconds)
        return WorkflowOutcome(
            design=design,
            deadline_seconds=deadline_seconds,
            predicted_runtimes={k: dict(v) for k, v in stage_runtimes.items()},
            selection=selection,
            stage_options=stages,
        )

    # -- end-to-end -------------------------------------------------------
    def deploy(self, design: str, deadline_seconds: float, scale: float = 1.0) -> WorkflowOutcome:
        """Full Figure-1 pass for a named benchmark design."""
        aig = benchmarks.build(design, scale)
        runtimes = self.predict_runtimes(aig)
        return self.optimize_deployment(runtimes, deadline_seconds, design=aig.name)
