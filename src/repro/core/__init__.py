"""The paper's three contributions, as a pipeline.

* :mod:`repro.core.characterize` — Problem 1: per-application VM
  characterization (Figure 2) and data-driven provisioning rules.
* :mod:`repro.core.predict` — Problem 2: dataset generation and the
  per-application GCN runtime predictors (Figures 4-5).
* :mod:`repro.core.optimize` — Problem 3: deadline-constrained deployment
  cost optimization via multi-choice knapsack DP (Table I, Figure 6).
* :mod:`repro.core.workflow` — the end-to-end Figure 1 workflow.
* :mod:`repro.core.report` — text renderers matching the paper's outputs.
"""

from .characterize import (
    CharacterizationReport,
    DEFAULT_VCPU_LEVELS,
    StageCharacterization,
    characterize,
    recommend_family,
)
from .optimize import (
    ConfigOption,
    Selection,
    StageOptions,
    build_stage_options,
    cost_saving_percent,
    over_provisioning,
    solve_brute_force,
    solve_greedy,
    solve_mckp_dp,
    solve_min_cost_dp,
    under_provisioning,
)
from .predict import (
    DatasetSpec,
    PredictorSuite,
    StagePredictor,
    build_datasets,
    train_predictors,
)
from .workflow import CloudDeploymentWorkflow, WorkflowOutcome
from . import experiments, persistence, report

__all__ = [
    "CharacterizationReport",
    "DEFAULT_VCPU_LEVELS",
    "StageCharacterization",
    "characterize",
    "recommend_family",
    "ConfigOption",
    "Selection",
    "StageOptions",
    "build_stage_options",
    "cost_saving_percent",
    "over_provisioning",
    "solve_brute_force",
    "solve_greedy",
    "solve_mckp_dp",
    "solve_min_cost_dp",
    "under_provisioning",
    "DatasetSpec",
    "PredictorSuite",
    "StagePredictor",
    "build_datasets",
    "train_predictors",
    "CloudDeploymentWorkflow",
    "WorkflowOutcome",
    "experiments",
    "persistence",
    "report",
]
