"""Runtime prediction (Problem 2): dataset building + per-application GCNs.

Reproduces the paper's Section III-B / IV pipeline:

1. **Dataset** — take the benchmark designs (EPFL/OpenCores analogues),
   apply different logic-optimization recipes to each to get structurally
   different netlists computing the same function (the paper: 18 designs,
   330 unique netlists, 2,640 runtime data points), and measure each
   stage's runtime at 1/2/4/8 vCPUs with the flow engines.
2. **Graphs** — the synthesis model consumes the optimized AIG; the
   placement/routing/STA models consume the star-model netlist graph.
3. **Models** — one :class:`~repro.gnn.model.RuntimeGCN` per application,
   trained jointly on the four runtimes (MSE, Adam, lr=1e-4), split 80/20
   *by design* so test designs are unseen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..eda.flow import FlowRunner
from ..eda.job import EDAStage
from ..eda.synthesis import restructure
from ..gnn import (
    RuntimeGCN,
    RuntimeSample,
    TrainConfig,
    evaluate,
    split_by_design,
    train,
)
from ..gnn.training import EvalResult, TrainResult
from ..netlist import aig_to_graph, benchmarks, netlist_to_star_graph
from ..netlist.stargraph import AIG_FEATURE_DIM, NETLIST_FEATURE_DIM

__all__ = [
    "DatasetSpec",
    "build_datasets",
    "StagePredictor",
    "PredictorSuite",
    "train_predictors",
]

PAPER_VCPUS = (1, 2, 4, 8)


@dataclass(frozen=True)
class DatasetSpec:
    """Dataset generation knobs.

    The paper's full dataset is 18 designs x ~18 variants = 330 netlists;
    the default here is a scaled-down grid that keeps CI runs fast.  Use
    ``variants_per_design=18`` (and ``scale=0.6``) for a paper-sized
    dataset of 324 netlists.
    """

    designs: Sequence[str] = tuple(benchmarks.dataset_names())
    variants_per_design: int = 5
    scale: float = 0.45
    seed: int = 0


def build_datasets(
    spec: DatasetSpec = DatasetSpec(),
    runner: Optional[FlowRunner] = None,
    verbose: bool = False,
) -> Dict[EDAStage, List[RuntimeSample]]:
    """Generate (graph, runtimes) samples for every application.

    Runs the full flow once per netlist variant (uninstrumented fast path)
    and harvests all four stages' runtimes from the same run — the paper's
    2,640 data points correspond to ``len(samples) x 4 stages x 4 vCPUs``.
    """
    runner = runner if runner is not None else FlowRunner()
    datasets: Dict[EDAStage, List[RuntimeSample]] = {s: [] for s in EDAStage.ordered()}
    rng = np.random.default_rng(spec.seed)
    started = time.time()
    for design in spec.designs:
        for variant_idx in range(spec.variants_per_design):
            # Each variant is a structurally different netlist computing the
            # same logic function: a size-jittered instance of the design,
            # restructured with a seeded rewriting pass.  The synthesis
            # recipe itself stays fixed, so every runtime is a
            # deterministic function of the variant's graph.
            jitter = float(rng.uniform(0.75, 1.3))
            base = benchmarks.build(design, spec.scale * jitter)
            variant_seed = int(rng.integers(1 << 30))
            variant = restructure(
                base,
                seed=variant_seed,
                rewrite_probability=0.4,
                keep_only_improved=False,
            )
            variant.name = f"{design}_v{variant_idx}"
            flow = runner.run(variant)
            netlist = flow[EDAStage.SYNTHESIS].artifact
            # The synthesis model sees the input AIG; the back-end models
            # see the star-model netlist graph (paper Section III-B).
            aig_graph = aig_to_graph(variant)
            net_graph = netlist_to_star_graph(netlist)
            for stage in EDAStage.ordered():
                result = flow[stage]
                runtimes = np.array([result.runtime(v) for v in PAPER_VCPUS])
                graph = aig_graph if stage == EDAStage.SYNTHESIS else net_graph
                datasets[stage].append(
                    RuntimeSample(
                        graph=graph,
                        runtimes=runtimes,
                        design=design,
                        variant=variant_idx,
                    )
                )
        if verbose:
            print(
                f"[dataset] {design}: {spec.variants_per_design} variants "
                f"({time.time() - started:.0f}s elapsed)"
            )
    return datasets


@dataclass
class StagePredictor:
    """A trained model for one application plus its evaluation."""

    stage: EDAStage
    model: RuntimeGCN
    target_offset: np.ndarray
    target_std: np.ndarray
    train_result: TrainResult
    train_eval: EvalResult
    test_eval: EvalResult

    def predict(self, graph) -> Dict[int, float]:
        """Predict runtimes (seconds) at each vCPU level for a new design."""
        from ..gnn.graph import PreparedGraph

        prepared = graph if isinstance(graph, PreparedGraph) else PreparedGraph(graph)
        log_pred = self.model.forward(prepared) * self.target_std + self.target_offset
        runtimes = np.exp(log_pred)
        return dict(zip(PAPER_VCPUS, runtimes.tolist()))

    @property
    def accuracy(self) -> float:
        """Test accuracy, ``100 - mean %% error`` (paper headline: 87%)."""
        return self.test_eval.accuracy


@dataclass
class PredictorSuite:
    """One predictor per application (the paper trains each separately)."""

    predictors: Dict[EDAStage, StagePredictor] = field(default_factory=dict)

    def __getitem__(self, stage: EDAStage) -> StagePredictor:
        return self.predictors[stage]

    def predict_stage_runtimes(
        self, aig_graph, netlist_graph
    ) -> Dict[EDAStage, Dict[int, float]]:
        """Predict all four stages' runtimes for a new design."""
        out: Dict[EDAStage, Dict[int, float]] = {}
        for stage, predictor in self.predictors.items():
            graph = aig_graph if stage == EDAStage.SYNTHESIS else netlist_graph
            out[stage] = predictor.predict(graph)
        return out

    def mean_error(self, stages: Optional[Sequence[EDAStage]] = None) -> float:
        """Average test error over a set of stages."""
        stages = list(stages) if stages is not None else list(self.predictors)
        errs = [self.predictors[s].test_eval.mean_error for s in stages]
        return float(np.mean(errs))


def train_predictors(
    datasets: Mapping[EDAStage, Sequence[RuntimeSample]],
    epochs: int = 200,
    lr: float = 1e-4,
    test_fraction: float = 0.2,
    seed: int = 0,
    hidden1: int = 256,
    hidden2: int = 128,
    fc_units: int = 128,
    pool: str = "mean",
    verbose: bool = False,
) -> PredictorSuite:
    """Train one GCN per application and evaluate on held-out designs."""
    suite = PredictorSuite()
    for stage, samples in datasets.items():
        train_set, test_set = split_by_design(
            list(samples), test_fraction=test_fraction, seed=seed
        )
        feature_dim = (
            AIG_FEATURE_DIM if stage == EDAStage.SYNTHESIS else NETLIST_FEATURE_DIM
        )
        model = RuntimeGCN(
            feature_dim=feature_dim,
            hidden1=hidden1,
            hidden2=hidden2,
            fc_units=fc_units,
            pool=pool,
            seed=seed,
        )
        config = TrainConfig(epochs=epochs, lr=lr, shuffle_seed=seed)
        train_result = train(model, train_set, config)
        train_eval = evaluate(
            model, train_set, train_result.target_offset, train_result.target_std
        )
        test_eval = evaluate(
            model, test_set, train_result.target_offset, train_result.target_std
        )
        suite.predictors[stage] = StagePredictor(
            stage=stage,
            model=model,
            target_offset=train_result.target_offset,
            target_std=train_result.target_std,
            train_result=train_result,
            train_eval=train_eval,
            test_eval=test_eval,
        )
        if verbose:
            print(
                f"[train] {stage.value}: final loss {train_result.final_loss:.4f}, "
                f"test error {100 * test_eval.mean_error:.1f}%"
            )
    return suite
