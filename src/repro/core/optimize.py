"""Cloud deployment optimization via multi-choice knapsack (Problem 3).

Given per-stage runtimes under each VM configuration and a total-runtime
(deadline) constraint ``C``, select exactly one configuration per stage.
The paper maps this to the Multi-Choice Knapsack Problem (MCKP):

.. math::

    z_l(C) = \\max \\sum_{i,j} s_{ij} \\frac{1}{p_{ij}}
    \\quad\\text{s.t.}\\quad \\sum_{i,j} s_{ij} t_{ij} \\le C,\\;
    \\sum_j s_{ij} = 1

and solves it optimally with the Dudzinski-Walukiewicz pseudo-polynomial
dynamic program, runtimes rounded to whole seconds (valid because cloud
VMs bill per second).

Besides the paper's objective (maximize the sum of *price reciprocals*)
this module implements direct cost minimization — the two are **not** the
same objective, and the ablation benchmark quantifies when they diverge —
plus brute-force and greedy references, and the over-/under-provisioning
baselines of Figure 6.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..cloud.instance import VMConfig
from ..cloud.pricing import PricingTable, aws_like_catalog
from ..cloud.provisioner import RECOMMENDED_FAMILY, DeploymentPlan
from ..eda.job import EDAStage

__all__ = [
    "ConfigOption",
    "StageOptions",
    "Selection",
    "MCKPTable",
    "ApproxResult",
    "build_stage_options",
    "prune_dominated",
    "prune_stage_options",
    "solve_mckp_dp",
    "solve_min_cost_dp",
    "solve_approx",
    "solve_brute_force",
    "enumerate_feasible",
    "selection_objective",
    "solve_greedy",
    "over_provisioning",
    "under_provisioning",
    "cost_saving_percent",
]


@dataclass(frozen=True)
class ConfigOption:
    """One selectable (VM, runtime) pair for a stage.

    ``runtime_seconds`` is pre-rounded to a whole second; ``price`` is the
    total cost of the stage on this VM.
    """

    vm: VMConfig
    runtime_seconds: int
    price: float

    @property
    def inverse_price(self) -> float:
        """The paper's per-item value, ``1 / p_ij``."""
        return 1.0 / self.price

    @property
    def label(self) -> str:
        return f"{self.vm.name}@{self.vm.vcpus}v"


@dataclass
class StageOptions:
    """All configurations available to one flow stage."""

    stage: EDAStage
    options: List[ConfigOption]

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError(f"stage {self.stage.value} has no options")

    @property
    def fastest(self) -> ConfigOption:
        return min(self.options, key=lambda o: o.runtime_seconds)

    @property
    def cheapest(self) -> ConfigOption:
        return min(self.options, key=lambda o: o.price)


@dataclass
class Selection:
    """A complete one-option-per-stage assignment."""

    choices: Dict[EDAStage, ConfigOption] = field(default_factory=dict)

    @property
    def total_runtime(self) -> int:
        return sum(o.runtime_seconds for o in self.choices.values())

    @property
    def total_cost(self) -> float:
        return sum(o.price for o in self.choices.values())

    @property
    def objective_inverse_price(self) -> float:
        return sum(o.inverse_price for o in self.choices.values())

    def to_plan(self, design: str) -> DeploymentPlan:
        """Convert to a :class:`~repro.cloud.provisioner.DeploymentPlan`."""
        plan = DeploymentPlan(design=design)
        for stage in EDAStage.ordered():
            if stage in self.choices:
                opt = self.choices[stage]
                plan.add(stage, opt.vm, opt.runtime_seconds)
        return plan


def build_stage_options(
    stage_runtimes: Mapping[EDAStage, Mapping[int, float]],
    catalog: Optional[PricingTable] = None,
    families: Optional[Mapping[EDAStage, object]] = None,
) -> List[StageOptions]:
    """Build the MCKP item classes from runtimes and the pricing table.

    ``stage_runtimes[stage][vcpus]`` gives the (predicted or measured)
    runtime in seconds; each stage's VM family follows the
    characterization's recommendation unless overridden.
    """
    catalog = catalog if catalog is not None else aws_like_catalog()
    families = families if families is not None else RECOMMENDED_FAMILY
    out: List[StageOptions] = []
    for stage in EDAStage.ordered():
        if stage not in stage_runtimes:
            continue
        options: List[ConfigOption] = []
        for vcpus, runtime in sorted(stage_runtimes[stage].items()):
            vm = catalog.config(families[stage], vcpus)
            seconds = max(1, int(round(runtime)))
            options.append(
                ConfigOption(vm=vm, runtime_seconds=seconds, price=vm.cost(seconds))
            )
        out.append(StageOptions(stage=stage, options=options))
    return out


def _check_deadline(stages: Sequence[StageOptions], deadline_seconds: float) -> int:
    if deadline_seconds <= 0:
        raise ValueError("deadline must be positive")
    return int(math.floor(deadline_seconds))


def solve_mckp_dp(
    stages: Sequence[StageOptions], deadline_seconds: float
) -> Optional[Selection]:
    """Optimal MCKP solution, maximizing Σ 1/p (the paper's objective).

    Pseudo-polynomial dynamic programming over integer seconds
    (Dudzinski & Walukiewicz); returns ``None`` when the deadline cannot be
    met even with the fastest configuration everywhere (the paper's "NA").
    """
    return _solve_dp(stages, deadline_seconds, maximize_inverse_price=True)


def solve_min_cost_dp(
    stages: Sequence[StageOptions], deadline_seconds: float
) -> Optional[Selection]:
    """Optimal deadline-constrained *minimum total cost* selection.

    Same DP skeleton with the direct objective; kept for the objective
    ablation (Σ 1/p maximization is not cost minimization).
    """
    return _solve_dp(stages, deadline_seconds, maximize_inverse_price=False)


class MCKPTable:
    """A solved DP table reusable across every deadline up to its capacity.

    The DP recurrence indexes states by *exact* total runtime ``c`` and
    only ever reads states at strictly smaller ``c``, so the table built
    to capacity ``C`` contains, as a prefix, exactly the table a fresh
    solve at any ``d <= C`` would build — option iteration order, cell
    tie-breaking, and backtracking included.  :meth:`query` therefore
    returns a selection *identical* (same option objects, same
    tie-breaks) to ``solve_mckp_dp(stages, d)``, which is the invariant
    the fleet planner's table reuse rests on and the ``fleet`` oracle
    fuzzes.
    """

    def __init__(
        self,
        stages: Sequence[StageOptions],
        capacity_seconds: float,
        maximize_inverse_price: bool = True,
    ):
        self.stages = list(stages)
        self.capacity = _check_deadline(self.stages, capacity_seconds)
        self.maximize_inverse_price = maximize_inverse_price
        neg_inf = float("-inf")

        # value[c] = best objective over all stages with total time exactly
        # c; choices[l][c] backtracks stage l's option index at state c.
        value = [0.0 if c == 0 else neg_inf for c in range(self.capacity + 1)]
        choices: List[List[int]] = []
        for stage_opts in self.stages:
            new_value = [neg_inf] * (self.capacity + 1)
            new_choice = [-1] * (self.capacity + 1)
            for j, opt in enumerate(stage_opts.options):
                t = opt.runtime_seconds
                gain = (
                    opt.inverse_price if maximize_inverse_price else -opt.price
                )
                for c in range(t, self.capacity + 1):
                    prev = value[c - t]
                    if prev == neg_inf:
                        continue
                    candidate = prev + gain
                    if candidate > new_value[c]:
                        new_value[c] = candidate
                        new_choice[c] = j
            value = new_value
            choices.append(new_choice)
        self._value = value
        self._choices = choices

    def query(self, deadline_seconds: float) -> Optional[Selection]:
        """The optimal selection under any deadline ``<=`` the capacity."""
        capacity = _check_deadline(self.stages, deadline_seconds)
        if capacity > self.capacity:
            raise ValueError(
                f"deadline {capacity} exceeds table capacity {self.capacity}"
            )
        if not self.stages:
            return Selection()
        neg_inf = float("-inf")
        value = self._value
        best_c = max(range(capacity + 1), key=lambda c: value[c], default=0)
        if value[best_c] == neg_inf:
            return None

        # Backtrack.
        selection = Selection()
        c = best_c
        for stage_idx in range(len(self.stages) - 1, -1, -1):
            j = self._choices[stage_idx][c]
            if j < 0:
                return None
            opt = self.stages[stage_idx].options[j]
            selection.choices[self.stages[stage_idx].stage] = opt
            c -= opt.runtime_seconds
        return selection


def _solve_dp(
    stages: Sequence[StageOptions],
    deadline_seconds: float,
    maximize_inverse_price: bool,
) -> Optional[Selection]:
    if not stages:
        return Selection()
    table = MCKPTable(stages, deadline_seconds, maximize_inverse_price)
    return table.query(deadline_seconds)


def selection_objective(
    selection: Selection, maximize_inverse_price: bool = True
) -> float:
    """Objective value of a selection under either MCKP objective.

    Returns Σ 1/p for the paper's objective, or the (positive) total cost
    for the min-cost objective — the quantity the solvers optimize, in a
    form the differential oracles can compare across solvers whose tie
    breaking differs.
    """
    if maximize_inverse_price:
        return selection.objective_inverse_price
    return selection.total_cost


def prune_dominated(options: Sequence[ConfigOption]) -> List[ConfigOption]:
    """Drop IP-dominated options; survivors keep their original order.

    Option ``b`` is dominated when some ``a`` is no slower *and* no more
    expensive (strictly better on at least one axis; exact ``(runtime,
    price)`` duplicates keep the earliest).  A dominator is at least as
    good under both DP objectives — swapping it in never lengthens the
    schedule, never raises cost, and never lowers ``1/p`` — so pruning
    preserves the optimum of both ``solve_mckp_dp`` and
    ``solve_min_cost_dp`` exactly (the fleet property suite asserts it).
    """
    survivors: List[ConfigOption] = []
    for i, opt in enumerate(options):
        dominated = False
        for j, other in enumerate(options):
            if j == i:
                continue
            if (
                other.runtime_seconds <= opt.runtime_seconds
                and other.price <= opt.price
                and (
                    other.runtime_seconds < opt.runtime_seconds
                    or other.price < opt.price
                    or j < i
                )
            ):
                dominated = True
                break
        if not dominated:
            survivors.append(opt)
    return survivors


def prune_stage_options(
    stages: Sequence[StageOptions],
) -> Tuple[List[StageOptions], int]:
    """Dominance-prune every stage menu; returns ``(stages, removed)``."""
    removed = 0
    out: List[StageOptions] = []
    for stage_opts in stages:
        kept = prune_dominated(stage_opts.options)
        removed += len(stage_opts.options) - len(kept)
        out.append(
            stage_opts
            if len(kept) == len(stage_opts.options)
            else StageOptions(stage=stage_opts.stage, options=kept)
        )
    return out, removed


def _lp_frontier(options: Sequence[ConfigOption]) -> List[ConfigOption]:
    """The convex (runtime, 1/p) frontier of one stage menu.

    IP-pruned survivors sorted by runtime have strictly increasing
    runtime and strictly increasing value, so incremental efficiencies
    are well defined; the upper concave hull (Sinha-Zoltners) keeps the
    points the MCKP LP relaxation can mix, which is what makes the
    greedy walk's fractional stopping value a true upper bound.
    """
    pruned = sorted(
        prune_dominated(options), key=lambda o: (o.runtime_seconds, o.price)
    )
    hull: List[ConfigOption] = []
    for opt in pruned:
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            eff_ab = (b.inverse_price - a.inverse_price) / (
                b.runtime_seconds - a.runtime_seconds
            )
            eff_bo = (opt.inverse_price - b.inverse_price) / (
                opt.runtime_seconds - b.runtime_seconds
            )
            if eff_ab <= eff_bo:
                hull.pop()
            else:
                break
        hull.append(opt)
    return hull


@dataclass(frozen=True)
class ApproxResult:
    """A feasible approximate selection with a certified optimality gap.

    ``upper_bound`` is the MCKP LP-relaxation optimum (greedy hull walk
    with a fractional final step), so ``objective <= exact optimum <=
    upper_bound`` up to float rounding, and :attr:`certified_gap` always
    dominates the true gap — the ``fleet`` oracle fuzzes this against
    the exact DP.
    """

    selection: Selection
    objective: float
    upper_bound: float

    @property
    def certified_gap(self) -> float:
        """Certified bound on ``optimum - objective`` (never negative)."""
        return max(0.0, self.upper_bound - self.objective)


def solve_approx(
    stages: Sequence[StageOptions], deadline_seconds: float
) -> Optional[ApproxResult]:
    """Fast certified approximation of the paper's MCKP objective.

    Classic MCKP greedy over the LP frontier: start every stage at its
    lightest frontier option, then buy upgrades in globally decreasing
    incremental efficiency (``Δ(1/p)/Δt``) while they fit.  The first
    upgrade that does *not* fit fixes the LP optimum ``value +
    remaining * efficiency`` — an upper bound on the integer optimum —
    after which the walk keeps taking cheaper upgrades that still fit.
    Runs in ``O(n log n)`` for ``n`` total options versus the DP's
    ``O(n * deadline)``, and returns ``None`` exactly when the DP would
    (both detect infeasibility as "fastest everywhere still misses the
    deadline").
    """
    capacity = _check_deadline(stages, deadline_seconds)
    if not stages:
        return ApproxResult(selection=Selection(), objective=0.0, upper_bound=0.0)
    fronts = [_lp_frontier(s.options) for s in stages]
    base_runtime = sum(f[0].runtime_seconds for f in fronts)
    if base_runtime > capacity:
        return None

    levels = [0] * len(fronts)
    value = sum(f[0].inverse_price for f in fronts)
    remaining = capacity - base_runtime

    # (negated efficiency, stage index, hull level, dt, dv), globally
    # sorted; ties resolved by stage then level so the walk is
    # deterministic and same-stage steps stay in hull order.
    steps: List[Tuple[float, int, int, int, float]] = []
    for si, front in enumerate(fronts):
        for k in range(1, len(front)):
            dt = front[k].runtime_seconds - front[k - 1].runtime_seconds
            dv = front[k].inverse_price - front[k - 1].inverse_price
            steps.append((-dv / dt, si, k, dt, dv))
    steps.sort(key=lambda s: (s[0], s[1], s[2]))

    upper_bound: Optional[float] = None
    for neg_eff, si, k, dt, dv in steps:
        if levels[si] != k - 1:
            continue  # an earlier hull step of this stage did not fit
        if dt <= remaining:
            remaining -= dt
            value += dv
            levels[si] = k
        elif upper_bound is None:
            upper_bound = value + remaining * (-neg_eff)

    selection = Selection(
        choices={
            stages[si].stage: fronts[si][levels[si]]
            for si in range(len(fronts))
        }
    )
    objective = selection.objective_inverse_price
    if upper_bound is None:
        # Every hull top was bought: each stage sits at its maximum
        # value, so no selection (dominated or not) can do better.
        upper_bound = objective
    return ApproxResult(
        selection=selection,
        objective=objective,
        upper_bound=max(upper_bound, objective),
    )


def enumerate_feasible(
    stages: Sequence[StageOptions], deadline_seconds: float
) -> Iterator[Selection]:
    """Yield every deadline-feasible one-option-per-stage selection.

    Exhaustive (exponential in the stage count); shared by the brute-force
    solvers and the verification oracles, which use it to cross-check DP
    feasibility claims against ground truth.
    """
    capacity = _check_deadline(stages, deadline_seconds)
    for combo in itertools.product(*[s.options for s in stages]):
        total_t = sum(o.runtime_seconds for o in combo)
        if total_t > capacity:
            continue
        yield Selection(choices={s.stage: o for s, o in zip(stages, combo)})


def solve_brute_force(
    stages: Sequence[StageOptions],
    deadline_seconds: float,
    maximize_inverse_price: bool = True,
) -> Optional[Selection]:
    """Exhaustive reference solver (exponential; for tests and oracles)."""
    best: Optional[Selection] = None
    best_key: Optional[Tuple[float, float]] = None
    for selection in enumerate_feasible(stages, deadline_seconds):
        objective = selection_objective(selection, maximize_inverse_price)
        sign = 1.0 if maximize_inverse_price else -1.0
        key = (sign * objective, -selection.total_runtime)
        if best_key is None or key > best_key:
            best_key = key
            best = selection
    return best


def solve_greedy(
    stages: Sequence[StageOptions], deadline_seconds: float
) -> Optional[Selection]:
    """Greedy heuristic: start cheapest, buy speed with the best time/$ ratio.

    Not optimal — kept as the quality baseline for the solver ablation.
    """
    capacity = _check_deadline(stages, deadline_seconds)
    selection = Selection(
        choices={s.stage: s.cheapest for s in stages}
    )
    stage_by_name = {s.stage: s for s in stages}
    while selection.total_runtime > capacity:
        best_stage: Optional[EDAStage] = None
        best_option: Optional[ConfigOption] = None
        best_ratio = -1.0
        for stage, current in selection.choices.items():
            for opt in stage_by_name[stage].options:
                saved = current.runtime_seconds - opt.runtime_seconds
                extra = opt.price - current.price
                if saved <= 0:
                    continue
                ratio = saved / max(extra, 1e-9)
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_stage = stage
                    best_option = opt
        if best_stage is None or best_option is None:
            return None  # cannot meet the deadline
        selection.choices[best_stage] = best_option
    return selection


def over_provisioning(stages: Sequence[StageOptions]) -> Selection:
    """Run every stage on the largest vCPU configuration (Figure 6 baseline)."""
    return Selection(
        choices={s.stage: max(s.options, key=lambda o: o.vm.vcpus) for s in stages}
    )


def under_provisioning(stages: Sequence[StageOptions]) -> Selection:
    """Run every stage on the smallest vCPU configuration (Figure 6 baseline)."""
    return Selection(
        choices={s.stage: min(s.options, key=lambda o: o.vm.vcpus) for s in stages}
    )


def cost_saving_percent(optimized_cost: float, baseline_cost: float) -> float:
    """Percentage saved relative to a baseline (Figure 6's y-axis)."""
    if baseline_cost <= 0:
        raise ValueError("baseline cost must be positive")
    return 100.0 * (baseline_cost - optimized_cost) / baseline_cost
